// Reproduces Table 2: Log Characteristics (one log processor) — the log
// disk is almost idle because the I/O bandwidth between the data disks and
// the cache limits the update rate.

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double util;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 0.02},
    {core::Configuration::kParRandom, 0.02},
    {core::Configuration::kConvSeq, 0.02},
    {core::Configuration::kParSeq, 0.13},
};

void RunTable() {
  TextTable t("Table 2. Log Characteristics (one log processor)");
  t.SetHeader({"Configuration", "Log Disk Utilization"});
  for (const PaperRow& row : kPaper) {
    auto r = Run(row.config, std::make_unique<machine::SimLogging>());
    t.AddRow({core::ConfigurationName(row.config),
              Cell2(row.util, r.extra.at("log_disk_util_0"))});
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
