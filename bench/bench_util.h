// Shared helpers for the table-reproduction benchmarks.
//
// Every bench prints the corresponding paper table with cells of the form
// "paper / measured" so the shape comparison is immediate.  The simulated
// workload (150 transactions per cell, seed 7) runs in well under a second
// per cell.

#ifndef DBMR_BENCH_BENCH_UTIL_H_
#define DBMR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/arch_registry.h"
#include "core/experiment.h"
#include "core/grid.h"
#include "util/status.h"
#include "util/str.h"
#include "util/table.h"

namespace dbmr::bench {

/// Registry-backed cell factory: `name` is an ArchRegistry entry or
/// sim-variant name, `overrides` layer on top of the variant preset.  The
/// benches enumerate their contenders through this so their knob spellings
/// can never drift from the catalog.
inline core::ArchFactory RegistryArch(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& overrides = {}) {
  machine::EnsureSimArchsLinked();
  Result<core::ArchFactory> factory =
      core::MakeSimArchFactory(name, overrides);
  DBMR_CHECK(factory.ok());
  return std::move(*factory);
}

/// Transactions simulated per table cell.
inline constexpr int kBenchTxns = 150;

/// Runs `arch` on configuration `c` with the standard machine.
inline machine::MachineResult Run(
    core::Configuration c, std::unique_ptr<machine::RecoveryArch> arch) {
  return core::RunWith(core::StandardSetup(c, kBenchTxns), std::move(arch));
}

/// Runs `arch` on the Table 3 machine (75 QPs, 150 frames, parallel disks,
/// sequential transactions).
inline machine::MachineResult RunT3(
    std::unique_ptr<machine::RecoveryArch> arch) {
  return core::RunWith(core::Table3Setup(kBenchTxns), std::move(arch));
}

/// Runs several architecture variants across all four §4 configurations as
/// one parallel grid (one thread per core).  Cells keep the standard seed —
/// SeedPolicy::kFromSetup — so every cell is bit-identical to the serial
/// Run() it replaces and the printed tables still match the paper record.
/// Results are arch-major: results[a * 4 + c] is `arches[a]` on
/// `kAllConfigurations[c]`.
inline std::vector<machine::MachineResult> RunConfigGrid(
    std::vector<std::pair<std::string, core::ArchFactory>> arches) {
  core::GridSpec spec;
  spec.name = "bench";
  spec.seed_policy = core::SeedPolicy::kFromSetup;
  for (auto& [label, factory] : arches) {
    spec.AddConfigSweep(label, std::move(factory), kBenchTxns);
  }
  core::MetricsRegistry run =
      core::RunGrid(spec, core::GridRunOptions{/*jobs=*/0});
  std::vector<machine::MachineResult> results;
  results.reserve(run.size());
  for (const core::CellMetrics& cell : run.cells()) {
    results.push_back(cell.result);
  }
  return results;
}

/// "paper / measured" with one decimal.
inline std::string Cell(double paper, double measured) {
  return PaperVsMeasured(paper, measured, 1);
}

/// Two-decimal variant for utilizations.
inline std::string Cell2(double paper, double measured) {
  return PaperVsMeasured(paper, measured, 2);
}

inline void PrintHeaderNote() {
  std::printf(
      "cells are \"paper / measured\"; absolute values are calibrated to an "
      "IBM 3350 / VAX 11-750\nmodel, shapes are the reproduction target "
      "(see EXPERIMENTS.md)\n\n");
}

}  // namespace dbmr::bench

#endif  // DBMR_BENCH_BENCH_UTIL_H_
