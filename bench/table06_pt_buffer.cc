// Reproduces Table 6: Execution Time per Page vs page-table buffer size
// (random transactions, one page-table processor).

#include "bench/bench_util.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  const char* label;
  double bare;
  double buf10, buf25, buf50;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, "Conventional", 18.00, 20.51, 18.02,
     18.01},
    {core::Configuration::kParRandom, "Parallel-access", 16.62, 20.49,
     17.18, 16.70},
};

void RunTable() {
  TextTable t(
      "Table 6. Execution Time per Page vs Page-Table Buffer Size "
      "(1 PT processor, random transactions)");
  t.SetHeader({"Data Disk Type", "Bare", "buf=10", "buf=25", "buf=50"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    std::vector<std::string> cells = {
        row.label, Cell(row.bare, bare.exec_time_per_page_ms)};
    const double paper[3] = {row.buf10, row.buf25, row.buf50};
    const int sizes[3] = {10, 25, 50};
    for (int i = 0; i < 3; ++i) {
      machine::SimShadowOptions o;
      o.pt_buffer_pages = sizes[i];
      auto r = Run(row.config, std::make_unique<machine::SimShadow>(o));
      cells.push_back(Cell(paper[i], r.exec_time_per_page_ms));
    }
    t.AddRow(cells);
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
