// Extension ablation: Table 7 evaluates the shadow mechanism only at the
// extremes — perfectly clustered or fully scrambled.  In practice
// copy-on-write decays clustering gradually (the functional ShadowEngine's
// ClusteringFactor() shows the same drift); this sweep shows how quickly
// sequential performance collapses as the clustered fraction drops.

#include "bench/bench_util.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  TextTable t(
      "Extension: shadow clustering decay (sequential transactions) — "
      "Exec/page (ms, measured only)");
  t.SetHeader({"Configuration", "100% clustered", "90%", "75%", "50%",
               "25%", "0% (scrambled)"});
  for (core::Configuration c :
       {core::Configuration::kConvSeq, core::Configuration::kParSeq}) {
    std::vector<std::string> cells = {core::ConfigurationName(c)};
    for (double frac : {1.0, 0.9, 0.75, 0.5, 0.25, 0.0}) {
      machine::SimShadowOptions o;
      o.cluster_fraction = frac;
      if (frac == 0.0) o.clustered = false;
      auto r = Run(c, std::make_unique<machine::SimShadow>(o));
      cells.push_back(FormatFixed(r.exec_time_per_page_ms, 2));
    }
    t.AddRow(cells);
  }
  t.Print();
  std::printf(
      "\nExpected shape: on parallel-access disks even a modest loss of "
      "clustering breaks cylinder batching and performance collapses "
      "quickly toward the scrambled extreme — the paper's \"difficult to "
      "justify\" assumption has a steep cliff.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
