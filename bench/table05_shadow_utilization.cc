// Reproduces Table 5: Average Utilization of Data and Page-Table Disks.

#include "bench/bench_util.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double bare_data;
  double pt1_pt, pt1_data;
  double pt2_pt;  // paper's table truncates the 2-disk data column
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 0.99, 1.00, 0.86, 0.60},
    {core::Configuration::kParRandom, 1.00, 1.00, 0.85, 0.64},
    {core::Configuration::kConvSeq, 0.75, 0.06, 0.75, 0.03},
    {core::Configuration::kParSeq, 0.92, 0.34, 0.90, 0.16},
};

double AvgDataUtil(const machine::MachineResult& r) {
  double s = 0;
  for (double u : r.data_disk_util) s += u;
  return s / static_cast<double>(r.data_disk_util.size());
}

void RunTable() {
  TextTable t("Table 5. Average Utilization of Data and Page-Table Disks");
  t.SetHeader({"Configuration", "Bare: data", "1 PT: pt disk",
               "1 PT: data", "2 PT: pt disk"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    auto r1 = Run(row.config, std::make_unique<machine::SimShadow>());
    machine::SimShadowOptions two;
    two.num_pt_processors = 2;
    auto r2 = Run(row.config, std::make_unique<machine::SimShadow>(two));
    const double pt2_avg = (r2.extra.at("pt_disk_util_0") +
                            r2.extra.at("pt_disk_util_1")) /
                           2.0;
    t.AddRow({core::ConfigurationName(row.config),
              Cell2(row.bare_data, AvgDataUtil(bare)),
              Cell2(row.pt1_pt, r1.extra.at("pt_disk_util_0")),
              Cell2(row.pt1_data, AvgDataUtil(r1)),
              Cell2(row.pt2_pt, pt2_avg)});
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
