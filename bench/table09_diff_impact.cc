// Reproduces Table 9: Impact of the Differential File Mechanism (basic vs
// optimal query-processing strategy, A/D size 10% of B).

#include "bench/bench_util.h"
#include "machine/sim_differential.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double exec_bare, exec_basic, exec_opt;
  double compl_bare, compl_basic, compl_opt;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 37.8, 19.2, 7398.4, 11589.8,
     6634.3},
    {core::Configuration::kParRandom, 16.6, 37.7, 18.0, 6476.0, 11565.1,
     6207.6},
    {core::Configuration::kConvSeq, 11.0, 37.6, 17.8, 4016.5, 11443.7,
     5795.5},
    {core::Configuration::kParSeq, 1.9, 37.6, 13.9, 758.1, 11368.8,
     4573.5},
};

void RunTable() {
  TextTable te(
      "Table 9. Impact of the Differential File Mechanism — Exec/page (ms)");
  te.SetHeader({"Configuration", "Bare", "Basic", "Optimal"});
  TextTable tc("Table 9 (cont.) — Transaction Completion Time (ms)");
  tc.SetHeader({"Configuration", "Bare", "Basic", "Optimal"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    machine::SimDifferentialOptions basic;
    basic.optimal = false;
    auto rb =
        Run(row.config, std::make_unique<machine::SimDifferential>(basic));
    auto ro = Run(row.config, std::make_unique<machine::SimDifferential>());
    te.AddRow({core::ConfigurationName(row.config),
               Cell(row.exec_bare, bare.exec_time_per_page_ms),
               Cell(row.exec_basic, rb.exec_time_per_page_ms),
               Cell(row.exec_opt, ro.exec_time_per_page_ms)});
    tc.AddRow({core::ConfigurationName(row.config),
               Cell(row.compl_bare, bare.completion_ms.mean()),
               Cell(row.compl_basic, rb.completion_ms.mean()),
               Cell(row.compl_opt, ro.completion_ms.mean())});
  }
  te.Print();
  std::printf("\n");
  tc.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
