// Extension ablation: the paper's log processor assembles fragments into
// log pages and the back-end controller forces partial pages when blocked
// updated pages must leave the cache (§3.1/§4.1.2).  Two knobs fall out —
// how many fragments fill a log page, and how long a partial page may
// age before it is forced — trading log-disk traffic against cache frames
// pinned by the write-ahead rule and transaction completion time.

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  TextTable t(
      "Extension: log-page fill factor x force timeout "
      "(Conventional-Random, logical logging, 1 log disk; measured only)");
  t.SetHeader({"Frags/page", "Timeout (ms)", "Exec/page", "Completion",
               "Blocked pages", "Log pages"});
  for (int frags : {5, 20, 80}) {
    for (double timeout : {100.0, 500.0, 2000.0}) {
      machine::SimLoggingOptions o;
      o.fragments_per_log_page = frags;
      o.group_flush_timeout_ms = timeout;
      auto r = Run(core::Configuration::kConvRandom,
                   std::make_unique<machine::SimLogging>(o));
      t.AddRow({std::to_string(frags), FormatFixed(timeout, 0),
                FormatFixed(r.exec_time_per_page_ms, 2),
                FormatFixed(r.completion_ms.mean(), 0),
                FormatFixed(r.avg_blocked_pages, 1),
                FormatFixed(r.extra.at("log_pages_written_0"), 0)});
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape: smaller pages / shorter timeouts free blocked "
      "cache frames sooner (shorter completion) at the cost of more log "
      "writes; throughput barely moves because the log disk has slack "
      "either way — the robustness behind the paper's §5 conclusion.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
