// google-benchmark microbenchmarks of the crash-torture sweeper: legacy
// sequential full replay vs snapshot-forked trials at one and eight
// threads.  tools/bench_baseline --suite=torture runs the same
// configurations without the google-benchmark harness and exports
// BENCH_torture.json for the perf trajectory; keep the two in sync.

#include <benchmark/benchmark.h>

#include <string>

#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"
#include "core/thread_pool.h"

namespace dbmr::chaos {
namespace {

/// Exhaustive write-crash sweep at seed 1 with nested recovery sweeps on.
/// Transient faults and bit flips are off: both run full replays in every
/// mode and would only dilute the replay-cost comparison.
SweepOptions BenchOptions() {
  SweepOptions o;
  o.seed = 1;
  o.txns = 8;
  o.transient_faults = false;
  o.bit_flip_trials = 0;
  return o;
}

void RunSweep(benchmark::State& state, const std::string& engine,
              const SweepOptions& opts, core::ThreadPool* pool) {
  int64_t schedules = 0;
  for (auto _ : state) {
    CrashSweeper sweeper(engine, opts);
    SweepReport r = sweeper.Run(pool);
    if (!r.violations.empty()) {
      state.SkipWithError("oracle violation during bench");
      return;
    }
    schedules = r.schedules;
    benchmark::DoNotOptimize(r.schedules);
  }
  state.SetItemsProcessed(state.iterations() * schedules);
}

void BM_SweepSequential(benchmark::State& state) {
  const std::string engine = EngineNames()[state.range(0)];
  state.SetLabel(engine);
  SweepOptions o = BenchOptions();
  o.sequential_replay = true;
  RunSweep(state, engine, o, nullptr);
}
BENCHMARK(BM_SweepSequential)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_SweepForkedJobs1(benchmark::State& state) {
  const std::string engine = EngineNames()[state.range(0)];
  state.SetLabel(engine);
  RunSweep(state, engine, BenchOptions(), nullptr);  // jobs defaults to 1
}
BENCHMARK(BM_SweepForkedJobs1)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_SweepForkedJobs8(benchmark::State& state) {
  const std::string engine = EngineNames()[state.range(0)];
  state.SetLabel(engine);
  core::ThreadPool pool(8);
  RunSweep(state, engine, BenchOptions(), &pool);
}
BENCHMARK(BM_SweepForkedJobs8)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbmr::chaos

BENCHMARK_MAIN();
