// google-benchmark microbenchmarks of the functional recovery engines:
// transaction commit cost and crash-recovery replay cost per mechanism.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "store/recovery/differential_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 4096;
constexpr uint64_t kPages = 256;

struct Fixture {
  std::vector<std::unique_ptr<VirtualDisk>> disks;
  std::unique_ptr<PageEngine> engine;
};

Fixture MakeEngine(const std::string& kind, int recovery_jobs = 1) {
  Fixture f;
  if (kind == "wal" || kind == "wal4") {
    f.disks.push_back(std::make_unique<VirtualDisk>("data", kPages, kBlock));
    const size_t n_logs = kind == "wal4" ? 4 : 1;
    std::vector<VirtualDisk*> logs;
    for (size_t i = 0; i < n_logs; ++i) {
      f.disks.push_back(std::make_unique<VirtualDisk>("log", 4096, kBlock));
      logs.push_back(f.disks.back().get());
    }
    WalEngineOptions o;
    o.recovery_jobs = recovery_jobs;
    f.engine = std::make_unique<WalEngine>(f.disks[0].get(), logs, o);
  } else if (kind == "shadow") {
    f.disks.push_back(
        std::make_unique<VirtualDisk>("d", kPages * 2 + 16, kBlock));
    f.engine = std::make_unique<ShadowEngine>(f.disks[0].get(), kPages);
  } else if (kind == "overwrite") {
    f.disks.push_back(
        std::make_unique<VirtualDisk>("d", kPages + 256, kBlock));
    OverwriteEngineOptions o;
    o.list_blocks = 64;
    o.scratch_blocks = 128;
    o.recovery_jobs = recovery_jobs;
    f.engine = std::make_unique<OverwriteEngine>(f.disks[0].get(), kPages, o);
  } else {
    f.disks.push_back(
        std::make_unique<VirtualDisk>("d", 2 * kPages + 128, kBlock));
    VersionSelectEngineOptions o;
    o.recovery_jobs = recovery_jobs;
    f.engine = std::make_unique<VersionSelectEngine>(f.disks[0].get(), kPages,
                                                     o);
  }
  DBMR_CHECK(f.engine->Format().ok());
  return f;
}

void RunCommitBench(benchmark::State& state, const std::string& kind) {
  Fixture f = MakeEngine(kind);
  Rng rng(7);
  PageData payload(f.engine->payload_size(), 1);
  uint64_t i = 0;
  for (auto _ : state) {
    auto t = f.engine->Begin();
    for (int w = 0; w < 4; ++w) {
      payload[0] = static_cast<uint8_t>(i + static_cast<uint64_t>(w));
      DBMR_CHECK(
          f.engine
              ->Write(*t, (i * 4 + static_cast<uint64_t>(w)) % kPages,
                      payload)
              .ok());
    }
    DBMR_CHECK(f.engine->Commit(*t).ok());
    ++i;
    if (i % 256 == 0) {
      // Keep append-only structures bounded.
      state.PauseTiming();
      f.engine->Crash();
      DBMR_CHECK(f.engine->Recover().ok());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}

void RunRecoveryBench(benchmark::State& state, const std::string& kind) {
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f = MakeEngine(kind);
    PageData payload(f.engine->payload_size(), 1);
    for (uint64_t i = 0; i < 64; ++i) {
      auto t = f.engine->Begin();
      payload[0] = static_cast<uint8_t>(i);
      DBMR_CHECK(f.engine->Write(*t, i % kPages, payload).ok());
      DBMR_CHECK(f.engine->Commit(*t).ok());
    }
    f.engine->Crash();
    state.ResumeTiming();
    DBMR_CHECK(f.engine->Recover().ok());
  }
}

// Recovery cost vs replay job count.  state.range(0) is the engine's
// recovery_jobs knob: 0 = sequential reference path, 1 = partitioned
// pipeline on the caller thread, >= 2 = thread-pool replay.  Items
// processed = replay records examined, so the report reads as ns/record.
void RunRecoveryJobsBench(benchmark::State& state, const std::string& kind) {
  const int jobs = static_cast<int>(state.range(0));
  int64_t records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Fixture f = MakeEngine(kind, jobs);
    PageData payload(f.engine->payload_size(), 1);
    for (uint64_t i = 0; i < 64; ++i) {
      auto t = f.engine->Begin();
      for (int w = 0; w < 4; ++w) {
        payload[0] = static_cast<uint8_t>(i + static_cast<uint64_t>(w));
        DBMR_CHECK(f.engine
                       ->Write(*t, (i * 4 + static_cast<uint64_t>(w)) % kPages,
                               payload)
                       .ok());
      }
      DBMR_CHECK(f.engine->Commit(*t).ok());
    }
    f.engine->Crash();
    state.ResumeTiming();
    DBMR_CHECK(f.engine->Recover().ok());
    records +=
        static_cast<int64_t>(f.engine->last_recovery_stats().replay_records);
  }
  state.SetItemsProcessed(records);
}

void BM_CommitWal(benchmark::State& s) { RunCommitBench(s, "wal"); }
void BM_CommitWal4(benchmark::State& s) { RunCommitBench(s, "wal4"); }
void BM_CommitShadow(benchmark::State& s) { RunCommitBench(s, "shadow"); }
void BM_CommitOverwrite(benchmark::State& s) {
  RunCommitBench(s, "overwrite");
}
void BM_CommitVersionSelect(benchmark::State& s) {
  RunCommitBench(s, "vs");
}
void BM_RecoverWal(benchmark::State& s) { RunRecoveryBench(s, "wal"); }
void BM_RecoverWal4(benchmark::State& s) { RunRecoveryBench(s, "wal4"); }
void BM_RecoverShadow(benchmark::State& s) { RunRecoveryBench(s, "shadow"); }
void BM_RecoverOverwrite(benchmark::State& s) {
  RunRecoveryBench(s, "overwrite");
}
void BM_RecoverVersionSelect(benchmark::State& s) {
  RunRecoveryBench(s, "vs");
}

BENCHMARK(BM_CommitWal);
BENCHMARK(BM_CommitWal4);
BENCHMARK(BM_CommitShadow);
BENCHMARK(BM_CommitOverwrite);
BENCHMARK(BM_CommitVersionSelect);
BENCHMARK(BM_RecoverWal);
BENCHMARK(BM_RecoverWal4);
BENCHMARK(BM_RecoverShadow);
BENCHMARK(BM_RecoverOverwrite);
BENCHMARK(BM_RecoverVersionSelect);

void BM_RecoverJobsWal(benchmark::State& s) {
  RunRecoveryJobsBench(s, "wal");
}
void BM_RecoverJobsWal4(benchmark::State& s) {
  RunRecoveryJobsBench(s, "wal4");
}
void BM_RecoverJobsOverwrite(benchmark::State& s) {
  RunRecoveryJobsBench(s, "overwrite");
}
void BM_RecoverJobsVersionSelect(benchmark::State& s) {
  RunRecoveryJobsBench(s, "vs");
}
BENCHMARK(BM_RecoverJobsWal)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_RecoverJobsWal4)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_RecoverJobsOverwrite)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_RecoverJobsVersionSelect)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CommitDifferential(benchmark::State& state) {
  VirtualDisk disk("d", 1024, kBlock);
  DifferentialEngineOptions o;
  o.a_blocks = 384;
  o.d_blocks = 384;
  DifferentialEngine e(&disk, o);
  DBMR_CHECK(e.Format().ok());
  uint64_t i = 0;
  for (auto _ : state) {
    auto t = e.Begin();
    for (int w = 0; w < 4; ++w) {
      DBMR_CHECK(e.Insert(*t, (i * 4 + static_cast<uint64_t>(w)) % 512,
                          i)
                     .ok());
    }
    DBMR_CHECK(e.Commit(*t).ok());
    if (++i % 512 == 0) {
      state.PauseTiming();
      DBMR_CHECK(e.Merge().ok());
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_CommitDifferential);

void BM_MergeDifferential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VirtualDisk disk("d", 1024, kBlock);
    DifferentialEngine e(&disk);
    DBMR_CHECK(e.Format().ok());
    for (uint64_t i = 0; i < 128; ++i) {
      auto t = e.Begin();
      DBMR_CHECK(e.Insert(*t, i, i).ok());
      DBMR_CHECK(e.Commit(*t).ok());
    }
    state.ResumeTiming();
    DBMR_CHECK(e.Merge().ok());
  }
}
BENCHMARK(BM_MergeDifferential);

}  // namespace
}  // namespace dbmr::store

BENCHMARK_MAIN();
