// Reproduces Table 10: Effect of the Output Fraction on Execution Time per
// Page (optimal query-processing strategy).

#include "bench/bench_util.h"
#include "machine/sim_differential.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double bare;
  double f10, f20, f50;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 19.2, 19.2, 20.3},
    {core::Configuration::kParRandom, 16.6, 18.0, 18.0, 18.9},
    {core::Configuration::kConvSeq, 11.0, 17.8, 17.9, 17.8},
    {core::Configuration::kParSeq, 1.9, 13.9, 13.9, 13.6},
};

void RunTable() {
  TextTable t("Table 10. Effect of Output Fraction on Exec/page (ms)");
  t.SetHeader({"Configuration", "Bare", "10%", "20%", "50%"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    std::vector<std::string> cells = {
        core::ConfigurationName(row.config),
        Cell(row.bare, bare.exec_time_per_page_ms)};
    const double paper[3] = {row.f10, row.f20, row.f50};
    const double fracs[3] = {0.10, 0.20, 0.50};
    for (int i = 0; i < 3; ++i) {
      machine::SimDifferentialOptions o;
      o.output_fraction = fracs[i];
      auto r =
          Run(row.config, std::make_unique<machine::SimDifferential>(o));
      cells.push_back(Cell(paper[i], r.exec_time_per_page_ms));
    }
    t.AddRow(cells);
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
