// Ablation (paper §4.1.3): effect of the medium connecting the query
// processors to the log processors — dedicated channel at 1.0 / 0.1 /
// 0.01 MB/s, and routing the fragments through the disk cache.  The paper
// found the machine insensitive to all of these.

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  TextTable t(
      "Ablation §4.1.3: query-processor/log-processor interconnect "
      "(logical logging, 1 log disk) — Exec/page (ms, measured only)");
  t.SetHeader({"Configuration", "1.0 MB/s", "0.1 MB/s", "0.01 MB/s",
               "via disk cache"});
  for (core::Configuration c : core::kAllConfigurations) {
    std::vector<std::string> cells = {core::ConfigurationName(c)};
    for (double bw : {1.0, 0.1, 0.01}) {
      machine::SimLoggingOptions o;
      o.channel_mb_per_sec = bw;
      auto r = Run(c, std::make_unique<machine::SimLogging>(o));
      cells.push_back(FormatFixed(r.exec_time_per_page_ms, 2));
    }
    machine::SimLoggingOptions via;
    via.route_via_cache = true;
    auto r = Run(c, std::make_unique<machine::SimLogging>(via));
    cells.push_back(FormatFixed(r.exec_time_per_page_ms, 2));
    t.AddRow(cells);
  }
  t.Print();
  std::printf(
      "\nExpected shape: columns nearly identical (the interarrival gap "
      "absorbs the transmission delay), so no dedicated interconnect is "
      "needed.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
