// Reproduces Table 1: Impact of Logging (logical logging, one log disk).

#include <iterator>

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double exec_bare, exec_log, compl_bare, compl_log;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 17.9, 7398.4, 7543.2},
    {core::Configuration::kParRandom, 16.6, 16.5, 6476.0, 6649.9},
    {core::Configuration::kConvSeq, 11.0, 11.4, 4016.5, 4333.5},
    {core::Configuration::kParSeq, 1.9, 2.0, 758.1, 862.2},
};

void RunTable() {
  // All eight cells (bare and logging on each configuration) run as one
  // parallel grid; results are arch-major in configuration order.
  auto results = RunConfigGrid(
      {{"bare", [] { return std::make_unique<machine::BareArch>(); }},
       {"logging", [] { return std::make_unique<machine::SimLogging>(); }}});

  TextTable t("Table 1. Impact of Logging");
  t.SetHeader({"Configuration", "Exec/page w/o log", "Exec/page with log",
               "Completion w/o log", "Completion with log"});
  for (size_t i = 0; i < std::size(kPaper); ++i) {
    const PaperRow& row = kPaper[i];
    const auto& bare = results[i];
    const auto& logged = results[std::size(kPaper) + i];
    t.AddRow({core::ConfigurationName(row.config),
              Cell(row.exec_bare, bare.exec_time_per_page_ms),
              Cell(row.exec_log, logged.exec_time_per_page_ms),
              Cell(row.compl_bare, bare.completion_ms.mean()),
              Cell(row.compl_log, logged.completion_ms.mean())});
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
