// Extension ablation: the paper evaluates a closed transaction batch; this
// sweep opens the system (Poisson arrivals) and traces response time vs
// offered load for the bare machine and the logging architecture, showing
// where the recovery overhead starts to matter: near saturation.

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  // The conv-random machine processes ~150 pages per transaction at
  // ~18 ms/page => one transaction every ~2.8 s at saturation.
  TextTable t(
      "Extension: open system (Poisson arrivals), Conventional-Random — "
      "mean response time (ms, measured only)");
  t.SetHeader({"Mean interarrival (ms)", "Bare", "With logging",
               "Logging overhead"});
  for (double ia : {20000.0, 10000.0, 5000.0, 3500.0, 3000.0}) {
    auto setup = core::StandardSetup(core::Configuration::kConvRandom,
                                     kBenchTxns / 2);
    setup.machine.mean_interarrival_ms = ia;
    auto bare =
        core::RunWith(setup, std::make_unique<machine::BareArch>());
    auto logged =
        core::RunWith(setup, std::make_unique<machine::SimLogging>());
    t.AddRow({FormatFixed(ia, 0),
              FormatFixed(bare.completion_ms.mean(), 0),
              FormatFixed(logged.completion_ms.mean(), 0),
              StrFormat("%+.1f%%", (logged.completion_ms.mean() /
                                        bare.completion_ms.mean() -
                                    1.0) *
                                       100.0)});
  }
  t.Print();
  std::printf(
      "\nExpected shape: response time explodes as the interarrival time "
      "approaches the per-transaction service time; logging's overhead "
      "stays small at every load level (the paper's conclusion, extended "
      "to an open system).\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
