// Extension ablation: the paper's random reference strings are uniform
// over the database, making page-lock conflicts negligible.  Real
// workloads are skewed; this sweep applies an 80/20-style hot spot of
// shrinking size and shows how lock waits and deadlock restarts start to
// separate the recovery architectures (longer lock hold times hurt more
// when conflicts are common).

#include "bench/bench_util.h"
#include "machine/sim_logging.h"
#include "machine/sim_overwrite.h"

namespace dbmr::bench {
namespace {

machine::MachineResult RunSkewed(
    double hot_fraction, std::unique_ptr<machine::RecoveryArch> arch) {
  auto setup = core::StandardSetup(core::Configuration::kConvRandom,
                                   kBenchTxns);
  setup.workload.hot_fraction = hot_fraction;
  setup.workload.hot_access_prob = hot_fraction > 0 ? 0.8 : 0.0;
  setup.machine.mpl = 6;  // more concurrency -> more conflicts
  return core::RunWith(setup, std::move(arch));
}

void RunTable() {
  TextTable t(
      "Extension: access skew (80% of references into a hot set), "
      "Conventional-Random, MPL 6 — exec/page (ms) and deadlock restarts");
  t.SetHeader({"Hot set", "Bare", "Logging", "Overwriting (no-undo)",
               "Restarts (overwrite)"});
  for (double hot : {0.0, 0.02, 0.01}) {
    auto bare = RunSkewed(hot, std::make_unique<machine::BareArch>());
    auto log = RunSkewed(hot, std::make_unique<machine::SimLogging>());
    auto over = RunSkewed(hot, std::make_unique<machine::SimOverwrite>());
    t.AddRow({hot == 0.0 ? std::string("uniform")
                         : StrFormat("%.2f%% of DB", hot * 100),
              FormatFixed(bare.exec_time_per_page_ms, 2),
              FormatFixed(log.exec_time_per_page_ms, 2),
              FormatFixed(over.exec_time_per_page_ms, 2),
              StrFormat("%llu", static_cast<unsigned long long>(
                                    over.deadlock_restarts))});
  }
  t.Print();
  std::printf(
      "\nExpected shape: skew raises lock waits for everyone, but the "
      "overwriting architecture (locks held through the commit-time "
      "scratch reads and home overwrites) degrades fastest — a cost "
      "invisible in the paper's uniform workload.  (Below ~1%% hot sets "
      "the write-set overlap saturates and deadlock-restart thrash "
      "dominates every architecture; the no-wait 2PL scheduler the paper "
      "assumes was never meant for that regime.)\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
