// Extension ablation: 100x-scale saturation curves.  The paper stops at a
// 25-processor machine; this sweep grows the machine from 10 to 4000 query
// processors (disks, cache, and multiprogramming level scaled in
// proportion, transactions kept small and write-heavy like an OLTP
// stream) and traces which resource saturates at each size.
//
// The interesting curves are the recovery resources that do NOT scale
// with the machine: a single log processor's disk fills up mid-sweep and
// caps logged throughput, while giving the architecture one log processor
// per 250 query processors (the paper's parallel logging, §4.1.3) tracks
// the bare machine to the top of the range.  The 1 MB/s interconnect is
// reported too: fragment traffic grows linearly but stays channel-light,
// so the disks — not the link — are what parallel logging must fix.

#include <algorithm>

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

core::ExperimentSetup ScaledSetup(int qps) {
  auto setup = core::StandardSetup(core::Configuration::kConvRandom,
                                   /*num_txns=*/0);
  setup.machine.num_query_processors = qps;
  setup.machine.cache_frames = 4 * qps;
  // One disk per 16 processors, rounded up so the database (4000 pages
  // per processor) always fits the unreserved data area (64200 per drive).
  setup.machine.num_data_disks = std::max(2, (qps + 15) / 16);
  setup.machine.mpl = std::max(3, (2 * qps) / 5);
  setup.machine.db_pages =
      std::max<uint64_t>(120000, 4000ull * static_cast<uint64_t>(qps));
  setup.workload.db_pages = setup.machine.db_pages;
  // An OLTP-style stream: many short, write-heavy transactions rather
  // than the paper's 150-page batch jobs, enough of them to hold the
  // machine at its multiprogramming level long past warm-up.
  setup.workload.min_pages = 1;
  setup.workload.max_pages = 4;
  setup.workload.write_fraction = 0.5;
  setup.workload.num_transactions = 25 * setup.machine.mpl;
  return setup;
}

double MaxOf(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double MaxExtra(const machine::MachineResult& r, const std::string& prefix) {
  double m = 0.0;
  for (const auto& [key, value] : r.extra) {
    if (key.compare(0, prefix.size(), prefix) == 0) m = std::max(m, value);
  }
  return m;
}

double PagesPerSecond(const machine::MachineResult& r) {
  return static_cast<double>(r.total_pages) / r.total_time_ms * 1000.0;
}

void RunTable() {
  TextTable t(
      "Extension: saturation sweep, 10 -> 4000 query processors "
      "(Conventional-Random, short write-heavy transactions, machine "
      "resources scaled; logging once with 1 log processor, once with "
      "1 per 250 QPs)");
  t.SetHeader({"QPs", "MPL", "Disks", "Bare pages/s", "1-LP pages/s",
               "Scaled-LP pages/s", "Data-disk util", "1-LP log-disk util",
               "Channel util"});
  for (int qps : {10, 25, 100, 250, 500, 1000, 2000, 4000}) {
    auto setup = ScaledSetup(qps);
    auto bare = core::RunWith(setup, std::make_unique<machine::BareArch>());
    auto one_lp =
        core::RunWith(setup, std::make_unique<machine::SimLogging>());
    machine::SimLoggingOptions scaled;
    scaled.num_log_processors = std::max(1, qps / 250);
    auto many_lp = core::RunWith(
        setup, std::make_unique<machine::SimLogging>(scaled));
    t.AddRow({StrFormat("%d", qps),
              StrFormat("%d", setup.machine.mpl),
              StrFormat("%d", setup.machine.num_data_disks),
              FormatFixed(PagesPerSecond(bare), 0),
              FormatFixed(PagesPerSecond(one_lp), 0),
              FormatFixed(PagesPerSecond(many_lp), 0),
              FormatFixed(MaxOf(bare.data_disk_util), 2),
              FormatFixed(MaxExtra(one_lp, "log_disk_util_"), 2),
              FormatFixed(one_lp.extra.count("log_channel_util")
                              ? one_lp.extra.at("log_channel_util")
                              : 0.0,
                          2)});
  }
  t.Print();
  std::printf(
      "\nExpected shape: bare throughput scales near-linearly (the data "
      "disks stay the binding resource at constant utilization).  With one "
      "log processor its disk fills mid-sweep and logged throughput falls "
      "away from bare; scaling log processors with the machine restores "
      "the bare curve.  Channel utilization grows linearly but stays far "
      "from binding — the log disks, not the interconnect, are the "
      "resource parallel logging must fix.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
