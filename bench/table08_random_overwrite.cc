// Reproduces Table 8: Execution Time per Page for random transactions:
// bare machine, "thru page-table" shadow, and the overwriting architecture.

#include "bench/bench_util.h"
#include "machine/sim_overwrite.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  const char* label;
  double bare, thru_pt, overwrite;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, "Conventional", 18.00, 20.51, 26.94},
    {core::Configuration::kParRandom, "Parallel-access", 16.62, 20.49,
     21.65},
};

void RunTable() {
  TextTable t("Table 8. Execution Time per Page (Random Transactions)");
  t.SetHeader({"Data Disk Type", "Bare", "thru PageTable", "Overwriting"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    auto pt = Run(row.config, std::make_unique<machine::SimShadow>());
    auto over = Run(row.config, std::make_unique<machine::SimOverwrite>());
    t.AddRow({row.label, Cell(row.bare, bare.exec_time_per_page_ms),
              Cell(row.thru_pt, pt.exec_time_per_page_ms),
              Cell(row.overwrite, over.exec_time_per_page_ms)});
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
