// google-benchmark microbenchmarks of the discrete-event simulation
// kernel: raw event throughput, cancellation, slot-pool churn, and server
// queueing.  tools/bench_baseline runs the same workloads without the
// google-benchmark harness and exports BENCH_kernel.json for the perf
// trajectory; keep the two in sync.

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dbmr::sim {
namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      s.Schedule(rng.UniformDouble(0, 1000.0), [] {});
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

/// Self-rescheduling functor: 16 bytes, always stored inline.
struct Chain {
  Simulator* s;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) s->Schedule(1.0, Chain{s, remaining});
  }
};

void BM_NestedScheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    int remaining = n;
    s.Schedule(1.0, Chain{&s, &remaining});
    s.Run();
    benchmark::DoNotOptimize(s.Now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NestedScheduling)->Arg(10000)->Arg(100000);

void BM_CancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    std::vector<EventId> ids;
    ids.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(s.Schedule(static_cast<TimeMs>(i), [] {}));
    }
    for (int i = 0; i < n; i += 2) {
      s.Cancel(ids[static_cast<size_t>(i)]);
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CancelHalf)->Arg(10000);

/// Schedule/cancel/fire interleaved: every live event is shadowed by a
/// timeout that is cancelled before it fires — the disk/log-flush pattern.
/// Exercises O(1) cancellation plus immediate slot reuse.
void BM_ScheduleCancelFire(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      const EventId timeout = s.Schedule(1e9, [] {});
      s.Schedule(rng.UniformDouble(0, 1000.0),
                 [&s, timeout] { s.Cancel(timeout); });
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_ScheduleCancelFire)->Arg(10000)->Arg(100000);

/// Steady-state churn: K events outstanding, each firing schedules its
/// replacement until N total have run.  The pool and heap stay at constant
/// depth, so this isolates per-event cost from container growth.
void BM_Churn(benchmark::State& state) {
  const int outstanding = 256;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    s.Reserve(outstanding);
    Rng rng(1);
    int remaining = n;
    struct Replace {
      Simulator* s;
      Rng* rng;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) {
          s->Schedule(rng->UniformDouble(0.0, 100.0),
                      Replace{s, rng, remaining});
        }
      }
    };
    for (int i = 0; i < outstanding; ++i) {
      s.Schedule(rng.UniformDouble(0.0, 100.0), Replace{&s, &rng, &remaining});
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Churn)->Arg(100000);

/// Deep churn: `range(0)` events outstanding (past the ladder spill
/// threshold when large), cycled once each.  Arg(1) forces heap mode for
/// an in-binary O(log n)-vs-O(1) comparison at the same depth.
void BM_DeepChurn(benchmark::State& state) {
  const int outstanding = static_cast<int>(state.range(0));
  const bool force_heap = state.range(1) != 0;
  for (auto _ : state) {
    Simulator s;
    if (force_heap) s.set_spill_threshold(static_cast<size_t>(-1));
    s.Reserve(static_cast<size_t>(outstanding));
    Rng rng(1);
    int remaining = outstanding;
    struct Replace {
      Simulator* s;
      Rng* rng;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) {
          s->Schedule(rng->UniformDouble(0.0, 1000.0),
                      Replace{s, rng, remaining});
        }
      }
    };
    for (int i = 0; i < outstanding; ++i) {
      s.Schedule(rng.UniformDouble(0.0, 1000.0),
                 Replace{&s, &rng, &remaining});
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * outstanding * 2);
}
BENCHMARK(BM_DeepChurn)
    ->Args({1000000, 0})
    ->Args({1000000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ServerPipeline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    Server srv(&s, "srv");
    for (int i = 0; i < n; ++i) {
      srv.Submit(1.0, nullptr);
    }
    s.Run();
    benchmark::DoNotOptimize(srv.jobs_completed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ServerPipeline)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace dbmr::sim

BENCHMARK_MAIN();
