// google-benchmark microbenchmarks of the discrete-event simulation
// kernel: raw event throughput, cancellation, and server queueing.

#include <benchmark/benchmark.h>

#include "sim/server.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dbmr::sim {
namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < n; ++i) {
      s.Schedule(rng.UniformDouble(0, 1000.0), [] {});
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NestedScheduling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    int remaining = n;
    std::function<void()> chain = [&] {
      if (--remaining > 0) s.Schedule(1.0, chain);
    };
    s.Schedule(1.0, chain);
    s.Run();
    benchmark::DoNotOptimize(s.Now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NestedScheduling)->Arg(10000)->Arg(100000);

void BM_CancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    std::vector<EventId> ids;
    ids.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(s.Schedule(static_cast<TimeMs>(i), [] {}));
    }
    for (int i = 0; i < n; i += 2) {
      s.Cancel(ids[static_cast<size_t>(i)]);
    }
    s.Run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CancelHalf)->Arg(10000);

void BM_ServerPipeline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator s;
    Server srv(&s, "srv");
    for (int i = 0; i < n; ++i) {
      srv.Submit(1.0, nullptr);
    }
    s.Run();
    benchmark::DoNotOptimize(srv.jobs_completed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ServerPipeline)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace dbmr::sim

BENCHMARK_MAIN();
