// Reproduces Table 7: Execution Time per Page for sequential transactions:
// bare machine, clustered and scrambled "thru page-table" shadow, and the
// overwriting architecture.

#include "bench/bench_util.h"
#include "machine/sim_overwrite.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  const char* label;
  double bare, clustered, scrambled, overwrite;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvSeq, "Conventional", 11.01, 10.98, 20.74,
     24.08},
    {core::Configuration::kParSeq, "Parallel-access", 1.92, 1.94, 18.54,
     2.31},
};

void RunTable() {
  TextTable t(
      "Table 7. Execution Time per Page (Sequential Transactions)");
  t.SetHeader({"Data Disk Type", "Bare", "Clustered (thru PT)",
               "Scrambled (thru PT)", "Overwriting"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    auto clustered =
        Run(row.config, std::make_unique<machine::SimShadow>());
    machine::SimShadowOptions so;
    so.clustered = false;
    auto scrambled =
        Run(row.config, std::make_unique<machine::SimShadow>(so));
    auto over = Run(row.config, std::make_unique<machine::SimOverwrite>());
    t.AddRow({row.label, Cell(row.bare, bare.exec_time_per_page_ms),
              Cell(row.clustered, clustered.exec_time_per_page_ms),
              Cell(row.scrambled, scrambled.exec_time_per_page_ms),
              Cell(row.overwrite, over.exec_time_per_page_ms)});
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
