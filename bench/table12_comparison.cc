// Reproduces Table 12: Average Execution Time per Page — the grand
// comparison of all recovery architectures, the paper's headline result:
// parallel logging has the best overall performance.

#include "bench/bench_util.h"
#include "machine/sim_differential.h"
#include "machine/sim_logging.h"
#include "machine/sim_overwrite.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double bare, logging, pt_buf10, pt_buf50, pt2, scrambled, overwrite, diff;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 17.9, 20.5, 18.0, 18.0, 20.5,
     26.9, 19.2},
    {core::Configuration::kParRandom, 16.6, 16.5, 20.5, 16.7, 16.7, 20.5,
     21.6, 18.0},
    {core::Configuration::kConvSeq, 11.0, 11.4, 11.0, 11.0, 11.0, 20.7,
     24.1, 17.8},
    {core::Configuration::kParSeq, 1.9, 2.0, 1.9, 1.9, 1.9, 18.5, 2.3,
     13.9},
};

void RunTable() {
  TextTable t(
      "Table 12. Average Execution Time per Page (ms) — all architectures");
  t.SetHeader({"Configuration", "Bare", "Logging (1 disk)",
               "Shadow 1PT buf=10", "Shadow 1PT buf=50", "Shadow 2PT",
               "Scrambled", "Overwriting", "Differential"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    auto log = Run(row.config, std::make_unique<machine::SimLogging>());
    auto pt10 = Run(row.config, std::make_unique<machine::SimShadow>());
    machine::SimShadowOptions buf50;
    buf50.pt_buffer_pages = 50;
    auto pt50 =
        Run(row.config, std::make_unique<machine::SimShadow>(buf50));
    machine::SimShadowOptions two;
    two.num_pt_processors = 2;
    auto pt2 = Run(row.config, std::make_unique<machine::SimShadow>(two));
    machine::SimShadowOptions scram;
    scram.clustered = false;
    auto sc = Run(row.config, std::make_unique<machine::SimShadow>(scram));
    auto over = Run(row.config, std::make_unique<machine::SimOverwrite>());
    auto diff =
        Run(row.config, std::make_unique<machine::SimDifferential>());
    t.AddRow({core::ConfigurationName(row.config),
              Cell(row.bare, bare.exec_time_per_page_ms),
              Cell(row.logging, log.exec_time_per_page_ms),
              Cell(row.pt_buf10, pt10.exec_time_per_page_ms),
              Cell(row.pt_buf50, pt50.exec_time_per_page_ms),
              Cell(row.pt2, pt2.exec_time_per_page_ms),
              Cell(row.scrambled, sc.exec_time_per_page_ms),
              Cell(row.overwrite, over.exec_time_per_page_ms),
              Cell(row.diff, diff.exec_time_per_page_ms)});
  }
  t.Print();
  std::printf(
      "\nPaper conclusion check: parallel logging should track the bare "
      "machine most closely across all four configurations.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
