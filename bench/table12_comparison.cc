// Reproduces Table 12: Average Execution Time per Page — the grand
// comparison of all recovery architectures, the paper's headline result:
// parallel logging has the best overall performance.

#include <iterator>

#include "bench/bench_util.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double bare, logging, pt_buf10, pt_buf50, pt2, scrambled, overwrite, diff;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 17.9, 20.5, 18.0, 18.0, 20.5,
     26.9, 19.2},
    {core::Configuration::kParRandom, 16.6, 16.5, 20.5, 16.7, 16.7, 20.5,
     21.6, 18.0},
    {core::Configuration::kConvSeq, 11.0, 11.4, 11.0, 11.0, 11.0, 20.7,
     24.1, 17.8},
    {core::Configuration::kParSeq, 1.9, 2.0, 1.9, 1.9, 1.9, 18.5, 2.3,
     13.9},
};

void RunTable() {
  // The grand comparison is a 8-architecture × 4-configuration grid (32
  // independent simulations); run it as one parallel grid, arch-major.
  // Contenders come from the architecture registry; the labels are the
  // table's column spellings, not registry names.
  auto results = RunConfigGrid(
      {{"bare", RegistryArch("bare")},
       {"logging", RegistryArch("logging")},
       {"shadow-buf10", RegistryArch("shadow")},
       {"shadow-buf50", RegistryArch("shadow", {{"pt-buffer", "50"}})},
       {"shadow-2pt", RegistryArch("shadow", {{"pt-processors", "2"}})},
       {"scrambled", RegistryArch("shadow", {{"scrambled", "1"}})},
       {"overwrite", RegistryArch("overwrite")},
       {"differential", RegistryArch("differential")}});
  auto exec = [&results](size_t arch, size_t config) {
    return results[arch * 4 + config].exec_time_per_page_ms;
  };

  TextTable t(
      "Table 12. Average Execution Time per Page (ms) — all architectures");
  t.SetHeader({"Configuration", "Bare", "Logging (1 disk)",
               "Shadow 1PT buf=10", "Shadow 1PT buf=50", "Shadow 2PT",
               "Scrambled", "Overwriting", "Differential"});
  for (size_t i = 0; i < std::size(kPaper); ++i) {
    const PaperRow& row = kPaper[i];
    t.AddRow({core::ConfigurationName(row.config),
              Cell(row.bare, exec(0, i)),
              Cell(row.logging, exec(1, i)),
              Cell(row.pt_buf10, exec(2, i)),
              Cell(row.pt_buf50, exec(3, i)),
              Cell(row.pt2, exec(4, i)),
              Cell(row.scrambled, exec(5, i)),
              Cell(row.overwrite, exec(6, i)),
              Cell(row.diff, exec(7, i))});
  }
  t.Print();
  std::printf(
      "\nPaper conclusion check: parallel logging should track the bare "
      "machine most closely across all four configurations.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
