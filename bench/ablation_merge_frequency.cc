// Extension ablation (paper §4.3.3 explicitly declined to model this):
// the cost of periodically merging the differential files back into the
// base file.  The paper kept A/D at a fixed 10% of B and noted that
// holding that ratio requires frequent merges; here the merge I/O competes
// with transaction processing and its frequency becomes a knob.

#include "bench/bench_util.h"
#include "machine/sim_differential.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  TextTable t(
      "Extension: differential-file merge frequency (optimal strategy, "
      "10% size) — Exec/page (ms, measured only)");
  t.SetHeader({"Configuration", "never", "every 200 outputs",
               "every 50 outputs", "every 20 outputs", "merge I/Os (20)"});
  for (core::Configuration c : core::kAllConfigurations) {
    std::vector<std::string> cells = {core::ConfigurationName(c)};
    double merge_ios = 0;
    for (int every : {0, 200, 50, 20}) {
      machine::SimDifferentialOptions o;
      o.merge_every_output_pages = every;
      auto r = Run(c, std::make_unique<machine::SimDifferential>(o));
      cells.push_back(FormatFixed(r.exec_time_per_page_ms, 2));
      if (every == 20) merge_ios = r.extra.at("diff_merge_ios");
    }
    cells.push_back(FormatFixed(merge_ios, 0));
    t.AddRow(cells);
  }
  t.Print();
  std::printf(
      "\nExpected shape: merging adds disk traffic in proportion to its "
      "frequency; keeping the differential files at 10%% is not free, "
      "strengthening the paper's case against this architecture.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
