// Reproduces Table 4: Impact of the Shadow Mechanism (1 and 2 page-table
// processors, page-table buffer of 10 pages).

#include "bench/bench_util.h"
#include "machine/sim_shadow.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double exec_bare, exec_1pt, exec_2pt;
  double compl_bare, compl_1pt, compl_2pt;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.00, 20.51, 17.99, 7398.41,
     8367.19, 7758.92},
    {core::Configuration::kParRandom, 16.62, 20.49, 16.69, 6476.04, 8352.91,
     6962.23},
    {core::Configuration::kConvSeq, 11.01, 10.98, 10.99, 4016.46, 4066.86,
     4061.19},
    {core::Configuration::kParSeq, 1.92, 1.94, 1.93, 758.06, 829.34,
     816.29},
};

void RunTable() {
  TextTable te("Table 4. Impact of the Shadow Mechanism — Exec/page (ms)");
  te.SetHeader({"Configuration", "Bare", "1 PT Processor",
                "2 PT Processors"});
  TextTable tc("Table 4 (cont.) — Transaction Completion Time (ms)");
  tc.SetHeader({"Configuration", "Bare", "1 PT Processor",
                "2 PT Processors"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    machine::SimShadowOptions one;
    auto r1 = Run(row.config, std::make_unique<machine::SimShadow>(one));
    machine::SimShadowOptions two;
    two.num_pt_processors = 2;
    auto r2 = Run(row.config, std::make_unique<machine::SimShadow>(two));
    te.AddRow({core::ConfigurationName(row.config),
               Cell(row.exec_bare, bare.exec_time_per_page_ms),
               Cell(row.exec_1pt, r1.exec_time_per_page_ms),
               Cell(row.exec_2pt, r2.exec_time_per_page_ms)});
    tc.AddRow({core::ConfigurationName(row.config),
               Cell(row.compl_bare, bare.completion_ms.mean()),
               Cell(row.compl_1pt, r1.completion_ms.mean()),
               Cell(row.compl_2pt, r2.completion_ms.mean())});
  }
  te.Print();
  std::printf("\n");
  tc.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
