// Reproduces Table 11: Effect of the Size of the Differential Files on
// Execution Time per Page — degradation grows nonlinearly with size.

#include "bench/bench_util.h"
#include "machine/sim_differential.h"

namespace dbmr::bench {
namespace {

struct PaperRow {
  core::Configuration config;
  double bare;
  double s10, s15, s20;
};

constexpr PaperRow kPaper[] = {
    {core::Configuration::kConvRandom, 18.0, 19.2, 24.8, 37.0},
    {core::Configuration::kParRandom, 16.6, 18.0, 24.4, 37.0},
    {core::Configuration::kConvSeq, 11.0, 17.8, 25.8, 39.6},
    {core::Configuration::kParSeq, 1.9, 13.9, 23.5, 36.4},
};

void RunTable() {
  TextTable t(
      "Table 11. Effect of Size of Differential Files on Exec/page (ms)");
  t.SetHeader({"Configuration", "Bare", "10%", "15%", "20%"});
  for (const PaperRow& row : kPaper) {
    auto bare = Run(row.config, std::make_unique<machine::BareArch>());
    std::vector<std::string> cells = {
        core::ConfigurationName(row.config),
        Cell(row.bare, bare.exec_time_per_page_ms)};
    const double paper[3] = {row.s10, row.s15, row.s20};
    const double sizes[3] = {0.10, 0.15, 0.20};
    for (int i = 0; i < 3; ++i) {
      machine::SimDifferentialOptions o;
      o.diff_size = sizes[i];
      auto r =
          Run(row.config, std::make_unique<machine::SimDifferential>(o));
      cells.push_back(Cell(paper[i], r.exec_time_per_page_ms));
    }
    t.AddRow(cells);
  }
  t.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
