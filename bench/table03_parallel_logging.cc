// Reproduces Table 3: Performance of Parallel Logging and Log Processor
// Selection Algorithms with 75 query processors, 2 parallel-access data
// disks, 150 cache frames, sequential transactions, PHYSICAL logging.

#include <vector>

#include "bench/bench_util.h"
#include "machine/sim_logging.h"

namespace dbmr::bench {
namespace {

using machine::LogSelect;

constexpr LogSelect kPolicies[] = {LogSelect::kCyclic, LogSelect::kRandom,
                                   LogSelect::kQpMod, LogSelect::kTxnMod};

// Paper values: exec-time/page rows for 1..5 log disks then w/o logging,
// one column per selection policy; then the same for completion time.
constexpr double kPaperExec[6][4] = {
    {5.1, 5.1, 5.1, 5.1}, {2.5, 2.6, 2.6, 2.7}, {1.7, 1.8, 1.8, 2.1},
    {1.5, 1.5, 1.5, 2.0}, {1.3, 1.4, 1.3, 2.0}, {0.9, 0.9, 0.9, 0.9}};
constexpr double kPaperCompl[6][4] = {
    {4518.1, 4518.1, 4518.1, 4518.1}, {1999.5, 2104.3, 2232.0, 2165.4},
    {1078.9, 1137.2, 1135.7, 1381.8}, {830.7, 854.6, 837.8, 1137.5},
    {716.3, 741.7, 714.1, 1128.4},    {430.6, 430.6, 430.6, 430.6}};

void RunTable() {
  // Measure every cell once; policies do not matter without logging.
  machine::MachineResult bare = RunT3(std::make_unique<machine::BareArch>());

  TextTable te(
      "Table 3. Parallel (physical) logging, 75 QPs, 2 parallel-access "
      "disks, 150 frames — Execution Time per Page (ms)");
  TextTable tc("Table 3 (cont.) — Transaction Completion Time (ms)");
  te.SetHeader({"Log Disks", "cyclic", "random", "QpNo mod", "TranNo mod"});
  tc.SetHeader({"Log Disks", "cyclic", "random", "QpNo mod", "TranNo mod"});

  for (int n = 1; n <= 5; ++n) {
    std::vector<std::string> erow = {std::to_string(n)};
    std::vector<std::string> crow = {std::to_string(n)};
    for (int p = 0; p < 4; ++p) {
      machine::SimLoggingOptions o;
      o.physical = true;
      o.num_log_processors = n;
      o.select = kPolicies[p];
      auto r = RunT3(std::make_unique<machine::SimLogging>(o));
      erow.push_back(Cell(kPaperExec[n - 1][p], r.exec_time_per_page_ms));
      crow.push_back(Cell(kPaperCompl[n - 1][p], r.completion_ms.mean()));
    }
    te.AddRow(erow);
    tc.AddRow(crow);
  }
  std::vector<std::string> erow = {"w/o logging"};
  std::vector<std::string> crow = {"w/o logging"};
  for (int p = 0; p < 4; ++p) {
    erow.push_back(Cell(kPaperExec[5][p], bare.exec_time_per_page_ms));
    crow.push_back(Cell(kPaperCompl[5][p], bare.completion_ms.mean()));
  }
  te.AddRow(erow);
  tc.AddRow(crow);
  te.Print();
  std::printf("\n");
  tc.Print();
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::PrintHeaderNote();
  dbmr::bench::RunTable();
  return 0;
}
