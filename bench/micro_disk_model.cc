// google-benchmark microbenchmarks of the disk model: access throughput
// for random and sequential request streams and parallel-access batching.

#include <benchmark/benchmark.h>

#include "hw/disk.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dbmr::hw {
namespace {

void BM_ConventionalRandomStream(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    DiskModel d(&s, "d", Ibm3350Geometry(), DiskKind::kConventional,
                Rng(1));
    Rng rng(2);
    for (int i = 0; i < n; ++i) {
      d.Submit(DiskRequest{
          {static_cast<int32_t>(rng.UniformInt(0, 554)),
           static_cast<int32_t>(rng.UniformInt(0, 119))},
          false,
          1,
          nullptr});
    }
    s.Run();
    benchmark::DoNotOptimize(d.accesses());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConventionalRandomStream)->Arg(10000);

void BM_ConventionalSequentialStream(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    DiskModel d(&s, "d", Ibm3350Geometry(), DiskKind::kConventional,
                Rng(1));
    for (int i = 0; i < n; ++i) {
      d.Submit(DiskRequest{{static_cast<int32_t>(i / 120),
                            static_cast<int32_t>(i % 120)},
                           false,
                           1,
                           nullptr});
    }
    s.Run();
    benchmark::DoNotOptimize(d.accesses());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConventionalSequentialStream)->Arg(10000);

void BM_ParallelAccessBatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    DiskModel d(&s, "d", Ibm3350Geometry(), DiskKind::kParallelAccess,
                Rng(1));
    for (int i = 0; i < n; ++i) {
      d.Submit(DiskRequest{{static_cast<int32_t>(i / 120),
                            static_cast<int32_t>(i % 120)},
                           false,
                           1,
                           nullptr});
    }
    s.Run();
    benchmark::DoNotOptimize(d.accesses());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelAccessBatching)->Arg(10000);

}  // namespace
}  // namespace dbmr::hw

BENCHMARK_MAIN();
