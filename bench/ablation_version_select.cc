// Ablation (paper §4.2.5): the paper rejects the version-selection
// architecture analytically — every read fetches both copies of a page,
// and the machine is I/O-bandwidth bound.  Here the claim is measured:
// version selection vs the well-buffered thru-page-table shadow vs bare.

#include "bench/bench_util.h"
#include "machine/sim_shadow.h"
#include "machine/sim_version_select.h"

namespace dbmr::bench {
namespace {

void RunTable() {
  TextTable t(
      "Ablation §4.2.5: version selection vs thru-page-table shadow — "
      "Exec/page (ms, measured only)");
  t.SetHeader({"Configuration", "Bare", "Shadow (2 PT, buf=50)",
               "Version Selection", "VS w/ smart heads"});
  for (core::Configuration c : core::kAllConfigurations) {
    auto bare = Run(c, std::make_unique<machine::BareArch>());
    machine::SimShadowOptions o;
    o.num_pt_processors = 2;
    o.pt_buffer_pages = 50;
    auto pt = Run(c, std::make_unique<machine::SimShadow>(o));
    auto vs = Run(c, std::make_unique<machine::SimVersionSelect>());
    machine::SimVersionSelectOptions smart;
    smart.smart_heads = true;
    auto vss =
        Run(c, std::make_unique<machine::SimVersionSelect>(smart));
    t.AddRow({core::ConfigurationName(c),
              FormatFixed(bare.exec_time_per_page_ms, 2),
              FormatFixed(pt.exec_time_per_page_ms, 2),
              FormatFixed(vs.exec_time_per_page_ms, 2),
              FormatFixed(vss.exec_time_per_page_ms, 2)});
  }
  t.Print();
  std::printf(
      "\nExpected shape: version selection trails the buffered shadow "
      "architecture — the doubled transfer works against an I/O-bound "
      "machine, confirming the paper's argument.  The smart-heads column implements the\n"
      "paper's hypothetical on-the-fly selection, which removes the penalty.\n");
}

}  // namespace
}  // namespace dbmr::bench

int main() {
  dbmr::bench::RunTable();
  return 0;
}
