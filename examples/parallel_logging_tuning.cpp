// Parallel-logging tuning guide: for a machine whose data-processing rate
// outruns a single log disk (the paper's Table 3 scenario — 75 query
// processors, parallel-access drives, physical logging), sweep the number
// of log disks and the fragment-selection policy, and report when the log
// stops being the bottleneck.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "machine/sim_logging.h"
#include "util/str.h"
#include "util/table.h"

using namespace dbmr;  // NOLINT: example brevity

int main() {
  const int kTxns = 100;
  auto bare = core::RunWith(core::Table3Setup(kTxns),
                            std::make_unique<machine::BareArch>());
  std::printf("machine without logging: %.2f ms/page "
              "(75 QPs, 2 parallel-access disks, physical logging off)\n\n",
              bare.exec_time_per_page_ms);

  const machine::LogSelect policies[] = {
      machine::LogSelect::kCyclic, machine::LogSelect::kRandom,
      machine::LogSelect::kQpMod, machine::LogSelect::kTxnMod};

  TextTable t("Physical logging: exec time/page (ms) by log disks x "
              "selection policy");
  t.SetHeader({"Log Disks", "cyclic", "random", "QpNo mod", "TranNo mod",
               "max log util"});
  int recommended = 0;
  for (int n = 1; n <= 6; ++n) {
    std::vector<std::string> row = {std::to_string(n)};
    double cyclic_exec = 0;
    double max_util = 0;
    for (machine::LogSelect p : policies) {
      machine::SimLoggingOptions o;
      o.physical = true;
      o.num_log_processors = n;
      o.select = p;
      auto r = core::RunWith(core::Table3Setup(kTxns),
                             std::make_unique<machine::SimLogging>(o));
      row.push_back(FormatFixed(r.exec_time_per_page_ms, 2));
      if (p == machine::LogSelect::kCyclic) {
        cyclic_exec = r.exec_time_per_page_ms;
        for (int i = 0; i < n; ++i) {
          max_util = std::max(
              max_util, r.extra.at("log_disk_util_" + std::to_string(i)));
        }
      }
    }
    row.push_back(FormatFixed(max_util, 2));
    t.AddRow(row);
    if (recommended == 0 &&
        cyclic_exec < bare.exec_time_per_page_ms * 1.5) {
      recommended = n;
    }
  }
  t.Print();

  std::printf("\nRecommendation: %d log disk(s) bring physical logging "
              "within 50%% of the bare machine; spread fragments with the "
              "cyclic policy (TranNo mod TotLp congests one processor when "
              "few transactions run concurrently).\n",
              recommended);
  return 0;
}
