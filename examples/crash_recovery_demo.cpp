// Crash-recovery demonstration, driven by the chaos harness.
//
// Instead of hand-rolled crash rounds, this demo points the deterministic
// CrashSweeper at every recovery engine from the paper: one seeded
// workload is replayed with a fail-stop crash injected at EVERY disk-write
// index (including crashes during Recover() itself), plus transient-fault
// and bit-flip trials, and the CommitOracle checks each recovered state
// against the durability contract.
//
// A clean run prints zero violations for every engine.  To see the
// harness catch a bug, flip a line in any engine's Recover() and rerun —
// the report names the exact (seed, crash_index) schedule to replay, and
// `dbmr_torture` (tools/) replays it standalone.

#include <cstdio>

#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"

using namespace dbmr;  // NOLINT: example brevity

int main() {
  chaos::SweepOptions opts;
  opts.seed = 2024;
  opts.txns = 6;
  opts.bit_flip_trials = 8;

  std::printf(
      "Chaos sweep: %d-transaction workload, seed %llu, crash injected\n"
      "after every disk write (and inside every recovery), per engine.\n\n",
      opts.txns, (unsigned long long)opts.seed);

  bool all_clean = true;
  for (const std::string& name : chaos::EngineNames()) {
    // Version-select keeps two checksummed copies of every page, so it is
    // the only engine that also survives torn block writes; include them.
    chaos::SweepOptions engine_opts = opts;
    engine_opts.torn_writes = (name == "version-select");

    chaos::CrashSweeper sweeper(name, engine_opts);
    chaos::SweepReport r = sweeper.Run();

    std::printf("%-18s %5lld schedules  %4lld crash points  %4lld nested  "
                "%3lld transient  flips d/m/s %lld/%lld/%lld  -> %s\n",
                r.engine.c_str(), (long long)r.schedules,
                (long long)r.write_crash_points,
                (long long)(r.nested_write_crash_points +
                            r.nested_read_crash_points),
                (long long)r.transient_points,
                (long long)r.bit_flips.detected,
                (long long)r.bit_flips.masked,
                (long long)r.bit_flips.silent,
                r.violations.empty() ? "OK" : "VIOLATIONS");

    for (const chaos::Violation& v : r.violations) {
      all_clean = false;
      std::printf("  !! [%s] %s\n     repro: %s\n", v.kind.c_str(),
                  v.detail.c_str(), v.repro.c_str());
    }
  }

  std::printf("\n%s\n", all_clean
                            ? "Every engine upheld the durability contract "
                              "at every crash point."
                            : "Durability contract violated; see repro "
                              "lines above.");
  return all_clean ? 0 : 1;
}
