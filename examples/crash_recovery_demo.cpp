// Crash-recovery demonstration: a bank runs transfers between accounts
// stored one-per-page, the machine crashes at the worst possible moments,
// and every recovery mechanism must preserve the invariant that money is
// neither created nor destroyed.
//
// The same scenario runs against four functional engines: WAL with three
// parallel log disks (the paper's winner), shadow page-table, overwriting
// (no-undo), and version selection.

#include <cstdio>
#include <memory>
#include <vector>

#include "store/codec.h"
#include "store/page_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

using namespace dbmr;  // NOLINT: example brevity

namespace {

constexpr uint64_t kAccounts = 16;
constexpr uint64_t kInitialBalance = 1000;

uint64_t ReadBalance(store::PageEngine* e, txn::TxnId t, uint64_t acct) {
  store::PageData page;
  DBMR_CHECK(e->Read(t, acct, &page).ok());
  return store::GetU64(page, 0);
}

/// Returns false when the injected crash cut the write down.
bool WriteBalance(store::PageEngine* e, txn::TxnId t, uint64_t acct,
                  uint64_t balance) {
  store::PageData page(e->payload_size(), 0);
  store::PutU64(page, 0, balance);
  return e->Write(t, acct, page).ok();
}

uint64_t TotalMoney(store::PageEngine* e) {
  auto t = e->Begin();
  uint64_t total = 0;
  for (uint64_t a = 0; a < kAccounts; ++a) {
    total += ReadBalance(e, *t, a);
  }
  DBMR_CHECK(e->Commit(*t).ok());
  return total;
}

/// Runs transfers with crash injection across every disk of the engine;
/// returns the number of rounds survived with the invariant intact.
int TortureTest(store::PageEngine* e,
                const std::vector<store::VirtualDisk*>& disks) {
  auto budget = std::make_shared<int64_t>(int64_t{1} << 30);
  for (auto* d : disks) d->SetSharedFailCounter(budget);
  auto arm = [&](int64_t n) { *budget = n; };
  auto disarm = [&] {
    *budget = int64_t{1} << 30;
    for (auto* d : disks) d->ClearCrashState();
  };
  disarm();
  DBMR_CHECK(e->Format().ok());
  // Fund the accounts.
  {
    auto t = e->Begin();
    for (uint64_t a = 0; a < kAccounts; ++a) {
      DBMR_CHECK(WriteBalance(e, *t, a, kInitialBalance));
    }
    DBMR_CHECK(e->Commit(*t).ok());
  }
  const uint64_t expected = kAccounts * kInitialBalance;

  Rng rng(2024);
  int survived = 0;
  for (int round = 0; round < 40; ++round) {
    // Let a few writes through, then fail one mid-transaction or
    // mid-commit.
    arm(rng.UniformInt(0, 8));
    uint64_t from = static_cast<uint64_t>(rng.UniformInt(0, kAccounts - 1));
    uint64_t to = static_cast<uint64_t>(rng.UniformInt(0, kAccounts - 1));
    const uint64_t amount = static_cast<uint64_t>(rng.UniformInt(1, 100));

    auto t = e->Begin();
    bool ok = true;
    store::PageData page;
    if (e->Read(*t, from, &page).ok()) {
      uint64_t bal = store::GetU64(page, 0);
      if (bal >= amount && from != to) {
        store::PageData to_page;
        ok = WriteBalance(e, *t, from, bal - amount) &&
             e->Read(*t, to, &to_page).ok() &&
             WriteBalance(e, *t, to,
                          store::GetU64(to_page, 0) + amount);
      }
      ok = ok && e->Commit(*t).ok();
    } else {
      ok = false;
    }
    disarm();
    if (!ok) {
      // The injected crash hit; recover and audit the books.
      e->Crash();
      DBMR_CHECK(e->Recover().ok());
    }
    uint64_t total = TotalMoney(e);
    if (total != expected) {
      std::printf("  !! %s lost money: %llu != %llu at round %d\n",
                  e->name().c_str(), (unsigned long long)total,
                  (unsigned long long)expected, round);
      return -1;
    }
    ++survived;
  }
  return survived;
}

}  // namespace

int main() {
  std::printf("Bank torture test: %llu accounts x %llu, random transfers, "
              "crashes injected mid-write and mid-commit.\n\n",
              (unsigned long long)kAccounts,
              (unsigned long long)kInitialBalance);

  {
    store::VirtualDisk data("data", 64);
    store::VirtualDisk l0("log0", 2048), l1("log1", 2048), l2("log2", 2048);
    store::WalEngine e(&data, {&l0, &l1, &l2});
    int n = TortureTest(&e, {&data, &l0, &l1, &l2});
    std::printf("wal (3 parallel logs) : survived %d crash rounds, "
                "%llu redo / %llu undo applied over its lifetime\n",
                n, (unsigned long long)e.redo_applied(),
                (unsigned long long)e.undo_applied());
  }
  {
    store::VirtualDisk disk("d", 256);
    store::ShadowEngine e(&disk, kAccounts + 8);
    int n = TortureTest(&e, {&disk});
    std::printf("shadow page-table     : survived %d crash rounds, "
                "%llu table flips\n",
                n, (unsigned long long)e.table_flips());
  }
  {
    store::VirtualDisk disk("d", 256);
    store::OverwriteEngine e(&disk, kAccounts + 8);
    int n = TortureTest(&e, {&disk});
    std::printf("overwriting (no-undo) : survived %d crash rounds, "
                "%llu redo copies at recovery\n",
                n, (unsigned long long)e.redo_copies());
  }
  {
    store::VirtualDisk disk("d", 256);
    store::VersionSelectEngine e(&disk, kAccounts + 8);
    int n = TortureTest(&e, {&disk});
    std::printf("version selection     : survived %d crash rounds, "
                "%llu torn copies rejected\n",
                n, (unsigned long long)e.torn_copies_rejected());
  }
  return 0;
}
