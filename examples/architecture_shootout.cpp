// Architecture shootout: runs every recovery architecture over all four of
// the paper's configurations and ranks them by overhead relative to the
// bare machine — a measured re-derivation of the paper's conclusion that
// parallel logging wins.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/arch_registry.h"
#include "core/experiment.h"
#include "util/status.h"
#include "util/str.h"
#include "util/table.h"

using namespace dbmr;  // NOLINT: example brevity

namespace {

struct Contender {
  std::string label;
  std::function<std::unique_ptr<machine::RecoveryArch>()> make;
};

// Registry-backed contender: `arch` is an ArchRegistry entry or sim-variant
// name; `overrides` layer on top of its preset.
Contender Reg(const std::string& label, const std::string& arch,
              std::vector<std::pair<std::string, std::string>> overrides = {}) {
  auto factory = core::MakeSimArchFactory(arch, overrides);
  DBMR_CHECK(factory.ok());
  return {label, std::move(*factory)};
}

}  // namespace

int main() {
  machine::EnsureSimArchsLinked();
  std::vector<Contender> contenders = {
      Reg("parallel logging (1 disk)", "logging"),
      Reg("shadow (2 PT processors)", "shadow", {{"pt-processors", "2"}}),
      Reg("shadow (1 PT, buf 10)", "shadow"),
      Reg("shadow scrambled", "shadow", {{"scrambled", "1"}}),
      Reg("overwriting (no-undo)", "overwrite"),
      Reg("overwriting (no-redo)", "overwrite", {{"mode", "noredo"}}),
      Reg("version selection", "version-select"),
      Reg("differential (optimal, 10%)", "differential"),
  };

  const int kTxns = 100;
  std::vector<double> bare_exec;
  const Contender bare = Reg("bare machine", "bare");
  for (core::Configuration c : core::kAllConfigurations) {
    bare_exec.push_back(core::RunWith(core::StandardSetup(c, kTxns),
                                      bare.make())
                            .exec_time_per_page_ms);
  }

  struct Scored {
    std::string label;
    std::vector<double> exec;
    double worst_overhead = 0;  // max relative slowdown across configs
    double mean_overhead = 0;
  };
  std::vector<Scored> scored;

  for (const Contender& ctd : contenders) {
    Scored s;
    s.label = ctd.label;
    double sum = 0;
    for (size_t i = 0; i < 4; ++i) {
      auto r = core::RunWith(
          core::StandardSetup(core::kAllConfigurations[i], kTxns),
          ctd.make());
      s.exec.push_back(r.exec_time_per_page_ms);
      double overhead = r.exec_time_per_page_ms / bare_exec[i] - 1.0;
      s.worst_overhead = std::max(s.worst_overhead, overhead);
      sum += overhead;
    }
    s.mean_overhead = sum / 4.0;
    scored.push_back(std::move(s));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.worst_overhead < b.worst_overhead;
  });

  TextTable t("Recovery architecture shootout — exec time/page (ms) and "
              "overhead vs bare machine");
  t.SetHeader({"Rank", "Architecture", "Conv-Rand", "Par-Rand", "Conv-Seq",
               "Par-Seq", "Worst ovh", "Mean ovh"});
  t.AddRow({"-", "bare machine", FormatFixed(bare_exec[0], 1),
            FormatFixed(bare_exec[1], 1), FormatFixed(bare_exec[2], 1),
            FormatFixed(bare_exec[3], 1), "-", "-"});
  t.AddSeparator();
  int rank = 1;
  for (const auto& s : scored) {
    t.AddRow({std::to_string(rank++), s.label, FormatFixed(s.exec[0], 1),
              FormatFixed(s.exec[1], 1), FormatFixed(s.exec[2], 1),
              FormatFixed(s.exec[3], 1),
              StrFormat("%+.0f%%", s.worst_overhead * 100),
              StrFormat("%+.0f%%", s.mean_overhead * 100)});
  }
  t.Print();
  // The clustered shadow variants only rank well under the paper's
  // "logically adjacent pages stay physically clustered" assumption, which
  // §5 calls difficult to justify in practice (see the scrambled row for
  // the realistic case).  Among assumption-free architectures, parallel
  // logging must come out on top — the paper's conclusion.
  std::printf(
      "\nPaper §5: \"the parallel logging emerges as the best recovery "
      "architecture.\"\nNote: the clustered shadow rows assume physical "
      "clustering survives copy-on-write;\nthe scrambled row is the same "
      "architecture without that assumption.\n");
  for (const auto& s : scored) {
    if (s.label.find("shadow") != std::string::npos &&
        s.label.find("scrambled") == std::string::npos) {
      continue;  // clustered shadow: assumption-dependent
    }
    return s.label.find("logging") != std::string::npos ? 0 : 1;
  }
  return 1;
}
