// Quickstart: simulate the paper's database machine with and without
// recovery, and run a real transaction against the functional WAL engine.
//
//   $ ./quickstart
//
// Two layers of the library appear here:
//  * the performance simulator (core/experiment.h + machine/...), which
//    reproduces the paper's tables, and
//  * the functional storage engines (store/...), which implement each
//    recovery mechanism for real, bytes-on-disk, crash and all.

#include <cstdio>
#include <memory>

#include "core/experiment.h"
#include "machine/sim_logging.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"

using namespace dbmr;  // NOLINT: example brevity

int main() {
  // ---------------------------------------------------------------------
  // 1. Performance: what does logging cost the database machine?
  // ---------------------------------------------------------------------
  std::printf("== Simulated database machine (25 QPs, 100 frames, 2 disks)\n");
  auto setup = core::StandardSetup(core::Configuration::kConvRandom,
                                   /*num_txns=*/60);

  auto bare = core::RunWith(setup, std::make_unique<machine::BareArch>());
  std::printf("bare machine    : %5.1f ms/page, completion %7.1f ms\n",
              bare.exec_time_per_page_ms, bare.completion_ms.mean());

  auto logged =
      core::RunWith(setup, std::make_unique<machine::SimLogging>());
  std::printf("with logging    : %5.1f ms/page, completion %7.1f ms "
              "(log disk %.0f%% busy)\n",
              logged.exec_time_per_page_ms, logged.completion_ms.mean(),
              logged.extra.at("log_disk_util_0") * 100.0);

  // ---------------------------------------------------------------------
  // 2. Correctness: commit a transaction, crash, recover.
  // ---------------------------------------------------------------------
  std::printf("\n== Functional WAL engine (real pages, real crash)\n");
  store::VirtualDisk data("data", /*num_blocks=*/64);
  store::VirtualDisk log("log", /*num_blocks=*/1024);
  store::WalEngine engine(&data, {&log});
  DBMR_CHECK(engine.Format().ok());

  auto t = engine.Begin();
  store::PageData page(engine.payload_size(), 0);
  page[0] = 42;
  DBMR_CHECK(engine.Write(*t, /*page=*/7, page).ok());
  DBMR_CHECK(engine.Commit(*t).ok());
  std::printf("committed page 7 with value 42\n");

  engine.Crash();  // power cord pulled: buffer pool and lock table gone
  DBMR_CHECK(engine.Recover().ok());
  std::printf("crashed and recovered (%llu redo records applied)\n",
              static_cast<unsigned long long>(engine.redo_applied()));

  auto t2 = engine.Begin();
  store::PageData out;
  DBMR_CHECK(engine.Read(*t2, 7, &out).ok());
  DBMR_CHECK(engine.Commit(*t2).ok());
  std::printf("page 7 after recovery: %d (expected 42)\n", out[0]);
  return out[0] == 42 ? 0 : 1;
}
