// Differential files as a hypothetical database (paper §3.3, after
// Stonebraker): the base file B stays read-only while additions and
// deletions accumulate in A and D — so "what-if" modifications can be
// explored transactionally and thrown away, or folded into the base with
// an atomic Merge.

#include <cstdio>
#include <vector>

#include "store/recovery/differential_engine.h"
#include "store/virtual_disk.h"

using namespace dbmr;  // NOLINT: example brevity

namespace {

void PrintRelation(store::DifferentialEngine* db, const char* label) {
  auto t = db->Begin();
  std::vector<store::Tuple> rows;
  DBMR_CHECK(db->Scan(*t, &rows).ok());
  DBMR_CHECK(db->Commit(*t).ok());
  std::printf("%-28s |", label);
  for (const auto& r : rows) {
    std::printf(" %llu->%llu", (unsigned long long)r.key,
                (unsigned long long)r.value);
  }
  std::printf("   (B=%llu tuples, A=%zu, D=%zu)\n",
              (unsigned long long)db->base_tuples(), db->a_entries(),
              db->d_entries());
}

}  // namespace

int main() {
  store::VirtualDisk disk("d", 512);
  store::DifferentialEngine db(&disk);
  DBMR_CHECK(db.Format().ok());

  // Load a small parts relation and merge it into the base file.
  {
    auto t = db.Begin();
    for (uint64_t part = 1; part <= 6; ++part) {
      DBMR_CHECK(db.Insert(*t, part, part * 100).ok());
    }
    DBMR_CHECK(db.Commit(*t).ok());
  }
  DBMR_CHECK(db.Merge().ok());
  PrintRelation(&db, "base relation");

  // Hypothesis 1: discontinue part 3, re-price part 5.  Explore, dislike,
  // abort — the base never changed.
  {
    auto t = db.Begin();
    DBMR_CHECK(db.Remove(*t, 3).ok());
    DBMR_CHECK(db.Insert(*t, 5, 999).ok());
    std::vector<store::Tuple> preview;
    DBMR_CHECK(db.Scan(*t, &preview).ok());
    std::printf("hypothesis preview           | %zu tuples (part 3 gone, "
                "part 5 at 999)\n",
                preview.size());
    DBMR_CHECK(db.Abort(*t).ok());
  }
  PrintRelation(&db, "after aborted hypothesis");

  // Hypothesis 2: accepted — commit appends to A/D only; B is untouched
  // until the next merge.
  {
    auto t = db.Begin();
    DBMR_CHECK(db.Remove(*t, 6).ok());
    DBMR_CHECK(db.Insert(*t, 7, 700).ok());
    DBMR_CHECK(db.Commit(*t).ok());
  }
  PrintRelation(&db, "accepted change (pre-merge)");

  // A crash here loses nothing: A and D are anchored by the master block.
  db.Crash();
  DBMR_CHECK(db.Recover().ok());
  PrintRelation(&db, "after crash + recovery");

  DBMR_CHECK(db.Merge().ok());
  PrintRelation(&db, "after merge");
  return 0;
}
