// Relational workload over the functional engines: an inventory relation
// (part, quantity, price) stored through the Relation heap-file layer on
// top of the parallel-logging WAL engine — order processing with crashes
// in the middle of the business day.
//
// This is the shape of application the paper's introduction motivates:
// the database machine's recovery architecture is invisible to the
// application, which only sees transactions over records.

#include <cstdio>
#include <vector>

#include "store/codec.h"
#include "store/recovery/wal_engine.h"
#include "store/relation.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

using namespace dbmr;  // NOLINT: example brevity

namespace {

constexpr size_t kRecord = 24;  // part u64, quantity u64, price u64

std::vector<uint8_t> MakePart(uint64_t part, uint64_t qty, uint64_t price) {
  std::vector<uint8_t> r(kRecord, 0);
  store::PageData v(r.begin(), r.end());
  store::PutU64(v, 0, part);
  store::PutU64(v, 8, qty);
  store::PutU64(v, 16, price);
  return {v.begin(), v.end()};
}

struct Part {
  uint64_t part, qty, price;
};

Part Decode(const std::vector<uint8_t>& r) {
  store::PageData v(r.begin(), r.end());
  return Part{store::GetU64(v, 0), store::GetU64(v, 8),
              store::GetU64(v, 16)};
}

}  // namespace

int main() {
  store::VirtualDisk data("data", 64);
  store::VirtualDisk log0("log0", 4096), log1("log1", 4096);
  store::WalEngine engine(&data, {&log0, &log1});
  DBMR_CHECK(engine.Format().ok());
  store::Relation inventory(&engine, 0, 32, kRecord);

  // Load the catalog.
  std::vector<store::RecordId> ids;
  {
    auto t = engine.Begin();
    for (uint64_t part = 1; part <= 40; ++part) {
      auto id = inventory.Insert(*t, MakePart(part, 100, part * 7));
      DBMR_CHECK(id.ok());
      ids.push_back(*id);
    }
    DBMR_CHECK(engine.Commit(*t).ok());
  }
  std::printf("catalog loaded: 40 parts x 100 units\n");

  // Process orders; crash the machine twice mid-day.
  Rng rng(7);
  uint64_t shipped = 0;
  int fulfilled = 0;
  int rejected = 0;
  for (int order = 0; order < 200; ++order) {
    if (order == 70 || order == 140) {
      engine.Crash();
      DBMR_CHECK(engine.Recover().ok());
      std::printf("-- crash after order %d: recovered, books intact\n",
                  order);
    }
    auto t = engine.Begin();
    store::RecordId id =
        ids[static_cast<size_t>(rng.UniformInt(0, 39))];
    const auto want = static_cast<uint64_t>(rng.UniformInt(1, 5));
    auto rec = inventory.Get(*t, id);
    DBMR_CHECK(rec.ok());
    Part p = Decode(*rec);
    if (p.qty < want) {
      ++rejected;
      DBMR_CHECK(engine.Abort(*t).ok());
      continue;
    }
    DBMR_CHECK(
        inventory.Update(*t, id, MakePart(p.part, p.qty - want, p.price))
            .ok());
    DBMR_CHECK(engine.Commit(*t).ok());
    shipped += want;
    ++fulfilled;
  }

  // Audit: units on hand + units shipped must equal the initial stock.
  auto t = engine.Begin();
  uint64_t on_hand = 0;
  DBMR_CHECK(inventory
                 .Scan(*t,
                       [&](store::RecordId, const std::vector<uint8_t>& r) {
                         on_hand += Decode(r).qty;
                         return true;
                       })
                 .ok());
  DBMR_CHECK(engine.Commit(*t).ok());

  std::printf("orders fulfilled  : %d (%d rejected)\n", fulfilled, rejected);
  std::printf("units shipped     : %llu\n",
              static_cast<unsigned long long>(shipped));
  std::printf("units on hand     : %llu\n",
              static_cast<unsigned long long>(on_hand));
  std::printf("audit             : %llu + %llu = %llu (expected 4000) %s\n",
              static_cast<unsigned long long>(on_hand),
              static_cast<unsigned long long>(shipped),
              static_cast<unsigned long long>(on_hand + shipped),
              on_hand + shipped == 4000 ? "OK" : "MISMATCH");
  return on_hand + shipped == 4000 ? 0 : 1;
}
