// dbmr_catalog — renders the architecture registry to markdown.
//
//   dbmr_catalog                              # print docs/ARCHITECTURES.md
//   dbmr_catalog --out=docs/ARCHITECTURES.md  # (re)write the committed file
//   dbmr_catalog --check=docs/ARCHITECTURES.md  # exit 1 if the file drifted
//
// The emitted catalog is a pure function of core::ArchRegistry — the same
// entries that drive grids, sweeps, the auditor metadata, and the CLIs —
// so CI's --check gate guarantees the committed documentation cannot drift
// from the code.

#include <cstdio>
#include <cstring>
#include <string>

#include "chaos/engine_zoo.h"
#include "core/arch_registry.h"
#include "machine/recovery_arch.h"

namespace {

using namespace dbmr;  // NOLINT: binary-local

int Fail(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary references nothing else in the machine library and only
  // EngineNames() in the chaos library; both calls force the registrar
  // translation units out of their static archives.
  machine::EnsureSimArchsLinked();
  chaos::EngineNames();

  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: dbmr_catalog [--out=FILE | --check=FILE]\n");
      return 0;
    } else {
      return Fail("unknown flag (see --help)");
    }
  }

  const std::string rendered = core::RenderArchCatalogMarkdown();

  if (!check_path.empty()) {
    std::FILE* f = std::fopen(check_path.c_str(), "rb");
    if (f == nullptr) return Fail("cannot open --check file");
    std::string existing;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      existing.append(buf, n);
    }
    std::fclose(f);
    if (existing != rendered) {
      std::fprintf(stderr,
                   "error: %s is out of date with the architecture "
                   "registry\n       regenerate: dbmr_catalog --out=%s\n",
                   check_path.c_str(), check_path.c_str());
      return 1;
    }
    std::printf("%s matches the registry (%zu bytes)\n", check_path.c_str(),
                rendered.size());
    return 0;
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fwrite(rendered.data(), 1, rendered.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s\n", rendered.size(),
                out_path.c_str());
    return 0;
  }

  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}
