// bench_baseline — perf-trajectory snapshots, written as diffable JSON.
//
// Three suites:
//
//   --suite=kernel (default) runs the micro_sim_kernel workloads without
//   the google-benchmark harness; the checked-in baseline is
//   BENCH_kernel.json at the repo root.
//
//   --suite=torture times an exhaustive write-crash sweep (all engines,
//   seed 1) three ways — legacy sequential full replay, snapshot-forked
//   at jobs=1, and snapshot-forked at jobs=8 — and reports the speedups;
//   the checked-in baseline is BENCH_torture.json.
//
//   --suite=recovery crashes a seeded workload once per engine, then
//   times Recover() at recovery_jobs = 0 (the engines' sequential
//   reference path) and 1/2/4/8 (the partitioned replay planner),
//   byte-compares every recovered disk image against the jobs=0 image,
//   times an end-to-end crash sweep at jobs 0 vs 4, and finishes with an
//   MTTR comparison across every zoo engine (all six architectures),
//   crashed at the peak of the ARIES dirty-page table; the checked-in
//   baseline is BENCH_recovery.json.
//
//   bench_baseline --out=BENCH_kernel.json
//   bench_baseline --suite=torture --out=BENCH_torture.json
//   bench_baseline --suite=recovery --deterministic --out=BENCH_recovery.json
//
// Each workload is repeated --reps times and the best wall-clock rep is
// reported (the minimum is the standard low-noise estimator for
// single-threaded microbenchmarks).  --deterministic omits the
// generated_at timestamp so reruns diff on numbers alone.  See
// docs/BENCHMARKS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <functional>
#include <string>
#include <vector>

#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"
#include "core/thread_pool.h"
#include "store/recovery/aries_engine.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/str.h"

namespace {

using namespace dbmr;       // NOLINT: binary-local
using namespace dbmr::sim;  // NOLINT: binary-local

using Clock = std::chrono::steady_clock;

/// Wall-clock nanoseconds consumed by `fn()`.
template <class Fn>
double TimeNs(Fn&& fn) {
  const Clock::time_point start = Clock::now();
  fn();
  const Clock::time_point stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count();
}

/// RFC-3339 UTC timestamp of "now".
std::string NowStamp() {
  char stamp[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return stamp;
}

Status WriteJsonFile(const std::string& path, const JsonValue& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot write %s", path.c_str()));
  }
  const std::string text = doc.Dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return Status::OK();
}

struct WorkloadResult {
  std::string name;
  int64_t items = 0;   // events (or jobs) processed per rep
  int reps = 0;
  double best_ns = 0;  // fastest rep, wall clock
};

/// Runs `body` (which processes `items` events) `reps` times; keeps best.
template <class Body>
WorkloadResult Measure(std::string name, int64_t items, int reps,
                       Body&& body) {
  WorkloadResult r;
  r.name = std::move(name);
  r.items = items;
  r.reps = reps;
  for (int i = 0; i < reps; ++i) {
    const double ns = TimeNs(body);
    if (i == 0 || ns < r.best_ns) r.best_ns = ns;
  }
  return r;
}

/// Self-rescheduling functor, mirroring micro_sim_kernel's Chain.
struct Chain {
  Simulator* s;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) s->Schedule(1.0, Chain{s, remaining});
  }
};

std::vector<WorkloadResult> RunAll(int items, int reps) {
  std::vector<WorkloadResult> out;

  out.push_back(Measure("schedule_fire_random", items, reps, [items] {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < items; ++i) {
      s.Schedule(rng.UniformDouble(0, 1000.0), [] {});
    }
    s.Run();
  }));

  out.push_back(Measure("schedule_fire_chain", items, reps, [items] {
    Simulator s;
    int remaining = items;
    s.Schedule(1.0, Chain{&s, &remaining});
    s.Run();
  }));

  out.push_back(Measure("schedule_cancel_fire", 2 * items, reps, [items] {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < items; ++i) {
      const EventId timeout = s.Schedule(1e9, [] {});
      s.Schedule(rng.UniformDouble(0, 1000.0),
                 [&s, timeout] { s.Cancel(timeout); });
    }
    s.Run();
  }));

  out.push_back(Measure("churn_256_outstanding", items, reps, [items] {
    constexpr int kOutstanding = 256;
    Simulator s;
    s.Reserve(kOutstanding);
    Rng rng(1);
    int remaining = items;
    struct Replace {
      Simulator* s;
      Rng* rng;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) {
          s->Schedule(rng->UniformDouble(0.0, 100.0),
                      Replace{s, rng, remaining});
        }
      }
    };
    for (int i = 0; i < kOutstanding; ++i) {
      s.Schedule(rng.UniformDouble(0.0, 100.0), Replace{&s, &rng, &remaining});
    }
    s.Run();
  }));

  out.push_back(Measure("server_pipeline", items, reps, [items] {
    Simulator s;
    Server srv(&s, "srv");
    for (int i = 0; i < items; ++i) {
      srv.Submit(1.0, nullptr);
    }
    s.Run();
  }));

  // 10M-outstanding churn, measured per event-queue mode (best of two
  // reps: single shots of even this length swing ±15% on busy hosts).
  // Publishing the ladder and forced-heap times side by side makes the
  // speedup a property of this binary on this machine, so the CI gate can
  // assert the ratio without comparing wall-clock numbers across hosts.
  {
    constexpr int64_t kBigOutstanding = 10 * 1000 * 1000;
    constexpr int64_t kBigChurn = 10 * 1000 * 1000;
    struct BigReplace {
      Simulator* s;
      Rng* rng;
      int64_t* remaining;
      void operator()() const {
        if (--*remaining > 0) {
          s->Schedule(rng->UniformDouble(0.0, 1000.0),
                      BigReplace{s, rng, remaining});
        }
      }
    };
    const auto big_churn = [](size_t spill_threshold) {
      Simulator s;
      s.set_spill_threshold(spill_threshold);
      s.Reserve(static_cast<size_t>(kBigOutstanding));
      Rng rng(1);
      int64_t remaining = kBigChurn;
      for (int64_t i = 0; i < kBigOutstanding; ++i) {
        s.Schedule(rng.UniformDouble(0.0, 1000.0),
                   BigReplace{&s, &rng, &remaining});
      }
      s.Run();
    };
#if defined(__GLIBC__)
    // Keep the ~gigabyte of kernel arrays inside the sbrk arena and never
    // give it back, so the untimed warmup run below prefaults the pages
    // once and both timed modes reuse them.  Without this, each run pays
    // a couple hundred thousand first-touch page faults — an identical
    // additive OS cost in both modes that only dilutes the queue-cost
    // ratio the side-by-side pair exists to expose.
    mallopt(M_MMAP_THRESHOLD, 2000000000);
    mallopt(M_TRIM_THRESHOLD, -1);
#endif
    big_churn(Simulator::kDefaultSpillThreshold);  // untimed warmup
    out.push_back(Measure("churn_10m_outstanding_ladder",
                          kBigOutstanding + kBigChurn, 2, [&big_churn] {
                            big_churn(Simulator::kDefaultSpillThreshold);
                          }));
    out.push_back(Measure("churn_10m_outstanding_heap",
                          kBigOutstanding + kBigChurn, 2, [&big_churn] {
                            big_churn(static_cast<size_t>(-1));
                          }));
  }

  return out;
}

// ---------------------------------------------------------------------------
// Torture suite: sequential full-replay sweeps vs snapshot-forked sweeps.

/// Exhaustive write-crash sweep options for one engine at seed 1: nested
/// sweeps on, transient faults and bit flips off (both run full replays in
/// either mode, which would only dilute the replay-cost comparison).
chaos::SweepOptions TortureBenchOptions() {
  chaos::SweepOptions o;
  o.seed = 1;
  o.txns = 8;
  o.transient_faults = false;
  o.bit_flip_trials = 0;
  return o;
}

struct TortureRow {
  std::string engine;
  double sequential_ms = 0;  // legacy O(W^2) full-replay sweeper
  double forked1_ms = 0;     // snapshot-forked, one thread
  double forked8_ms = 0;     // snapshot-forked, eight threads
  int64_t schedules = 0;
  size_t violations = 0;
};

/// Best-of-`reps` wall-clock milliseconds for one sweep configuration.
/// The last report is handed back through `out` for cross-checks.
double TimeSweepMs(const std::string& engine, const chaos::SweepOptions& o,
                   core::ThreadPool* pool, int reps,
                   chaos::SweepReport* out) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    chaos::CrashSweeper sweeper(engine, o);
    const double ns = TimeNs([&] { *out = sweeper.Run(pool); });
    if (i == 0 || ns < best) best = ns;
  }
  return best / 1e6;
}

int RunTortureSuite(const std::string& out_path, int reps,
                    bool deterministic) {
  core::ThreadPool pool8(8);
  std::vector<TortureRow> rows;
  size_t total_violations = 0;

  for (const std::string& engine : chaos::EngineNames()) {
    TortureRow row;
    row.engine = engine;
    chaos::SweepReport r;

    chaos::SweepOptions seq = TortureBenchOptions();
    seq.sequential_replay = true;
    row.sequential_ms = TimeSweepMs(engine, seq, nullptr, reps, &r);
    row.violations += r.violations.size();

    chaos::SweepOptions forked = TortureBenchOptions();
    forked.jobs = 1;
    row.forked1_ms = TimeSweepMs(engine, forked, nullptr, reps, &r);
    row.violations += r.violations.size();

    row.forked8_ms = TimeSweepMs(engine, forked, &pool8, reps, &r);
    row.violations += r.violations.size();
    row.schedules = r.schedules;

    total_violations += row.violations;
    rows.push_back(std::move(row));
  }

  std::printf("%-18s %10s %10s %10s %9s %9s\n", "engine", "seq ms",
              "fork1 ms", "fork8 ms", "x(fork1)", "x(fork8)");
  double seq_total = 0, fork1_total = 0, fork8_total = 0;
  JsonValue engines = JsonValue::Array();
  for (const TortureRow& row : rows) {
    seq_total += row.sequential_ms;
    fork1_total += row.forked1_ms;
    fork8_total += row.forked8_ms;
    std::printf("%-18s %10.2f %10.2f %10.2f %8.1fx %8.1fx\n",
                row.engine.c_str(), row.sequential_ms, row.forked1_ms,
                row.forked8_ms, row.sequential_ms / row.forked1_ms,
                row.sequential_ms / row.forked8_ms);
    JsonValue e = JsonValue::Object();
    e["engine"] = row.engine;
    e["sequential_ms"] = row.sequential_ms;
    e["forked_jobs1_ms"] = row.forked1_ms;
    e["forked_jobs8_ms"] = row.forked8_ms;
    e["speedup_jobs1"] = row.sequential_ms / row.forked1_ms;
    e["speedup_jobs8"] = row.sequential_ms / row.forked8_ms;
    e["schedules"] = row.schedules;
    e["violations"] = static_cast<uint64_t>(row.violations);
    engines.Append(std::move(e));
  }
  std::printf("%-18s %10.2f %10.2f %10.2f %8.1fx %8.1fx\n", "total",
              seq_total, fork1_total, fork8_total, seq_total / fork1_total,
              seq_total / fork8_total);
  if (total_violations != 0) {
    std::fprintf(stderr, "error: %zu oracle violations during bench\n",
                 total_violations);
    return 1;
  }

  if (!out_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc["bench"] = "crash_sweep";
    doc["schema_version"] = static_cast<int64_t>(1);
    if (!deterministic) doc["generated_at"] = NowStamp();
    doc["seed"] = static_cast<int64_t>(1);
    doc["reps"] = static_cast<int64_t>(reps);
    doc["engines"] = std::move(engines);
    JsonValue totals = JsonValue::Object();
    totals["sequential_ms"] = seq_total;
    totals["forked_jobs1_ms"] = fork1_total;
    totals["forked_jobs8_ms"] = fork8_total;
    totals["speedup_jobs1"] = seq_total / fork1_total;
    totals["speedup_jobs8"] = seq_total / fork8_total;
    doc["totals"] = std::move(totals);
    Status st = WriteJsonFile(out_path, doc);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Recovery suite: sequential reference replay vs the partitioned planner.

/// Every block of every disk, concatenated (read after the timed region;
/// ReadInto's bookkeeping doesn't matter there).
std::vector<uint8_t> DumpDisks(const chaos::EngineFixture& fx) {
  std::vector<uint8_t> out;
  std::vector<uint8_t> block;
  for (const auto& d : fx.disks) {
    block.resize(d->block_size());
    for (uint64_t b = 0; b < d->num_blocks(); ++b) {
      DBMR_CHECK(d->ReadInto(b, block.data()).ok());
      out.insert(out.end(), block.begin(), block.end());
    }
  }
  return out;
}

/// The per-engine fixture the recovery suite measures: bigger pages and
/// more of them than the torture defaults, so replay cost dominates.
chaos::FixtureOptions RecoveryBenchFixture(int recovery_jobs) {
  chaos::FixtureOptions fo;
  fo.num_pages = 256;
  fo.block_size = 4096;
  fo.wal_logs = 4;
  // Room for a real dirty-page population: the torture default of 4
  // frames caps the ARIES dirty-page table (and so the MTTR crash point)
  // at the pool size.
  fo.wal_pool_frames = 64;
  fo.recovery_jobs = recovery_jobs;
  return fo;
}

/// Runs `txns` committed transactions of 4 random-page writes each and
/// crashes, leaving a recovery-heavy durable image.  Writes and commits
/// count as one operation each; a non-negative `max_ops` crashes after
/// that many (possibly mid-transaction, leaving a loser), and `after_op`
/// observes the engine after every operation (MTTR's crash-point probe).
Status RunRecoveryWorkload(
    chaos::EngineFixture* fx, int txns, int64_t max_ops = -1,
    const std::function<void(int64_t)>& after_op = nullptr) {
  Rng rng(1);
  const uint64_t pages = fx->engine->num_pages();
  store::PageData payload(fx->engine->payload_size());
  int64_t ops = 0;
  auto step = [&]() {
    ++ops;
    if (after_op) after_op(ops);
    return max_ops >= 0 && ops >= max_ops;
  };
  for (int i = 0; i < txns; ++i) {
    auto t = fx->engine->Begin();
    if (!t.ok()) return t.status();
    for (int w = 0; w < 4; ++w) {
      const txn::PageId page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
      Status st = fx->engine->Write(*t, page, payload);
      if (!st.ok()) return st;
      if (step()) {
        fx->engine->Crash();
        return Status::OK();
      }
    }
    Status st = fx->engine->Commit(*t);
    if (!st.ok()) return st;
    if (step()) break;
  }
  fx->engine->Crash();
  return Status::OK();
}

int RunRecoverySuite(const std::string& out_path, int reps,
                     bool deterministic) {
  // Engines with a partitioned replay path (shadow and differential
  // recover by discarding, so there is nothing to parallelize).
  const std::vector<std::string> kEngines = {
      "wal", "overwrite-noundo", "overwrite-noredo", "version-select",
      "aries"};
  const std::vector<int> kJobs = {0, 1, 2, 4, 8};
  // WAL replay cost scales with log volume; the in-place and two-version
  // engines scan a fixed number of scratch/copy blocks, so one size fits.
  const int kTxns = 300;

  JsonValue engines = JsonValue::Array();
  std::printf("%-18s %12s %10s", "engine", "records", "seq ms");
  for (size_t i = 1; i < kJobs.size(); ++i) {
    std::printf(" %7s", StrFormat("j%d ms", kJobs[i]).c_str());
  }
  std::printf(" %9s %6s\n", "x(j4)", "image");
  bool all_identical = true;
  double wal_speedup4 = 0;

  for (const std::string& engine : kEngines) {
    // One crashed durable image per engine; every timed recovery forks it.
    chaos::FixtureSnapshot crashed;
    {
      auto fxr = chaos::MakeEngineFixture(engine, RecoveryBenchFixture(0));
      DBMR_CHECK(fxr.ok());
      Status st = RunRecoveryWorkload(&*fxr, kTxns);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s workload: %s\n", engine.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      crashed = fxr->TakeSnapshot();
    }

    std::vector<double> best_ms(kJobs.size(), 0);
    std::vector<uint8_t> reference_image;
    int64_t replay_records = 0;
    bool identical = true;
    for (size_t j = 0; j < kJobs.size(); ++j) {
      const chaos::FixtureOptions fo = RecoveryBenchFixture(kJobs[j]);
      for (int rep = 0; rep < reps; ++rep) {
        auto fxr = chaos::ForkEngineFixture(engine, crashed, fo);
        DBMR_CHECK(fxr.ok());
        chaos::EngineFixture fx = std::move(*fxr);
        const double ns =
            TimeNs([&] { DBMR_CHECK(fx.engine->Recover().ok()); });
        const double ms = ns / 1e6;
        if (rep == 0 || ms < best_ms[j]) best_ms[j] = ms;
        if (rep == 0) {
          replay_records = static_cast<int64_t>(
              fx.engine->last_recovery_stats().replay_records);
          // The recovered store must be byte-identical at every setting;
          // jobs=0 (the legacy sequential path) is the reference.
          std::vector<uint8_t> image = DumpDisks(fx);
          if (j == 0) {
            reference_image = std::move(image);
          } else if (image != reference_image) {
            identical = false;
          }
        }
      }
    }
    all_identical = all_identical && identical;

    std::printf("%-18s %12lld %10.3f", engine.c_str(),
                static_cast<long long>(replay_records), best_ms[0]);
    for (size_t j = 1; j < kJobs.size(); ++j) {
      std::printf(" %7.3f", best_ms[j]);
    }
    const double speedup4 = best_ms[0] / best_ms[3];  // kJobs[3] == 4
    if (engine == "wal") wal_speedup4 = speedup4;
    std::printf(" %8.2fx %6s\n", speedup4, identical ? "same" : "DIFF");

    JsonValue e = JsonValue::Object();
    e["engine"] = engine;
    e["replay_records"] = replay_records;
    e["sequential_ms"] = best_ms[0];
    JsonValue jm = JsonValue::Array();
    for (size_t j = 1; j < kJobs.size(); ++j) {
      JsonValue one = JsonValue::Object();
      one["jobs"] = static_cast<int64_t>(kJobs[j]);
      one["ms"] = best_ms[j];
      one["speedup_vs_sequential"] = best_ms[0] / best_ms[j];
      jm.Append(std::move(one));
    }
    e["partitioned"] = std::move(jm);
    e["image_identical"] = identical;
    engines.Append(std::move(e));
  }

  // End-to-end: an exhaustive write-crash sweep over a store big enough
  // that replay cost dominates trial bookkeeping (the torture defaults'
  // 256-byte pages spend most of each trial outside Recover()), with the
  // engines' recovery at jobs 0 vs 4.
  auto sweep_ms = [&](int recovery_jobs) {
    chaos::SweepOptions o = TortureBenchOptions();
    o.fixture.num_pages = 64;
    o.fixture.block_size = 2048;
    o.fixture.recovery_jobs = recovery_jobs;
    chaos::SweepReport r;
    return TimeSweepMs("wal", o, nullptr, reps, &r);
  };
  const double sweep0 = sweep_ms(0);
  const double sweep4 = sweep_ms(4);
  std::printf("wal crash sweep    recovery_jobs=0 %.2f ms  "
              "recovery_jobs=4 %.2f ms  %.2fx\n",
              sweep0, sweep4, sweep0 / sweep4);

  if (!all_identical) {
    std::fprintf(stderr,
                 "error: recovered image diverged from the sequential "
                 "reference\n");
    return 1;
  }

  // MTTR across the whole zoo (all six architectures): the same seeded
  // workload on every engine, crashed at the operation where the ARIES
  // dirty-page table peaks — the costliest instant for a redo/undo
  // restart, and a fixed, comparable crash point for the architectures
  // that have no such table — then Recover() timed from forked snapshots.
  int64_t crash_op = 0;
  size_t peak_dirty = 0;
  {
    auto fxr = chaos::MakeEngineFixture("aries", RecoveryBenchFixture(0));
    DBMR_CHECK(fxr.ok());
    auto* aries = static_cast<store::AriesEngine*>(fxr->engine.get());
    // >= breaks peak ties toward the latest op: the pool bounds the
    // dirty-page table, so the peak plateaus and the most history behind
    // it gives restart the most work.
    Status st = RunRecoveryWorkload(&*fxr, kTxns, -1, [&](int64_t op) {
      if (aries->dirty_page_count() >= peak_dirty) {
        peak_dirty = aries->dirty_page_count();
        crash_op = op;
      }
    });
    DBMR_CHECK(st.ok());
  }
  std::printf("mttr: crash at op %lld (peak %zu dirty pages)\n",
              static_cast<long long>(crash_op), peak_dirty);
  JsonValue mttr = JsonValue::Array();
  std::printf("%-18s %12s %10s\n", "engine", "records", "mttr ms");
  for (const std::string& engine : chaos::EngineNames()) {
    chaos::FixtureSnapshot crashed;
    {
      auto fxr = chaos::MakeEngineFixture(engine, RecoveryBenchFixture(1));
      DBMR_CHECK(fxr.ok());
      Status st = RunRecoveryWorkload(&*fxr, kTxns, crash_op);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s mttr workload: %s\n",
                     engine.c_str(), st.ToString().c_str());
        return 1;
      }
      crashed = fxr->TakeSnapshot();
    }
    double best = 0;
    int64_t records = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto fxr =
          chaos::ForkEngineFixture(engine, crashed, RecoveryBenchFixture(1));
      DBMR_CHECK(fxr.ok());
      chaos::EngineFixture fx = std::move(*fxr);
      const double ms =
          TimeNs([&] { DBMR_CHECK(fx.engine->Recover().ok()); }) / 1e6;
      if (rep == 0 || ms < best) best = ms;
      if (rep == 0) {
        records = static_cast<int64_t>(
            fx.engine->last_recovery_stats().replay_records);
      }
    }
    std::printf("%-18s %12lld %10.3f\n", engine.c_str(),
                static_cast<long long>(records), best);
    JsonValue e = JsonValue::Object();
    e["engine"] = engine;
    e["replay_records"] = records;
    e["mttr_ms"] = best;
    mttr.Append(std::move(e));
  }

  if (!out_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc["bench"] = "recovery_replay";
    doc["schema_version"] = static_cast<int64_t>(1);
    if (!deterministic) doc["generated_at"] = NowStamp();
    JsonValue wl = JsonValue::Object();
    wl["txns"] = static_cast<int64_t>(kTxns);
    wl["writes_per_txn"] = static_cast<int64_t>(4);
    wl["num_pages"] = static_cast<int64_t>(256);
    wl["block_size"] = static_cast<int64_t>(4096);
    wl["wal_logs"] = static_cast<int64_t>(4);
    doc["workload"] = std::move(wl);
    doc["reps"] = static_cast<int64_t>(reps);
    doc["engines"] = std::move(engines);
    JsonValue sweep = JsonValue::Object();
    sweep["engine"] = "wal";
    sweep["recovery_jobs0_ms"] = sweep0;
    sweep["recovery_jobs4_ms"] = sweep4;
    sweep["speedup"] = sweep0 / sweep4;
    doc["crash_sweep"] = std::move(sweep);
    JsonValue mt = JsonValue::Object();
    mt["crash_op"] = crash_op;
    mt["peak_dirty_pages"] = static_cast<int64_t>(peak_dirty);
    mt["engines"] = std::move(mttr);
    doc["mttr"] = std::move(mt);
    Status st = WriteJsonFile(out_path, doc);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)wal_speedup4;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string suite = "kernel";
  int items = 100000;
  int reps = 5;
  bool deterministic = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--suite=", 8) == 0) {
      suite = arg + 8;
    } else if (std::strncmp(arg, "--items=", 8) == 0) {
      items = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
    } else if (std::strcmp(arg, "--deterministic") == 0) {
      deterministic = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_baseline [--suite=kernel|torture|recovery] "
                   "[--out=FILE] [--items=N] [--reps=R] [--deterministic]\n");
      return 2;
    }
  }
  if (items <= 0 || reps <= 0) {
    std::fprintf(stderr, "error: --items and --reps must be positive\n");
    return 2;
  }
  if (suite == "torture") return RunTortureSuite(out_path, reps, deterministic);
  if (suite == "recovery") {
    return RunRecoverySuite(out_path, reps, deterministic);
  }
  if (suite != "kernel") {
    std::fprintf(stderr, "error: unknown suite \"%s\"\n", suite.c_str());
    return 2;
  }

  const std::vector<WorkloadResult> results = RunAll(items, reps);

  std::printf("%-24s %12s %14s %14s\n", "workload", "items/rep", "ns/item",
              "items/sec");
  JsonValue workloads = JsonValue::Array();
  for (const WorkloadResult& r : results) {
    const double ns_per_item = r.best_ns / static_cast<double>(r.items);
    const double per_sec = 1e9 / ns_per_item;
    std::printf("%-24s %12lld %14.2f %14.0f\n", r.name.c_str(),
                static_cast<long long>(r.items), ns_per_item, per_sec);
    JsonValue w = JsonValue::Object();
    w["name"] = r.name;
    w["items_per_rep"] = static_cast<int64_t>(r.items);
    w["reps"] = r.reps;
    w["best_ns_per_item"] = ns_per_item;
    w["items_per_sec"] = per_sec;
    workloads.Append(std::move(w));
  }

  if (!out_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc["bench"] = "sim_kernel";
    doc["schema_version"] = static_cast<int64_t>(1);
    if (!deterministic) doc["generated_at"] = NowStamp();
    doc["items"] = static_cast<int64_t>(items);
    doc["reps"] = static_cast<int64_t>(reps);
    doc["workloads"] = std::move(workloads);
    Status st = WriteJsonFile(out_path, doc);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
