// bench_baseline — perf-trajectory snapshot of the event kernel.
//
// Runs the micro_sim_kernel workloads without the google-benchmark
// harness and writes the results as JSON, so a checked-in baseline
// (BENCH_kernel.json at the repo root) can be regenerated and diffed
// across kernel changes:
//
//   bench_baseline --out=BENCH_kernel.json
//   bench_baseline --items=200000 --reps=7        # heavier run, stdout only
//
// Each workload is repeated --reps times and the best wall-clock rep is
// reported (the minimum is the standard low-noise estimator for
// single-threaded microbenchmarks).  See docs/BENCHMARKS.md.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "sim/server.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/str.h"

namespace {

using namespace dbmr;       // NOLINT: binary-local
using namespace dbmr::sim;  // NOLINT: binary-local

using Clock = std::chrono::steady_clock;

/// Wall-clock nanoseconds consumed by `fn()`.
template <class Fn>
double TimeNs(Fn&& fn) {
  const Clock::time_point start = Clock::now();
  fn();
  const Clock::time_point stop = Clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count();
}

struct WorkloadResult {
  std::string name;
  int64_t items = 0;   // events (or jobs) processed per rep
  int reps = 0;
  double best_ns = 0;  // fastest rep, wall clock
};

/// Runs `body` (which processes `items` events) `reps` times; keeps best.
template <class Body>
WorkloadResult Measure(std::string name, int64_t items, int reps,
                       Body&& body) {
  WorkloadResult r;
  r.name = std::move(name);
  r.items = items;
  r.reps = reps;
  for (int i = 0; i < reps; ++i) {
    const double ns = TimeNs(body);
    if (i == 0 || ns < r.best_ns) r.best_ns = ns;
  }
  return r;
}

/// Self-rescheduling functor, mirroring micro_sim_kernel's Chain.
struct Chain {
  Simulator* s;
  int* remaining;
  void operator()() const {
    if (--*remaining > 0) s->Schedule(1.0, Chain{s, remaining});
  }
};

std::vector<WorkloadResult> RunAll(int items, int reps) {
  std::vector<WorkloadResult> out;

  out.push_back(Measure("schedule_fire_random", items, reps, [items] {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < items; ++i) {
      s.Schedule(rng.UniformDouble(0, 1000.0), [] {});
    }
    s.Run();
  }));

  out.push_back(Measure("schedule_fire_chain", items, reps, [items] {
    Simulator s;
    int remaining = items;
    s.Schedule(1.0, Chain{&s, &remaining});
    s.Run();
  }));

  out.push_back(Measure("schedule_cancel_fire", 2 * items, reps, [items] {
    Simulator s;
    Rng rng(1);
    for (int i = 0; i < items; ++i) {
      const EventId timeout = s.Schedule(1e9, [] {});
      s.Schedule(rng.UniformDouble(0, 1000.0),
                 [&s, timeout] { s.Cancel(timeout); });
    }
    s.Run();
  }));

  out.push_back(Measure("churn_256_outstanding", items, reps, [items] {
    constexpr int kOutstanding = 256;
    Simulator s;
    s.Reserve(kOutstanding);
    Rng rng(1);
    int remaining = items;
    struct Replace {
      Simulator* s;
      Rng* rng;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) {
          s->Schedule(rng->UniformDouble(0.0, 100.0),
                      Replace{s, rng, remaining});
        }
      }
    };
    for (int i = 0; i < kOutstanding; ++i) {
      s.Schedule(rng.UniformDouble(0.0, 100.0), Replace{&s, &rng, &remaining});
    }
    s.Run();
  }));

  out.push_back(Measure("server_pipeline", items, reps, [items] {
    Simulator s;
    Server srv(&s, "srv");
    for (int i = 0; i < items; ++i) {
      srv.Submit(1.0, nullptr);
    }
    s.Run();
  }));

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  int items = 100000;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--items=", 8) == 0) {
      items = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
    } else {
      std::fprintf(stderr,
                   "usage: bench_baseline [--out=FILE] [--items=N] "
                   "[--reps=R]\n");
      return 2;
    }
  }
  if (items <= 0 || reps <= 0) {
    std::fprintf(stderr, "error: --items and --reps must be positive\n");
    return 2;
  }

  const std::vector<WorkloadResult> results = RunAll(items, reps);

  std::printf("%-24s %12s %14s %14s\n", "workload", "items/rep", "ns/item",
              "items/sec");
  JsonValue workloads = JsonValue::Array();
  for (const WorkloadResult& r : results) {
    const double ns_per_item = r.best_ns / static_cast<double>(r.items);
    const double per_sec = 1e9 / ns_per_item;
    std::printf("%-24s %12lld %14.2f %14.0f\n", r.name.c_str(),
                static_cast<long long>(r.items), ns_per_item, per_sec);
    JsonValue w = JsonValue::Object();
    w["name"] = r.name;
    w["items_per_rep"] = static_cast<int64_t>(r.items);
    w["reps"] = r.reps;
    w["best_ns_per_item"] = ns_per_item;
    w["items_per_sec"] = per_sec;
    workloads.Append(std::move(w));
  }

  if (!out_path.empty()) {
    JsonValue doc = JsonValue::Object();
    doc["bench"] = "sim_kernel";
    doc["schema_version"] = static_cast<int64_t>(1);
    char stamp[32];
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc;
    gmtime_r(&now, &tm_utc);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    doc["generated_at"] = stamp;
    doc["items"] = static_cast<int64_t>(items);
    doc["reps"] = static_cast<int64_t>(reps);
    doc["workloads"] = std::move(workloads);
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    const std::string text = doc.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
