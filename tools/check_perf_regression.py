#!/usr/bin/env python3
"""Perf gate for the event kernel (CI `scale` job).

Compares freshly measured bench_baseline kernel-suite JSON against the
committed BENCH_kernel.json and fails on two regressions:

  1. schedule_fire_random slower than the committed baseline by more than
     PERF_MAX_REGRESSION (default 0.25, i.e. +25%).  Wall-clock numbers do
     cross machines here, so the margin is generous; it exists to catch
     order-of-magnitude mistakes (a debug build, an accidental O(n) hot
     loop), not single-digit drift.
  2. The in-binary 10M-outstanding churn ratio (forced-heap ns / ladder
     ns) below its floor.  Both sides run in the same binary on the same
     host, but shared CI runners still flake: a noisy-neighbor spike
     during either side's timed window skews the quotient.  Two defenses:

       * Best-of-N: pass --current more than once (each a separate
         bench_baseline run) and the gate takes the BEST ratio across
         runs — one clean window suffices, N spikes in a row do not
         happen on a working ladder.
       * Host calibration: the floor is CHURN_MIN_RATIO (default 2.5,
         measured ~4x on the development machine) on hosts as fast as
         the committed baseline, relaxed in proportion to how much
         slower this host ran the headline workload, but never below
         CHURN_MIN_RATIO_FLOOR (default 1.5) — a broken ladder lands at
         ~1.0x and must keep failing on any host.

Usage: check_perf_regression.py --baseline=BENCH_kernel.json \
           --current=run1.json [--current=run2.json ...]
Thresholds are overridable via the environment variables named above.
"""

import argparse
import json
import os
import sys


def load_workloads(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w for w in doc.get("workloads", [])}


def main():
    p = argparse.ArgumentParser()
    p.add_argument("--baseline", required=True,
                   help="committed BENCH_kernel.json")
    p.add_argument("--current", required=True, action="append",
                   help="freshly measured kernel-suite JSON (repeat for "
                        "best-of-N)")
    args = p.parse_args()

    max_regression = float(os.environ.get("PERF_MAX_REGRESSION", "0.25"))
    min_ratio = float(os.environ.get("CHURN_MIN_RATIO", "2.5"))
    ratio_floor = float(os.environ.get("CHURN_MIN_RATIO_FLOOR", "1.5"))

    baseline = load_workloads(args.baseline)
    runs = [load_workloads(path) for path in args.current]
    failures = []

    # Gate 1: cross-run regression on the headline workload (+25%
    # absolute, best run wins).
    name = "schedule_fire_random"
    cur_runs = [r[name]["best_ns_per_item"] for r in runs if name in r]
    host_factor = 1.0
    if name in baseline and cur_runs:
        base_ns = baseline[name]["best_ns_per_item"]
        cur_ns = min(cur_runs)
        limit = base_ns * (1.0 + max_regression)
        print(f"{name}: baseline {base_ns:.1f} ns, current {cur_ns:.1f} ns "
              f"(best of {len(cur_runs)}), limit {limit:.1f} ns")
        if cur_ns > limit:
            failures.append(
                f"{name} regressed: {cur_ns:.1f} ns > {limit:.1f} ns "
                f"(baseline {base_ns:.1f} ns +{max_regression:.0%})")
        host_factor = max(1.0, cur_ns / base_ns)
    else:
        failures.append(f"{name} missing from baseline or current JSON")

    # Gate 2: in-binary ladder-vs-heap churn ratio, best of N runs against
    # a host-calibrated floor.
    ratios = []
    for r in runs:
        ladder = r.get("churn_10m_outstanding_ladder")
        heap = r.get("churn_10m_outstanding_heap")
        if ladder and heap:
            ratios.append(heap["best_ns_per_item"] /
                          ladder["best_ns_per_item"])
    if ratios:
        ratio = max(ratios)
        floor = max(ratio_floor, min_ratio / host_factor)
        print(f"churn ratio (heap/ladder): best {ratio:.2f}x of "
              f"{[f'{x:.2f}' for x in ratios]}, floor {floor:.2f}x "
              f"(base {min_ratio:.2f}x / host factor {host_factor:.2f}, "
              f"hard floor {ratio_floor:.2f}x)")
        if ratio < floor:
            failures.append(
                f"ladder speedup fell to {ratio:.2f}x (best of "
                f"{len(ratios)} run(s)), floor {floor:.2f}x")
    else:
        failures.append("churn_10m_outstanding_{ladder,heap} missing from "
                        "current JSON")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
