#!/usr/bin/env python3
"""Perf gate for the event kernel (CI `scale` job).

Compares a freshly measured bench_baseline kernel-suite JSON against the
committed BENCH_kernel.json and fails on two regressions:

  1. schedule_fire_random slower than the committed baseline by more than
     PERF_MAX_REGRESSION (default 0.25, i.e. +25%).  Wall-clock numbers do
     cross machines here, so the margin is generous; it exists to catch
     order-of-magnitude mistakes (a debug build, an accidental O(n) hot
     loop), not single-digit drift.
  2. The in-binary 10M-outstanding churn ratio (forced-heap ns / ladder
     ns) below CHURN_MIN_RATIO (default 2.5).  Both sides run in the same
     binary on the same host, so this number is host-portable.  Measured
     ~4x on the development machine (best 4.7x); the floor sits well
     below that to absorb virtualization noise, and well above 1.0 where
     a broken ladder would land.

Usage: check_perf_regression.py --baseline=BENCH_kernel.json \
           --current=BENCH_kernel_ci.json
Thresholds are overridable via the environment variables named above.
"""

import argparse
import json
import os
import sys


def load_workloads(path):
    with open(path) as f:
        doc = json.load(f)
    return {w["name"]: w for w in doc.get("workloads", [])}


def main():
    p = argparse.ArgumentParser()
    p.add_argument("--baseline", required=True,
                   help="committed BENCH_kernel.json")
    p.add_argument("--current", required=True,
                   help="freshly measured kernel-suite JSON")
    args = p.parse_args()

    max_regression = float(os.environ.get("PERF_MAX_REGRESSION", "0.25"))
    min_ratio = float(os.environ.get("CHURN_MIN_RATIO", "2.5"))

    baseline = load_workloads(args.baseline)
    current = load_workloads(args.current)
    failures = []

    # Gate 1: cross-run regression on the headline workload.
    name = "schedule_fire_random"
    if name in baseline and name in current:
        base_ns = baseline[name]["best_ns_per_item"]
        cur_ns = current[name]["best_ns_per_item"]
        limit = base_ns * (1.0 + max_regression)
        print(f"{name}: baseline {base_ns:.1f} ns, current {cur_ns:.1f} ns, "
              f"limit {limit:.1f} ns")
        if cur_ns > limit:
            failures.append(
                f"{name} regressed: {cur_ns:.1f} ns > {limit:.1f} ns "
                f"(baseline {base_ns:.1f} ns +{max_regression:.0%})")
    else:
        failures.append(f"{name} missing from baseline or current JSON")

    # Gate 2: in-binary ladder-vs-heap churn ratio.
    ladder = current.get("churn_10m_outstanding_ladder")
    heap = current.get("churn_10m_outstanding_heap")
    if ladder and heap:
        ratio = heap["best_ns_per_item"] / ladder["best_ns_per_item"]
        print(f"churn ratio (heap/ladder): {ratio:.2f}x "
              f"(floor {min_ratio:.2f}x)")
        if ratio < min_ratio:
            failures.append(
                f"ladder speedup fell to {ratio:.2f}x "
                f"(heap {heap['best_ns_per_item']:.1f} ns / ladder "
                f"{ladder['best_ns_per_item']:.1f} ns), floor {min_ratio}x")
    else:
        failures.append("churn_10m_outstanding_{ladder,heap} missing from "
                        "current JSON")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
