// dbmr_torture — deterministic fault-injection sweeps over the functional
// recovery engines.
//
// Sweep mode (the default) crashes a seeded workload at every disk-write
// index, cuts `Recover()` itself down at every one of its own write and
// read indices, re-recovers, and checks the result against the commit
// oracle; it then sweeps single transient faults over every disk and runs
// a batch of bit-flip trials:
//
//   dbmr_torture --sweep                         # all engines, seeds 1..3
//   dbmr_torture --engine=wal --seeds=1,2,3,4
//   dbmr_torture --sweep --json=report.json --metrics-csv=report.csv
//
// Repro mode replays exactly one schedule (the flags a violation report
// prints):
//
//   dbmr_torture --engine=shadow --seed=2 --txns=8 --crash-index=17
//   dbmr_torture --engine=wal --seed=1 --crash-index=9 --nested-index=3
//
// Exit status is nonzero iff any oracle violation was found.  All output
// is deterministic for fixed flags; see docs/TESTING.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"
#include "core/arch_registry.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "util/json.h"
#include "util/str.h"

namespace {

using namespace dbmr;  // NOLINT: binary-local

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atoll(it->second.c_str());
  }
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(usage: dbmr_torture [flags]

  --engine=NAME      a registry engine fixture (wal | shadow | differential |
                     overwrite-noundo | overwrite-noredo | version-select |
                     aries) or all  (default: all)
  --list-archs       print the architecture catalog and exit
  --seeds=N,N,...    seeds to sweep                     (default: 1,2,3)
  --seed=N           single seed (overrides --seeds)
  --txns=N           transactions per replay            (default: 8)
  --max-writes-per-txn=N                                (default: 4)
  --abort-prob=P     per-transaction abort probability  (default: 0.25)
  --sweep            full sweep (implied unless --crash-index is given)
  --max-crash-points=N   cap the write-crash sweep      (default: unlimited)
  --no-nested        skip crash-during-recovery sweeps
  --no-transient     skip transient-fault sweeps
  --bit-flips=N      bit-flip trials per (engine, seed) (default: 16)
  --torn             tear the failing write instead of dropping it
  --media-faults     media-failure sweep: permanently lose each disk at
                     every write index (and mid-Recover), repair from the
                     mirror/archive redundancy, verify against the oracle;
                     plus a checksum scrub pass over injected silent
                     corruptions.  Implies --log-mirroring and --archive;
                     combining it with --log-mirroring=0 or --archive=0 is
                     an error (the sweep would only prove every loss fatal).
  --scrub-trials=N   scrub-pass corruptions per (engine, seed) (default: 16)
  --log-mirroring[=0|1]  mirror the log stream across a replica pair
  --archive[=0|1]    wal/aries: archive disk swept at log-truncation points
  --jobs=N           worker threads for the sweep trials (0 = one per
                     hardware thread; default: 1).  Reports are identical
                     at every job count.
  --recovery-jobs=N  parallel replay jobs inside every Recover() under
                     test (0 = the engines' sequential reference path;
                     default: 1).  Recovered state is byte-identical at
                     every setting.
  --timing           include wall-clock recovery_ms in the JSON report
                     (off by default so reports stay byte-identical)
  --snapshot-stride=N  disk writes between replay snapshots (default: 4)
  --sequential       force the legacy full-replay sweeper (the O(W^2)
                     baseline; primarily for benchmarking)
  --json=FILE        write the full JSON report ("-" = stdout)
  --metrics-json=FILE / --metrics-csv=FILE
                     export per-(engine, seed) sweep stats through the
                     metrics registry (same schema as dbmr --grid)

repro mode (replay one schedule printed by a violation report):
  --crash-index=N    crash after N successful disk writes
  --nested-index=N   also cut Recover() down after N writes
  --nested-reads     ... after N reads instead
)");
  std::exit(2);
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) Usage("flags start with --");
    std::string s(arg + 2);
    auto eq = s.find('=');
    if (eq == std::string::npos) {
      f.values[s] = "1";
    } else {
      f.values[s.substr(0, eq)] = s.substr(eq + 1);
    }
  }
  if (f.Has("help")) Usage(nullptr);
  return f;
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Per-(engine, seed) sweep stats as a metrics cell, so torture runs
/// export through the same JSON/CSV pipeline as the simulator grid.
core::CellMetrics ToCell(const chaos::SweepReport& r, int index,
                         int txns) {
  core::CellMetrics cell;
  cell.cell_index = index;
  cell.cell_name = StrFormat("torture/%s/seed%llu", r.engine.c_str(),
                             static_cast<unsigned long long>(r.seed));
  cell.config_name = "torture";
  cell.arch_label = r.engine;
  cell.seed = r.seed;
  cell.num_txns = txns;
  machine::MachineResult& m = cell.result;
  m.arch_name = r.engine;
  m.pages_read = r.disk_reads;
  m.pages_written = r.disk_writes;
  m.extra["schedules"] = static_cast<double>(r.schedules);
  m.extra["write_crash_points"] = static_cast<double>(r.write_crash_points);
  m.extra["nested_write_crash_points"] =
      static_cast<double>(r.nested_write_crash_points);
  m.extra["nested_read_crash_points"] =
      static_cast<double>(r.nested_read_crash_points);
  m.extra["transient_points"] = static_cast<double>(r.transient_points);
  m.extra["bit_flip_trials"] = static_cast<double>(r.bit_flips.trials);
  m.extra["bit_flips_detected"] = static_cast<double>(r.bit_flips.detected);
  m.extra["bit_flips_masked"] = static_cast<double>(r.bit_flips.masked);
  m.extra["bit_flips_silent"] = static_cast<double>(r.bit_flips.silent);
  m.extra["faults_injected"] = static_cast<double>(r.faults.total());
  m.extra["fault_write_failures"] =
      static_cast<double>(r.faults.write_failures);
  m.extra["fault_read_failures"] =
      static_cast<double>(r.faults.read_failures);
  m.extra["fault_transient"] = static_cast<double>(
      r.faults.transient_writes + r.faults.transient_reads);
  m.extra["fault_torn_writes"] = static_cast<double>(r.faults.torn_writes);
  // Deterministic recovery attribution; the wall-clock recovery_ms twin
  // stays out of the metrics export (it would break report byte-identity).
  m.extra["replay_records"] = static_cast<double>(r.replay_records);
  m.extra["io_retries"] = static_cast<double>(r.io_retries);
  m.extra["io_giveups"] = static_cast<double>(r.io_giveups);
  if (r.media_swept) {
    m.extra["media_crash_points"] = static_cast<double>(r.media_crash_points);
    m.extra["media_recover_crash_points"] =
        static_cast<double>(r.media_recover_crash_points);
    m.extra["media_data_loss"] = static_cast<double>(r.media_data_loss);
    m.extra["scrub_injected"] = static_cast<double>(r.scrub_injected);
    m.extra["scrub_detected"] = static_cast<double>(r.scrub_detected);
  }
  m.extra["violations"] = static_cast<double>(r.violations.size());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  if (flags.Has("list-archs") || flags.Has("list-engines")) {
    // Anchor both registrar sets so the catalog is complete even though
    // this binary only ever *runs* the engine half.
    machine::EnsureSimArchsLinked();
    chaos::EngineNames();
    std::fputs(core::RenderArchCatalogText().c_str(), stdout);
    return 0;
  }

  std::vector<std::string> engines;
  const std::string engine_flag = flags.Get("engine", "all");
  if (engine_flag == "all") {
    engines = chaos::EngineNames();
  } else {
    for (const std::string& name : SplitList(engine_flag)) {
      if (!chaos::IsEngineName(name)) {
        std::string msg = StrFormat("unknown engine \"%s\"", name.c_str());
        const std::vector<std::string> near =
            core::ArchRegistry::Global().SuggestEngine(name);
        if (!near.empty()) {
          msg += "; did you mean ";
          msg += Join(near, " or ");
          msg += "?";
        }
        msg += "  (--list-archs prints the catalog)";
        Usage(msg.c_str());
      }
      engines.push_back(name);
    }
  }

  std::vector<uint64_t> seeds;
  if (flags.Has("seed")) {
    seeds.push_back(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  } else {
    for (const std::string& s : SplitList(flags.Get("seeds", "1,2,3"))) {
      seeds.push_back(static_cast<uint64_t>(std::atoll(s.c_str())));
    }
  }
  if (seeds.empty()) Usage("no seeds given");

  chaos::SweepOptions opts;
  opts.txns = static_cast<int>(flags.GetInt("txns", 8));
  opts.max_writes_per_txn =
      static_cast<int>(flags.GetInt("max-writes-per-txn", 4));
  opts.abort_prob = flags.GetDouble("abort-prob", 0.25);
  opts.max_crash_points = flags.GetInt("max-crash-points", -1);
  opts.bit_flip_trials = static_cast<int>(flags.GetInt("bit-flips", 16));
  opts.torn_writes = flags.Has("torn");
  if (flags.Has("no-nested")) {
    opts.nested_recovery_crashes = false;
    opts.nested_recovery_read_crashes = false;
  }
  if (flags.Has("no-transient")) opts.transient_faults = false;
  opts.media_faults = flags.Has("media-faults");
  opts.scrub_trials = static_cast<int>(flags.GetInt("scrub-trials", 16));
  // A media sweep without redundancy would only prove every loss is fatal,
  // so --media-faults implies the redundancy knobs; disabling either one
  // alongside it is a contradiction, not an override.
  if (opts.media_faults && flags.GetInt("log-mirroring", 1) == 0) {
    Usage("--media-faults implies --log-mirroring; --log-mirroring=0 "
          "contradicts it");
  }
  if (opts.media_faults && flags.GetInt("archive", 1) == 0) {
    Usage("--media-faults implies --archive; --archive=0 contradicts it");
  }
  opts.fixture.log_mirroring =
      flags.GetInt("log-mirroring", opts.media_faults ? 1 : 0) != 0;
  opts.fixture.archive =
      flags.GetInt("archive", opts.media_faults ? 1 : 0) != 0;
  opts.jobs = static_cast<int>(flags.GetInt("jobs", 1));
  opts.fixture.recovery_jobs =
      static_cast<int>(flags.GetInt("recovery-jobs", 1));
  opts.snapshot_stride =
      static_cast<int>(flags.GetInt("snapshot-stride", 4));
  opts.sequential_replay = flags.Has("sequential");
  const bool timing = flags.Has("timing");

  const bool repro = flags.Has("crash-index");
  const int64_t crash_index = flags.GetInt("crash-index", -1);
  const int64_t nested_index = flags.GetInt("nested-index", -1);
  const bool nested_reads = flags.Has("nested-reads");

  // One pool serves every (engine, seed) sweep, so worker threads are
  // spawned once for the whole run.
  core::ThreadPool pool(opts.jobs);

  std::vector<chaos::SweepReport> reports;
  for (const std::string& engine : engines) {
    for (uint64_t seed : seeds) {
      opts.seed = seed;
      chaos::CrashSweeper sweeper(engine, opts);
      chaos::SweepReport r =
          repro ? sweeper.RunOne(crash_index, nested_index, nested_reads)
                : sweeper.Run(&pool);
      std::printf(
          "%-17s seed %-3llu  %6lld schedules  %5lld+%lld/%lld crash points  "
          "%4lld transient  %lld flips  %zu violation%s\n",
          r.engine.c_str(), static_cast<unsigned long long>(r.seed),
          static_cast<long long>(r.schedules),
          static_cast<long long>(r.write_crash_points),
          static_cast<long long>(r.nested_write_crash_points),
          static_cast<long long>(r.nested_read_crash_points),
          static_cast<long long>(r.transient_points),
          static_cast<long long>(r.bit_flips.trials), r.violations.size(),
          r.violations.size() == 1 ? "" : "s");
      if (r.media_swept) {
        std::printf(
            "%-17s          %6lld+%lld media losses  %lld data-loss refusals"
            "  %lld/%lld corruptions caught\n",
            "", static_cast<long long>(r.media_crash_points),
            static_cast<long long>(r.media_recover_crash_points),
            static_cast<long long>(r.media_data_loss),
            static_cast<long long>(r.scrub_detected),
            static_cast<long long>(r.scrub_injected));
      }
      for (const chaos::Violation& v : r.violations) {
        std::printf("  VIOLATION [%s] %s\n    repro: %s\n", v.kind.c_str(),
                    v.detail.c_str(), v.repro.c_str());
      }
      reports.push_back(std::move(r));
    }
  }

  size_t total_violations = 0;
  for (const chaos::SweepReport& r : reports) {
    total_violations += r.violations.size();
  }
  std::printf("%zu sweep%s, %zu violation%s\n", reports.size(),
              reports.size() == 1 ? "" : "s", total_violations,
              total_violations == 1 ? "" : "s");

  if (flags.Has("json")) {
    JsonValue doc = JsonValue::Object();
    doc["tool"] = "dbmr_torture";
    doc["txns"] = static_cast<int64_t>(opts.txns);
    doc["max_writes_per_txn"] = static_cast<int64_t>(opts.max_writes_per_txn);
    doc["mode"] = repro ? "repro" : "sweep";
    if (opts.media_faults) {
      // Echo the implied redundancy so a media report is self-describing
      // (reports without the sweep are unchanged).
      doc["media_faults"] = true;
      doc["log_mirroring"] = opts.fixture.log_mirroring;
      doc["archive"] = opts.fixture.archive;
    }
    doc["total_violations"] = static_cast<uint64_t>(total_violations);
    JsonValue arr = JsonValue::Array();
    for (const chaos::SweepReport& r : reports) arr.Append(r.ToJson(timing));
    doc["sweeps"] = std::move(arr);
    const std::string text = doc.Dump(2) + "\n";
    const std::string path = flags.Get("json", "-");
    if (path == "-") {
      std::fputs(text.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 2;
      }
      std::fputs(text.c_str(), f);
      std::fclose(f);
    }
  }

  if (flags.Has("metrics-json") || flags.Has("metrics-csv")) {
    core::MetricsRegistry registry;
    registry.SetRunInfo("torture", seeds[0], /*jobs=*/1);
    int index = 0;
    for (const chaos::SweepReport& r : reports) {
      registry.Add(ToCell(r, index++, opts.txns));
    }
    core::MetricsExportOptions mopts;
    mopts.include_host_timing = false;  // torture output is deterministic
    if (flags.Has("metrics-json")) {
      Status st =
          registry.WriteJsonFile(flags.Get("metrics-json", ""), mopts);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
    }
    if (flags.Has("metrics-csv")) {
      Status st = registry.WriteCsvFile(flags.Get("metrics-csv", ""), mopts);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 2;
      }
    }
  }

  return total_violations == 0 ? 0 : 1;
}
