// dbmr — command-line front end for the database-machine simulator.
//
// Run any recovery architecture against any configuration without writing
// code:
//
//   dbmr --arch=logging --config=conv-random --txns=150
//   dbmr --arch=logging --log-disks=4 --physical --config=table3
//   dbmr --arch=shadow --pt-processors=2 --pt-buffer=50 --config=par-random
//   dbmr --arch=differential --diff-size=0.15 --basic
//   dbmr --arch=overwrite --mode=noredo --config=conv-seq
//   dbmr --arch=bare --config=conv-random --interarrival=5000
//   dbmr --arch=logging --grid --jobs=8 --out=run.json
//
// Prints the §4 metrics: execution time per page, transaction completion
// time (mean and tail), device utilizations, and architecture extras.
// With --grid, runs all four §4 configurations in parallel and can export
// the full structured metrics as JSON (--out) and CSV (--csv); see
// docs/CLI.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/engine_zoo.h"
#include "core/arch_registry.h"
#include "core/experiment.h"
#include "core/grid.h"
#include "core/metrics.h"
#include "sim/trace.h"
#include "util/str.h"
#include "util/table.h"

namespace {

using namespace dbmr;  // NOLINT: binary-local

struct Flags {
  std::map<std::string, std::string> values;

  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atoi(it->second.c_str());
  }
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr, R"(usage: dbmr [flags]

  --arch=ARCH        a registry architecture (bare | logging | shadow |
                     overwrite | version-select | differential) or any sim
                     variant ("logging-qpmod", ...)         (default: bare)
  --list-archs       print the architecture catalog (names, knobs with
                     defaults and docs, variants, audited invariants)
  --config=CONF      conv-random | par-random | conv-seq | par-seq | table3
                                                            (default: conv-random)
  --txns=N           transactions to simulate               (default: 150)
  --seed=N           RNG seed                               (default: 7)
  --mpl=N            multiprogramming level                 (default: 3)
  --interarrival=MS  open system: mean interarrival (0 = closed batch)
  --hot-fraction=F / --hot-prob=P   workload skew           (default: off)
  --zipf=THETA       YCSB-style Zipfian skew, 0<theta<1; ranks scrambled
                     across the database (overrides --hot-*) (default: off)

scaling the machine (beyond the paper's design point):
  --qps=N            query processors                 (default: per config)
  --frames=N         cache frames                     (default: per config)
  --disks=N          data disks                       (default: per config)
  --db-pages=N       logical database size in pages   (default: per config)
  --min-pages=N / --max-pages=N   transaction size range (uniform)

grid mode (parallel experiment grid + metrics export):
  --grid             run --arch across all four standard configurations on
                     a thread pool (--config is ignored); each cell gets a
                     seed derived from --seed and its cell index, so results
                     are identical for every --jobs value
  --jobs=N           worker threads for --grid     (default: 0 = all cores)
  --out=FILE         write grid metrics as JSON
  --csv=FILE         write grid metrics as CSV
  --no-timing        omit host wall-time fields from exports (bytes then
                     depend only on the grid spec and seeds)

tracing & auditing:
  --trace=FILE       write a Chrome trace_event JSON of the run (open in
                     chrome://tracing or ui.perfetto.dev); deterministic —
                     byte-identical for a given seed at any --jobs.  In
                     grid mode each cell writes FILE with "-cellN" inserted
                     before the extension.
  --audit            enable the invariant auditor (WAL rule, page-table
                     coherence, conservation laws); default in debug builds
  --no-audit         disable the invariant auditor

logging:
  --log-disks=N      log processors/disks                   (default: 1)
  --physical         physical (before+after image) logging
  --select=POLICY    cyclic | random | qpmod | txnmod       (default: cyclic)
  --via-cache        route fragments through the disk cache
  --bandwidth=MBPS   dedicated channel bandwidth            (default: 1.0)

shadow:
  --pt-processors=N  page-table processors                  (default: 1)
  --pt-buffer=N      page-table buffer pages                (default: 10)
  --scrambled        logically adjacent pages not clustered
  --cluster-fraction=F  partial clustering                  (default: 1.0)

overwrite:
  --mode=MODE        noundo | noredo                        (default: noundo)

version-select:
  --smart-heads      on-the-fly version selection

differential:
  --diff-size=F      A/D size relative to B                 (default: 0.10)
  --output-fraction=F                                       (default: 0.10)
  --basic            basic instead of optimal query processing
  --merge-every=N    fold A/D into B every N output pages   (default: off)
)");
  std::exit(msg == nullptr ? 0 : 2);
}

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") Usage(nullptr);
    if (arg.rfind("--", 0) != 0) Usage("flags start with --");
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      f.values[arg.substr(2)] = "1";
    } else {
      f.values[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return f;
}

/// Unknown --arch: report the nearest registry names and exit.
[[noreturn]] void UnknownArch(const std::string& arch) {
  std::string msg = StrFormat("unknown --arch \"%s\"", arch.c_str());
  const std::vector<std::string> nearest =
      core::ArchRegistry::Global().SuggestSim(arch);
  if (!nearest.empty()) {
    msg += "; did you mean " + Join(nearest, " or ") + "?";
  }
  msg += "  (--list-archs prints the catalog)";
  Usage(msg.c_str());
}

/// The registry entry for --arch (an entry or sim-variant name), or a
/// suggestion-bearing exit for typos.
const core::ArchEntry* ResolveEntryOrDie(const std::string& arch) {
  const auto resolved = core::ArchRegistry::Global().ResolveSim(arch);
  if (!resolved.has_value()) UnknownArch(arch);
  return resolved->entry;
}

/// Knob overrides from the command line: every flag matching a key in the
/// entry's config schema.  Values are validated against the schema when
/// the factory is built.
std::vector<std::pair<std::string, std::string>> KnobOverrides(
    const Flags& f, const core::ArchEntry& entry) {
  std::vector<std::pair<std::string, std::string>> overrides;
  for (const core::KnobSpec& k : entry.knobs) {
    if (f.Has(k.key)) overrides.emplace_back(k.key, f.Get(k.key, ""));
  }
  return overrides;
}

/// Registry-backed architecture factory for the flags; exits with a
/// diagnostic on unknown names or invalid knob values.
core::ArchFactory MakeArchFactory(const Flags& f) {
  const std::string arch = f.Get("arch", "bare");
  const core::ArchEntry* entry = ResolveEntryOrDie(arch);
  Result<core::ArchFactory> factory =
      core::MakeSimArchFactory(arch, KnobOverrides(f, *entry));
  if (!factory.ok()) Usage(factory.status().message().c_str());
  return std::move(*factory);
}

/// Machine/workload modifiers shared by the single-run and grid paths.
void ApplyCommonFlags(const Flags& f, core::ExperimentSetup* s) {
  if (f.Has("mpl")) s->machine.mpl = f.GetInt("mpl", 3);
  s->machine.mean_interarrival_ms = f.GetDouble("interarrival", 0.0);
  // Scale knobs: grow the machine past the paper's design point.
  if (f.Has("qps")) {
    s->machine.num_query_processors = f.GetInt("qps", 25);
  }
  if (f.Has("frames")) s->machine.cache_frames = f.GetInt("frames", 100);
  if (f.Has("disks")) s->machine.num_data_disks = f.GetInt("disks", 2);
  if (f.Has("db-pages")) {
    s->machine.db_pages =
        static_cast<uint64_t>(f.GetDouble("db-pages", 120000));
    s->workload.db_pages = s->machine.db_pages;
  }
  if (f.Has("min-pages")) s->workload.min_pages = f.GetInt("min-pages", 1);
  if (f.Has("max-pages")) s->workload.max_pages = f.GetInt("max-pages", 250);
  s->workload.zipf_theta = f.GetDouble("zipf", 0.0);
  s->workload.hot_fraction = f.GetDouble("hot-fraction", 0.0);
  s->workload.hot_access_prob = f.GetDouble("hot-prob", 0.8);
  if (s->workload.hot_fraction <= 0.0) s->workload.hot_access_prob = 0.0;
  if (f.Has("audit")) s->machine.audit = true;
  if (f.Has("no-audit")) s->machine.audit = false;
}

/// The invocation, reassembled — printed by auditor violation reports so a
/// failure is reproducible from the report alone.
std::string ReproHint(int argc, char** argv) {
  std::string hint;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) hint += ' ';
    hint += argv[i];
  }
  return hint;
}

/// "grid.json" -> "grid-cell2.json" (suffix appended if no extension).
std::string CellTracePath(const std::string& base, size_t cell) {
  const std::string tag = "-cell" + std::to_string(cell);
  const auto dot = base.rfind('.');
  const auto slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + tag;
  }
  return base.substr(0, dot) + tag + base.substr(dot);
}

/// Prints the cell/run audit verdict; returns the number of violations.
uint64_t ReportAudit(const machine::MachineResult& r,
                     const std::string& label) {
  const auto checks = r.extra.count("audit_checks")
                          ? static_cast<uint64_t>(r.extra.at("audit_checks"))
                          : 0;
  if (checks == 0) return 0;  // auditor was off
  std::printf("%-18s: %llu checks, %zu violations\n", label.c_str(),
              static_cast<unsigned long long>(checks),
              r.audit_violations.size());
  for (const std::string& v : r.audit_violations) {
    std::fprintf(stderr, "audit violation: %s\n", v.c_str());
  }
  return r.audit_violations.size();
}

core::ExperimentSetup MakeSetup(const Flags& f) {
  const std::string conf = f.Get("config", "conv-random");
  const int txns = f.GetInt("txns", 150);
  const auto seed = static_cast<uint64_t>(f.GetInt("seed", 7));
  core::ExperimentSetup s;
  if (conf == "table3") {
    s = core::Table3Setup(txns, seed);
  } else {
    core::Configuration c;
    if (conf == "conv-random") {
      c = core::Configuration::kConvRandom;
    } else if (conf == "par-random") {
      c = core::Configuration::kParRandom;
    } else if (conf == "conv-seq") {
      c = core::Configuration::kConvSeq;
    } else if (conf == "par-seq") {
      c = core::Configuration::kParSeq;
    } else {
      Usage("unknown --config");
    }
    s = core::StandardSetup(c, txns, seed);
  }
  ApplyCommonFlags(f, &s);
  return s;
}

int RunGridMode(const Flags& f, const std::string& repro) {
  const std::string arch = f.Get("arch", "bare");
  const int txns = f.GetInt("txns", 150);
  const auto seed = static_cast<uint64_t>(f.GetInt("seed", 7));

  // Cell expansion comes from the registry: resolve the name (with typo
  // suggestions), validate the knob flags, and build the standard
  // four-configuration grid before spawning workers.
  const core::ArchEntry* entry = ResolveEntryOrDie(arch);
  Result<core::GridSpec> spec_or = core::RegistryStandardGrid(
      "dbmr-" + arch, arch, KnobOverrides(f, *entry), txns, seed);
  if (!spec_or.ok()) Usage(spec_or.status().message().c_str());
  core::GridSpec spec = std::move(*spec_or);

  // One private ring per cell: cells run concurrently and TraceRing is not
  // thread-safe, but each simulation is single-threaded within its cell.
  std::vector<std::unique_ptr<sim::TraceRing>> rings;
  for (core::GridCellSpec& cell : spec.cells) {
    ApplyCommonFlags(f, &cell.setup);
    cell.setup.machine.audit_repro_hint =
        repro + "  [cell " + cell.config_name + "]";
    if (f.Has("trace")) {
      rings.push_back(std::make_unique<sim::TraceRing>());
      cell.setup.machine.trace = rings.back().get();
    }
  }

  core::GridRunOptions run_opts;
  run_opts.jobs = f.GetInt("jobs", 0);
  core::MetricsRegistry run = core::RunGrid(spec, run_opts);

  TextTable t(StrFormat("%s grid — %d txns, base seed %llu", arch.c_str(),
                        txns, static_cast<unsigned long long>(seed)));
  t.SetHeader({"Cell", "Seed", "Exec/page (ms)", "Completion mean (ms)",
               "QP util", "Wall (ms)"});
  for (const core::CellMetrics& cell : run.cells()) {
    t.AddRow({cell.cell_name, std::to_string(cell.seed),
              FormatFixed(cell.result.exec_time_per_page_ms, 2),
              FormatFixed(cell.result.completion_ms.mean(), 1),
              FormatFixed(cell.result.qp_util, 2),
              FormatFixed(cell.wall_ms, 0)});
  }
  t.Print();

  core::MetricsExportOptions export_opts;
  export_opts.include_host_timing = !f.Has("no-timing");
  if (f.Has("out")) {
    Status st = run.WriteJsonFile(f.Get("out", ""), export_opts);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON metrics to %s\n", f.Get("out", "").c_str());
  }
  if (f.Has("csv")) {
    Status st = run.WriteCsvFile(f.Get("csv", ""), export_opts);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote CSV metrics to %s\n", f.Get("csv", "").c_str());
  }
  if (!f.Has("out") && !f.Has("csv")) {
    std::printf(
        "(use --out=FILE.json / --csv=FILE.csv to export the metrics)\n");
  }
  if (f.Has("trace")) {
    for (size_t i = 0; i < rings.size(); ++i) {
      const std::string path = CellTracePath(f.Get("trace", ""), i);
      Status st = rings[i]->WriteChromeJsonFile(path);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote trace (%llu events) to %s\n",
                  static_cast<unsigned long long>(rings[i]->total_emitted()),
                  path.c_str());
    }
  }
  uint64_t violations = 0;
  for (const core::CellMetrics& cell : run.cells()) {
    violations += ReportAudit(cell.result, "audit " + cell.cell_name);
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags f = Parse(argc, argv);
  if (f.Has("list-archs")) {
    chaos::EngineNames();  // pull in the engine halves of the registry
    std::fputs(core::RenderArchCatalogText().c_str(), stdout);
    return 0;
  }
  const std::string repro = ReproHint(argc, argv);
  if (f.Has("grid")) return RunGridMode(f, repro);
  core::ExperimentSetup setup = MakeSetup(f);
  setup.machine.audit_repro_hint = repro;
  sim::TraceRing ring;
  if (f.Has("trace")) setup.machine.trace = &ring;
  auto result = core::RunWith(setup, MakeArchFactory(f)());

  std::printf("architecture      : %s\n", result.arch_name.c_str());
  std::printf("configuration     : %s, %d txns, seed %d\n",
              f.Get("config", "conv-random").c_str(),
              f.GetInt("txns", 150), f.GetInt("seed", 7));
  std::printf("exec time / page  : %.2f ms\n", result.exec_time_per_page_ms);
  std::printf("completion        : mean %.1f ms, min %.1f, max %.1f\n",
              result.completion_ms.mean(), result.completion_ms.min(),
              result.completion_ms.max());
  std::printf("total time        : %.1f ms for %llu pages\n",
              result.total_time_ms,
              static_cast<unsigned long long>(result.total_pages));
  for (size_t i = 0; i < result.data_disk_util.size(); ++i) {
    std::printf("data disk %zu util  : %.2f (%llu accesses)\n", i,
                result.data_disk_util[i],
                static_cast<unsigned long long>(
                    result.data_disk_accesses[i]));
  }
  std::printf("query proc util   : %.2f\n", result.qp_util);
  std::printf("blocked pages avg : %.1f\n", result.avg_blocked_pages);
  if (result.deadlock_restarts > 0) {
    std::printf("deadlock restarts : %llu\n",
                static_cast<unsigned long long>(result.deadlock_restarts));
  }
  for (const auto& [key, value] : result.extra) {
    std::printf("%-18s: %.3f\n", key.c_str(), value);
  }
  if (f.Has("trace")) {
    const std::string path = f.Get("trace", "");
    Status st = ring.WriteChromeJsonFile(path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace (%llu events) to %s\n",
                static_cast<unsigned long long>(ring.total_emitted()),
                path.c_str());
  }
  return ReportAudit(result, "audit") == 0 ? 0 : 1;
}
