// Tests for the chaos subsystem: the commit oracle's reference semantics,
// the crash sweeper's exhaustive schedules against every engine, the
// determinism of its reports, and — most importantly — that a planted
// recovery bug is actually caught.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/commit_oracle.h"
#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"
#include "core/thread_pool.h"

namespace dbmr::chaos {
namespace {

PageData Fill(size_t n, uint8_t b) { return PageData(n, b); }

chaos::SweepOptions FastOptions(uint64_t seed) {
  SweepOptions opts;
  opts.seed = seed;
  opts.txns = 4;
  opts.bit_flip_trials = 2;
  return opts;
}

// --- CommitOracle ---------------------------------------------------------

TEST(CommitOracleTest, TracksCommittedAndAbortedTransactions) {
  auto fx = MakeEngineFixture("shadow");
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();
  auto* e = fx->engine.get();
  const size_t n = e->payload_size();
  CommitOracle oracle(e->num_pages(), n);

  auto t1 = e->Begin();
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(e->Write(*t1, 3, Fill(n, 0xAA)).ok());
  oracle.OnWrite(*t1, 3, Fill(n, 0xAA));
  ASSERT_TRUE(e->Commit(*t1).ok());
  oracle.OnCommitOk(*t1);

  auto t2 = e->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(e->Write(*t2, 3, Fill(n, 0xBB)).ok());
  oracle.OnWrite(*t2, 3, Fill(n, 0xBB));
  ASSERT_TRUE(e->Abort(*t2).ok());
  oracle.OnAbort(*t2);

  EXPECT_EQ(oracle.Expected(3), Fill(n, 0xAA));
  EXPECT_EQ(oracle.Expected(4), PageData(n, 0));  // never written
  std::string detail;
  Status st = oracle.Verify(e, nullptr, &detail);
  EXPECT_TRUE(st.ok()) << detail;
}

TEST(CommitOracleTest, DetectsDivergence) {
  auto fx = MakeEngineFixture("shadow");
  ASSERT_TRUE(fx.ok());
  auto* e = fx->engine.get();
  const size_t n = e->payload_size();
  CommitOracle oracle(e->num_pages(), n);

  // The engine committed a write the oracle never saw: divergence.
  auto t = e->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(e->Write(*t, 5, Fill(n, 0xCC)).ok());
  ASSERT_TRUE(e->Commit(*t).ok());

  std::string detail;
  Status st = oracle.Verify(e, nullptr, &detail);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(detail.find("page 5"), std::string::npos) << detail;
}

TEST(CommitOracleTest, InDoubtTransactionMayResolveEitherWay) {
  auto fx = MakeEngineFixture("shadow");
  ASSERT_TRUE(fx.ok());
  auto* e = fx->engine.get();
  const size_t n = e->payload_size();
  CommitOracle oracle(e->num_pages(), n);

  auto t = e->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(e->Write(*t, 2, Fill(n, 0x11)).ok());
  oracle.OnWrite(*t, 2, Fill(n, 0x11));
  oracle.OnCommitInDoubt(*t);
  EXPECT_TRUE(oracle.has_in_doubt());

  // The engine actually committed: verify must accept and report it.
  ASSERT_TRUE(e->Commit(*t).ok());
  InDoubtResolution res = InDoubtResolution::kNone;
  std::string detail;
  ASSERT_TRUE(oracle.Verify(e, &res, &detail).ok()) << detail;
  EXPECT_EQ(res, InDoubtResolution::kCommitted);

  // Roll it back (fresh fixture): verify must accept that too.
  auto fx2 = MakeEngineFixture("shadow");
  ASSERT_TRUE(fx2.ok());
  auto* e2 = fx2->engine.get();
  CommitOracle oracle2(e2->num_pages(), n);
  auto t2 = e2->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(e2->Write(*t2, 2, Fill(n, 0x11)).ok());
  oracle2.OnWrite(*t2, 2, Fill(n, 0x11));
  oracle2.OnCommitInDoubt(*t2);
  ASSERT_TRUE(e2->Abort(*t2).ok());
  ASSERT_TRUE(oracle2.Verify(e2, &res, &detail).ok()) << detail;
  EXPECT_EQ(res, InDoubtResolution::kRolledBack);
}

TEST(CommitOracleTest, RejectsPartiallySurfacedInDoubtTransaction) {
  auto fx = MakeEngineFixture("shadow");
  ASSERT_TRUE(fx.ok());
  auto* e = fx->engine.get();
  const size_t n = e->payload_size();
  CommitOracle oracle(e->num_pages(), n);

  // In-doubt transaction wrote two pages; the engine surfaces only one
  // (committed separately here to fake the partial outcome).
  auto t = e->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(e->Write(*t, 1, Fill(n, 0x21)).ok());
  ASSERT_TRUE(e->Commit(*t).ok());

  auto shadow_txn = e->Begin();  // oracle-side bookkeeping only
  ASSERT_TRUE(shadow_txn.ok());
  ASSERT_TRUE(e->Abort(*shadow_txn).ok());
  oracle.OnWrite(*shadow_txn, 1, Fill(n, 0x21));
  oracle.OnWrite(*shadow_txn, 2, Fill(n, 0x22));
  oracle.OnCommitInDoubt(*shadow_txn);

  std::string detail;
  Status st = oracle.Verify(e, nullptr, &detail);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(detail.find("partially"), std::string::npos) << detail;
}

// --- Engine zoo -----------------------------------------------------------

TEST(EngineZooTest, BuildsEveryEngineByName) {
  for (const std::string& name : EngineNames()) {
    auto fx = MakeEngineFixture(name);
    ASSERT_TRUE(fx.ok()) << name << ": " << fx.status().ToString();
    EXPECT_EQ(fx->engine->num_pages(), 16u) << name;
    EXPECT_FALSE(fx->AnyCrashed()) << name;
  }
  EXPECT_FALSE(MakeEngineFixture("no-such-engine").ok());
  EXPECT_TRUE(IsEngineName("wal"));
  EXPECT_FALSE(IsEngineName("WAL"));
}

// --- CrashSweeper: clean engines survive ----------------------------------

class SweepAllEnginesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SweepAllEnginesTest, BoundedSweepFindsNoViolations) {
  CrashSweeper sweeper(GetParam(), FastOptions(7));
  SweepReport r = sweeper.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.schedules, 0);
  EXPECT_GT(r.write_crash_points, 0);
  EXPECT_GT(r.faults.total(), 0u);
  for (const Violation& v : r.violations) {
    ADD_FAILURE() << v.kind << ": " << v.detail << "\n  repro: " << v.repro;
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, SweepAllEnginesTest,
                         ::testing::ValuesIn(EngineNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CrashSweeperTest, ReportIsDeterministic) {
  SweepReport a = CrashSweeper("wal", FastOptions(11)).Run();
  SweepReport b = CrashSweeper("wal", FastOptions(11)).Run();
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(CrashSweeperTest, TornWriteSweepPassesOnVersionSelect) {
  SweepOptions opts = FastOptions(5);
  opts.torn_writes = true;
  opts.transient_faults = false;
  opts.bit_flip_trials = 0;
  SweepReport r = CrashSweeper("version-select", opts).Run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.faults.torn_writes, 0u);
  for (const Violation& v : r.violations) {
    ADD_FAILURE() << v.kind << ": " << v.detail;
  }
}

// --- CrashSweeper: a planted bug must be caught ---------------------------

/// Forwards everything to an inner engine, except that Commit() silently
/// drops the transaction's writes (it aborts underneath): an engine that
/// acknowledges commits it will not remember.
class AmnesiacEngine : public store::PageEngine {
 public:
  explicit AmnesiacEngine(std::unique_ptr<store::PageEngine> inner)
      : inner_(std::move(inner)) {}

  Status Format() override { return inner_->Format(); }
  Status Recover() override { return inner_->Recover(); }
  Result<txn::TxnId> Begin() override { return inner_->Begin(); }
  Status Read(txn::TxnId t, txn::PageId p, PageData* out) override {
    return inner_->Read(t, p, out);
  }
  Status Write(txn::TxnId t, txn::PageId p, const PageData& d) override {
    wrote_ = true;
    return inner_->Write(t, p, d);
  }
  Status Commit(txn::TxnId t) override {
    if (wrote_) return inner_->Abort(t);  // the planted bug
    return inner_->Commit(t);
  }
  Status Abort(txn::TxnId t) override { return inner_->Abort(t); }
  void Crash() override { inner_->Crash(); }
  size_t payload_size() const override { return inner_->payload_size(); }
  uint64_t num_pages() const override { return inner_->num_pages(); }
  std::string name() const override { return "amnesiac"; }

 private:
  std::unique_ptr<store::PageEngine> inner_;
  bool wrote_ = false;
};

TEST(CrashSweeperTest, PlantedDurabilityBugIsCaught) {
  auto factory = []() -> Result<EngineFixture> {
    auto fx = MakeEngineFixture("shadow");
    if (!fx.ok()) return fx.status();
    fx->engine = std::make_unique<AmnesiacEngine>(std::move(fx->engine));
    return std::move(*fx);
  };
  SweepOptions opts = FastOptions(1);
  opts.abort_prob = 0.0;  // make sure something commits
  opts.transient_faults = false;
  opts.bit_flip_trials = 0;
  opts.nested_recovery_crashes = false;
  opts.nested_recovery_read_crashes = false;
  CrashSweeper sweeper("amnesiac", factory, opts);
  SweepReport r = sweeper.Run();
  ASSERT_FALSE(r.violations.empty());
  // Caught either by the post-recovery verify or by a workload read that
  // sees the lost write, depending on which schedule trips first.
  EXPECT_TRUE(r.violations[0].kind == "post-crash-state" ||
              r.violations[0].kind == "final-state" ||
              r.violations[0].kind == "workload")
      << r.violations[0].kind;
  EXPECT_NE(r.violations[0].repro.find("--seed=1"), std::string::npos);
}

/// Forwards everything, but the first Recover() after a crash zeroes one
/// page via a private transaction: committed data lost in recovery.
class LossyRecoveryEngine : public store::PageEngine {
 public:
  explicit LossyRecoveryEngine(std::unique_ptr<store::PageEngine> inner)
      : inner_(std::move(inner)) {}

  Status Format() override { return inner_->Format(); }
  Status Recover() override {
    DBMR_RETURN_IF_ERROR(inner_->Recover());
    auto t = inner_->Begin();
    if (!t.ok()) return t.status();
    DBMR_RETURN_IF_ERROR(
        inner_->Write(*t, 0, PageData(inner_->payload_size(), 0)));
    return inner_->Commit(*t);  // the planted bug: page 0 wiped
  }
  Result<txn::TxnId> Begin() override { return inner_->Begin(); }
  Status Read(txn::TxnId t, txn::PageId p, PageData* out) override {
    return inner_->Read(t, p, out);
  }
  Status Write(txn::TxnId t, txn::PageId p, const PageData& d) override {
    return inner_->Write(t, p, d);
  }
  Status Commit(txn::TxnId t) override { return inner_->Commit(t); }
  Status Abort(txn::TxnId t) override { return inner_->Abort(t); }
  void Crash() override { inner_->Crash(); }
  size_t payload_size() const override { return inner_->payload_size(); }
  uint64_t num_pages() const override { return inner_->num_pages(); }
  std::string name() const override { return "lossy"; }

 private:
  std::unique_ptr<store::PageEngine> inner_;
};

TEST(CrashSweeperTest, PlantedRecoveryBugIsCaughtAndReproducible) {
  auto factory = []() -> Result<EngineFixture> {
    auto fx = MakeEngineFixture("shadow");
    if (!fx.ok()) return fx.status();
    fx->engine = std::make_unique<LossyRecoveryEngine>(std::move(fx->engine));
    return std::move(*fx);
  };
  SweepOptions opts = FastOptions(2);
  opts.abort_prob = 0.0;
  opts.transient_faults = false;
  opts.bit_flip_trials = 0;
  opts.nested_recovery_crashes = false;
  opts.nested_recovery_read_crashes = false;
  SweepReport r = CrashSweeper("lossy", factory, opts).Run();
  ASSERT_FALSE(r.violations.empty());

  // Some schedule wrote page 0 before the crash and lost it in recovery.
  const Violation* hit = nullptr;
  for (const Violation& v : r.violations) {
    if (v.kind == "post-crash-state" && v.crash_index >= 0) {
      hit = &v;
      break;
    }
  }
  ASSERT_NE(hit, nullptr);

  // The (seed, crash_index) pair replays to exactly the same violation.
  SweepReport repro =
      CrashSweeper("lossy", factory, opts).RunOne(hit->crash_index);
  ASSERT_EQ(repro.violations.size(), 1u);
  EXPECT_EQ(repro.violations[0].kind, hit->kind);
  EXPECT_EQ(repro.violations[0].detail, hit->detail);
}

TEST(CrashSweeperTest, RunOneReplaysNestedRecoveryCrash) {
  // A clean engine: the single nested schedule must complete and verify.
  SweepReport r =
      CrashSweeper("wal", FastOptions(3)).RunOne(/*crash_index=*/12,
                                                 /*nested_index=*/2);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.schedules, 1);
}

// --- Snapshot-forked sweeps ----------------------------------------------

TEST(ForkedSweepTest, ReportIsIdenticalAcrossJobCounts) {
  // Trials run in whatever order threads pick them up, but results are
  // merged in index order, so the whole report must be byte-identical at
  // any job count.
  for (uint64_t seed : {1u, 2u, 3u}) {
    SweepOptions one = FastOptions(seed);
    one.jobs = 1;
    SweepOptions eight = FastOptions(seed);
    eight.jobs = 8;
    SweepReport a = CrashSweeper("wal", one).Run();
    SweepReport b = CrashSweeper("wal", eight).Run();
    EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump()) << "seed " << seed;
  }
}

TEST(ForkedSweepTest, ReportIsIdenticalOnExternalPool) {
  core::ThreadPool pool(4);
  SweepReport a = CrashSweeper("shadow", FastOptions(9)).Run();
  SweepReport b = CrashSweeper("shadow", FastOptions(9)).Run(&pool);
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST(ForkedSweepTest, MatchesSequentialSweeper) {
  // The forked path must explore exactly the schedules the legacy
  // sequential sweeper does and reach the same verdicts.  Only the
  // physical disk I/O tallies differ (forking is the whole point).
  for (const std::string& engine : EngineNames()) {
    SweepOptions seq = FastOptions(13);
    seq.sequential_replay = true;
    SweepOptions forked = FastOptions(13);
    SweepReport s = CrashSweeper(engine, seq).Run();
    SweepReport f = CrashSweeper(engine, forked).Run();

    EXPECT_TRUE(s.violations.empty()) << engine;
    EXPECT_TRUE(f.violations.empty()) << engine;
    EXPECT_EQ(f.completed, s.completed) << engine;
    EXPECT_EQ(f.schedules, s.schedules) << engine;
    EXPECT_EQ(f.write_crash_points, s.write_crash_points) << engine;
    EXPECT_EQ(f.nested_write_crash_points, s.nested_write_crash_points)
        << engine;
    EXPECT_EQ(f.nested_read_crash_points, s.nested_read_crash_points)
        << engine;
    EXPECT_EQ(f.transient_points, s.transient_points) << engine;
    EXPECT_EQ(f.bit_flips.trials, s.bit_flips.trials) << engine;
    EXPECT_EQ(f.bit_flips.detected, s.bit_flips.detected) << engine;
    EXPECT_EQ(f.bit_flips.masked, s.bit_flips.masked) << engine;
    EXPECT_EQ(f.bit_flips.silent, s.bit_flips.silent) << engine;
    EXPECT_EQ(f.faults.total(), s.faults.total()) << engine;
  }
}

TEST(ForkedSweepTest, MatchesSequentialSweeperTornMode) {
  SweepOptions seq = FastOptions(5);
  seq.torn_writes = true;
  seq.sequential_replay = true;
  SweepOptions forked = FastOptions(5);
  forked.torn_writes = true;
  SweepReport s = CrashSweeper("version-select", seq).Run();
  SweepReport f = CrashSweeper("version-select", forked).Run();
  EXPECT_TRUE(s.violations.empty());
  EXPECT_TRUE(f.violations.empty());
  EXPECT_EQ(f.schedules, s.schedules);
  EXPECT_EQ(f.faults.torn_writes, s.faults.torn_writes);
  EXPECT_EQ(f.completed, s.completed);
}

TEST(ForkedSweepTest, SnapshotStrideDoesNotChangeTheReport) {
  SweepOptions base = FastOptions(4);
  SweepReport a = CrashSweeper("differential", base).Run();
  for (int stride : {1, 7, 1000}) {
    SweepOptions o = FastOptions(4);
    o.snapshot_stride = stride;
    SweepReport b = CrashSweeper("differential", o).Run();
    EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump()) << "stride " << stride;
  }
}

TEST(ForkedSweepTest, CustomFactoryFallsBackToSequential) {
  // Factories (vs zoo names) cannot be forked; the sweeper must silently
  // run them on the legacy path and still catch the planted bug.
  auto factory = []() -> Result<EngineFixture> {
    auto fx = MakeEngineFixture("shadow");
    if (!fx.ok()) return fx.status();
    fx->engine = std::make_unique<LossyRecoveryEngine>(std::move(fx->engine));
    return std::move(*fx);
  };
  SweepOptions opts = FastOptions(2);
  opts.abort_prob = 0.0;
  opts.transient_faults = false;
  opts.bit_flip_trials = 0;
  opts.nested_recovery_crashes = false;
  opts.nested_recovery_read_crashes = false;
  opts.jobs = 8;  // must be ignored, not crash
  SweepReport r = CrashSweeper("lossy", factory, opts).Run();
  EXPECT_FALSE(r.violations.empty());
}

}  // namespace
}  // namespace dbmr::chaos
