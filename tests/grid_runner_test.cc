// Tests for the parallel experiment grid runner and the metrics layer:
// scheduling-independence of results, seed derivation, and JSON/CSV
// round-tripping.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "core/experiment.h"
#include "core/grid.h"
#include "core/metrics.h"
#include "machine/recovery_arch.h"
#include "machine/sim_logging.h"
#include "util/csv.h"
#include "util/json.h"

namespace dbmr::core {
namespace {

constexpr int kTestTxns = 8;

GridSpec SmallGrid(uint64_t base_seed = 42) {
  return StandardGrid(
      "test-grid", "logging",
      [] { return std::make_unique<machine::SimLogging>(); }, kTestTxns,
      base_seed);
}

MetricsExportOptions Deterministic() {
  MetricsExportOptions opts;
  opts.include_host_timing = false;
  return opts;
}

TEST(GridRunnerTest, ParallelRunIsByteIdenticalToSerial) {
  MetricsRegistry serial = RunGrid(SmallGrid(), GridRunOptions{1});
  MetricsRegistry parallel = RunGrid(SmallGrid(), GridRunOptions{8});
  EXPECT_EQ(serial.ToJson(Deterministic()), parallel.ToJson(Deterministic()));
  EXPECT_EQ(serial.ToCsv(Deterministic()), parallel.ToCsv(Deterministic()));
}

TEST(GridRunnerTest, DerivedSeedsAreUniqueAndStable) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_TRUE(seen.insert(DeriveCellSeed(7, i)).second)
        << "collision at cell " << i;
  }
  // Stable across processes and platforms: pinned golden values.  Changing
  // the mix function invalidates every recorded grid export; bump these
  // consciously if that is ever intended.
  EXPECT_EQ(DeriveCellSeed(7, 0), 0x63cbe1e459320dd7ULL);
  EXPECT_EQ(DeriveCellSeed(7, 1), 0x044c3cd7f43c661cULL);
  EXPECT_EQ(DeriveCellSeed(42, 0), 0xbdd732262feb6e95ULL);
  EXPECT_NE(DeriveCellSeed(7, 0), DeriveCellSeed(8, 0));
}

TEST(GridRunnerTest, CellsCarryTheirDerivedSeeds) {
  MetricsRegistry run = RunGrid(SmallGrid(), GridRunOptions{2});
  ASSERT_EQ(run.size(), 4u);
  std::set<uint64_t> seeds;
  for (size_t i = 0; i < run.size(); ++i) {
    const CellMetrics& cell = run.cells()[i];
    EXPECT_EQ(cell.cell_index, static_cast<int>(i));
    EXPECT_EQ(cell.seed, DeriveCellSeed(42, i));
    seeds.insert(cell.seed);
  }
  EXPECT_EQ(seeds.size(), run.size()) << "cell seeds must be unique";
}

TEST(GridRunnerTest, FromSetupPolicyReproducesSerialHarness) {
  auto factory = [] { return std::make_unique<machine::BareArch>(); };
  GridSpec spec;
  spec.seed_policy = SeedPolicy::kFromSetup;
  spec.AddConfigSweep("bare", factory, kTestTxns);
  MetricsRegistry run = RunGrid(spec, GridRunOptions{4});

  ASSERT_EQ(run.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    auto serial = RunWith(
        StandardSetup(kAllConfigurations[i], kTestTxns, spec.base_seed),
        factory());
    const machine::MachineResult& cell = run.cells()[i].result;
    EXPECT_DOUBLE_EQ(cell.total_time_ms, serial.total_time_ms);
    EXPECT_DOUBLE_EQ(cell.exec_time_per_page_ms,
                     serial.exec_time_per_page_ms);
    EXPECT_DOUBLE_EQ(cell.completion_ms.mean(), serial.completion_ms.mean());
    EXPECT_EQ(cell.pages_read, serial.pages_read);
    EXPECT_EQ(cell.pages_written, serial.pages_written);
  }
}

TEST(GridRunnerTest, RunAllConfigsIsJobCountInvariant) {
  auto factory = [] { return std::make_unique<machine::BareArch>(); };
  auto serial = RunAllConfigs(factory, kTestTxns, 7, /*jobs=*/1);
  auto parallel = RunAllConfigs(factory, kTestTxns, 7, /*jobs=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].total_time_ms, parallel[i].total_time_ms);
    EXPECT_DOUBLE_EQ(serial[i].completion_ms.mean(),
                     parallel[i].completion_ms.mean());
    EXPECT_EQ(serial[i].pages_written, parallel[i].pages_written);
  }
}

TEST(GridRunnerTest, ThousandQpGridIsJobCountInvariant) {
  // The byte-identity guarantee must hold at the 100x machine, not just
  // at paper scale: 1000 query processors, 64 disks, MPL 400 exercises
  // the ladder-threshold neighborhood of the event kernel and the
  // streaming admission path.  Short transactions keep runtime modest.
  GridSpec spec;
  spec.name = "scale-grid";
  spec.base_seed = 99;
  for (int cell_idx = 0; cell_idx < 3; ++cell_idx) {
    GridCellSpec cell;
    cell.name = "scale/" + std::to_string(cell_idx);
    cell.config_name = "conv-random";
    cell.arch_label = "bare";
    cell.setup = StandardSetup(Configuration::kConvRandom, 1200, 99);
    cell.setup.machine.num_query_processors = 1000;
    cell.setup.machine.cache_frames = 4000;
    cell.setup.machine.num_data_disks = 64;
    cell.setup.machine.mpl = 400;
    cell.setup.machine.db_pages = 2000000;
    cell.setup.workload.db_pages = 2000000;
    cell.setup.workload.min_pages = 1;
    cell.setup.workload.max_pages = 4;
    cell.make_arch = [] { return std::make_unique<machine::BareArch>(); };
    spec.Add(std::move(cell));
  }
  MetricsRegistry serial = RunGrid(spec, GridRunOptions{1});
  MetricsRegistry parallel = RunGrid(spec, GridRunOptions{8});
  EXPECT_EQ(serial.ToJson(Deterministic()), parallel.ToJson(Deterministic()));
  EXPECT_EQ(serial.ToCsv(Deterministic()), parallel.ToCsv(Deterministic()));
}

TEST(GridRunnerTest, JsonExportRoundTrips) {
  MetricsRegistry run = RunGrid(SmallGrid(), GridRunOptions{4});
  const std::string json = run.ToJson();

  Result<JsonValue> parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Dump(parse(text)) == text: the document model loses nothing.
  EXPECT_EQ(parsed->Dump(2) + "\n", json);

  const JsonValue* cells = parsed->Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 4u);
  EXPECT_EQ(parsed->Find("num_cells")->AsInt(), 4);
  for (size_t i = 0; i < cells->size(); ++i) {
    const JsonValue& cell = cells->at(i);
    EXPECT_EQ(cell.Find("index")->AsInt(), static_cast<int64_t>(i));
    EXPECT_EQ(cell.Find("seed")->AsUint(), DeriveCellSeed(42, i));
    const JsonValue* metrics = cell.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_GT(metrics->Find("exec_time_per_page_ms")->AsDouble(), 0.0);
    EXPECT_EQ(metrics->Find("completion_ms")->Find("count")->AsInt(),
              kTestTxns);
    // The logging architecture contributed extras; the kernel counters are
    // always present.
    const JsonValue* extra = metrics->Find("extra");
    ASSERT_NE(extra, nullptr);
    EXPECT_NE(extra->Find("log_disk_util_0"), nullptr);
    EXPECT_GT(extra->Find("sim_events_executed")->AsDouble(), 0.0);
    EXPECT_GT(extra->Find("sim_max_heap_depth")->AsDouble(), 0.0);
    EXPECT_GT(extra->Find("sim_slot_pool_highwater")->AsDouble(), 0.0);
  }
}

TEST(GridRunnerTest, CsvExportParsesRectangular) {
  MetricsRegistry run = RunGrid(SmallGrid(), GridRunOptions{4});
  auto rows = ParseCsv(run.ToCsv());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);  // header + one row per cell
  const size_t width = (*rows)[0].size();
  EXPECT_GT(width, 19u);
  for (const auto& row : *rows) EXPECT_EQ(row.size(), width);
  // Seeds survive the 64-bit round trip through text.
  const auto& header = (*rows)[0];
  size_t seed_col = 0;
  while (seed_col < header.size() && header[seed_col] != "seed") ++seed_col;
  ASSERT_LT(seed_col, header.size());
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i][seed_col],
              std::to_string(DeriveCellSeed(42, i - 1)));
  }
}

TEST(GridRunnerTest, HostTimingFieldsAreOptIn) {
  MetricsRegistry run = RunGrid(SmallGrid(), GridRunOptions{2});
  const std::string with = run.ToJson();
  const std::string without = run.ToJson(Deterministic());
  EXPECT_NE(with.find("wall_ms"), std::string::npos);
  EXPECT_EQ(without.find("wall_ms"), std::string::npos);
  EXPECT_EQ(without.find("\"jobs\""), std::string::npos);
}

TEST(GridRunnerTest, EmptyGridProducesEmptyRun) {
  GridSpec spec;
  spec.name = "empty";
  MetricsRegistry run = RunGrid(spec, GridRunOptions{8});
  EXPECT_EQ(run.size(), 0u);
  Result<JsonValue> parsed = JsonValue::Parse(run.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("cells")->size(), 0u);
}

}  // namespace
}  // namespace dbmr::core
