// Allocation accounting for the event kernel.
//
// Overrides global operator new/delete with counting versions (which is
// why this test lives in its own binary) and asserts the kernel's
// documented guarantee: after Reserve(), scheduling and firing events
// whose captures fit the InlineTask buffer performs zero heap
// allocations.  Also pins down the complementary fact that oversized
// captures cost exactly one allocation each, so a regression in either
// direction fails loudly.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "sim/server.h"
#include "sim/simulator.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dbmr::sim {
namespace {

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(SimAllocTest, InlineCapturesScheduleAndFireWithoutAllocating) {
  constexpr int kEvents = 1000;
  Simulator sim;
  sim.Reserve(kEvents);
  int fired = 0;

  const uint64_t before = AllocationCount();
  for (int i = 0; i < kEvents; ++i) {
    sim.Schedule(static_cast<TimeMs>(i % 97), [&fired] { ++fired; });
  }
  sim.Run();
  const uint64_t after = AllocationCount();

  EXPECT_EQ(fired, kEvents);
  EXPECT_EQ(after - before, 0u)
      << "inline-capture events must not touch the heap";
}

TEST(SimAllocTest, CancelIsAllocationFree) {
  constexpr int kEvents = 256;
  Simulator sim;
  sim.Reserve(kEvents);
  EventId ids[kEvents];

  const uint64_t before = AllocationCount();
  for (int i = 0; i < kEvents; ++i) {
    ids[i] = sim.Schedule(static_cast<TimeMs>(i), [] {});
  }
  for (int i = 0; i < kEvents; i += 2) {
    sim.Cancel(ids[i]);
  }
  sim.Run();
  const uint64_t after = AllocationCount();

  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(sim.counters().events_cancelled,
            static_cast<uint64_t>(kEvents / 2));
}

TEST(SimAllocTest, SteadyStateChurnReusesSlotsWithoutAllocating) {
  // 32 events outstanding, each firing schedules its replacement: the
  // pool and heap stay at constant depth, so no growth and no churn-time
  // allocation is ever justified.
  constexpr int kOutstanding = 32;
  constexpr int kTotal = 5000;
  Simulator sim;
  sim.Reserve(kOutstanding);
  int remaining = kTotal;
  struct Replace {
    Simulator* sim;
    int* remaining;
    void operator()() const {
      if (--*remaining > 0) {
        sim->Schedule(1.0, Replace{sim, remaining});
      }
    }
  };

  const uint64_t before = AllocationCount();
  for (int i = 0; i < kOutstanding; ++i) {
    sim.Schedule(1.0, Replace{&sim, &remaining});
  }
  sim.Run();
  const uint64_t after = AllocationCount();

  EXPECT_EQ(after - before, 0u);
  // Once `remaining` hits zero the other kOutstanding-1 in-flight events
  // still drain (without rescheduling).
  EXPECT_EQ(sim.events_executed(),
            static_cast<uint64_t>(kTotal + kOutstanding - 1));
  EXPECT_EQ(sim.counters().slot_pool_highwater,
            static_cast<uint64_t>(kOutstanding));
}

TEST(SimAllocTest, OversizedCaptureCostsExactlyOneAllocation) {
  struct Big {
    char bytes[kInlineFnStorage + 16];
  };
  Simulator sim;
  sim.Reserve(4);
  Big big{};

  const uint64_t before = AllocationCount();
  sim.Schedule(1.0, [big] { (void)big; });
  const uint64_t after_schedule = AllocationCount();
  sim.Run();
  const uint64_t after_run = AllocationCount();

  EXPECT_EQ(after_schedule - before, 1u);  // the heap-fallback cell
  EXPECT_EQ(after_run - after_schedule, 0u);
}

}  // namespace
}  // namespace dbmr::sim
