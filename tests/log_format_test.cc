// Unit tests for log record / block / master encoding.

#include <gtest/gtest.h>

#include "store/recovery/log_format.h"

namespace dbmr::store {
namespace {

LogRecord SampleUpdate() {
  LogRecord r;
  r.kind = LogRecordKind::kUpdate;
  r.txn = 42;
  r.page = 1234;
  r.page_version = 7;
  r.offset = 16;
  r.before = {1, 2, 3};
  r.after = {9, 8, 7, 6};
  return r;
}

TEST(LogFormatTest, RecordRoundTrips) {
  LogRecord r = SampleUpdate();
  PageData buf(r.EncodedSize(), 0);
  size_t end = EncodeLogRecord(r, buf, 0);
  EXPECT_EQ(end, r.EncodedSize());

  LogRecord d;
  size_t pos = 0;
  ASSERT_TRUE(DecodeLogRecord(buf, &pos, &d).ok());
  EXPECT_EQ(pos, end);
  EXPECT_EQ(d.kind, r.kind);
  EXPECT_EQ(d.txn, r.txn);
  EXPECT_EQ(d.page, r.page);
  EXPECT_EQ(d.page_version, r.page_version);
  EXPECT_EQ(d.offset, r.offset);
  EXPECT_EQ(d.before, r.before);
  EXPECT_EQ(d.after, r.after);
}

TEST(LogFormatTest, EmptyImagesRoundTrip) {
  LogRecord r;
  r.kind = LogRecordKind::kCommit;
  r.txn = 9;
  PageData buf(r.EncodedSize(), 0);
  EncodeLogRecord(r, buf, 0);
  LogRecord d;
  size_t pos = 0;
  ASSERT_TRUE(DecodeLogRecord(buf, &pos, &d).ok());
  EXPECT_EQ(d.kind, LogRecordKind::kCommit);
  EXPECT_TRUE(d.before.empty());
  EXPECT_TRUE(d.after.empty());
}

TEST(LogFormatTest, SequentialRecordsDecode) {
  LogRecord a = SampleUpdate();
  LogRecord b = SampleUpdate();
  b.txn = 43;
  PageData buf(a.EncodedSize() + b.EncodedSize(), 0);
  size_t p = EncodeLogRecord(a, buf, 0);
  EncodeLogRecord(b, buf, p);
  size_t pos = 0;
  LogRecord d1, d2;
  ASSERT_TRUE(DecodeLogRecord(buf, &pos, &d1).ok());
  ASSERT_TRUE(DecodeLogRecord(buf, &pos, &d2).ok());
  EXPECT_EQ(d1.txn, 42u);
  EXPECT_EQ(d2.txn, 43u);
  EXPECT_EQ(pos, buf.size());
}

TEST(LogFormatTest, TruncatedRecordRejected) {
  LogRecord r = SampleUpdate();
  PageData buf(r.EncodedSize(), 0);
  EncodeLogRecord(r, buf, 0);
  buf.resize(r.EncodedSize() - 2);  // cut the tail
  LogRecord d;
  size_t pos = 0;
  EXPECT_FALSE(DecodeLogRecord(buf, &pos, &d).ok());
  EXPECT_EQ(pos, 0u);  // position untouched on failure
}

TEST(LogFormatTest, GarbageLengthRejected) {
  PageData buf(64, 0xFF);
  LogRecord d;
  size_t pos = 0;
  EXPECT_TRUE(DecodeLogRecord(buf, &pos, &d).IsCorruption());
}

TEST(LogFormatTest, BlockHeaderRoundTrips) {
  PageData block(128, 0);
  LogBlockHeader h;
  h.epoch = 12;
  h.used_bytes = 100;
  h.n_records = 3;
  h.EncodeTo(block);
  LogBlockHeader d = LogBlockHeader::DecodeFrom(block);
  EXPECT_EQ(d.epoch, 12u);
  EXPECT_EQ(d.used_bytes, 100u);
  EXPECT_EQ(d.n_records, 3u);
}

TEST(LogFormatTest, MasterRoundTripsAndValidates) {
  PageData block(128, 0);
  LogMaster m;
  m.epoch = 5;
  m.start_block = 17;
  m.EncodeTo(block);
  LogMaster d;
  ASSERT_TRUE(LogMaster::DecodeFrom(block, &d).ok());
  EXPECT_EQ(d.epoch, 5u);
  EXPECT_EQ(d.start_block, 17u);

  PageData junk(128, 0xAB);
  EXPECT_TRUE(LogMaster::DecodeFrom(junk, &d).IsCorruption());
}

}  // namespace
}  // namespace dbmr::store
