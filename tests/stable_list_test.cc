// Unit tests for the stable record list.

#include <gtest/gtest.h>

#include "store/recovery/stable_list.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 128;

std::vector<uint8_t> Blob(uint8_t v, size_t n = 8) {
  return std::vector<uint8_t>(n, v);
}

TEST(StableListTest, AppendForceScanRoundTrip) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  ASSERT_TRUE(list.Append(Blob(1)).ok());
  ASSERT_TRUE(list.Append(Blob(2)).ok());
  ASSERT_TRUE(list.Force().ok());
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Blob(1));
  EXPECT_EQ(out[1], Blob(2));
}

TEST(StableListTest, UnforcedRecordsNotDurable) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  ASSERT_TRUE(list.Append(Blob(1)).ok());
  EXPECT_TRUE(list.HasUnforced());
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(StableListTest, DropVolatileLosesUnforcedOnly) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  ASSERT_TRUE(list.Append(Blob(1)).ok());
  ASSERT_TRUE(list.Force().ok());
  ASSERT_TRUE(list.Append(Blob(2)).ok());
  list.DropVolatile();
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Blob(1));
}

TEST(StableListTest, RecordsSpanBlocks) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(list.Append(Blob(static_cast<uint8_t>(i), 40)).ok());
  }
  ASSERT_TRUE(list.Force().ok());
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)],
              Blob(static_cast<uint8_t>(i), 40));
  }
}

TEST(StableListTest, TruncateInvalidatesOldRecords) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  ASSERT_TRUE(list.Append(Blob(1)).ok());
  ASSERT_TRUE(list.Force().ok());
  ASSERT_TRUE(list.Truncate().ok());
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(StableListTest, LoadResumesAfterRestart) {
  VirtualDisk d("d", 32, kBlock);
  {
    StableList list(&d, 0, 1, 31);
    ASSERT_TRUE(list.Truncate().ok());
    ASSERT_TRUE(list.Append(Blob(7)).ok());
    ASSERT_TRUE(list.Force().ok());
  }
  StableList list2(&d, 0, 1, 31);
  ASSERT_TRUE(list2.Load().ok());
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list2.Scan(&out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Blob(7));
  EXPECT_EQ(list2.epoch(), 1u);
}

TEST(StableListTest, FullListReportsExhausted) {
  VirtualDisk d("d", 4, kBlock);
  StableList list(&d, 0, 1, 3);
  ASSERT_TRUE(list.Truncate().ok());
  Status st = Status::OK();
  for (int i = 0; i < 100 && st.ok(); ++i) {
    st = list.Append(Blob(static_cast<uint8_t>(i), 40));
    if (st.ok()) st = list.Force();
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(StableListTest, GroupFillKeepsEarlierRecords) {
  VirtualDisk d("d", 32, kBlock);
  StableList list(&d, 0, 1, 31);
  ASSERT_TRUE(list.Truncate().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(list.Append(Blob(static_cast<uint8_t>(i))).ok());
    ASSERT_TRUE(list.Force().ok());  // rewrite partial block each time
  }
  std::vector<std::vector<uint8_t>> out;
  ASSERT_TRUE(list.Scan(&out).ok());
  ASSERT_EQ(out.size(), 5u);
}

}  // namespace
}  // namespace dbmr::store
