// Unit tests for the workload generator (paper §4 transaction model).

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/workload.h"

namespace dbmr::workload {
namespace {

WorkloadOptions SmallOptions(ReferenceKind kind) {
  WorkloadOptions o;
  o.num_transactions = 50;
  o.kind = kind;
  o.db_pages = 10000;
  o.seed = 11;
  return o;
}

TEST(WorkloadTest, DeterministicFromSeed) {
  auto a = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  auto b = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].reads, b[i].reads);
    EXPECT_EQ(a[i].write_set, b[i].write_set);
  }
}

TEST(WorkloadTest, SizesWithinPaperBounds) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  for (const auto& t : txns) {
    EXPECT_GE(t.num_reads(), 1u);
    EXPECT_LE(t.num_reads(), 250u);
  }
}

TEST(WorkloadTest, MeanSizeNearUniformCenter) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  o.num_transactions = 2000;
  auto txns = GenerateWorkload(o);
  double sum = 0;
  for (const auto& t : txns) sum += static_cast<double>(t.num_reads());
  EXPECT_NEAR(sum / static_cast<double>(txns.size()), 125.5, 5.0);
}

TEST(WorkloadTest, WriteSetIsSubsetOfReads) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  for (const auto& t : txns) {
    for (uint64_t w : t.write_set) {
      EXPECT_NE(std::find(t.reads.begin(), t.reads.end(), w),
                t.reads.end());
    }
  }
}

TEST(WorkloadTest, WriteFractionIsTwentyPercent) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  o.num_transactions = 500;
  auto txns = GenerateWorkload(o);
  uint64_t reads = 0, writes = 0;
  for (const auto& t : txns) {
    reads += t.num_reads();
    writes += t.num_writes();
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reads), 0.2,
              0.02);
}

TEST(WorkloadTest, SequentialRunsAreContiguous) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kSequential));
  for (const auto& t : txns) {
    for (size_t i = 1; i < t.reads.size(); ++i) {
      EXPECT_EQ(t.reads[i], t.reads[i - 1] + 1);
    }
  }
}

TEST(WorkloadTest, RandomReadsAreDistinct) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  for (const auto& t : txns) {
    std::unordered_set<uint64_t> seen(t.reads.begin(), t.reads.end());
    EXPECT_EQ(seen.size(), t.reads.size());
  }
}

TEST(WorkloadTest, PagesWithinDatabase) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kSequential));
  for (const auto& t : txns) {
    for (uint64_t p : t.reads) EXPECT_LT(p, 10000u);
  }
}

TEST(WorkloadTest, TotalPagesCountsReadsPlusWrites) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  o.num_transactions = 10;
  auto txns = GenerateWorkload(o);
  uint64_t expect = 0;
  for (const auto& t : txns) expect += t.num_reads() + t.num_writes();
  EXPECT_EQ(TotalPages(txns), expect);
}

TEST(WorkloadTest, IdsAreSequentialFromOne) {
  auto txns = GenerateWorkload(SmallOptions(ReferenceKind::kRandom));
  for (size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].id, i + 1);
  }
}

TEST(WorkloadTest, HotSpotSkewConcentratesReferences) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  o.num_transactions = 300;
  o.hot_fraction = 0.01;
  o.hot_access_prob = 0.8;
  auto txns = GenerateWorkload(o);
  uint64_t hot = 0, total = 0;
  const auto hot_limit = static_cast<uint64_t>(
      static_cast<double>(o.db_pages) * o.hot_fraction);
  for (const auto& t : txns) {
    for (uint64_t p : t.reads) {
      ++total;
      if (p < hot_limit) ++hot;
    }
  }
  // ~80% of references in ~1% of the pages (a little less: distinct-page
  // sampling rejects duplicates inside the tiny hot set).
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.45);
}

TEST(WorkloadTest, ZeroSkewMatchesUniform) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  auto uniform = GenerateWorkload(o);
  o.hot_fraction = 0.0;
  o.hot_access_prob = 0.0;
  auto same = GenerateWorkload(o);
  EXPECT_EQ(uniform[0].reads, same[0].reads);
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadOptions o = SmallOptions(ReferenceKind::kRandom);
  auto a = GenerateWorkload(o);
  o.seed = 12;
  auto b = GenerateWorkload(o);
  EXPECT_NE(a[0].reads, b[0].reads);
}

}  // namespace
}  // namespace dbmr::workload
