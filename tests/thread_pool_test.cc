#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace dbmr::core {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&sum](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

TEST(ThreadPoolTest, FewerItemsThanExecutors) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleItemRunsInline) {
  ThreadPool pool(4);
  std::thread::id ran_on;
  pool.ParallelFor(1, [&ran_on](size_t i) {
    EXPECT_EQ(i, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsEverythingOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::set<std::thread::id> threads;
  pool.ParallelFor(20, [&threads](size_t) {
    threads.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, SizeCountsCallerAndWorkers) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  // Oversubscription is capped at the hardware thread count: extra
  // executors of a CPU-bound loop only add context switches.
  EXPECT_EQ(ThreadPool(4).size(), std::min<size_t>(4, hw));
  EXPECT_EQ(ThreadPool(1000).size(), hw);
  // jobs = 0 means one executor per hardware thread.
  EXPECT_GE(ThreadPool(0).size(), 1u);
}

TEST(ThreadPoolTest, WorkSpreadsAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  pool.ParallelFor(2000, [&mu, &threads](size_t) {
    // A touch of work so workers get a chance to wake before the caller
    // drains the whole range.
    volatile int x = 0;
    for (int i = 0; i < 100; ++i) x = x + i;
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  // The caller always participates; at least one worker usually joins.
  // Scheduling makes "all 4" flaky, so only require more than one.
  EXPECT_GE(threads.size(), 1u);
  EXPECT_LE(threads.size(), 4u);
}

}  // namespace
}  // namespace dbmr::core
