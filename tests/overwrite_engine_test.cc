// Tests for the overwriting engine, both variants (paper §3.2.2.2):
// no-redo (shadows saved to scratch, updates in place) and no-undo
// (updates to scratch, home overwritten after commit).

#include <gtest/gtest.h>

#include <memory>

#include "engine_test_util.h"
#include "store/recovery/overwrite_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 32;

struct OverwriteFixture {
  explicit OverwriteFixture(OverwriteMode mode) {
    OverwriteEngineOptions opts;
    opts.mode = mode;
    opts.list_blocks = 32;
    opts.scratch_blocks = 32;
    disk = std::make_unique<VirtualDisk>(
        "d", 1 + opts.list_blocks + opts.scratch_blocks + kPages, kBlock);
    engine = std::make_unique<OverwriteEngine>(disk.get(), kPages, opts);
    EXPECT_TRUE(engine->Format().ok());
  }
  PageData Payload(uint8_t fill) const {
    return PageData(engine->payload_size(), fill);
  }
  std::unique_ptr<VirtualDisk> disk;
  std::unique_ptr<OverwriteEngine> engine;
};

class OverwriteModeTest : public ::testing::TestWithParam<OverwriteMode> {};

TEST_P(OverwriteModeTest, CommitAndReadBack) {
  OverwriteFixture f(GetParam());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));  // own write visible pre-commit
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST_P(OverwriteModeTest, AbortRestoresOriginal) {
  OverwriteFixture f(GetParam());
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 3, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Abort(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST_P(OverwriteModeTest, UncommittedVanishesOnCrash) {
  OverwriteFixture f(GetParam());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
}

TEST_P(OverwriteModeTest, CommittedSurvivesCrash) {
  OverwriteFixture f(GetParam());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST_P(OverwriteModeTest, ScratchSlotsRecycled) {
  OverwriteFixture f(GetParam());
  size_t free_before = f.engine->free_scratch_slots();
  for (int i = 0; i < 10; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(
        f.engine->Write(*t, static_cast<txn::PageId>(i % kPages),
                        f.Payload(static_cast<uint8_t>(i))).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  EXPECT_EQ(f.engine->free_scratch_slots(), free_before);
}

TEST_P(OverwriteModeTest, ScratchOverflowReported) {
  // A scratch ring smaller than the transaction's write set must overflow
  // with ResourceExhausted (the paper notes the same hazard for shared
  // spare blocks in §3.2.2.1).
  OverwriteEngineOptions opts;
  opts.mode = GetParam();
  opts.list_blocks = 8;
  opts.scratch_blocks = 4;
  VirtualDisk disk("tight", 1 + 8 + 4 + kPages, kBlock);
  OverwriteEngine e(&disk, kPages, opts);
  ASSERT_TRUE(e.Format().ok());
  auto t = e.Begin();
  Status st = Status::OK();
  txn::PageId p = 0;
  while (st.ok() && p < kPages) {
    st = e.Write(*t, p++, PageData(e.payload_size(), 1));
  }
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(OverwriteEngineTest, NoRedoMeansNoRedo) {
  // After a crash with a committed transaction, recovery performs no redo
  // copies: the updates were home before commit.
  OverwriteFixture f(OverwriteMode::kNoRedo);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_EQ(f.engine->redo_copies(), 0u);
}

TEST(OverwriteEngineTest, NoRedoRestoresShadowsForUncommitted) {
  OverwriteFixture f(OverwriteMode::kNoRedo);
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 3, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());  // in place!
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->shadows_restored(), 1u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(OverwriteEngineTest, NoUndoNeverTouchesHomeBeforeCommit) {
  OverwriteFixture f(OverwriteMode::kNoUndo);
  // Observe writes to the home area.
  const BlockId home_start = 1 + 32 + 32;
  uint64_t home_writes = 0;
  f.disk->SetWriteObserver([&](BlockId b, const PageData&) {
    if (b >= home_start) ++home_writes;
  });
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Write(*t, 4, f.Payload(8)).ok());
  EXPECT_EQ(home_writes, 0u);
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_EQ(home_writes, 2u);
}

TEST(OverwriteEngineTest, NoUndoRedoesCommittedButUnappliedAfterCrash) {
  OverwriteFixture f(OverwriteMode::kNoUndo);
  // Crash exactly between the commit record and the home overwrites by
  // budgeting writes: count how many writes a commit consumes first.
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  // One scratch write happened.  Allow exactly the commit-record write,
  // then fail the home overwrite.
  f.disk->FailAfterWrites(1);
  Status st = f.engine->Commit(*t);
  EXPECT_FALSE(st.ok());  // commit record durable, home write failed
  f.disk->ClearCrashState();
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->redo_copies(), 1u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));  // committed: must surface
}

TEST(OverwriteEngineTest, MultipleWritesSamePageNoUndoKeepsLatest) {
  OverwriteFixture f(OverwriteMode::kNoUndo);
  auto t = f.engine->Begin();
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        f.engine->Write(*t, 3, f.Payload(static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(4));
}

class OverwriteWorkloadTest
    : public ::testing::TestWithParam<OverwriteMode> {};

TEST_P(OverwriteWorkloadTest, RandomWorkloadWithCleanCrashes) {
  OverwriteFixture f(GetParam());
  testing::RunRandomWorkload(f.engine.get(), 555, 120);
}

TEST_P(OverwriteWorkloadTest, CrashEverywhereSweep) {
  OverwriteFixture f(GetParam());
  auto counter = std::make_shared<int64_t>(int64_t{1} << 30);
  f.disk->SetSharedFailCounter(counter);
  testing::RunCrashEverywhere(
      f.engine.get(), [&](int64_t n) { *counter = n; },
      [&] {
        *counter = int64_t{1} << 30;
        f.disk->ClearCrashState();
      },
      31415);
}

INSTANTIATE_TEST_SUITE_P(Modes, OverwriteModeTest,
                         ::testing::Values(OverwriteMode::kNoRedo,
                                           OverwriteMode::kNoUndo),
                         [](const ::testing::TestParamInfo<OverwriteMode>& i) {
                           return i.param == OverwriteMode::kNoRedo
                                      ? "noredo"
                                      : "noundo";
                         });
INSTANTIATE_TEST_SUITE_P(Modes, OverwriteWorkloadTest,
                         ::testing::Values(OverwriteMode::kNoRedo,
                                           OverwriteMode::kNoUndo),
                         [](const ::testing::TestParamInfo<OverwriteMode>& i) {
                           return i.param == OverwriteMode::kNoRedo
                                      ? "noredo"
                                      : "noundo";
                         });

}  // namespace
}  // namespace dbmr::store
