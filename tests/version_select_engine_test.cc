// Tests for the version-selection engine: two-copy layout, stamp-based
// selection, commit-list durability, torn-write tolerance, and
// crash-everywhere recovery properties.

#include <gtest/gtest.h>

#include <memory>

#include "engine_test_util.h"
#include "store/recovery/version_select_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 24;

struct VsFixture {
  VsFixture() {
    VersionSelectEngineOptions opts;
    opts.list_blocks = 32;
    disk = std::make_unique<VirtualDisk>("d", 1 + 32 + 2 * kPages, kBlock);
    engine =
        std::make_unique<VersionSelectEngine>(disk.get(), kPages, opts);
    EXPECT_TRUE(engine->Format().ok());
  }
  PageData Payload(uint8_t fill) const {
    return PageData(engine->payload_size(), fill);
  }
  std::unique_ptr<VirtualDisk> disk;
  std::unique_ptr<VersionSelectEngine> engine;
};

TEST(VersionSelectEngineTest, CommitAndReadBack) {
  VsFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST(VersionSelectEngineTest, SelectionFlipsOnCommit) {
  VsFixture f;
  int before = f.engine->SelectCurrent(3);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  EXPECT_EQ(f.engine->SelectCurrent(3), before);  // not yet committed
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_EQ(f.engine->SelectCurrent(3), 1 - before);
}

TEST(VersionSelectEngineTest, AbortNeedsNoDiskAction) {
  VsFixture f;
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 3, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  uint64_t writes_before = f.disk->writes();
  ASSERT_TRUE(f.engine->Abort(*t).ok());
  EXPECT_EQ(f.disk->writes(), writes_before);  // abort wrote nothing
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(VersionSelectEngineTest, UncommittedLosesSelectionAfterCrash) {
  VsFixture f;
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 3, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(VersionSelectEngineTest, CommittedSurvivesCrash) {
  VsFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST(VersionSelectEngineTest, TornDataWriteToleratedByChecksum) {
  // The unique strength of two-copy version selection: a torn page write
  // fails its checksum and selection falls back to the intact shadow.
  VsFixture f;
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 3, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());

  auto t = f.engine->Begin();
  f.disk->SetTornWriteMode(true, kBlock / 2);
  f.disk->FailAfterWrites(0);  // next write tears
  EXPECT_FALSE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  f.disk->ClearCrashState();
  f.disk->SetTornWriteMode(false, 0);

  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->torn_copies_rejected(), 1u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(VersionSelectEngineTest, RepeatedWritesReuseNonCurrentCopy) {
  VsFixture f;
  auto t = f.engine->Begin();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        f.engine->Write(*t, 3, f.Payload(static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(3));
}

TEST(VersionSelectEngineTest, RecoveryNormalizesAndTruncatesCommitList) {
  VsFixture f;
  for (int i = 0; i < 5; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(
        f.engine->Write(*t, static_cast<txn::PageId>(i),
                        f.Payload(static_cast<uint8_t>(i + 1))).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  // A second, immediate crash must also recover correctly: the commit
  // list was truncated only after current copies were re-stamped as
  // system-written.
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t = f.engine->Begin();
  for (int i = 0; i < 5; ++i) {
    PageData out;
    ASSERT_TRUE(
        f.engine->Read(*t, static_cast<txn::PageId>(i), &out).ok());
    EXPECT_EQ(out, f.Payload(static_cast<uint8_t>(i + 1)));
  }
}

TEST(VersionSelectEngineTest, RandomWorkloadWithCleanCrashes) {
  VsFixture f;
  testing::RunRandomWorkload(f.engine.get(), 2024, 120);
}

TEST(VersionSelectEngineTest, CrashEverywhereSweep) {
  VsFixture f;
  auto counter = std::make_shared<int64_t>(int64_t{1} << 30);
  f.disk->SetSharedFailCounter(counter);
  testing::RunCrashEverywhere(
      f.engine.get(), [&](int64_t n) { *counter = n; },
      [&] {
        *counter = int64_t{1} << 30;
        f.disk->ClearCrashState();
      },
      2718);
}

}  // namespace
}  // namespace dbmr::store
