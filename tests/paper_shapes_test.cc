// Reproduction guards: key cells of the paper's tables must stay within
// tolerance of the published values.  These tests protect the calibration
// — if a model change moves a headline shape, they fail before the bench
// output quietly drifts.
//
// Tolerances are generous (shapes, not absolute milliseconds), but tight
// enough that the orderings and crossovers of §4–§5 cannot invert.

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "machine/sim_differential.h"
#include "machine/sim_logging.h"
#include "machine/sim_overwrite.h"
#include "machine/sim_shadow.h"
#include "machine/sim_version_select.h"

namespace dbmr::machine {
namespace {

using core::Configuration;
using core::RunWith;
using core::StandardSetup;
using core::Table3Setup;

constexpr int kTxns = 100;

double Exec(Configuration c, std::unique_ptr<RecoveryArch> arch) {
  return RunWith(StandardSetup(c, kTxns), std::move(arch))
      .exec_time_per_page_ms;
}

TEST(PaperShapesTest, Table1BareBaseline) {
  EXPECT_NEAR(Exec(Configuration::kConvRandom,
                   std::make_unique<BareArch>()),
              18.0, 2.0);
  EXPECT_NEAR(Exec(Configuration::kParRandom, std::make_unique<BareArch>()),
              16.6, 2.0);
  EXPECT_NEAR(Exec(Configuration::kConvSeq, std::make_unique<BareArch>()),
              11.0, 1.5);
  EXPECT_NEAR(Exec(Configuration::kParSeq, std::make_unique<BareArch>()),
              1.9, 0.7);
}

TEST(PaperShapesTest, Table3OneLogDiskBottleneck) {
  SimLoggingOptions o;
  o.physical = true;
  auto r = RunWith(Table3Setup(kTxns), std::make_unique<SimLogging>(o));
  // Paper: 5.1 ms/page with one log disk (bare: 0.9).
  EXPECT_NEAR(r.exec_time_per_page_ms, 5.1, 1.2);
}

TEST(PaperShapesTest, Table3FiveLogDisksRecover) {
  SimLoggingOptions o;
  o.physical = true;
  o.num_log_processors = 5;
  auto r = RunWith(Table3Setup(kTxns), std::make_unique<SimLogging>(o));
  EXPECT_NEAR(r.exec_time_per_page_ms, 1.3, 0.5);
}

TEST(PaperShapesTest, Table4OnePtDegradation) {
  double one = Exec(Configuration::kConvRandom,
                    std::make_unique<SimShadow>());
  EXPECT_NEAR(one, 20.5, 2.5);
}

TEST(PaperShapesTest, Table7ScrambledCatastrophe) {
  SimShadowOptions o;
  o.clustered = false;
  double scrambled =
      Exec(Configuration::kParSeq, std::make_unique<SimShadow>(o));
  // Paper: 18.54 against a bare 1.92 — the most dramatic number in the
  // evaluation.
  EXPECT_NEAR(scrambled, 18.5, 3.5);
}

TEST(PaperShapesTest, Table9BasicDifferentialIsQpBound) {
  SimDifferentialOptions o;
  o.optimal = false;
  for (Configuration c :
       {Configuration::kConvRandom, Configuration::kParSeq}) {
    double e = Exec(c, std::make_unique<SimDifferential>(o));
    EXPECT_NEAR(e, 37.6, 3.0) << core::ConfigurationName(c);
  }
}

TEST(PaperShapesTest, Table11NonlinearAtTwentyPercent) {
  SimDifferentialOptions o;
  o.diff_size = 0.20;
  double e = Exec(Configuration::kConvRandom,
                  std::make_unique<SimDifferential>(o));
  EXPECT_NEAR(e, 37.0, 4.0);
}

TEST(PaperShapesTest, Table12LoggingTracksBareEverywhere) {
  for (Configuration c : core::kAllConfigurations) {
    double bare = Exec(c, std::make_unique<BareArch>());
    double logging = Exec(c, std::make_unique<SimLogging>());
    EXPECT_LT(logging, bare * 1.25) << core::ConfigurationName(c);
  }
}

TEST(PaperShapesTest, Table12OrderingsConvRandom) {
  double bare =
      Exec(Configuration::kConvRandom, std::make_unique<BareArch>());
  double logging =
      Exec(Configuration::kConvRandom, std::make_unique<SimLogging>());
  double shadow1 =
      Exec(Configuration::kConvRandom, std::make_unique<SimShadow>());
  double over =
      Exec(Configuration::kConvRandom, std::make_unique<SimOverwrite>());
  // Paper column order for Conventional-Random: 18.0 / 17.9 / 20.5 / 26.9.
  EXPECT_LT(logging, shadow1);
  EXPECT_LT(shadow1, over);
  EXPECT_NEAR(logging, bare, bare * 0.1);
}

// --------------------------------------------------- extension behaviors

TEST(ExtensionTest, MergeFrequencyAddsDiskLoad) {
  SimDifferentialOptions never;
  SimDifferentialOptions often;
  often.merge_every_output_pages = 20;
  double e_never = Exec(Configuration::kConvRandom,
                        std::make_unique<SimDifferential>(never));
  auto r_often = RunWith(StandardSetup(Configuration::kConvRandom, kTxns),
                         std::make_unique<SimDifferential>(often));
  EXPECT_GT(r_often.exec_time_per_page_ms, e_never * 1.05);
  EXPECT_GT(r_often.extra.at("diff_merges"), 0.0);
  EXPECT_GT(r_often.extra.at("diff_merge_ios"), 0.0);
}

TEST(ExtensionTest, SmartHeadsRemoveVersionSelectPenalty) {
  double plain = Exec(Configuration::kConvSeq,
                      std::make_unique<SimVersionSelect>());
  SimVersionSelectOptions o;
  o.smart_heads = true;
  double smart =
      Exec(Configuration::kConvSeq, std::make_unique<SimVersionSelect>(o));
  EXPECT_LT(smart, plain * 0.85);
}

TEST(ExtensionTest, ClusteringDecayIsMonotone) {
  double prev = 0.0;
  for (double frac : {1.0, 0.75, 0.5, 0.25}) {
    SimShadowOptions o;
    o.cluster_fraction = frac;
    double e =
        Exec(Configuration::kParSeq, std::make_unique<SimShadow>(o));
    EXPECT_GT(e, prev) << "fraction " << frac;
    prev = e;
  }
  SimShadowOptions scrambled;
  scrambled.clustered = false;
  EXPECT_GT(Exec(Configuration::kParSeq,
                 std::make_unique<SimShadow>(scrambled)),
            prev * 0.9);
}

}  // namespace
}  // namespace dbmr::machine
