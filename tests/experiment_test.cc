// Tests for the experiment harness (core API).

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "machine/machine.h"

namespace dbmr::core {
namespace {

TEST(ExperimentTest, StandardSetupMatchesPaperBaseline) {
  auto s = StandardSetup(Configuration::kConvRandom);
  EXPECT_EQ(s.machine.num_query_processors, 25);
  EXPECT_EQ(s.machine.cache_frames, 100);
  EXPECT_EQ(s.machine.num_data_disks, 2);
  EXPECT_EQ(s.machine.disk_kind, hw::DiskKind::kConventional);
  EXPECT_EQ(s.workload.kind, workload::ReferenceKind::kRandom);
  EXPECT_EQ(s.workload.min_pages, 1);
  EXPECT_EQ(s.workload.max_pages, 250);
  EXPECT_DOUBLE_EQ(s.workload.write_fraction, 0.2);
}

TEST(ExperimentTest, ConfigurationsMapToDiskAndReference) {
  EXPECT_EQ(StandardSetup(Configuration::kParRandom).machine.disk_kind,
            hw::DiskKind::kParallelAccess);
  EXPECT_EQ(StandardSetup(Configuration::kParRandom).workload.kind,
            workload::ReferenceKind::kRandom);
  EXPECT_EQ(StandardSetup(Configuration::kConvSeq).machine.disk_kind,
            hw::DiskKind::kConventional);
  EXPECT_EQ(StandardSetup(Configuration::kConvSeq).workload.kind,
            workload::ReferenceKind::kSequential);
}

TEST(ExperimentTest, ConfigurationNames) {
  EXPECT_STREQ(ConfigurationName(Configuration::kConvRandom),
               "Conventional-Random");
  EXPECT_STREQ(ConfigurationName(Configuration::kParSeq),
               "Parallel-Sequential");
}

TEST(ExperimentTest, Table3SetupScalesTheMachine) {
  auto s = Table3Setup();
  EXPECT_EQ(s.machine.num_query_processors, 75);
  EXPECT_EQ(s.machine.cache_frames, 150);
  EXPECT_EQ(s.machine.disk_kind, hw::DiskKind::kParallelAccess);
  EXPECT_EQ(s.workload.kind, workload::ReferenceKind::kSequential);
}

TEST(ExperimentTest, RunWithProducesMetrics) {
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 10),
                   std::make_unique<machine::BareArch>());
  EXPECT_EQ(r.arch_name, "bare");
  EXPECT_GT(r.exec_time_per_page_ms, 0.0);
  EXPECT_EQ(r.completion_ms.count(), 10);
  EXPECT_EQ(r.data_disk_util.size(), 2u);
}

TEST(ExperimentTest, RunAllConfigsCoversAllFour) {
  auto results = RunAllConfigs(
      [] { return std::make_unique<machine::BareArch>(); }, 10);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.completion_ms.count(), 10);
  }
  // Order follows kAllConfigurations: the last is Parallel-Sequential,
  // the fastest configuration.
  EXPECT_LT(results[3].exec_time_per_page_ms,
            results[0].exec_time_per_page_ms);
}

TEST(ExperimentTest, SeedChangesWorkload) {
  auto a = RunWith(StandardSetup(Configuration::kConvRandom, 10, 1),
                   std::make_unique<machine::BareArch>());
  auto b = RunWith(StandardSetup(Configuration::kConvRandom, 10, 2),
                   std::make_unique<machine::BareArch>());
  EXPECT_NE(a.total_time_ms, b.total_time_ms);
}

}  // namespace
}  // namespace dbmr::core
