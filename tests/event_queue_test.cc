// Differential and scale tests for the hybrid heap/ladder event queue.
//
// The simulator dequeues in the strict total order (when, schedule seq)
// regardless of which structure holds the pending list, so a heap-pinned
// kernel and a ladder-forced kernel must fire the exact same sequence for
// any schedule/cancel script — including ties and mid-run spills.  These
// tests drive randomized self-rescheduling scripts through both modes and
// demand identical fire orders, then exercise the ladder at 1M
// outstanding events with heavy cancellation churn.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace dbmr::sim {
namespace {

struct ScriptResult {
  std::vector<uint32_t> fired;
  SimCounters counters;
  TimeMs end_time = 0.0;
};

// Runs a deterministic self-rescheduling churn script.  Every fired event
// derives its own Rng from its label (not from a shared stream), so the
// spawned work depends only on *which* events fire in *what* order —
// exactly the property under test.
ScriptResult RunChurnScript(size_t spill_threshold, bool quantize_times,
                            uint64_t seed, size_t initial_events,
                            size_t max_spawning) {
  Simulator sim;
  sim.set_spill_threshold(spill_threshold);
  ScriptResult out;
  std::vector<EventId> ids;  // label -> id (possibly already fired/stale)
  uint32_t next_label = 0;
  size_t spawners = 0;

  struct Ctx {
    Simulator* sim;
    ScriptResult* out;
    std::vector<EventId>* ids;
    uint32_t* next_label;
    size_t* spawners;
    bool quantize;
    uint64_t seed;
    size_t max_spawning;
  } ctx{&sim, &out, &ids, &next_label, &spawners,
        quantize_times, seed, max_spawning};

  struct Driver {
    static void Schedule(Ctx* c, TimeMs delay) {
      const uint32_t label = (*c->next_label)++;
      c->ids->push_back(kNoEvent);
      const EventId id =
          c->sim->Schedule(delay, [c, label] { Fire(c, label); });
      (*c->ids)[label] = id;
    }
    static void Fire(Ctx* c, uint32_t label) {
      c->out->fired.push_back(label);
      if (*c->spawners >= c->max_spawning) return;
      ++*c->spawners;
      Rng r(c->seed ^ (0x100001b3ULL * (label + 1)));
      const int spawn = static_cast<int>(r.UniformInt(0, 2));
      for (int i = 0; i < spawn; ++i) {
        const TimeMs d = c->quantize
                             ? static_cast<TimeMs>(r.UniformInt(0, 4))
                             : r.UniformDouble(0.0, 10.0);
        Schedule(c, d);
      }
      if (r.Bernoulli(0.25) && !c->ids->empty()) {
        const auto victim = static_cast<size_t>(
            r.UniformInt(0, static_cast<int64_t>(c->ids->size()) - 1));
        c->sim->Cancel((*c->ids)[victim]);  // often stale: a no-op
      }
    }
  };

  Rng seed_rng(seed);
  for (size_t i = 0; i < initial_events; ++i) {
    const TimeMs d = quantize_times
                         ? static_cast<TimeMs>(seed_rng.UniformInt(0, 4))
                         : seed_rng.UniformDouble(0.0, 50.0);
    Driver::Schedule(&ctx, d);
  }
  sim.Run();
  out.counters = sim.counters();
  out.end_time = sim.Now();
  return out;
}

constexpr size_t kHeapPinned = std::numeric_limits<size_t>::max();

TEST(EventQueueDifferentialTest, LadderMatchesHeapOnContinuousTimes) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    ScriptResult heap = RunChurnScript(kHeapPinned, false, seed, 2000, 20000);
    ScriptResult ladder = RunChurnScript(0, false, seed, 2000, 20000);
    EXPECT_EQ(heap.fired, ladder.fired) << "seed " << seed;
    EXPECT_EQ(heap.end_time, ladder.end_time) << "seed " << seed;
    EXPECT_EQ(heap.counters.events_executed, ladder.counters.events_executed);
    EXPECT_EQ(heap.counters.events_cancelled, ladder.counters.events_cancelled);
    EXPECT_EQ(ladder.counters.ladder_spills, 1u);
    EXPECT_EQ(heap.counters.ladder_spills, 0u);
  }
}

TEST(EventQueueDifferentialTest, LadderMatchesHeapUnderHeavyTies) {
  // Quantized delays (0..4 ms) force large equal-timestamp cohorts; FIFO
  // among ties must survive bucketing, spreads, and bottom sorts.
  for (uint64_t seed : {3ull, 11ull}) {
    ScriptResult heap = RunChurnScript(kHeapPinned, true, seed, 3000, 25000);
    ScriptResult ladder = RunChurnScript(0, true, seed, 3000, 25000);
    EXPECT_EQ(heap.fired, ladder.fired) << "seed " << seed;
    EXPECT_EQ(heap.end_time, ladder.end_time) << "seed " << seed;
  }
}

TEST(EventQueueDifferentialTest, MidRunSpillPreservesOrder) {
  // A small threshold makes the kernel migrate heap -> ladder while the
  // script is in flight; the fire order must not notice.
  ScriptResult heap = RunChurnScript(kHeapPinned, false, 5, 2000, 20000);
  ScriptResult spilled = RunChurnScript(512, false, 5, 2000, 20000);
  EXPECT_EQ(heap.fired, spilled.fired);
  EXPECT_EQ(spilled.counters.ladder_spills, 1u);
}

TEST(EventQueueDifferentialTest, DefaultThresholdStaysInHeapAtPaperScale) {
  ScriptResult r = RunChurnScript(Simulator::kDefaultSpillThreshold, false, 1,
                                  2000, 20000);
  EXPECT_EQ(r.counters.ladder_spills, 0u);
}

TEST(EventQueueBoundaryTest, SpillHappensExactlyAtThreshold) {
  // The migration check runs before the push: the heap may hold exactly
  // spill_threshold() entries, and the next Schedule() spills.
  Simulator sim;
  sim.set_spill_threshold(64);
  uint64_t fired = 0;
  TimeMs last = 0.0;
  auto fire = [&] {
    ++fired;
    ASSERT_GE(sim.Now(), last);
    last = sim.Now();
  };
  Rng rng(17);
  for (int i = 0; i < 64; ++i) {
    sim.Schedule(rng.UniformDouble(0.0, 100.0), fire);
  }
  EXPECT_FALSE(sim.ladder_active());
  EXPECT_EQ(sim.counters().ladder_spills, 0u);
  sim.Schedule(rng.UniformDouble(0.0, 100.0), fire);  // 65th: boundary
  EXPECT_TRUE(sim.ladder_active());
  EXPECT_EQ(sim.counters().ladder_spills, 1u);
  sim.Run();
  EXPECT_EQ(fired, 65u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(EventQueueBoundaryTest, ThresholdEqualToInitialBatchMatchesHeap) {
  // The spill lands exactly on the last event of the seeding loop — the
  // off-by-one-prone alignment — and the fire order must not notice.
  ScriptResult heap = RunChurnScript(kHeapPinned, false, 13, 2000, 20000);
  ScriptResult spilled = RunChurnScript(2000, false, 13, 2000, 20000);
  EXPECT_EQ(heap.fired, spilled.fired);
  EXPECT_EQ(heap.end_time, spilled.end_time);
  EXPECT_EQ(spilled.counters.ladder_spills, 1u);
}

TEST(EventQueueBoundaryTest, CancelInUnsortedOverflowBand) {
  // Events cancelled while they still sit in the unsorted overflow list
  // are dropped lazily when they surface; none may fire, the live count
  // must track the cancellations, and double-cancel must be a no-op.
  Simulator sim;
  sim.set_spill_threshold(0);  // ladder from the first event
  Rng rng(5);
  std::vector<EventId> ids;
  uint64_t fired = 0;
  TimeMs last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sim.Schedule(rng.UniformDouble(0.0, 500.0), [&] {
      ++fired;
      ASSERT_GE(sim.Now(), last);
      last = sim.Now();
    }));
  }
  ASSERT_TRUE(sim.ladder_active());
  // No dequeue has happened: everything pending is in the overflow band.
  uint64_t cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3) {
    EXPECT_TRUE(sim.Cancel(ids[i]));
    EXPECT_FALSE(sim.Cancel(ids[i]));  // stale id: no-op
    ++cancelled;
  }
  EXPECT_EQ(sim.PendingEvents(), 1000u - cancelled);
  sim.Run();
  EXPECT_EQ(fired, 1000u - cancelled);
  EXPECT_EQ(sim.counters().events_cancelled, cancelled);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(EventQueueBoundaryTest, RescheduleLandsInPartiallyDrainedBottom) {
  // Drain the ladder partway (so the sorted bottom run is mid-consumption),
  // then insert events below every rung frontier: they must sort into the
  // remaining bottom run and fire in global time order — and the same
  // script through a heap-pinned kernel must fire identically.
  auto run = [](size_t spill_threshold) {
    Simulator sim;
    sim.set_spill_threshold(spill_threshold);
    ScriptResult out;
    Rng rng(23);
    // A tight cluster, so the first spread sorts straight into bottom and
    // mid-drain inserts land in the partially-consumed run.
    for (int i = 0; i < 48; ++i) {
      const uint32_t label = static_cast<uint32_t>(i);
      const TimeMs when = static_cast<TimeMs>(rng.UniformInt(0, 12));
      sim.ScheduleAt(when, [&out, &sim, label] {
        out.fired.push_back(label);
        if (label % 5 == 0) {
          // Lands between bottom_'s consumed frontier and its tail...
          const uint32_t near_label = 1000 + label;
          sim.Schedule(0.25, [&out, near_label] {
            out.fired.push_back(near_label);
          });
          // ...and far beyond it, in the overflow band.
          const uint32_t far_label = 2000 + label;
          sim.Schedule(1000.0, [&out, far_label] {
            out.fired.push_back(far_label);
          });
        }
      });
    }
    sim.Run();
    out.counters = sim.counters();
    out.end_time = sim.Now();
    return out;
  };
  ScriptResult heap = run(kHeapPinned);
  ScriptResult ladder = run(0);
  EXPECT_EQ(heap.fired, ladder.fired);
  EXPECT_EQ(heap.end_time, ladder.end_time);
  EXPECT_EQ(heap.counters.events_executed, ladder.counters.events_executed);
  EXPECT_EQ(ladder.counters.ladder_spills, 1u);
}

TEST(EventQueueScaleTest, MillionOutstandingChurnAndCancel) {
  constexpr size_t kOutstanding = 1'000'000;
  Simulator sim;  // default threshold: spills on its own past 8192
  Rng rng(99);
  std::vector<EventId> ids;
  ids.reserve(kOutstanding);
  uint64_t fired = 0;
  TimeMs last = 0.0;
  for (size_t i = 0; i < kOutstanding; ++i) {
    ids.push_back(sim.Schedule(rng.UniformDouble(0.0, 1e6), [&] {
      ++fired;
      ASSERT_GE(sim.Now(), last);  // nondecreasing fire times
      last = sim.Now();
    }));
  }
  EXPECT_EQ(sim.PendingEvents(), kOutstanding);
  EXPECT_TRUE(sim.ladder_active());
  EXPECT_EQ(sim.counters().ladder_spills, 1u);
  EXPECT_EQ(sim.counters().max_heap_depth, kOutstanding);

  // Cancel every third event, then churn: each fired event reschedules a
  // short-lived successor for a while.
  uint64_t cancelled = 0;
  for (size_t i = 0; i < ids.size(); i += 3) {
    cancelled += sim.Cancel(ids[i]) ? 1u : 0u;
  }
  EXPECT_EQ(sim.PendingEvents(), kOutstanding - cancelled);
  sim.Run();
  EXPECT_EQ(fired, kOutstanding - cancelled);
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.counters().events_executed, fired);
  EXPECT_EQ(sim.counters().events_cancelled, cancelled);
}

TEST(EventQueueScaleTest, ReschedulingChurnAtScaleDrainsCompletely) {
  struct Ctx {
    Simulator sim;
    uint64_t budget = 400'000;  // extra events to spawn while draining
    static void Chain(Ctx* c) {
      if (c->budget == 0) return;
      --c->budget;
      Rng r(c->budget);
      c->sim.Schedule(r.UniformDouble(0.0, 50.0), [c] { Chain(c); });
    }
  } ctx;
  ctx.sim.set_spill_threshold(0);  // ladder from the first event
  constexpr size_t kSeeded = 200'000;
  Rng rng(7);
  for (size_t i = 0; i < kSeeded; ++i) {
    ctx.sim.Schedule(rng.UniformDouble(0.0, 1e4), [&ctx] { Ctx::Chain(&ctx); });
  }
  ctx.sim.Run();
  EXPECT_EQ(ctx.sim.PendingEvents(), 0u);
  EXPECT_EQ(ctx.sim.counters().events_executed, kSeeded + 400'000);
}

}  // namespace
}  // namespace dbmr::sim
