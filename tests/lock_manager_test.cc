// Unit tests for page-level locking and deadlock detection.

#include <gtest/gtest.h>

#include "txn/lock_manager.h"

namespace dbmr::txn {
namespace {

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.Acquire(2, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  EXPECT_TRUE(lm.Holds(1, 10, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, 10, LockMode::kShared));
  EXPECT_EQ(lm.TotalGranted(), 2u);
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  bool granted = false;
  EXPECT_EQ(lm.Acquire(2, 10, LockMode::kShared, [&] { granted = true; }),
            AcquireResult::kWaiting);
  EXPECT_FALSE(granted);
  ASSERT_TRUE(lm.Release(1, 10).ok());
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(2, 10, LockMode::kShared));
}

TEST(LockManagerTest, ReentrantAcquire) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.LockCount(1), 1u);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  EXPECT_TRUE(lm.Holds(1, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeWaitsForOtherReaders) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(2, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  bool upgraded = false;
  EXPECT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; }),
            AcquireResult::kWaiting);
  EXPECT_FALSE(upgraded);
  ASSERT_TRUE(lm.Release(2, 10).ok());
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(lm.Holds(1, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, FcfsNoBargingPastWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kShared, nullptr),
            AcquireResult::kGranted);
  bool writer_granted = false;
  ASSERT_EQ(
      lm.Acquire(2, 10, LockMode::kExclusive, [&] { writer_granted = true; }),
      AcquireResult::kWaiting);
  // A new reader must NOT jump ahead of the queued writer.
  bool reader_granted = false;
  EXPECT_EQ(
      lm.Acquire(3, 10, LockMode::kShared, [&] { reader_granted = true; }),
      AcquireResult::kWaiting);
  ASSERT_TRUE(lm.Release(1, 10).ok());
  EXPECT_TRUE(writer_granted);
  EXPECT_FALSE(reader_granted);
  ASSERT_TRUE(lm.Release(2, 10).ok());
  EXPECT_TRUE(reader_granted);
}

TEST(LockManagerTest, DeadlockDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(2, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(1, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kWaiting);
  // 2 requesting 10 closes the cycle 1 -> 2 -> 1.
  EXPECT_EQ(lm.Acquire(2, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kDeadlock);
  EXPECT_EQ(lm.deadlocks_detected(), 1u);
}

TEST(LockManagerTest, ThreeWayDeadlockDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(2, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(3, 30, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(1, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kWaiting);
  ASSERT_EQ(lm.Acquire(2, 30, LockMode::kExclusive, nullptr),
            AcquireResult::kWaiting);
  EXPECT_EQ(lm.Acquire(3, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kDeadlock);
}

TEST(LockManagerTest, NoFalseDeadlock) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(2, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  // A chain 3 -> 1 and 3 -> 2 is not a cycle.
  EXPECT_EQ(lm.Acquire(3, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kWaiting);
  EXPECT_EQ(lm.deadlocks_detected(), 0u);
}

TEST(LockManagerTest, ReleaseAllWakesWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  ASSERT_EQ(lm.Acquire(1, 20, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  int granted = 0;
  ASSERT_EQ(lm.Acquire(2, 10, LockMode::kExclusive, [&] { ++granted; }),
            AcquireResult::kWaiting);
  ASSERT_EQ(lm.Acquire(3, 20, LockMode::kExclusive, [&] { ++granted; }),
            AcquireResult::kWaiting);
  lm.ReleaseAll(1);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(lm.LockCount(1), 0u);
}

TEST(LockManagerTest, ReleaseAllRemovesQueuedRequests) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(1, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kGranted);
  bool granted = false;
  ASSERT_EQ(lm.Acquire(2, 10, LockMode::kExclusive, [&] { granted = true; }),
            AcquireResult::kWaiting);
  lm.ReleaseAll(2);  // abort the waiter
  ASSERT_TRUE(lm.Release(1, 10).ok());
  EXPECT_FALSE(granted);  // dead waiter must not be granted
  EXPECT_EQ(lm.TotalGranted(), 0u);
}

TEST(LockManagerTest, ReleaseUnheldLockFails) {
  LockManager lm;
  EXPECT_TRUE(lm.Release(1, 10).IsNotFound());
}

TEST(LockManagerTest, TryAcquireNeverQueues) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  EXPECT_FALSE(lm.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_EQ(lm.TotalWaiting(), 0u);
  // Reentrant and upgrade paths.
  EXPECT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  ASSERT_TRUE(lm.Release(1, 10).ok());
  EXPECT_TRUE(lm.TryAcquire(2, 10, LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(2, 10, LockMode::kExclusive));  // sole holder
}

TEST(LockManagerTest, HeldPagesReportsLocks) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kShared));
  ASSERT_TRUE(lm.TryAcquire(1, 20, LockMode::kExclusive));
  auto pages = lm.HeldPages(1);
  EXPECT_EQ(pages.size(), 2u);
}

TEST(LockManagerTest, ResetClearsEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  ASSERT_EQ(lm.Acquire(2, 10, LockMode::kExclusive, nullptr),
            AcquireResult::kWaiting);
  lm.Reset();
  EXPECT_EQ(lm.TotalGranted(), 0u);
  EXPECT_EQ(lm.TotalWaiting(), 0u);
  EXPECT_TRUE(lm.TryAcquire(3, 10, LockMode::kExclusive));
}

TEST(LockManagerTest, WaitCounterIncrements) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, 10, LockMode::kExclusive));
  ASSERT_EQ(lm.Acquire(2, 10, LockMode::kShared, nullptr),
            AcquireResult::kWaiting);
  EXPECT_EQ(lm.waits(), 1u);
  EXPECT_EQ(lm.TotalWaiting(), 1u);
}

}  // namespace
}  // namespace dbmr::txn
