// Copy-on-write snapshot/fork semantics of VirtualDisk and the
// fixture-level forking the parallel crash sweeper is built on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/engine_zoo.h"
#include "store/virtual_disk.h"

namespace dbmr {
namespace {

using store::DiskSnapshot;
using store::PageData;
using store::VirtualDisk;

PageData Filled(size_t n, uint8_t v) { return PageData(n, v); }

TEST(DiskSnapshotTest, ForkSeesSnapshotContents) {
  VirtualDisk disk("d", 8, 64);
  ASSERT_TRUE(disk.Write(3, Filled(64, 0xAB)).ok());
  DiskSnapshot snap = disk.Snapshot();
  EXPECT_EQ(snap.num_blocks(), 8u);
  EXPECT_EQ(snap.block_size(), 64u);
  EXPECT_EQ(snap.name(), "d");

  std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(snap);
  PageData got;
  ASSERT_TRUE(fork->Read(3, &got).ok());
  EXPECT_EQ(got, Filled(64, 0xAB));
  ASSERT_TRUE(fork->Read(0, &got).ok());
  EXPECT_EQ(got, Filled(64, 0x00));
}

TEST(DiskSnapshotTest, ForkWritesAreInvisibleToParentAndSiblings) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(1, Filled(64, 0x11)).ok());
  DiskSnapshot snap = disk.Snapshot();

  std::unique_ptr<VirtualDisk> a = VirtualDisk::ForkFrom(snap);
  std::unique_ptr<VirtualDisk> b = VirtualDisk::ForkFrom(snap);
  ASSERT_TRUE(a->Write(1, Filled(64, 0xA1)).ok());

  PageData got;
  ASSERT_TRUE(disk.Read(1, &got).ok());
  EXPECT_EQ(got, Filled(64, 0x11));  // parent untouched
  ASSERT_TRUE(b->Read(1, &got).ok());
  EXPECT_EQ(got, Filled(64, 0x11));  // sibling untouched
  ASSERT_TRUE(a->Read(1, &got).ok());
  EXPECT_EQ(got, Filled(64, 0xA1));
}

TEST(DiskSnapshotTest, ParentWritesAfterSnapshotAreInvisibleToFork) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(2, Filled(64, 0x22)).ok());
  DiskSnapshot snap = disk.Snapshot();
  ASSERT_TRUE(disk.Write(2, Filled(64, 0x99)).ok());

  std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(snap);
  PageData got;
  ASSERT_TRUE(fork->Read(2, &got).ok());
  EXPECT_EQ(got, Filled(64, 0x22));
}

TEST(DiskSnapshotTest, ForkDoesNotInheritFaultStateOrBudgets) {
  VirtualDisk disk("d", 4, 64);
  auto budget = std::make_shared<int64_t>(0);
  disk.SetSharedFailCounter(budget);
  EXPECT_FALSE(disk.Write(0, Filled(64, 1)).ok());
  EXPECT_TRUE(disk.crashed());

  std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(disk.Snapshot());
  EXPECT_FALSE(fork->crashed());
  EXPECT_EQ(fork->fault_counters().total(), 0u);
  EXPECT_EQ(fork->reads(), 0u);
  EXPECT_EQ(fork->writes(), 0u);
  // The parent's exhausted shared budget does not gate the fork.
  EXPECT_TRUE(fork->Write(0, Filled(64, 2)).ok());
}

TEST(DiskSnapshotTest, ForkDoesNotInheritTransientArms) {
  VirtualDisk disk("d", 4, 64);
  disk.ArmTransientWriteError(0);
  std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(disk.Snapshot());
  // The parent's next write fails once; the fork's does not.
  EXPECT_FALSE(disk.Write(0, Filled(64, 1)).ok());
  EXPECT_TRUE(fork->Write(0, Filled(64, 1)).ok());
}

TEST(DiskSnapshotTest, SnapshotsAreStableAcrossLaterFaults) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(0, Filled(64, 0x55)).ok());
  DiskSnapshot snap = disk.Snapshot();
  ASSERT_TRUE(disk.FlipBit(0, 0, 0x01).ok());

  std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(snap);
  PageData got;
  ASSERT_TRUE(fork->Read(0, &got).ok());
  EXPECT_EQ(got, Filled(64, 0x55));  // pre-flip image
}

TEST(VirtualDiskReadTest, ReadIntoMatchesRead) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(1, Filled(64, 0x77)).ok());
  PageData via_read;
  ASSERT_TRUE(disk.Read(1, &via_read).ok());
  PageData via_read_into(64);
  ASSERT_TRUE(disk.ReadInto(1, via_read_into.data()).ok());
  EXPECT_EQ(via_read, via_read_into);
  EXPECT_EQ(disk.reads(), 2u);
}

TEST(VirtualDiskReadTest, ReadReusesBufferCapacity) {
  VirtualDisk disk("d", 4, 64);
  PageData out;
  ASSERT_TRUE(disk.Read(0, &out).ok());
  const uint8_t* storage = out.data();
  ASSERT_TRUE(disk.Read(1, &out).ok());
  EXPECT_EQ(out.data(), storage);  // same allocation, no realloc
}

TEST(VirtualDiskReadTest, ReadIntoHonorsFaults) {
  VirtualDisk disk("d", 4, 64);
  disk.FailAfterReads(1);
  PageData buf(64);
  EXPECT_TRUE(disk.ReadInto(0, buf.data()).ok());
  EXPECT_FALSE(disk.ReadInto(0, buf.data()).ok());
  EXPECT_EQ(disk.fault_counters().read_failures, 1u);
}

TEST(VirtualDiskReadTest, RestoreBlockBypassesFaultsAndCounters) {
  VirtualDisk disk("d", 4, 64);
  auto budget = std::make_shared<int64_t>(0);
  disk.SetSharedFailCounter(budget);
  PageData data = Filled(64, 0xEE);
  disk.RestoreBlock(2, data.data(), data.size());
  EXPECT_EQ(disk.writes(), 0u);
  EXPECT_FALSE(disk.crashed());

  disk.SetSharedFailCounter(nullptr);
  PageData got;
  ASSERT_TRUE(disk.Read(2, &got).ok());
  EXPECT_EQ(got, data);
}

TEST(VirtualDiskReadTest, RestoreBlockPrefixKeepsTail) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(0, Filled(64, 0x10)).ok());
  PageData prefix = Filled(16, 0x20);
  disk.RestoreBlock(0, prefix.data(), prefix.size());
  PageData got;
  ASSERT_TRUE(disk.Read(0, &got).ok());
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(got[i], i < 16 ? 0x20 : 0x10) << i;
  }
}

TEST(DiskSnapshotTest, ForksAreUsableFromOtherThreads) {
  VirtualDisk disk("d", 4, 64);
  ASSERT_TRUE(disk.Write(0, Filled(64, 0x42)).ok());
  DiskSnapshot snap = disk.Snapshot();
  Status st;
  std::thread t([&snap, &st] {
    std::unique_ptr<VirtualDisk> fork = VirtualDisk::ForkFrom(snap);
    PageData got;
    st = fork->Read(0, &got);
    if (st.ok() && got != Filled(64, 0x42)) {
      st = Status::Internal("wrong contents");
    }
  });
  t.join();
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(FixtureSnapshotTest, ForkedFixtureRecoversCommittedState) {
  auto fx = chaos::MakeEngineFixture("wal");
  ASSERT_TRUE(fx.ok()) << fx.status().ToString();

  store::PageEngine* eng = fx->engine.get();
  ASSERT_TRUE(eng->Recover().ok());
  const PageData payload = Filled(eng->payload_size(), 0x5A);
  auto t = eng->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(eng->Write(*t, 3, payload).ok());
  ASSERT_TRUE(eng->Commit(*t).ok());

  chaos::FixtureSnapshot snap = fx->TakeSnapshot();
  auto fork = chaos::ForkEngineFixture("wal", snap);
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();
  ASSERT_TRUE(fork->engine->Recover().ok());

  PageData got;
  auto t2 = fork->engine->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(fork->engine->Read(*t2, 3, &got).ok());
  EXPECT_EQ(got, payload);
  ASSERT_TRUE(fork->engine->Commit(*t2).ok());

  // The fork is independent: new commits there stay invisible here.
  auto t3 = fork->engine->Begin();
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(
      fork->engine->Write(*t3, 4, Filled(fork->engine->payload_size(), 0x77))
          .ok());
  ASSERT_TRUE(fork->engine->Commit(*t3).ok());

  auto t4 = eng->Begin();
  ASSERT_TRUE(t4.ok());
  ASSERT_TRUE(eng->Read(*t4, 4, &got).ok());
  EXPECT_EQ(got, Filled(eng->payload_size(), 0x00));
}

TEST(FixtureSnapshotTest, ForkStartsWithFreshBudgetsAndCounters) {
  auto fx = chaos::MakeEngineFixture("shadow");
  ASSERT_TRUE(fx.ok());
  ASSERT_TRUE(fx->engine->Recover().ok());
  fx->ArmWrites(0);  // parent is out of write budget

  auto fork = chaos::ForkEngineFixture("shadow", fx->TakeSnapshot());
  ASSERT_TRUE(fork.ok());
  EXPECT_EQ(fork->TotalReads(), 0u);
  EXPECT_EQ(fork->TotalWrites(), 0u);
  EXPECT_FALSE(fork->AnyCrashed());
  ASSERT_TRUE(fork->engine->Recover().ok());  // writes allowed on the fork
}

}  // namespace
}  // namespace dbmr
