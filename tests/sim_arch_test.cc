// Tests for the simulated recovery architectures: each §3 mechanism's
// characteristic behavior and the paper's qualitative results.

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "machine/sim_differential.h"
#include "machine/sim_logging.h"
#include "machine/sim_overwrite.h"
#include "machine/sim_shadow.h"
#include "machine/sim_version_select.h"

namespace dbmr::machine {
namespace {

using core::Configuration;
using core::RunWith;
using core::StandardSetup;
using core::Table3Setup;

// ---------------------------------------------------------------- logging

TEST(SimLoggingTest, LogicalLoggingBarelyAffectsThroughput) {
  auto bare = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                      std::make_unique<BareArch>());
  auto logged = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                        std::make_unique<SimLogging>());
  // Paper Table 1: throughput essentially unchanged.
  EXPECT_NEAR(logged.exec_time_per_page_ms, bare.exec_time_per_page_ms,
              bare.exec_time_per_page_ms * 0.12);
}

TEST(SimLoggingTest, LogDiskNearlyIdleWithLogicalLogging) {
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                   std::make_unique<SimLogging>());
  // Paper Table 2: utilization ~0.02.
  EXPECT_LT(r.extra["log_disk_util_0"], 0.15);
  EXPECT_GT(r.extra["log_pages_written_0"], 0.0);
}

TEST(SimLoggingTest, UpdatedPagesBlockInCacheForTheLog) {
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                   std::make_unique<SimLogging>());
  EXPECT_GT(r.avg_blocked_pages, 0.0);
  // Paper: "on average, there were less than 5 pages ... waiting".
  EXPECT_LT(r.avg_blocked_pages, 10.0);
}

TEST(SimLoggingTest, PhysicalLoggingWithOneDiskBottlenecks) {
  auto bare = RunWith(Table3Setup(40), std::make_unique<BareArch>());
  SimLoggingOptions o;
  o.physical = true;
  auto r = RunWith(Table3Setup(40), std::make_unique<SimLogging>(o));
  // Paper Table 3: 0.9 -> 5.1 ms/page.
  EXPECT_GT(r.exec_time_per_page_ms, bare.exec_time_per_page_ms * 3.0);
  EXPECT_GT(r.avg_blocked_pages, 20.0);  // frames pinned by blocked pages
}

TEST(SimLoggingTest, MoreLogDisksRestorePerformance) {
  SimLoggingOptions one;
  one.physical = true;
  SimLoggingOptions five;
  five.physical = true;
  five.num_log_processors = 5;
  auto r1 = RunWith(Table3Setup(40), std::make_unique<SimLogging>(one));
  auto r5 = RunWith(Table3Setup(40), std::make_unique<SimLogging>(five));
  EXPECT_LT(r5.exec_time_per_page_ms, r1.exec_time_per_page_ms / 2.5);
}

TEST(SimLoggingTest, TxnModSelectionIsTheLoser) {
  SimLoggingOptions cyc;
  cyc.physical = true;
  cyc.num_log_processors = 4;
  SimLoggingOptions tm = cyc;
  tm.select = LogSelect::kTxnMod;
  auto rc = RunWith(Table3Setup(40), std::make_unique<SimLogging>(cyc));
  auto rt = RunWith(Table3Setup(40), std::make_unique<SimLogging>(tm));
  // Paper §4.1.2: with few concurrent transactions, TranNo mod TotLp
  // congests one log processor while others idle.
  EXPECT_GT(rt.exec_time_per_page_ms, rc.exec_time_per_page_ms * 1.15);
}

TEST(SimLoggingTest, SelectionPoliciesSpreadLoadComparably) {
  for (LogSelect s :
       {LogSelect::kCyclic, LogSelect::kRandom, LogSelect::kQpMod}) {
    SimLoggingOptions o;
    o.physical = true;
    o.num_log_processors = 3;
    o.select = s;
    auto r = RunWith(Table3Setup(30), std::make_unique<SimLogging>(o));
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 3; ++i) {
      double u = r.extra["log_disk_util_" + std::to_string(i)];
      lo = std::min(lo, u);
      hi = std::max(hi, u);
    }
    EXPECT_LT(hi - lo, 0.25) << LogSelectName(s);
  }
}

TEST(SimLoggingTest, InsensitiveToChannelBandwidth) {
  // Paper §4.1.3: 1.0 vs 0.01 MB/s barely matters.
  SimLoggingOptions fast;
  fast.channel_mb_per_sec = 1.0;
  SimLoggingOptions slow;
  slow.channel_mb_per_sec = 0.01;
  auto rf = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                    std::make_unique<SimLogging>(fast));
  auto rs = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                    std::make_unique<SimLogging>(slow));
  EXPECT_NEAR(rs.exec_time_per_page_ms, rf.exec_time_per_page_ms,
              rf.exec_time_per_page_ms * 0.1);
}

TEST(SimLoggingTest, RoutingThroughCacheCostsNothing) {
  SimLoggingOptions via;
  via.route_via_cache = true;
  auto direct = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                        std::make_unique<SimLogging>());
  auto cached = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                        std::make_unique<SimLogging>(via));
  EXPECT_NEAR(cached.exec_time_per_page_ms, direct.exec_time_per_page_ms,
              direct.exec_time_per_page_ms * 0.1);
}

TEST(SimLoggingTest, CommitForcesPendingFragments) {
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 20),
                   std::make_unique<SimLogging>());
  // Every transaction's fragments must be durable at commit; with 20
  // transactions there are at least that many forced log pages.
  EXPECT_GE(r.extra["log_pages_written_0"], 20.0);
}

// ----------------------------------------------------------------- shadow

TEST(SimShadowTest, OnePtProcessorDegradesRandomWorkloads) {
  auto bare = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                      std::make_unique<BareArch>());
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                   std::make_unique<SimShadow>());
  // Paper Table 4: 18.0 -> 20.5.
  EXPECT_GT(r.exec_time_per_page_ms, bare.exec_time_per_page_ms * 1.05);
  EXPECT_GT(r.extra["pt_disk_util_0"], 0.9);
}

TEST(SimShadowTest, TwoPtProcessorsRemoveTheBottleneck) {
  SimShadowOptions two;
  two.num_pt_processors = 2;
  auto bare = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                      std::make_unique<BareArch>());
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                   std::make_unique<SimShadow>(two));
  EXPECT_NEAR(r.exec_time_per_page_ms, bare.exec_time_per_page_ms,
              bare.exec_time_per_page_ms * 0.06);
}

TEST(SimShadowTest, LargeBufferAnnulsTheDegradation) {
  SimShadowOptions big;
  big.pt_buffer_pages = 50;
  auto one = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                     std::make_unique<SimShadow>());
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 80),
                   std::make_unique<SimShadow>(big));
  // Paper Table 6: buffer 50 recovers the bare throughput.
  EXPECT_LT(r.exec_time_per_page_ms, one.exec_time_per_page_ms * 0.95);
}

TEST(SimShadowTest, SequentialWorkloadsBarelyTouchThePageTable) {
  auto r = RunWith(StandardSetup(Configuration::kConvSeq, 40),
                   std::make_unique<SimShadow>());
  // At most two page-table pages per transaction (paper §4.2.1).
  EXPECT_LT(r.extra["pt_disk_util_0"], 0.15);
  EXPECT_GT(r.extra["pt_buffer_hit_rate"], 0.5);
}

TEST(SimShadowTest, ScramblingDevastatesSequentialWorkloads) {
  SimShadowOptions scrambled;
  scrambled.clustered = false;
  auto clustered = RunWith(StandardSetup(Configuration::kParSeq, 40),
                           std::make_unique<SimShadow>());
  auto r = RunWith(StandardSetup(Configuration::kParSeq, 40),
                   std::make_unique<SimShadow>(scrambled));
  // Paper Table 7: 1.94 -> 18.54 ms/page on parallel-access disks.
  EXPECT_GT(r.exec_time_per_page_ms,
            clustered.exec_time_per_page_ms * 5.0);
}

TEST(SimShadowTest, ScramblingDoublesSequentialAccessTimeOnConventional) {
  SimShadowOptions scrambled;
  scrambled.clustered = false;
  auto clustered = RunWith(StandardSetup(Configuration::kConvSeq, 40),
                           std::make_unique<SimShadow>());
  auto r = RunWith(StandardSetup(Configuration::kConvSeq, 40),
                   std::make_unique<SimShadow>(scrambled));
  // Paper Table 7: 10.98 -> 20.74.
  EXPECT_GT(r.exec_time_per_page_ms,
            clustered.exec_time_per_page_ms * 1.5);
}

// -------------------------------------------------------------- overwrite

TEST(SimOverwriteTest, ExtraIosHurtConventionalRandom) {
  auto bare = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                      std::make_unique<BareArch>());
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                   std::make_unique<SimOverwrite>());
  // Paper Table 8: 18.0 -> 26.9.
  EXPECT_GT(r.exec_time_per_page_ms, bare.exec_time_per_page_ms * 1.2);
}

TEST(SimOverwriteTest, ParallelDisksAbsorbTheOverwrites) {
  auto bare = RunWith(StandardSetup(Configuration::kParSeq, 40),
                      std::make_unique<BareArch>());
  auto r = RunWith(StandardSetup(Configuration::kParSeq, 40),
                   std::make_unique<SimOverwrite>());
  // Paper Table 7: 1.92 -> 2.31 only.
  EXPECT_LT(r.exec_time_per_page_ms, bare.exec_time_per_page_ms * 1.6);
}

TEST(SimOverwriteTest, NoUndoDoesScratchReadsAndHomeWrites) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  auto txns = workload::GenerateWorkload(setup.workload);
  uint64_t updates = 0;
  for (const auto& t : txns) updates += t.num_writes();
  Machine m(setup.machine, txns, std::make_unique<SimOverwrite>());
  auto r = m.Run();
  EXPECT_EQ(static_cast<uint64_t>(r.extra["scratch_writes"]), updates);
  EXPECT_EQ(static_cast<uint64_t>(r.extra["scratch_reads"]), updates);
  EXPECT_EQ(static_cast<uint64_t>(r.extra["home_overwrites"]), updates);
}

TEST(SimOverwriteTest, NoRedoSkipsCommitTimeIo) {
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 20),
                   std::make_unique<SimOverwrite>(SimOverwriteMode::kNoRedo));
  EXPECT_EQ(r.extra["scratch_reads"], 0.0);
  EXPECT_GT(r.extra["scratch_writes"], 0.0);
  EXPECT_GT(r.extra["home_overwrites"], 0.0);
}

// ------------------------------------------------------------ differential

TEST(SimDifferentialTest, BasicStrategySaturatesQueryProcessors) {
  SimDifferentialOptions basic;
  basic.optimal = false;
  auto r = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                   std::make_unique<SimDifferential>(basic));
  // Paper §4.3.1: with the basic approach the QPs, not the disks, limit
  // the machine, uniformly across configurations.
  EXPECT_GT(r.qp_util, 0.9);
  EXPECT_LT(r.data_disk_util[0], 0.8);
}

TEST(SimDifferentialTest, BasicStrategyUniformAcrossConfigs) {
  SimDifferentialOptions basic;
  basic.optimal = false;
  auto a = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                   std::make_unique<SimDifferential>(basic));
  auto b = RunWith(StandardSetup(Configuration::kParSeq, 30),
                   std::make_unique<SimDifferential>(basic));
  EXPECT_NEAR(a.exec_time_per_page_ms, b.exec_time_per_page_ms,
              a.exec_time_per_page_ms * 0.1);
}

TEST(SimDifferentialTest, OptimalStrategyRecoversMostThroughput) {
  SimDifferentialOptions basic;
  basic.optimal = false;
  auto rb = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                    std::make_unique<SimDifferential>(basic));
  auto ro = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                    std::make_unique<SimDifferential>());
  EXPECT_LT(ro.exec_time_per_page_ms, rb.exec_time_per_page_ms * 0.66);
}

TEST(SimDifferentialTest, DegradationGrowsNonlinearlyWithSize) {
  double prev = 0;
  std::vector<double> deltas;
  auto bare = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                      std::make_unique<BareArch>());
  for (double size : {0.10, 0.15, 0.20}) {
    SimDifferentialOptions o;
    o.diff_size = size;
    auto r = RunWith(StandardSetup(Configuration::kConvRandom, 30),
                     std::make_unique<SimDifferential>(o));
    EXPECT_GT(r.exec_time_per_page_ms, prev);
    deltas.push_back(r.exec_time_per_page_ms - bare.exec_time_per_page_ms);
    prev = r.exec_time_per_page_ms;
  }
  // Nonlinear: the 15->20 step exceeds the 10->15 step.
  EXPECT_GT(deltas[2] - deltas[1], deltas[1] - deltas[0]);
}

TEST(SimDifferentialTest, OutputFractionShrinksWrites) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  auto txns = workload::GenerateWorkload(setup.workload);
  uint64_t updates = 0;
  for (const auto& t : txns) updates += t.num_writes();
  Machine m(setup.machine, txns, std::make_unique<SimDifferential>());
  auto r = m.Run();
  const auto outputs = static_cast<uint64_t>(r.extra["diff_output_pages"]);
  // Exact tuple volume is 10% of the updates; per-transaction
  // fragmentation (§4.3.2) adds up to one partial page per transaction,
  // ~0.5 in expectation.
  const double exact = static_cast<double>(updates) * 0.10;
  const double fragmentation = 0.5 * static_cast<double>(txns.size());
  EXPECT_NEAR(static_cast<double>(outputs), exact + fragmentation,
              fragmentation);
  EXPECT_GE(static_cast<double>(outputs), exact);
}

TEST(SimDifferentialTest, FragmentationMakesOutputSublinear) {
  // The paper's Table 10 insight: halving the output fraction does not
  // halve the writes, because each transaction still flushes a partial
  // output page at commit.
  auto outputs_at = [](double fraction, bool fragmented) {
    auto setup = StandardSetup(Configuration::kConvRandom, 20);
    SimDifferentialOptions o;
    o.output_fraction = fraction;
    o.per_txn_fragmentation = fragmented;
    auto r = RunWith(setup, std::make_unique<SimDifferential>(o));
    return r.extra.at("diff_output_pages");
  };
  const double frag10 = outputs_at(0.10, true);
  const double frag50 = outputs_at(0.50, true);
  const double ideal10 = outputs_at(0.10, false);
  const double ideal50 = outputs_at(0.50, false);
  // Idealized accounting is ~linear; fragmented accounting is sublinear.
  EXPECT_NEAR(ideal50 / ideal10, 5.0, 0.6);
  EXPECT_LT(frag50 / frag10, 4.8);
  EXPECT_LT(frag50 / frag10, ideal50 / ideal10);
  EXPECT_GT(frag10, ideal10);  // fragmentation always costs pages
}

TEST(SimDifferentialTest, ExtraReadsProportionalToDiffSize) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  auto txns = workload::GenerateWorkload(setup.workload);
  Machine m(setup.machine, txns, std::make_unique<SimDifferential>());
  auto r = m.Run();
  // Two Bernoulli(0.10) trials per base-page read.
  const double expected =
      static_cast<double>(r.pages_read) * 0.2 /
      (1.0 + 0.2);  // pages_read includes the extra reads themselves
  EXPECT_NEAR(r.extra["diff_extra_reads"], expected, expected * 0.35);
}

// --------------------------------------------------------- version select

TEST(SimVersionSelectTest, ReadsFetchBothCopies) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  Machine m(setup.machine, workload::GenerateWorkload(setup.workload),
            std::make_unique<SimVersionSelect>());
  auto r = m.Run();
  EXPECT_GT(r.extra["commit_list_writes"], 0.0);
}

TEST(SimVersionSelectTest, SlowerThanThruPageTable) {
  // Paper §4.2.5: version selection loses to the thru-page-table shadow
  // with adequate buffering, because the machine is I/O-bandwidth bound.
  SimShadowOptions two;
  two.num_pt_processors = 2;
  auto pt = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                    std::make_unique<SimShadow>(two));
  auto vs = RunWith(StandardSetup(Configuration::kConvRandom, 40),
                    std::make_unique<SimVersionSelect>());
  EXPECT_GT(vs.exec_time_per_page_ms, pt.exec_time_per_page_ms * 1.05);
}

}  // namespace
}  // namespace dbmr::machine
