// Tests for the shadow page-table engine: copy-on-write behavior, atomic
// table flips, no-redo/no-undo recovery, allocation policies, clustering
// decay, and crash-everywhere recovery properties.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "engine_test_util.h"
#include "store/recovery/shadow_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 32;
constexpr uint64_t kDiskBlocks = 128;  // pages + COW slack + tables

struct ShadowFixture {
  explicit ShadowFixture(ShadowEngineOptions opts = {}) {
    disk = std::make_unique<VirtualDisk>("d", kDiskBlocks, kBlock);
    engine = std::make_unique<ShadowEngine>(disk.get(), kPages, opts);
    EXPECT_TRUE(engine->Format().ok());
  }
  PageData Payload(uint8_t fill) const {
    return PageData(engine->payload_size(), fill);
  }
  std::unique_ptr<VirtualDisk> disk;
  std::unique_ptr<ShadowEngine> engine;
};

TEST(ShadowEngineTest, CommitAndReadBack) {
  ShadowFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST(ShadowEngineTest, WriteRelocatesPage) {
  ShadowFixture f;
  BlockId before = f.engine->CommittedBlockOf(3);
  size_t free_before = f.engine->free_blocks();
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_NE(f.engine->CommittedBlockOf(3), before);
  // One block allocated for the new copy, the shadow freed: net zero.
  EXPECT_EQ(f.engine->free_blocks(), free_before);
}

TEST(ShadowEngineTest, UncommittedWritesVanishOnCrash) {
  ShadowFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
}

TEST(ShadowEngineTest, CommittedStateNeedsNoRedo) {
  // Shadow is force-at-commit by construction: after the master flip, the
  // data is already home; recovery does no page writes at all.
  ShadowFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 3, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  uint64_t writes_before = f.disk->writes();
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_EQ(f.disk->writes(), writes_before);  // recovery wrote nothing
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(9));
}

TEST(ShadowEngineTest, AbortReturnsBlocksToFreePool) {
  ShadowFixture f;
  size_t free_before = f.engine->free_blocks();
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(1)).ok());
  ASSERT_TRUE(f.engine->Write(*t, 2, f.Payload(2)).ok());
  EXPECT_EQ(f.engine->free_blocks(), free_before - 2);
  ASSERT_TRUE(f.engine->Abort(*t).ok());
  EXPECT_EQ(f.engine->free_blocks(), free_before);
}

TEST(ShadowEngineTest, SecondWriteBySameTxnReusesBlock) {
  ShadowFixture f;
  size_t free_before = f.engine->free_blocks();
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(1)).ok());
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(2)).ok());
  EXPECT_EQ(f.engine->free_blocks(), free_before - 1);
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 1, &out).ok());
  EXPECT_EQ(out, f.Payload(2));
}

TEST(ShadowEngineTest, TableFlipAlternates) {
  ShadowFixture f;
  for (int i = 0; i < 3; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(
        f.engine->Write(*t, 0, f.Payload(static_cast<uint8_t>(i + 1))).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  EXPECT_EQ(f.engine->table_flips(), 3u);
}

TEST(ShadowEngineTest, ReadOnlyCommitSkipsTableWrite) {
  ShadowFixture f;
  uint64_t writes_before = f.disk->writes();
  auto t = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 5, &out).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_EQ(f.disk->writes(), writes_before);
}

TEST(ShadowEngineTest, FreePoolExhaustionReported) {
  ShadowFixture f;
  auto t = f.engine->Begin();
  Status st = Status::OK();
  for (txn::PageId p = 0; p < kPages && st.ok(); ++p) {
    st = f.engine->Write(*t, p, f.Payload(1));
  }
  // 128 blocks - master - 2 tables (1 block each) - 32 home = 93 free;
  // a single transaction cannot exhaust them with 32 pages.  Grab the rest
  // through repeated uncommitted transactions' writes... instead verify by
  // a targeted small disk.
  auto small = std::make_unique<VirtualDisk>("s", 36, kBlock);
  ShadowEngine tight(small.get(), kPages);
  ASSERT_TRUE(tight.Format().ok());
  auto tt = tight.Begin();
  Status last = Status::OK();
  for (txn::PageId p = 0; p < kPages && last.ok(); ++p) {
    last = tight.Write(*tt, p, PageData(tight.payload_size(), 1));
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

TEST(ShadowEngineTest, ClusteringDecaysWithFirstFree) {
  ShadowFixture f;  // kFirstFree
  EXPECT_DOUBLE_EQ(f.engine->ClusteringFactor(), 1.0);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    auto t = f.engine->Begin();
    txn::PageId p =
        static_cast<txn::PageId>(rng.UniformInt(0, kPages - 1));
    ASSERT_TRUE(f.engine->Write(*t, p, f.Payload(1)).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  // The paper's §4.2.3 concern: logically adjacent pages scatter.
  EXPECT_LT(f.engine->ClusteringFactor(), 0.8);
}

TEST(ShadowEngineTest, NearShadowPolicyPreservesMoreClustering) {
  ShadowEngineOptions near_opts;
  near_opts.alloc = ShadowAllocPolicy::kNearShadow;
  ShadowFixture scatter;  // first-free
  ShadowFixture cluster(near_opts);
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    txn::PageId p =
        static_cast<txn::PageId>(rng.UniformInt(0, kPages - 1));
    for (ShadowFixture* f : {&scatter, &cluster}) {
      auto t = f->engine->Begin();
      ASSERT_TRUE(f->engine->Write(*t, p, f->Payload(1)).ok());
      ASSERT_TRUE(f->engine->Commit(*t).ok());
    }
  }
  EXPECT_GE(cluster.engine->ClusteringFactor(),
            scatter.engine->ClusteringFactor());
}

TEST(ShadowEngineTest, RandomWorkloadWithCleanCrashes) {
  ShadowFixture f;
  testing::RunRandomWorkload(f.engine.get(), 999, 120);
}

TEST(ShadowEngineTest, CrashEverywhereSweep) {
  ShadowFixture f;
  auto counter = std::make_shared<int64_t>(int64_t{1} << 30);
  f.disk->SetSharedFailCounter(counter);
  testing::RunCrashEverywhere(
      f.engine.get(), [&](int64_t n) { *counter = n; },
      [&] {
        *counter = int64_t{1} << 30;
        f.disk->ClearCrashState();
      },
      424242);
}

}  // namespace
}  // namespace dbmr::store
