// Unit tests for the LRU buffer pool.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "store/buffer_pool.h"

namespace dbmr::store {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() { Rebuild(2); }

  void Rebuild(size_t capacity) {
    pool_ = std::make_unique<BufferPool>(
        capacity,
        [this](txn::PageId p, PageData* out) {
          ++fetches_;
          auto it = backing_.find(p);
          *out = it != backing_.end() ? it->second : PageData(16, 0);
          return Status::OK();
        },
        [this](txn::PageId p, const PageData& d) {
          if (veto_flush_) return Status::Aborted("flush vetoed");
          backing_[p] = d;
          flushes_.push_back(p);
          return Status::OK();
        });
  }

  std::map<txn::PageId, PageData> backing_;
  std::vector<txn::PageId> flushes_;
  int fetches_ = 0;
  bool veto_flush_ = false;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, GetFaultsInOnce) {
  backing_[5] = PageData(16, 7);
  PageData out;
  ASSERT_TRUE(pool_->Get(5, &out).ok());
  EXPECT_EQ(out, PageData(16, 7));
  ASSERT_TRUE(pool_->Get(5, &out).ok());
  EXPECT_EQ(fetches_, 1);
  EXPECT_EQ(pool_->hits(), 1u);
  EXPECT_EQ(pool_->misses(), 1u);
}

TEST_F(BufferPoolTest, PutMarksDirtyAndReadsBack) {
  ASSERT_TRUE(pool_->Put(3, PageData(16, 9)).ok());
  EXPECT_TRUE(pool_->IsDirty(3));
  PageData out;
  ASSERT_TRUE(pool_->Get(3, &out).ok());
  EXPECT_EQ(out, PageData(16, 9));
  EXPECT_EQ(fetches_, 0);  // never read from disk
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyLru) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  ASSERT_TRUE(pool_->Put(2, PageData(16, 2)).ok());
  ASSERT_TRUE(pool_->Put(3, PageData(16, 3)).ok());  // evicts page 1
  EXPECT_EQ(flushes_, (std::vector<txn::PageId>{1}));
  EXPECT_FALSE(pool_->Contains(1));
  EXPECT_EQ(backing_[1], PageData(16, 1));
  EXPECT_EQ(pool_->evictions(), 1u);
}

TEST_F(BufferPoolTest, CleanEvictionSkipsFlush) {
  backing_[1] = PageData(16, 1);
  backing_[2] = PageData(16, 2);
  PageData out;
  ASSERT_TRUE(pool_->Get(1, &out).ok());
  ASSERT_TRUE(pool_->Get(2, &out).ok());
  ASSERT_TRUE(pool_->Get(3, &out).ok());  // evicts clean page 1
  EXPECT_TRUE(flushes_.empty());
}

TEST_F(BufferPoolTest, LruOrderRespectsTouches) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  ASSERT_TRUE(pool_->Put(2, PageData(16, 2)).ok());
  PageData out;
  ASSERT_TRUE(pool_->Get(1, &out).ok());               // 1 now MRU
  ASSERT_TRUE(pool_->Put(3, PageData(16, 3)).ok());    // evicts 2
  EXPECT_TRUE(pool_->Contains(1));
  EXPECT_FALSE(pool_->Contains(2));
}

TEST_F(BufferPoolTest, FlushVetoPropagates) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  ASSERT_TRUE(pool_->Put(2, PageData(16, 2)).ok());
  veto_flush_ = true;
  EXPECT_TRUE(pool_->Put(3, PageData(16, 3)).IsAborted());
}

TEST_F(BufferPoolTest, FlushPageAndFlushAll) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  ASSERT_TRUE(pool_->Put(2, PageData(16, 2)).ok());
  ASSERT_TRUE(pool_->FlushPage(1).ok());
  EXPECT_FALSE(pool_->IsDirty(1));
  EXPECT_TRUE(pool_->IsDirty(2));
  ASSERT_TRUE(pool_->FlushAll().ok());
  EXPECT_FALSE(pool_->IsDirty(2));
  // Flushing a clean or absent page is a no-op.
  ASSERT_TRUE(pool_->FlushPage(1).ok());
  ASSERT_TRUE(pool_->FlushPage(99).ok());
  EXPECT_EQ(flushes_.size(), 2u);
}

TEST_F(BufferPoolTest, DiscardDropsWithoutFlush) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  pool_->Discard(1);
  EXPECT_FALSE(pool_->Contains(1));
  EXPECT_TRUE(flushes_.empty());
  // Re-reading sees the (unwritten) backing copy.
  PageData out;
  ASSERT_TRUE(pool_->Get(1, &out).ok());
  EXPECT_EQ(out, PageData(16, 0));
}

TEST_F(BufferPoolTest, DiscardAllEmptiesPool) {
  ASSERT_TRUE(pool_->Put(1, PageData(16, 1)).ok());
  ASSERT_TRUE(pool_->Put(2, PageData(16, 2)).ok());
  pool_->DiscardAll();
  EXPECT_EQ(pool_->size(), 0u);
  EXPECT_TRUE(flushes_.empty());
}

TEST_F(BufferPoolTest, CapacityOneThrashes) {
  Rebuild(1);
  PageData out;
  ASSERT_TRUE(pool_->Get(1, &out).ok());
  ASSERT_TRUE(pool_->Get(2, &out).ok());
  ASSERT_TRUE(pool_->Get(1, &out).ok());
  EXPECT_EQ(fetches_, 3);
  EXPECT_EQ(pool_->evictions(), 2u);
}

}  // namespace
}  // namespace dbmr::store
