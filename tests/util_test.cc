// Unit tests for util: Status/Result, Rng, stats accumulators, strings,
// tables.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/str.h"
#include "util/table.h"

namespace dbmr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing page 7");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kCorruption, StatusCode::kAborted,
        StatusCode::kInternal, StatusCode::kIoError}) {
    names.insert(StatusCodeName(c));
  }
  EXPECT_EQ(names.size(), 11u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("bad block"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.UniformInt(1, 250);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 250);
  }
}

TEST(RngTest, UniformIntCoversWholeRange) {
  Rng r(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntMeanNearCenter) {
  // The paper's transaction size is U(1, 250); check the generator's mean.
  Rng r(99);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.UniformInt(1, 250));
  EXPECT_NEAR(sum / n, 125.5, 1.0);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    double v = r.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng r(5);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.2);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream should not replay the parent's.
  int same = 0;
  Rng parent_copy(42);
  (void)parent_copy.Next();  // advance past the fork draw
  for (int i = 0; i < 64; ++i) same += child.Next() == parent_copy.Next();
  EXPECT_LT(same, 4);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  Rng r(3);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = r.UniformDouble(0, 100);
    all.Add(v);
    (i % 2 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(TimeWeightedStatTest, PiecewiseConstantAverage) {
  TimeWeightedStat s;
  s.Set(0.0, 1.0);   // value 1 on [0, 10)
  s.Set(10.0, 3.0);  // value 3 on [10, 20)
  EXPECT_DOUBLE_EQ(s.Average(20.0), 2.0);
}

TEST(TimeWeightedStatTest, UtilizationOfBusyIndicator) {
  TimeWeightedStat s;
  s.Set(0.0, 0.0);
  s.Set(2.0, 1.0);
  s.Set(7.0, 0.0);
  EXPECT_DOUBLE_EQ(s.Average(10.0), 0.5);
}

TEST(TimeWeightedStatTest, AddAdjustsCurrent) {
  TimeWeightedStat s;
  s.Set(0.0, 0.0);
  s.Add(0.0, 2.0);
  EXPECT_DOUBLE_EQ(s.current(), 2.0);
  s.Add(5.0, -1.0);
  EXPECT_DOUBLE_EQ(s.current(), 1.0);
  EXPECT_DOUBLE_EQ(s.Average(10.0), 1.5);
}

TEST(TimeWeightedStatTest, EmptyWindowAverageIsZeroNotNan) {
  TimeWeightedStat s;
  // Never started: no observation window at all.
  EXPECT_DOUBLE_EQ(s.Average(0.0), 0.0);
  // Started but read at the start instant: a zero-length window must not
  // divide 0/0 or report the instantaneous value as a time average (a
  // server that just went busy at t=0 is not "100% utilized").
  s.Set(0.0, 1.0);
  EXPECT_FALSE(std::isnan(s.Average(0.0)));
  EXPECT_DOUBLE_EQ(s.Average(0.0), 0.0);
  // A real window behaves as before.
  s.Set(2.0, 0.0);
  EXPECT_DOUBLE_EQ(s.Average(4.0), 0.5);
}

TEST(HistogramTest, CountsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 10.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
}

TEST(StrTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrTest, FormatFixed) { EXPECT_EQ(FormatFixed(3.14159, 2), "3.14"); }

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(TextTableTest, RendersAlignedCells) {
  TextTable t("Table X");
  t.SetHeader({"Config", "Value"});
  t.AddRow({"conv-random", "18.0"});
  t.AddRow({"par-seq", "1.9"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Table X"), std::string::npos);
  EXPECT_NE(out.find("conv-random"), std::string::npos);
  EXPECT_NE(out.find("| 1.9"), std::string::npos);
}

TEST(TextTableTest, PaperVsMeasured) {
  EXPECT_EQ(PaperVsMeasured(18.0, 17.5), "18.0 / 17.5");
  EXPECT_EQ(PaperVsMeasured(1.0, 2.0, 2), "1.00 / 2.00");
}

}  // namespace
}  // namespace dbmr
