// Tests for the runtime invariant auditor: every shipped recovery
// architecture runs audit-clean across the four standard configurations,
// deliberately broken architectures are caught, and the protocol bugs the
// auditor originally surfaced (home writes racing their log fragments,
// doomed victims writing home without locks, no-redo aborts skipping the
// before-image restore, restart livelock under skew) stay fixed.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/arch_registry.h"
#include "core/experiment.h"
#include "machine/auditor.h"
#include "machine/machine.h"
#include "machine/sim_logging.h"
#include "machine/sim_overwrite.h"

namespace dbmr::machine {
namespace {

using core::Configuration;
using core::RunWith;
using core::StandardSetup;

using ArchFactory = std::function<std::unique_ptr<RecoveryArch>()>;

/// Every shipped architecture variant the auditor must pass on — all 13
/// sim variants, enumerated straight from core::ArchRegistry so a newly
/// registered architecture is audited without touching this test.
std::vector<std::pair<std::string, ArchFactory>> AllArchVariants() {
  EnsureSimArchsLinked();
  std::vector<std::pair<std::string, ArchFactory>> v;
  for (const std::string& name :
       core::ArchRegistry::Global().SimVariantNames()) {
    auto factory = core::MakeSimArchFactory(name);
    EXPECT_TRUE(factory.ok()) << factory.status().message();
    if (factory.ok()) v.emplace_back(name, std::move(*factory));
  }
  EXPECT_EQ(v.size(), 13u);
  return v;
}

MachineResult RunAudited(core::ExperimentSetup setup,
                         std::unique_ptr<RecoveryArch> arch) {
  setup.machine.audit = true;
  setup.machine.audit_abort = false;  // collect, don't abort: assert below
  return RunWith(std::move(setup), std::move(arch));
}

TEST(AuditorCleanTest, AllArchitecturesAllConfigurationsSeeds1To3) {
  for (const auto& [label, factory] : AllArchVariants()) {
    for (Configuration c : core::kAllConfigurations) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        SCOPED_TRACE(label + "/" + core::ConfigurationName(c) + "/seed" +
                     std::to_string(seed));
        auto r = RunAudited(StandardSetup(c, /*num_txns=*/10, seed),
                            factory());
        EXPECT_GT(r.extra.at("audit_checks"), 0.0);
        EXPECT_TRUE(r.audit_violations.empty())
            << r.audit_violations.front();
      }
    }
  }
}

/// Claims a log fragment exists, then releases the page for write-back
/// without the fragment ever reaching a log disk — a WAL-rule break.
class BadWalArch : public RecoveryArch {
 public:
  std::string name() const override { return "bad-wal"; }
  void CollectRecoveryData(txn::TxnId t, uint64_t page,
                           std::function<void()> ready) override {
    if (Auditor* a = auditor()) a->OnLogFragment(t, page);
    ready();
  }
};

TEST(AuditorCatchesTest, HomeWriteBeforeFragmentDurable) {
  auto r = RunAudited(StandardSetup(Configuration::kConvRandom, 5, 1),
                      std::make_unique<BadWalArch>());
  ASSERT_FALSE(r.audit_violations.empty());
  EXPECT_NE(r.audit_violations.front().find("wal-rule"), std::string::npos)
      << r.audit_violations.front();
}

/// Dirties a page-table page but commits without ever flushing it — the
/// commit flip would not be stable.
class BadPtFlipArch : public RecoveryArch {
 public:
  std::string name() const override { return "bad-ptflip"; }
  void CollectRecoveryData(txn::TxnId t, uint64_t page,
                           std::function<void()> ready) override {
    if (Auditor* a = auditor()) a->OnPtDirty(t, page / 1024);
    ready();
  }
};

TEST(AuditorCatchesTest, CommitWithUnflushedPageTable) {
  auto r = RunAudited(StandardSetup(Configuration::kConvRandom, 5, 1),
                      std::make_unique<BadPtFlipArch>());
  ASSERT_FALSE(r.audit_violations.empty());
  EXPECT_NE(r.audit_violations.front().find("pt-flip"), std::string::npos)
      << r.audit_violations.front();
}

TEST(AuditorCatchesTest, AbortModeKillsTheProcessWithReproReport) {
  auto setup = StandardSetup(Configuration::kConvRandom, 5, 1);
  setup.machine.audit = true;
  setup.machine.audit_abort = true;
  setup.machine.audit_repro_hint = "dbmr --arch=bad-wal";
  EXPECT_DEATH_IF_SUPPORTED(
      RunWith(std::move(setup), std::make_unique<BadWalArch>()),
      "AUDIT VIOLATION");
}

core::ExperimentSetup SkewedSetup(uint64_t seed) {
  auto setup = StandardSetup(Configuration::kConvRandom, 25, seed);
  setup.workload.hot_fraction = 0.05;
  setup.workload.hot_access_prob = 0.9;
  setup.machine.mpl = 5;
  return setup;
}

// Regression: a no-redo abort must restore every before image before the
// victim's locks are released.  (The original implementation released all
// locks at the deadlock and never restored the in-place overwrites.)
TEST(AuditorRegressionTest, NoRedoAbortRestoresBeforeImages) {
  uint64_t restarts = 0, undo_writes = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    auto r = RunAudited(SkewedSetup(seed), std::make_unique<SimOverwrite>(
                                               SimOverwriteMode::kNoRedo));
    EXPECT_TRUE(r.audit_violations.empty()) << r.audit_violations.front();
    EXPECT_EQ(r.completion_ms.count(), 25);
    restarts += r.deadlock_restarts;
    undo_writes += static_cast<uint64_t>(r.extra.at("undo_writes"));
  }
  // The skew must actually have exercised the abort path.
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(undo_writes, 0u);
}

// Regression: a deadlock victim doomed while its log fragment was in
// flight must not write the aborted update home (it no longer holds the
// lock by write-back time), and the home write must never race ahead of
// its fragment's durability bookkeeping.
TEST(AuditorRegressionTest, WalStaysCleanUnderDeadlockChurn) {
  uint64_t restarts = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    SimLoggingOptions o;
    o.num_log_processors = 2;
    o.select = LogSelect::kRandom;
    auto r = RunAudited(SkewedSetup(seed), std::make_unique<SimLogging>(o));
    EXPECT_TRUE(r.audit_violations.empty()) << r.audit_violations.front();
    EXPECT_EQ(r.completion_ms.count(), 25);
    restarts += r.deadlock_restarts;
  }
  EXPECT_GT(restarts, 0u);
}

}  // namespace
}  // namespace dbmr::machine
