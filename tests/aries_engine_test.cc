// ARIES-engine tests beyond the cross-engine contract: the media-failure
// sweep with a mirrored log and an archive, byte-identity of the recovered
// image across recovery-job counts, the auditor's two ARIES invariants
// firing on deliberately broken variants (and staying silent on the real
// engine), and a pinned regression for the stale-log-tail fence.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/commit_oracle.h"
#include "chaos/crash_sweeper.h"
#include "chaos/engine_zoo.h"
#include "machine/auditor.h"
#include "sim/simulator.h"
#include "store/recovery/aries_engine.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 16;

/// Disks + engine, built directly (not through the zoo) so tests can set
/// the deliberately-broken option bits the zoo never exposes.
struct AriesUnderTest {
  std::vector<std::unique_ptr<VirtualDisk>> disks;
  std::unique_ptr<AriesEngine> engine;
};

AriesUnderTest MakeAries(AriesEngineOptions o) {
  AriesUnderTest e;
  e.disks.push_back(std::make_unique<VirtualDisk>("data", kPages, kBlock));
  e.disks.push_back(std::make_unique<VirtualDisk>("log", 4096, kBlock));
  e.engine = std::make_unique<AriesEngine>(e.disks[0].get(),
                                           e.disks[1].get(), o);
  EXPECT_TRUE(e.engine->Format().ok());
  return e;
}

PageData Fill(const AriesEngine& e, uint8_t b) {
  return PageData(e.payload_size(), b);
}

// --- Recovered-image byte-identity across recovery-job counts -------------

/// One deterministic pre-crash history: winners, an aborted transaction,
/// a fuzzy checkpoint mid-stream, and a loser left open at the crash.
void RunWorkloadAndCrash(AriesEngine* e) {
  auto t1 = e->Begin();
  ASSERT_TRUE(t1.ok());
  for (txn::PageId p = 0; p < 6; ++p) {
    ASSERT_TRUE(e->Write(*t1, p, Fill(*e, static_cast<uint8_t>(0x10 + p)))
                    .ok());
  }
  ASSERT_TRUE(e->Commit(*t1).ok());

  auto t2 = e->Begin();
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(e->Write(*t2, 2, Fill(*e, 0x66)).ok());
  ASSERT_TRUE(e->Write(*t2, 9, Fill(*e, 0x67)).ok());
  ASSERT_TRUE(e->Abort(*t2).ok());

  ASSERT_TRUE(e->Checkpoint().ok());

  auto t3 = e->Begin();
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(e->Write(*t3, 3, Fill(*e, 0x70)).ok());
  ASSERT_TRUE(e->Write(*t3, 12, Fill(*e, 0x71)).ok());
  ASSERT_TRUE(e->Commit(*t3).ok());

  // The loser: open updates over committed pages at crash time, so
  // restart must redo t3 and then undo t4 with CLRs.
  auto t4 = e->Begin();
  ASSERT_TRUE(t4.ok());
  ASSERT_TRUE(e->Write(*t4, 3, Fill(*e, 0x80)).ok());
  ASSERT_TRUE(e->Write(*t4, 5, Fill(*e, 0x81)).ok());
  ASSERT_TRUE(e->Write(*t4, 14, Fill(*e, 0x82)).ok());
  e->Crash();
}

std::map<txn::PageId, PageData> ReadAllPages(AriesEngine* e) {
  std::map<txn::PageId, PageData> out;
  auto t = e->Begin();
  EXPECT_TRUE(t.ok());
  for (txn::PageId p = 0; p < e->num_pages(); ++p) {
    PageData got;
    EXPECT_TRUE(e->Read(*t, p, &got).ok()) << "page " << p;
    out[p] = std::move(got);
  }
  EXPECT_TRUE(e->Abort(*t).ok());
  return out;
}

TEST(AriesRecoveryJobsTest, RecoveredImageIsByteIdenticalAtEveryJobCount) {
  std::map<txn::PageId, PageData> reference;  // recovery_jobs = 0
  for (int jobs : {0, 1, 2, 8}) {
    AriesEngineOptions o;
    o.pool_frames = 4;  // force steal/eviction during the workload
    o.recovery_jobs = jobs;
    AriesUnderTest e = MakeAries(o);
    RunWorkloadAndCrash(e.engine.get());
    ASSERT_TRUE(e.engine->Recover().ok()) << "jobs=" << jobs;
    auto image = ReadAllPages(e.engine.get());
    if (jobs == 0) {
      reference = std::move(image);
      // Sanity: the loser's updates were undone, the winners survived.
      EXPECT_EQ(reference[3], Fill(*e.engine, 0x70));
      EXPECT_EQ(reference[5], Fill(*e.engine, 0x15));
      EXPECT_EQ(reference[14], PageData(e.engine->payload_size(), 0));
      EXPECT_EQ(reference[9], PageData(e.engine->payload_size(), 0));
    } else {
      ASSERT_EQ(image.size(), reference.size());
      for (const auto& [page, data] : reference) {
        EXPECT_TRUE(image.at(page) == data)
            << "page " << page << " diverges at recovery_jobs=" << jobs;
      }
    }
  }
}

// --- Auditor invariants ---------------------------------------------------

/// Wires an engine's audit taps to a collecting (non-aborting) Auditor.
void Audit(AriesEngine* e, machine::Auditor* a) {
  AriesAuditHooks h;
  h.on_restart = [a] { a->OnAriesRestart(); };
  h.on_write_back = [a](txn::PageId page, uint64_t page_lsn,
                        uint64_t flushed_lsn) {
    a->OnAriesWriteBack(page, page_lsn, flushed_lsn);
  };
  h.on_update = [a](txn::TxnId t, uint64_t lsn) { a->OnAriesUpdate(t, lsn); };
  h.on_clr = [a](txn::TxnId t, uint64_t undo_next) {
    a->OnAriesClr(t, undo_next);
  };
  h.on_txn_end = [a](txn::TxnId t, bool committed) {
    a->OnAriesTxnEnd(t, committed);
  };
  e->set_audit_hooks(std::move(h));
}

struct AuditRig {
  sim::Simulator sim;
  txn::LockManager locks;
  std::unique_ptr<machine::Auditor> auditor;

  AuditRig() {
    machine::AuditorOptions ao;
    ao.abort_on_violation = false;
    auditor = std::make_unique<machine::Auditor>(ao, &sim, &locks,
                                                 /*trace=*/nullptr);
    auditor->SetDeclaredChecks({"aries-wal-lsn", "aries-clr-chain"});
  }
};

TEST(AriesAuditorTest, CleanEngineRaisesNoViolations) {
  AuditRig rig;
  AriesEngineOptions o;
  o.pool_frames = 2;  // evictions exercise the write-back tap
  AriesUnderTest e = MakeAries(o);
  Audit(e.engine.get(), rig.auditor.get());

  RunWorkloadAndCrash(e.engine.get());
  ASSERT_TRUE(e.engine->Recover().ok());
  ASSERT_TRUE(e.engine->Checkpoint().ok());

  EXPECT_GT(rig.auditor->checks(), 0u);
  for (const auto& v : rig.auditor->violations()) {
    ADD_FAILURE() << v.check << ": " << v.detail;
  }
}

TEST(AriesAuditorTest, SkippedLogForceFiresTheWalLsnInvariant) {
  AuditRig rig;
  AriesEngineOptions o;
  o.pool_frames = 2;
  o.test_skip_log_force = true;
  AriesUnderTest e = MakeAries(o);
  Audit(e.engine.get(), rig.auditor.get());

  // Enough unforced updates to evict a page whose pageLSN is ahead of the
  // never-advanced flushedLSN.
  auto t = e.engine->Begin();
  ASSERT_TRUE(t.ok());
  for (txn::PageId p = 0; p < 8; ++p) {
    ASSERT_TRUE(
        e.engine->Write(*t, p, Fill(*e.engine, static_cast<uint8_t>(p)))
            .ok());
  }

  bool saw = false;
  for (const auto& v : rig.auditor->violations()) {
    saw |= v.check == "aries-wal-lsn";
  }
  EXPECT_TRUE(saw) << "broken engine evicted pages without firing "
                      "aries-wal-lsn ("
                   << rig.auditor->violations().size() << " violations)";
}

TEST(AriesAuditorTest, BrokenUndoNextFiresTheClrChainInvariant) {
  AuditRig rig;
  AriesEngineOptions o;
  o.test_break_clr_chain = true;
  AriesUnderTest e = MakeAries(o);
  Audit(e.engine.get(), rig.auditor.get());

  auto t = e.engine->Begin();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(e.engine->Write(*t, 1, Fill(*e.engine, 0xA1)).ok());
  ASSERT_TRUE(e.engine->Write(*t, 2, Fill(*e.engine, 0xA2)).ok());
  ASSERT_TRUE(e.engine->Abort(*t).ok());

  bool saw = false;
  for (const auto& v : rig.auditor->violations()) {
    saw |= v.check == "aries-clr-chain";
  }
  EXPECT_TRUE(saw) << "rollback with mis-chained CLRs did not fire "
                      "aries-clr-chain";
}

// --- Media-failure sweep --------------------------------------------------

TEST(AriesMediaSweepTest, MirroredLogPlusArchiveSurvivesEveryMediaLoss) {
  chaos::SweepOptions opts;
  opts.seed = 3;
  opts.txns = 4;
  opts.media_faults = true;
  opts.fixture.log_mirroring = true;
  opts.fixture.archive = true;
  // The media sweep is the point here; skip the families the golden
  // torture run already covers for aries.
  opts.nested_recovery_crashes = false;
  opts.nested_recovery_read_crashes = false;
  opts.transient_faults = false;
  opts.bit_flip_trials = 0;

  chaos::CrashSweeper sweeper("aries", opts);
  chaos::SweepReport r = sweeper.Run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.media_swept);
  EXPECT_GT(r.media_crash_points, 0);
  // Data, mirrored log pair, and archive are all individually redundant:
  // no single media loss may be data loss.
  EXPECT_EQ(r.media_data_loss, 0);
  EXPECT_GT(r.scrub_injected, 0);
  EXPECT_EQ(r.scrub_detected, r.scrub_injected);
  for (const auto& v : r.violations) {
    ADD_FAILURE() << v.kind << ": " << v.detail << "\n  repro: " << v.repro;
  }
}

// --- Stale-tail fence regression ------------------------------------------

// A truncated-record chop at restart can leave whole stale log blocks
// beyond the logical end that still decode as valid.  If the first
// recovery attempt rewrites the boundary block but crashes before the
// next one, the stale block used to reconnect to the stream on the second
// attempt and corrupt the decoded images.  The epoch fence (restart bumps
// the master epoch before appending; the scan accepts only non-decreasing
// block epochs) closes this; these exact (seed, crash, nested) schedules
// are the ones that exposed it.
TEST(AriesStaleTailRegressionTest, NestedRecoveryCrashAtChoppedTail) {
  chaos::SweepOptions opts;
  opts.seed = 7;
  opts.txns = 4;
  chaos::CrashSweeper sweeper("aries", opts);
  for (int64_t crash_index : {16, 24, 33}) {
    chaos::SweepReport r =
        sweeper.RunOne(crash_index, /*nested_index=*/1);
    for (const auto& v : r.violations) {
      ADD_FAILURE() << "crash_index=" << crash_index << " " << v.kind
                    << ": " << v.detail;
    }
  }
}

}  // namespace
}  // namespace dbmr::store
