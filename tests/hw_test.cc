// Unit tests for the hardware models: disks and channels.

#include <gtest/gtest.h>

#include <vector>

#include "hw/channel.h"
#include "hw/disk.h"
#include "hw/disk_geometry.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace dbmr::hw {
namespace {

DiskGeometry TestGeometry() {
  DiskGeometry g = Ibm3350Geometry();
  return g;
}

TEST(DiskGeometryTest, Ibm3350Defaults) {
  DiskGeometry g = Ibm3350Geometry();
  EXPECT_EQ(g.cylinders, 555);
  EXPECT_EQ(g.pages_per_cylinder(), 120);
  EXPECT_EQ(g.capacity_pages(), 555 * 120);
}

TEST(DiskGeometryTest, SeekTimeLinearAndSymmetric) {
  DiskGeometry g = TestGeometry();
  EXPECT_EQ(g.SeekTime(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(g.SeekTime(0, 100), g.SeekTime(100, 0));
  EXPECT_DOUBLE_EQ(g.SeekTime(0, 100), 100 * g.seek_ms_per_cylinder);
}

TEST(DiskGeometryTest, AddrOfPageRoundTrips) {
  DiskGeometry g = TestGeometry();
  DiskPageAddr a = g.AddrOfPage(0);
  EXPECT_EQ(a.cylinder, 0);
  EXPECT_EQ(a.slot, 0);
  a = g.AddrOfPage(120);
  EXPECT_EQ(a.cylinder, 1);
  EXPECT_EQ(a.slot, 0);
  a = g.AddrOfPage(123);
  EXPECT_EQ(a.cylinder, 1);
  EXPECT_EQ(a.slot, 3);
}

TEST(DiskModelTest, SingleAccessTiming) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kConventional, Rng(1));
  double done_at = -1;
  d.Submit(DiskRequest{{0, 0}, false, 1, [&] { done_at = s.Now(); }});
  s.Run();
  // overhead + seek(0) + latency[0,16.7) + transfer
  EXPECT_GE(done_at, 10.0 + 3.6);
  EXPECT_LT(done_at, 10.0 + 16.7 + 3.6);
  EXPECT_EQ(d.accesses(), 1u);
  EXPECT_EQ(d.pages_transferred(), 1u);
}

TEST(DiskModelTest, ConventionalDoesNotBatch) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kConventional, Rng(1));
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    d.Submit(DiskRequest{{7, i}, false, 1, [&] { ++done; }});
  }
  s.Run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(d.accesses(), 5u);  // one access per page
}

TEST(DiskModelTest, ParallelAccessBatchesSameCylinder) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kParallelAccess, Rng(1));
  int done = 0;
  // First request starts service; the rest land on the same cylinder and
  // are picked up by the NEXT access as one batch.
  d.Submit(DiskRequest{{7, 0}, false, 1, [&] { ++done; }});
  for (int i = 1; i < 20; ++i) {
    d.Submit(DiskRequest{{7, i}, false, 1, [&] { ++done; }});
  }
  s.Run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(d.accesses(), 2u);  // initial single + one batched access
  EXPECT_EQ(d.pages_transferred(), 20u);
}

TEST(DiskModelTest, ParallelAccessDoesNotMixCylinders) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kParallelAccess, Rng(1));
  int done = 0;
  d.Submit(DiskRequest{{1, 0}, false, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{2, 0}, false, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{1, 1}, false, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{2, 1}, false, 1, [&] { ++done; }});
  s.Run();
  EXPECT_EQ(done, 4);
  // Access 1: {1,0} alone (starts immediately).  Then the queue holds
  // 2,1,2 -> batch {2,2}, then {1}.
  EXPECT_EQ(d.accesses(), 3u);
}

TEST(DiskModelTest, ParallelAccessDoesNotMixReadsAndWrites) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kParallelAccess, Rng(1));
  int done = 0;
  d.Submit(DiskRequest{{5, 0}, false, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{5, 1}, true, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{5, 2}, false, 1, [&] { ++done; }});
  d.Submit(DiskRequest{{5, 3}, true, 1, [&] { ++done; }});
  s.Run();
  EXPECT_EQ(done, 4);
  // {read}, then {write,write} batch, then {read}.
  EXPECT_EQ(d.accesses(), 3u);
}

TEST(DiskModelTest, RandomAccessesSlowerThanSequential) {
  // The core physical effect behind the paper's configurations: random
  // reference strings pay seeks, sequential ones mostly do not.
  auto run = [](bool random) {
    sim::Simulator s;
    DiskModel d(&s, "d0", TestGeometry(), DiskKind::kConventional, Rng(3));
    Rng addr_rng(99);
    const int n = 200;
    int done = 0;
    for (int i = 0; i < n; ++i) {
      int32_t cyl =
          random ? static_cast<int32_t>(addr_rng.UniformInt(0, 554))
                 : static_cast<int32_t>(i / 120);
      d.Submit(DiskRequest{{cyl, static_cast<int32_t>(i % 120)},
                           false,
                           1,
                           [&] { ++done; }});
    }
    s.Run();
    EXPECT_EQ(done, n);
    return s.Now() / n;
  };
  double random_ms = run(true);
  double seq_ms = run(false);
  EXPECT_GT(random_ms, seq_ms * 1.6);
  // Shape check against the paper's bare machine: one disk services a
  // random page in roughly 36 ms; a head-continuing sequential page pays
  // only a residual rotational delay (~16 ms; cf. Table 5's utilizations).
  EXPECT_NEAR(random_ms, 36.0, 5.0);
  EXPECT_NEAR(seq_ms, 16.0, 3.0);
}

TEST(DiskModelTest, UtilizationIsBusyFraction) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kConventional, Rng(1));
  d.Submit(DiskRequest{{0, 0}, false, 1, nullptr});
  s.Run();
  EXPECT_NEAR(d.Utilization(), 1.0, 1e-9);
}

TEST(DiskModelTest, WaitStatTracksQueueing) {
  sim::Simulator s;
  DiskModel d(&s, "d0", TestGeometry(), DiskKind::kConventional, Rng(1));
  d.Submit(DiskRequest{{0, 0}, false, 1, nullptr});
  d.Submit(DiskRequest{{0, 1}, false, 1, nullptr});
  s.Run();
  EXPECT_GT(d.wait_stat().max(), 0.0);
  EXPECT_EQ(d.wait_stat().count(), 2);
}

TEST(ChannelTest, TransferTimeMatchesBandwidth) {
  sim::Simulator s;
  Channel ch(&s, "link", 1.0);  // 1 MB/s
  // 1 MiB should take ~1 second = 1000 ms.
  EXPECT_NEAR(ch.TransferTime(1024 * 1024), 1000.0, 1e-9);
}

TEST(ChannelTest, MessagesQueueFcfs) {
  sim::Simulator s;
  Channel ch(&s, "link", 1.0);
  std::vector<double> at;
  ch.Send(1024 * 1024, [&] { at.push_back(s.Now()); });
  ch.Send(1024 * 1024, [&] { at.push_back(s.Now()); });
  s.Run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_NEAR(at[0], 1000.0, 1e-6);
  EXPECT_NEAR(at[1], 2000.0, 1e-6);
  EXPECT_EQ(ch.messages_delivered(), 2u);
}

TEST(ChannelTest, SlowerChannelTakesLonger) {
  sim::Simulator s;
  Channel fast(&s, "fast", 1.0);
  Channel slow(&s, "slow", 0.01);
  EXPECT_NEAR(slow.TransferTime(4096) / fast.TransferTime(4096), 100.0,
              1e-6);
}

}  // namespace
}  // namespace dbmr::hw
