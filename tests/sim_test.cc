// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/server.h"
#include "sim/simulator.h"

namespace dbmr::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0.0);
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.Schedule(30.0, [&] { order.push_back(3); });
  s.Schedule(10.0, [&] { order.push_back(1); });
  s.Schedule(20.0, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30.0);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.Schedule(5.0, [&, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesClock) {
  Simulator s;
  double second_fired_at = -1;
  s.Schedule(10.0, [&] {
    s.Schedule(5.0, [&] { second_fired_at = s.Now(); });
  });
  s.Run();
  EXPECT_EQ(second_fired_at, 15.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool fired = false;
  EventId id = s.Schedule(10.0, [&] { fired = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.PendingEvents(), 0u);
}

TEST(SimulatorTest, CancelFiredEventIsNoop) {
  Simulator s;
  EventId id = s.Schedule(1.0, [] {});
  s.Run();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator s;
  EXPECT_FALSE(s.Cancel(9999));
  EXPECT_FALSE(s.Cancel(kNoEvent));
}

TEST(SimulatorTest, RunUntilStopsAtBound) {
  Simulator s;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    s.Schedule(i * 10.0, [&] { ++fired; });
  }
  s.Run(50.0);
  EXPECT_EQ(fired, 5);  // events at 10..50 inclusive
  EXPECT_EQ(s.PendingEvents(), 5u);
  s.Run();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator s;
  double fired_at = -1;
  s.Schedule(10.0, [&] {
    s.Schedule(-5.0, [&] { fired_at = s.Now(); });
  });
  s.Run();
  EXPECT_EQ(fired_at, 10.0);
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.Step());
  s.Schedule(1.0, [] {});
  EXPECT_TRUE(s.Step());
  EXPECT_FALSE(s.Step());
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(ServerTest, ProcessesSequentially) {
  Simulator sim;
  Server srv(&sim, "cpu");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    srv.Submit(10.0, [&] { completions.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_EQ(srv.jobs_completed(), 3u);
}

TEST(ServerTest, UtilizationAccounting) {
  Simulator sim;
  Server srv(&sim, "cpu");
  srv.Submit(25.0, nullptr);
  sim.Run();
  // Busy 25 out of 25 elapsed.
  EXPECT_NEAR(srv.Utilization(), 1.0, 1e-9);
  // Idle until 100: utilization 25%.
  sim.Schedule(75.0, [] {});
  sim.Run();
  EXPECT_NEAR(srv.Utilization(), 0.25, 1e-9);
}

TEST(ServerTest, WaitTimeMeasured) {
  Simulator sim;
  Server srv(&sim, "cpu");
  srv.Submit(10.0, nullptr);
  srv.Submit(10.0, nullptr);  // waits 10
  sim.Run();
  EXPECT_DOUBLE_EQ(srv.wait_stat().mean(), 5.0);  // 0 and 10
  EXPECT_DOUBLE_EQ(srv.service_stat().mean(), 10.0);
}

TEST(ServerTest, LazyServiceTimeSeesDispatchState) {
  Simulator sim;
  Server srv(&sim, "cpu");
  double seen_at = -1;
  srv.Submit(10.0, nullptr);
  srv.Submit(Job{[&] {
                   seen_at = sim.Now();
                   return 1.0;
                 },
                 nullptr});
  sim.Run();
  EXPECT_EQ(seen_at, 10.0);  // computed when dispatched, not when queued
}

TEST(ServerTest, SubmitFromCompletionCallback) {
  Simulator sim;
  Server srv(&sim, "cpu");
  std::vector<double> times;
  srv.Submit(5.0, [&] {
    times.push_back(sim.Now());
    srv.Submit(5.0, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{5.0, 10.0}));
}

TEST(ServerTest, AvgQueueLength) {
  Simulator sim;
  Server srv(&sim, "cpu");
  // Three jobs at t=0, each 10ms: queue holds 2 on [0,10), 1 on [10,20),
  // 0 on [20,30).  Average over [0,30) = 1.
  for (int i = 0; i < 3; ++i) srv.Submit(10.0, nullptr);
  sim.Run();
  EXPECT_NEAR(srv.AvgQueueLength(), 1.0, 1e-9);
}

TEST(ServerTest, MaxQueueLengthHighwater) {
  Simulator sim;
  Server srv(&sim, "cpu");
  for (int i = 0; i < 4; ++i) srv.Submit(10.0, nullptr);
  EXPECT_EQ(srv.max_queue_length(), 3u);  // one in service, three queued
  sim.Run();
  EXPECT_EQ(srv.max_queue_length(), 3u);  // highwater persists after drain
}

TEST(SimulatorTest, CountersTrackScheduleExecuteCancel) {
  Simulator sim;
  EventId a = sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  sim.Schedule(3.0, [] {});
  EXPECT_EQ(sim.counters().events_scheduled, 3u);
  EXPECT_EQ(sim.counters().max_heap_depth, 3u);
  sim.Cancel(a);
  EXPECT_EQ(sim.counters().events_cancelled, 1u);
  sim.Cancel(a);  // double-cancel is a no-op and is not recounted
  EXPECT_EQ(sim.counters().events_cancelled, 1u);
  sim.Run();
  EXPECT_EQ(sim.counters().events_executed, 2u);
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(sim.counters().max_heap_depth, 3u);
}

TEST(SimulatorTest, SlotPoolHighwaterTracksPeakPendingEvents) {
  Simulator sim;
  EventId a = sim.Schedule(10.0, [] {});
  sim.Schedule(20.0, [] {});
  sim.Schedule(30.0, [] {});
  EXPECT_EQ(sim.counters().slot_pool_highwater, 3u);
  // Cancelling frees the slot immediately: the highwater, unlike
  // max_heap_depth, never counts lazily-cancelled entries.
  sim.Cancel(a);
  sim.Schedule(40.0, [] {});
  EXPECT_EQ(sim.counters().slot_pool_highwater, 3u);
  sim.Schedule(50.0, [] {});
  EXPECT_EQ(sim.counters().slot_pool_highwater, 4u);
  sim.Run();
  EXPECT_EQ(sim.counters().slot_pool_highwater, 4u);
  EXPECT_EQ(sim.counters().max_heap_depth, 5u);  // cancelled entry lingered
}

TEST(SimulatorTest, EventIdsAreUniqueAcrossSlotReuse) {
  Simulator sim;
  // Fire an event, then schedule another: the slot is recycled but the
  // generation tag makes the new id distinct from the old one.
  EventId a = sim.Schedule(1.0, [] {});
  sim.Run();
  EventId b = sim.Schedule(1.0, [] {});
  EXPECT_NE(a, b);
  EXPECT_NE(b, kNoEvent);
  // The stale id does not cancel the slot's new occupant.
  EXPECT_FALSE(sim.Cancel(a));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_TRUE(sim.Cancel(b));
}

TEST(SimulatorTest, StaleIdAfterCancelAndReuseIsRejected) {
  Simulator sim;
  EventId a = sim.Schedule(10.0, [] {});
  EXPECT_TRUE(sim.Cancel(a));
  bool fired = false;
  EventId b = sim.Schedule(10.0, [&] { fired = true; });  // reuses the slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.Cancel(a));  // stale id must not hit the reused slot
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, CancelOwnEventDuringExecutionIsNoop) {
  Simulator sim;
  EventId id = kNoEvent;
  bool cancel_result = true;
  id = sim.Schedule(1.0, [&] { cancel_result = sim.Cancel(id); });
  sim.Run();
  EXPECT_FALSE(cancel_result);  // a firing event has already left the pool
  EXPECT_EQ(sim.counters().events_cancelled, 0u);
}

TEST(SimulatorTest, CancelOtherPendingEventFromCallback) {
  Simulator sim;
  bool late_fired = false;
  EventId late = sim.Schedule(20.0, [&] { late_fired = true; });
  sim.Schedule(10.0, [&] { EXPECT_TRUE(sim.Cancel(late)); });
  sim.Run();
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.counters().events_cancelled, 1u);
}

TEST(SimulatorTest, FifoTieBreakSurvivesInterleavedCancels) {
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(sim.Schedule(5.0, [&, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 20; i += 2) {
    EXPECT_TRUE(sim.Cancel(ids[static_cast<size_t>(i)]));
  }
  sim.Run();
  std::vector<int> expected;
  for (int i = 0; i < 20; i += 2) expected.push_back(i);
  EXPECT_EQ(order, expected);  // even ids, still in submission order
}

TEST(SimulatorTest, ReserveDoesNotDisturbScheduling) {
  Simulator sim;
  sim.Reserve(64);
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, ClosureDestroyedPromptlyOnCancelAndFire) {
  Simulator sim;
  auto token = std::make_shared<int>(42);
  EXPECT_EQ(token.use_count(), 1);
  EventId a = sim.Schedule(10.0, [keep = token] {});
  EXPECT_EQ(token.use_count(), 2);
  sim.Cancel(a);  // cancellation releases the capture immediately
  EXPECT_EQ(token.use_count(), 1);
  sim.Schedule(5.0, [keep = token] {});
  EXPECT_EQ(token.use_count(), 2);
  sim.Run();  // firing releases the capture too
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineTaskTest, SmallCapturesStoreInline) {
  int hits = 0;
  InlineTask t = [&hits] { ++hits; };
  EXPECT_TRUE(static_cast<bool>(t));
  EXPECT_TRUE(t.is_inline());
  t();
  t();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTaskTest, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[kInlineFnStorage + 16];
  };
  Big big{};
  big.bytes[0] = 7;
  int sum = 0;
  InlineTask t = [big, &sum] { sum += big.bytes[0]; };
  EXPECT_FALSE(t.is_inline());
  t();
  EXPECT_EQ(sum, 7);
}

TEST(InlineTaskTest, MovePreservesCallableAndEmptiesSource) {
  int hits = 0;
  InlineTask a = [&hits] { ++hits; };
  InlineTask b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineTaskTest, DestructionReleasesOwnedCapture) {
  auto token = std::make_shared<int>(1);
  {
    InlineTask t = [keep = token] {};
    EXPECT_EQ(token.use_count(), 2);
    InlineTask moved = std::move(t);
    EXPECT_EQ(token.use_count(), 2);  // move transfers, not copies
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineTaskTest, NullptrAndEmptyAreFalse) {
  InlineTask empty;
  InlineTask null_init = nullptr;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_FALSE(static_cast<bool>(null_init));
  InlineTask t = [] {};
  t = nullptr;
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(InlineFnTest, ReturnsValues) {
  InlineFn<TimeMs()> f = [] { return 12.5; };
  EXPECT_TRUE(f.is_inline());
  EXPECT_DOUBLE_EQ(f(), 12.5);
}

}  // namespace
}  // namespace dbmr::sim
