// Tests for the differential-file engine: R = (B ∪ A) − D semantics,
// sequence-number resolution, anchored commits, merge, and crash recovery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "store/recovery/differential_engine.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;

struct DiffFixture {
  DiffFixture() {
    DifferentialEngineOptions opts;
    opts.base_blocks = 32;
    opts.a_blocks = 64;
    opts.d_blocks = 64;
    disk = std::make_unique<VirtualDisk>("d", 1 + 64 + 64 + 2 * 32, kBlock);
    engine = std::make_unique<DifferentialEngine>(disk.get(), opts);
    EXPECT_TRUE(engine->Format().ok());
  }
  std::unique_ptr<VirtualDisk> disk;
  std::unique_ptr<DifferentialEngine> engine;
};

TEST(DifferentialEngineTest, InsertLookupCommit) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 10, 100).ok());
  auto v = f.engine->Lookup(*t, 10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 100u);  // own write visible
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  v = f.engine->Lookup(*t2, 10);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 100u);
  EXPECT_EQ(f.engine->a_entries(), 1u);
}

TEST(DifferentialEngineTest, MissingKeyIsNullopt) {
  DiffFixture f;
  auto t = f.engine->Begin();
  auto v = f.engine->Lookup(*t, 77);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(DifferentialEngineTest, DeleteAppendsToD) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 1, 11).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Remove(*t2, 1).ok());
  ASSERT_TRUE(f.engine->Commit(*t2).ok());
  EXPECT_EQ(f.engine->d_entries(), 1u);
  auto t3 = f.engine->Begin();
  auto v = f.engine->Lookup(*t3, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(DifferentialEngineTest, ReinsertAfterDeleteWinsBySequence) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 1, 11).ok());
  ASSERT_TRUE(f.engine->Remove(*t, 1).ok());
  ASSERT_TRUE(f.engine->Insert(*t, 1, 22).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  auto v = f.engine->Lookup(*t2, 1);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, 22u);
}

TEST(DifferentialEngineTest, AbortDiscardsOps) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 5, 50).ok());
  ASSERT_TRUE(f.engine->Abort(*t).ok());
  EXPECT_EQ(f.engine->a_entries(), 0u);
  auto t2 = f.engine->Begin();
  auto v = f.engine->Lookup(*t2, 5);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(DifferentialEngineTest, ScanMergesBAndDAndOwnOps) {
  DiffFixture f;
  auto t = f.engine->Begin();
  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(f.engine->Insert(*t, k, k * 10).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  ASSERT_TRUE(f.engine->Merge().ok());  // 5 tuples now in B

  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Remove(*t2, 2).ok());     // delete from B
  ASSERT_TRUE(f.engine->Insert(*t2, 6, 60).ok()); // add new
  std::vector<Tuple> out;
  ASSERT_TRUE(f.engine->Scan(*t2, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], (Tuple{1, 10}));
  EXPECT_EQ(out[1], (Tuple{3, 30}));
  EXPECT_EQ(out[4], (Tuple{6, 60}));
}

TEST(DifferentialEngineTest, CommittedSurvivesCrash) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 1, 11).ok());
  ASSERT_TRUE(f.engine->Remove(*t, 99).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  auto v = f.engine->Lookup(*t2, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 11u);
}

TEST(DifferentialEngineTest, UncommittedVanishesOnCrash) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 1, 11).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  auto v = f.engine->Lookup(*t2, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
}

TEST(DifferentialEngineTest, MergeFoldsAndResetsDifferentials) {
  DiffFixture f;
  auto t = f.engine->Begin();
  for (uint64_t k = 1; k <= 4; ++k) {
    ASSERT_TRUE(f.engine->Insert(*t, k, k).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Remove(*t2, 2).ok());
  ASSERT_TRUE(f.engine->Commit(*t2).ok());

  ASSERT_TRUE(f.engine->Merge().ok());
  EXPECT_EQ(f.engine->base_tuples(), 3u);
  EXPECT_EQ(f.engine->a_entries(), 0u);
  EXPECT_EQ(f.engine->d_entries(), 0u);
  EXPECT_EQ(f.engine->a_anchor_bytes(), 0u);

  // Post-merge state survives a crash.
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t3 = f.engine->Begin();
  auto v = f.engine->Lookup(*t3, 2);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->has_value());
  v = f.engine->Lookup(*t3, 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, 3u);
}

TEST(DifferentialEngineTest, MergeRequiresQuiescence) {
  DiffFixture f;
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t, 1, 1).ok());
  EXPECT_EQ(f.engine->Merge().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_TRUE(f.engine->Merge().ok());
}

TEST(DifferentialEngineTest, LockConflictAborts) {
  DiffFixture f;
  auto t1 = f.engine->Begin();
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Insert(*t1, 1, 1).ok());
  EXPECT_TRUE(f.engine->Insert(*t2, 1, 2).IsAborted());
  EXPECT_TRUE(f.engine->Lookup(*t2, 1).status().IsAborted());
}

TEST(DifferentialEngineTest, RandomWorkloadAgainstReferenceMap) {
  DiffFixture f;
  Rng rng(99);
  std::map<uint64_t, uint64_t> ref;
  for (int round = 0; round < 150; ++round) {
    auto t = f.engine->Begin();
    std::map<uint64_t, std::optional<uint64_t>> staged;
    int ops = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < ops; ++i) {
      uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 30));
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(f.engine->Remove(*t, key).ok());
        staged[key] = std::nullopt;
      } else {
        uint64_t value = rng.Next();
        ASSERT_TRUE(f.engine->Insert(*t, key, value).ok());
        staged[key] = value;
      }
    }
    double coin = rng.UniformDouble();
    if (coin < 0.25) {
      ASSERT_TRUE(f.engine->Abort(*t).ok());
    } else {
      ASSERT_TRUE(f.engine->Commit(*t).ok());
      for (auto& [k, v] : staged) {
        if (v.has_value()) {
          ref[k] = *v;
        } else {
          ref.erase(k);
        }
      }
    }
    if (rng.Bernoulli(0.1)) {
      f.engine->Crash();
      ASSERT_TRUE(f.engine->Recover().ok());
    }
    if (rng.Bernoulli(0.05)) {
      ASSERT_TRUE(f.engine->Merge().ok());
    }
    if (round % 10 == 0) {
      auto tv = f.engine->Begin();
      std::vector<Tuple> out;
      ASSERT_TRUE(f.engine->Scan(*tv, &out).ok());
      ASSERT_TRUE(f.engine->Commit(*tv).ok());
      std::map<uint64_t, uint64_t> got;
      for (const Tuple& tp : out) got[tp.key] = tp.value;
      ASSERT_EQ(got, ref) << "round " << round;
    }
  }
}

TEST(DifferentialEngineTest, CrashEverywhereSweep) {
  // Deterministic workload; crash after every possible write count; check
  // committed-transaction durability and atomicity.
  for (int64_t budget = 0; budget < 10000; ++budget) {
    DiffFixture f;
    auto counter = std::make_shared<int64_t>(int64_t{1} << 30);
    f.disk->SetSharedFailCounter(counter);
    *counter = budget;
    Rng rng(606);
    std::map<uint64_t, uint64_t> ref;
    std::map<uint64_t, uint64_t> ref_if_committed;
    bool crashed = false;
    bool in_doubt = false;
    for (int round = 0; round < 10 && !crashed; ++round) {
      auto t = f.engine->Begin();
      std::map<uint64_t, std::optional<uint64_t>> staged;
      for (int i = 0; i < 3; ++i) {
        uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 20));
        uint64_t value = (static_cast<uint64_t>(round) << 8) | static_cast<uint64_t>(i);
        Status st = f.engine->Insert(*t, key, value);
        ASSERT_TRUE(st.ok());  // inserts only buffer; no disk writes
        staged[key] = value;
      }
      Status st = f.engine->Commit(*t);
      if (!st.ok()) {
        crashed = true;
        in_doubt = true;
        ref_if_committed = ref;
        for (auto& [k, v] : staged) ref_if_committed[k] = *v;
        break;
      }
      for (auto& [k, v] : staged) ref[k] = *v;
    }
    *counter = int64_t{1} << 30;
    f.disk->ClearCrashState();
    if (!crashed) {
      return;  // full workload fits under this budget: sweep complete
    }
    f.engine->Crash();
    ASSERT_TRUE(f.engine->Recover().ok()) << "budget " << budget;
    auto tv = f.engine->Begin();
    std::vector<Tuple> out;
    ASSERT_TRUE(f.engine->Scan(*tv, &out).ok());
    std::map<uint64_t, uint64_t> got;
    for (const Tuple& tp : out) got[tp.key] = tp.value;
    if (in_doubt) {
      ASSERT_TRUE(got == ref || got == ref_if_committed)
          << "budget " << budget << ": in-doubt commit not atomic";
    } else {
      ASSERT_EQ(got, ref) << "budget " << budget;
    }
  }
  FAIL() << "sweep did not terminate";
}

}  // namespace
}  // namespace dbmr::store
