// Tests for the WAL engine: basic transactional behavior, the WAL rule,
// parallel log streams, logical vs physical logging, checkpointing, and
// crash-everywhere recovery properties.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "engine_test_util.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kDataBlocks = 64;
constexpr uint64_t kLogBlocks = 4096;

struct WalFixture {
  explicit WalFixture(size_t n_logs, WalEngineOptions opts = {}) {
    data = std::make_unique<VirtualDisk>("data", kDataBlocks, kBlock);
    std::vector<VirtualDisk*> log_ptrs;
    for (size_t i = 0; i < n_logs; ++i) {
      logs.push_back(std::make_unique<VirtualDisk>("log" + std::to_string(i),
                                                   kLogBlocks, kBlock));
      log_ptrs.push_back(logs.back().get());
    }
    engine = std::make_unique<WalEngine>(data.get(), log_ptrs, opts);
    EXPECT_TRUE(engine->Format().ok());
  }

  PageData Payload(uint8_t fill) const {
    return PageData(engine->payload_size(), fill);
  }

  std::unique_ptr<VirtualDisk> data;
  std::vector<std::unique_ptr<VirtualDisk>> logs;
  std::unique_ptr<WalEngine> engine;
};

TEST(WalEngineTest, ReadOfFreshPageIsZero) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(t.ok());
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
}

TEST(WalEngineTest, WriteReadBackWithinTxn) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 5, f.Payload(7)).ok());
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 5, &out).ok());
  EXPECT_EQ(out, f.Payload(7));
}

TEST(WalEngineTest, CommittedWriteVisibleToLaterTxn) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 5, f.Payload(7)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 5, &out).ok());
  EXPECT_EQ(out, f.Payload(7));
}

TEST(WalEngineTest, AbortRollsBack) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 5, f.Payload(7)).ok());
  ASSERT_TRUE(f.engine->Write(*t, 6, f.Payload(8)).ok());
  ASSERT_TRUE(f.engine->Abort(*t).ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 5, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
  ASSERT_TRUE(f.engine->Read(*t2, 6, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
}

TEST(WalEngineTest, UncommittedInvisibleAfterCrash) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 5, f.Payload(7)).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 5, &out).ok());
  EXPECT_EQ(out, f.Payload(0));
}

TEST(WalEngineTest, CommittedSurvivesCrashWithoutDataFlush) {
  // No-force: pages stay dirty in the pool at commit; recovery must REDO.
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 5, f.Payload(7)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->redo_applied(), 1u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 5, &out).ok());
  EXPECT_EQ(out, f.Payload(7));
}

TEST(WalEngineTest, StolenDirtyPageUndoneAfterCrash) {
  // Steal: force an uncommitted dirty page to disk through a tiny pool,
  // then crash; recovery must UNDO it from the before image.
  WalEngineOptions opts;
  opts.pool_frames = 2;
  WalFixture f(1, opts);
  // Committed baseline on page 1.
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 1, f.Payload(3)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());
  ASSERT_TRUE(f.engine->Checkpoint().ok());

  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(9)).ok());
  // Touch other pages to evict page 1 (dirty, uncommitted) to disk.
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 2, &out).ok());
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  ASSERT_TRUE(f.engine->Read(*t2, 4, &out).ok());

  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->undo_applied(), 1u);
  auto t3 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Read(*t3, 1, &out).ok());
  EXPECT_EQ(out, f.Payload(3));
}

TEST(WalEngineTest, WalRuleLogBeforeData) {
  // Audit physical write ordering: when a data page hits the disk, the log
  // record covering its latest update must already be durable.
  WalEngineOptions opts;
  opts.pool_frames = 2;
  WalFixture f(1, opts);

  uint64_t log_writes_seen = 0;
  f.logs[0]->SetWriteObserver(
      [&](BlockId, const PageData&) { ++log_writes_seen; });
  std::vector<uint64_t> log_writes_at_data_write;
  f.data->SetWriteObserver([&](BlockId, const PageData&) {
    log_writes_at_data_write.push_back(log_writes_seen);
  });

  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(9)).ok());
  // Evict page 1 by touching others.
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 2, &out).ok());
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  ASSERT_TRUE(f.engine->Read(*t2, 4, &out).ok());

  ASSERT_FALSE(log_writes_at_data_write.empty());
  for (uint64_t n : log_writes_at_data_write) {
    EXPECT_GE(n, 1u) << "data page written before any log write";
  }
}

TEST(WalEngineTest, CommitForcesTheLog) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(9)).ok());
  uint64_t before = f.logs[0]->writes();
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  EXPECT_GT(f.logs[0]->writes(), before);
  EXPECT_GE(f.engine->log_forces(), 1u);
}

TEST(WalEngineTest, GroupFillRewritesPartialBlock) {
  // Several small commits should land in the same log block, rewritten in
  // place, not one block per commit.
  WalFixture f(1);
  std::map<BlockId, int> writes_per_block;
  f.logs[0]->SetWriteObserver(
      [&](BlockId b, const PageData&) { ++writes_per_block[b]; });
  for (int i = 0; i < 4; ++i) {
    auto t = f.engine->Begin();
    PageData p = f.Payload(0);
    p[0] = static_cast<uint8_t>(i + 1);
    ASSERT_TRUE(f.engine->Write(*t, static_cast<txn::PageId>(i), p).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  // Small commits share log blocks: the first data block is rewritten in
  // place several times, and the workload never reaches block 3.
  EXPECT_GE(writes_per_block[1], 2);
  EXPECT_EQ(writes_per_block.count(3), 0u);
}

TEST(WalEngineTest, LockConflictReturnsAborted) {
  WalFixture f(1);
  auto t1 = f.engine->Begin();
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t1, 1, f.Payload(1)).ok());
  EXPECT_TRUE(f.engine->Write(*t2, 1, f.Payload(2)).IsAborted());
  PageData out;
  EXPECT_TRUE(f.engine->Read(*t2, 1, &out).IsAborted());
}

TEST(WalEngineTest, OperationsOnUnknownTxnFail) {
  WalFixture f(1);
  PageData out;
  EXPECT_EQ(f.engine->Read(99, 1, &out).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(f.engine->Commit(99).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(f.engine->Abort(99).code(), StatusCode::kFailedPrecondition);
}

TEST(WalEngineTest, WrongPayloadSizeRejected) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  EXPECT_EQ(f.engine->Write(*t, 1, PageData(3, 0)).code(),
            StatusCode::kInvalidArgument);
}

TEST(WalEngineTest, PageOutOfRangeRejected) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  PageData out;
  EXPECT_EQ(f.engine->Read(*t, kDataBlocks + 1, &out).code(),
            StatusCode::kOutOfRange);
}

TEST(WalEngineTest, CheckpointTruncatesLogs) {
  WalFixture f(1);
  for (int i = 0; i < 3; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(
        f.engine->Write(*t, static_cast<txn::PageId>(i), f.Payload(5)).ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  ASSERT_TRUE(f.engine->Checkpoint().ok());
  // After the checkpoint, recovery has nothing to replay.
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_EQ(f.engine->redo_applied(), 0u);
  auto t = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t, 0, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(WalEngineTest, QuiescentCheckpointTruncates) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(1)).ok());
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  ASSERT_TRUE(f.engine->Checkpoint().ok());
  EXPECT_EQ(f.engine->full_checkpoints(), 1u);
  EXPECT_EQ(f.engine->fuzzy_checkpoints(), 0u);
}

TEST(WalEngineTest, FuzzyCheckpointWithActiveTransactions) {
  // Paper's companion [13]: checkpointing without complete quiescing.
  WalFixture f(2);
  // Committed work that the fuzzy checkpoint should retire from the logs.
  for (int i = 0; i < 5; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(f.engine
                    ->Write(*t, static_cast<txn::PageId>(i),
                            f.Payload(static_cast<uint8_t>(i + 1)))
                    .ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  // An active transaction straddles the checkpoint.
  auto active = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*active, 10, f.Payload(99)).ok());

  ASSERT_TRUE(f.engine->Checkpoint().ok());
  EXPECT_EQ(f.engine->fuzzy_checkpoints(), 1u);

  // The transaction continues across the checkpoint and commits.
  ASSERT_TRUE(f.engine->Write(*active, 11, f.Payload(98)).ok());
  ASSERT_TRUE(f.engine->Commit(*active).ok());

  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  // Pre-checkpoint committed work: already home, visible.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        f.engine->Read(*t2, static_cast<txn::PageId>(i), &out).ok());
    EXPECT_EQ(out, f.Payload(static_cast<uint8_t>(i + 1)));
  }
  // The straddling transaction: fully committed and durable.
  ASSERT_TRUE(f.engine->Read(*t2, 10, &out).ok());
  EXPECT_EQ(out, f.Payload(99));
  ASSERT_TRUE(f.engine->Read(*t2, 11, &out).ok());
  EXPECT_EQ(out, f.Payload(98));
}

TEST(WalEngineTest, FuzzyCheckpointRetiresRedoWork) {
  WalFixture f(1);
  for (int i = 0; i < 4; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(f.engine
                    ->Write(*t, static_cast<txn::PageId>(i),
                            f.Payload(7))
                    .ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
  }
  auto active = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*active, 20, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Checkpoint().ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  // Only the straddling (uncommitted) transaction's records remain in the
  // scan; nothing committed needs redo.
  EXPECT_EQ(f.engine->redo_applied(), 0u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 20, &out).ok());
  EXPECT_EQ(out, f.Payload(0));  // uncommitted straddler rolled back
  ASSERT_TRUE(f.engine->Read(*t2, 0, &out).ok());
  EXPECT_EQ(out, f.Payload(7));
}

TEST(WalEngineTest, FuzzyCheckpointAbortedStraddlerUndone) {
  // The straddling transaction's dirty page is stolen to disk after the
  // fuzzy checkpoint; a crash must still undo it from the retained log.
  WalEngineOptions opts;
  opts.pool_frames = 2;
  WalFixture f(1, opts);
  auto t0 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t0, 1, f.Payload(3)).ok());
  ASSERT_TRUE(f.engine->Commit(*t0).ok());

  auto active = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*active, 1, f.Payload(9)).ok());
  ASSERT_TRUE(f.engine->Checkpoint().ok());  // fuzzy: flushes page 1 dirty
  EXPECT_EQ(f.engine->fuzzy_checkpoints(), 1u);

  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->undo_applied(), 1u);
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 1, &out).ok());
  EXPECT_EQ(out, f.Payload(3));
}

TEST(WalEngineTest, RepeatedFuzzyCheckpointsAdvanceMonotonically) {
  WalFixture f(1);
  auto long_runner = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*long_runner, 30, f.Payload(1)).ok());
  for (int i = 0; i < 6; ++i) {
    auto t = f.engine->Begin();
    ASSERT_TRUE(f.engine
                    ->Write(*t, static_cast<txn::PageId>(i),
                            f.Payload(static_cast<uint8_t>(i + 1)))
                    .ok());
    ASSERT_TRUE(f.engine->Commit(*t).ok());
    ASSERT_TRUE(f.engine->Checkpoint().ok());
  }
  EXPECT_EQ(f.engine->fuzzy_checkpoints(), 6u);
  ASSERT_TRUE(f.engine->Commit(*long_runner).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 30, &out).ok());
  EXPECT_EQ(out, f.Payload(1));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        f.engine->Read(*t2, static_cast<txn::PageId>(i), &out).ok());
    EXPECT_EQ(out, f.Payload(static_cast<uint8_t>(i + 1)));
  }
}

TEST(WalEngineTest, ParallelStreamsAllUsed) {
  WalEngineOptions opts;
  opts.policy = LogSelectPolicy::kCyclic;
  WalFixture f(3, opts);
  auto t = f.engine->Begin();
  for (txn::PageId p = 0; p < 6; ++p) {
    ASSERT_TRUE(f.engine->Write(*t, p, f.Payload(1)).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(f.engine->stream_records(i), 2u) << "stream " << i;
  }
}

TEST(WalEngineTest, ParallelRecoveryWithoutMerging) {
  // Distribute one transaction's records over 3 streams, crash before any
  // data page flush, and recover purely from the distributed logs.
  WalFixture f(3);
  auto t = f.engine->Begin();
  for (txn::PageId p = 0; p < 9; ++p) {
    PageData d = f.Payload(static_cast<uint8_t>(p + 1));
    ASSERT_TRUE(f.engine->Write(*t, p, d).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  for (txn::PageId p = 0; p < 9; ++p) {
    PageData out;
    ASSERT_TRUE(f.engine->Read(*t2, p, &out).ok());
    EXPECT_EQ(out, f.Payload(static_cast<uint8_t>(p + 1)));
  }
}

TEST(WalEngineTest, RepeatedUpdatesToSamePageRecover) {
  WalFixture f(2);
  auto t = f.engine->Begin();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(
        f.engine->Write(*t, 3, f.Payload(static_cast<uint8_t>(i))).ok());
  }
  ASSERT_TRUE(f.engine->Commit(*t).ok());
  f.engine->Crash();
  ASSERT_TRUE(f.engine->Recover().ok());
  auto t2 = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(WalEngineTest, IdenticalWriteIsNoop) {
  WalFixture f(1);
  auto t = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(0)).ok());  // same as fresh
  EXPECT_EQ(f.engine->records_appended(), 0u);
  ASSERT_TRUE(f.engine->Commit(*t).ok());
}

class WalWorkloadTest
    : public ::testing::TestWithParam<std::tuple<size_t, LoggingMode>> {};

TEST_P(WalWorkloadTest, RandomWorkloadWithCleanCrashes) {
  auto [n_logs, mode] = GetParam();
  WalEngineOptions opts;
  opts.mode = mode;
  opts.pool_frames = 8;
  WalFixture f(n_logs, opts);
  testing::RunRandomWorkload(f.engine.get(), 12345 + n_logs, 120);
}

TEST_P(WalWorkloadTest, CrashEverywhereSweep) {
  auto [n_logs, mode] = GetParam();
  WalEngineOptions opts;
  opts.mode = mode;
  opts.pool_frames = 4;
  WalFixture f(n_logs, opts);
  auto counter = std::make_shared<int64_t>(1 << 30);
  f.data->SetSharedFailCounter(counter);
  for (auto& l : f.logs) l->SetSharedFailCounter(counter);
  testing::RunCrashEverywhere(
      f.engine.get(), [&](int64_t n) { *counter = n; },
      [&] {
        *counter = int64_t{1} << 30;
        f.data->ClearCrashState();
        for (auto& l : f.logs) l->ClearCrashState();
      },
      777);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, WalWorkloadTest,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{4}),
                       ::testing::Values(LoggingMode::kLogical,
                                         LoggingMode::kPhysical)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, LoggingMode>>& i) {
      return "logs" + std::to_string(std::get<0>(i.param)) +
             (std::get<1>(i.param) == LoggingMode::kLogical ? "_logical"
                                                            : "_physical");
    });

TEST(WalEngineTest, FlushedAbortedUpdateUndoneBeforeLaterRedo) {
  // Regression for a recovery-ordering bug: transaction A updates a page
  // which is STOLEN to disk, A aborts (its compensation record is lost in
  // the crash because it sits on a log stream the next commit never
  // forces), then B updates the same page and commits.  Recovery must
  // first UNDO A's flushed bytes and only then REDO B's diff — the old
  // redo-first order left A's bytes outside B's diff range on the page.
  WalEngineOptions opts;
  opts.policy = LogSelectPolicy::kTxnMod;  // txn id picks the stream
  opts.pool_frames = 2;
  WalFixture f(2, opts);

  // Baseline: txn 1 (stream 1) commits page 1 = 3.
  auto t1 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t1, 1, f.Payload(3)).ok());
  ASSERT_TRUE(f.engine->Commit(*t1).ok());

  // Txn 2 (stream 0) updates page 1 and has it stolen to disk.
  auto t2 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t2, 1, f.Payload(9)).ok());
  auto reader = f.engine->Begin();
  PageData out;
  ASSERT_TRUE(f.engine->Read(*reader, 2, &out).ok());
  ASSERT_TRUE(f.engine->Read(*reader, 3, &out).ok());
  ASSERT_TRUE(f.engine->Read(*reader, 4, &out).ok());  // evicts page 1
  ASSERT_TRUE(f.engine->Abort(*reader).ok());
  // Abort txn 2: its CLR lands on stream 0 and stays unforced.
  ASSERT_TRUE(f.engine->Abort(*t2).ok());

  // Txn 3 (stream 1) rewrites page 1 and commits (forces stream 1 only).
  auto t3 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Write(*t3, 1, f.Payload(5)).ok());
  ASSERT_TRUE(f.engine->Commit(*t3).ok());

  f.engine->Crash();  // stream 0's CLR and abort record vanish
  ASSERT_TRUE(f.engine->Recover().ok());
  EXPECT_GE(f.engine->undo_applied(), 1u);
  auto t4 = f.engine->Begin();
  ASSERT_TRUE(f.engine->Read(*t4, 1, &out).ok());
  EXPECT_EQ(out, f.Payload(5));
}

TEST(WalEngineTest, PolicyTxnModRoutesDeterministically) {
  WalEngineOptions opts;
  opts.policy = LogSelectPolicy::kTxnMod;
  WalFixture f(2, opts);
  auto t = f.engine->Begin();  // txn id 1 -> stream 1
  ASSERT_TRUE(f.engine->Write(*t, 0, f.Payload(1)).ok());
  ASSERT_TRUE(f.engine->Write(*t, 1, f.Payload(1)).ok());
  EXPECT_EQ(f.engine->stream_records(1), 2u);
  EXPECT_EQ(f.engine->stream_records(0), 0u);
  ASSERT_TRUE(f.engine->Commit(*t).ok());
}

TEST(WalEngineTest, LogFullReportsResourceExhausted) {
  WalFixture f(1);
  // Shrink: rebuild with a tiny log.
  auto small_log = std::make_unique<VirtualDisk>("tiny", 3, kBlock);
  WalEngine e(f.data.get(), {small_log.get()});
  ASSERT_TRUE(e.Format().ok());
  Status last = Status::OK();
  for (int i = 0; i < 200 && last.ok(); ++i) {
    auto t = e.Begin();
    PageData p(e.payload_size(), static_cast<uint8_t>(i));
    last = e.Write(*t, static_cast<txn::PageId>(i % kDataBlocks), p);
    if (last.ok()) last = e.Commit(*t);
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dbmr::store
