// Tests for the deterministic event-trace ring: ring mechanics, Chrome
// trace_event JSON shape, and the determinism guarantees the tooling
// relies on (identical runs produce byte-identical traces, and a grid
// run's per-cell traces do not depend on the worker-thread count).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/grid.h"
#include "machine/machine.h"
#include "machine/sim_logging.h"
#include "sim/trace.h"

namespace dbmr::sim {
namespace {

TEST(TraceRingTest, KeepsNewestEventsWhenFull) {
  TraceRing ring(4);
  uint16_t track = ring.RegisterTrack("t");
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Emit(static_cast<TimeMs>(i), track, TraceKind::kTxnAdmit, i);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);  // oldest surviving
  EXPECT_EQ(events.back().a, 9u);   // newest
}

TEST(TraceRingTest, RegisterTrackDedupsByName) {
  TraceRing ring;
  uint16_t a = ring.RegisterTrack("data0");
  uint16_t b = ring.RegisterTrack("wal");
  EXPECT_NE(a, b);
  EXPECT_EQ(ring.RegisterTrack("data0"), a);
  EXPECT_EQ(ring.num_tracks(), 2u);
}

TEST(TraceRingTest, ChromeJsonHasMetadataAndPhases) {
  TraceRing ring;
  uint16_t disk = ring.RegisterTrack("data0");
  uint16_t mach = ring.RegisterTrack("machine");
  ring.Emit(1.0, disk, TraceKind::kDiskAccessStart, 2, 5);
  ring.Emit(2.5, disk, TraceKind::kDiskAccessEnd, 1);
  ring.Emit(3.0, mach, TraceKind::kCommitDone, 7);
  const std::string json = ring.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dbmr\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"data0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"machine\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"commit-done\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceRingTest, TailShowsNewestEventsHumanReadable) {
  TraceRing ring;
  uint16_t track = ring.RegisterTrack("machine");
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Emit(static_cast<TimeMs>(i), track, TraceKind::kReadIssue, 1, i);
  }
  const std::string tail = ring.Tail(2);
  EXPECT_EQ(tail.find("b=2"), std::string::npos);
  EXPECT_NE(tail.find("b=3"), std::string::npos);
  EXPECT_NE(tail.find("b=4"), std::string::npos);
  EXPECT_NE(tail.find("read-issue"), std::string::npos);
}

machine::SimLoggingOptions RandomSelectLogging() {
  machine::SimLoggingOptions o;
  o.num_log_processors = 2;
  o.select = machine::LogSelect::kRandom;
  return o;
}

std::string TraceOneRun(core::Configuration c, uint64_t seed) {
  TraceRing ring;
  core::ExperimentSetup setup = core::StandardSetup(c, /*num_txns=*/6, seed);
  setup.machine.trace = &ring;
  core::RunWith(setup,
                std::make_unique<machine::SimLogging>(RandomSelectLogging()));
  EXPECT_GT(ring.total_emitted(), 0u);
  return ring.ToChromeJson();
}

TEST(TraceDeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    EXPECT_EQ(TraceOneRun(core::Configuration::kConvRandom, seed),
              TraceOneRun(core::Configuration::kConvRandom, seed));
  }
}

/// Runs the standard four-configuration grid with a private ring per cell
/// and returns each cell's rendered trace.
std::vector<std::string> GridTraces(uint64_t base_seed, int jobs) {
  std::vector<std::unique_ptr<TraceRing>> rings;
  core::GridSpec spec;
  spec.name = "trace-test";
  spec.base_seed = base_seed;
  for (core::Configuration c : core::kAllConfigurations) {
    core::GridCellSpec cell;
    cell.config_name = core::ConfigurationName(c);
    cell.arch_label = "logging";
    cell.setup = core::StandardSetup(c, /*num_txns=*/6, base_seed);
    rings.push_back(std::make_unique<TraceRing>());
    cell.setup.machine.trace = rings.back().get();
    cell.make_arch = [] {
      return std::make_unique<machine::SimLogging>(RandomSelectLogging());
    };
    spec.cells.push_back(std::move(cell));
  }
  core::GridRunOptions opts;
  opts.jobs = jobs;
  core::RunGrid(spec, opts);
  std::vector<std::string> traces;
  for (const auto& ring : rings) {
    EXPECT_GT(ring->total_emitted(), 0u);
    traces.push_back(ring->ToChromeJson());
  }
  return traces;
}

TEST(TraceDeterminismTest, GridTracesIndependentOfJobs) {
  // The kRandom log-selection policy draws from a per-machine stream
  // derived from the cell seed, so even that policy's traces must be
  // byte-identical whether the grid ran on one worker or eight.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    std::vector<std::string> serial = GridTraces(seed, /*jobs=*/1);
    std::vector<std::string> parallel = GridTraces(seed, /*jobs=*/8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(serial[i], parallel[i]);
    }
  }
}

}  // namespace
}  // namespace dbmr::sim
