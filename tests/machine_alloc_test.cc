// Allocation accounting for the streaming machine.
//
// Overrides global operator new/delete with counting versions (its own
// binary for that reason, like sim_alloc_test) and pins the two memory
// guarantees the 100x-scale work depends on:
//
//  1. Steady state is cheap: once the pools are warm, each additional
//     transaction costs a small bounded number of heap allocations (the
//     spec's page vectors), not a growing one.  A regression that makes
//     admission or completion allocate per page — or re-sizes a pool per
//     transaction — fails loudly.
//  2. Residency is O(MPL), not O(transactions): the peak live bytes of a
//     long streaming run match a short one, because specs are pulled one
//     at a time and TxnRun slots recycle.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size, for live-byte accounting
#endif

#include "core/experiment.h"
#include "machine/machine.h"
#include "machine/recovery_arch.h"

namespace {

std::atomic<uint64_t> g_allocations{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_live_bytes{0};

void RecordAlloc(void* p) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
#if defined(__GLIBC__)
  const int64_t live =
      g_live_bytes.fetch_add(
          static_cast<int64_t>(malloc_usable_size(p)),
          std::memory_order_relaxed) +
      static_cast<int64_t>(malloc_usable_size(p));
  int64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live_bytes.compare_exchange_weak(
             peak, live, std::memory_order_relaxed)) {
  }
#else
  (void)p;
#endif
}

void RecordFree(void* p) {
#if defined(__GLIBC__)
  if (p != nullptr) {
    g_live_bytes.fetch_sub(static_cast<int64_t>(malloc_usable_size(p)),
                           std::memory_order_relaxed);
  }
#else
  (void)p;
#endif
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  RecordAlloc(p);
  return p;
}

void* operator new[](std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  RecordAlloc(p);
  return p;
}

void operator delete(void* p) noexcept {
  RecordFree(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  RecordFree(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  RecordFree(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  RecordFree(p);
  std::free(p);
}

namespace dbmr::machine {
namespace {

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

core::ExperimentSetup ScaledSetup(int txns) {
  auto s = core::StandardSetup(core::Configuration::kConvRandom, txns, 9);
  s.machine.audit = false;  // the auditor keeps its own records; measured
                            // here is the machine proper
  // Short transactions, as in the 1000-QP saturation runs: the remaining
  // per-transaction allocations are O(pages touched) (spec vectors,
  // write-set nodes, disk-callback captures), so small transactions give
  // a tight constant to pin.
  s.workload.min_pages = 1;
  s.workload.max_pages = 4;
  return s;
}

uint64_t AllocationsForRun(int txns) {
  auto setup = ScaledSetup(txns);
  Machine m(setup.machine, workload::MakeGeneratorSource(setup.workload),
            std::make_unique<BareArch>());
  const uint64_t before = AllocationCount();
  auto r = m.Run();
  const uint64_t after = AllocationCount();
  EXPECT_EQ(r.completion_ms.count(), txns);
  return after - before;
}

TEST(MachineAllocTest, SteadyStateAllocationsPerTxnAreBounded) {
  // Marginal cost of a transaction = (allocs for 2N) - (allocs for N),
  // averaged.  Subtracting cancels the fixed startup cost (disk models,
  // Reserve()d pools, generator), leaving only per-txn work: the spec's
  // read/write vectors plus whatever the hot path leaks in.  The bound is
  // deliberately loose (measured ~6) — it exists to catch per-page or
  // per-pool-growth allocations, which would blow through it by 10x.
  const uint64_t base = AllocationsForRun(300);
  const uint64_t doubled = AllocationsForRun(600);
  ASSERT_GE(doubled, base);
  const uint64_t marginal = (doubled - base) / 300;
  EXPECT_LE(marginal, 64u)
      << "per-transaction allocations grew: base=" << base
      << " doubled=" << doubled;
}

#if defined(__GLIBC__)
TEST(MachineAllocTest, StreamingResidencyIsIndependentOfRunLength) {
  // Peak live bytes of a 3x longer run must stay where the shorter run's
  // peak was: transactions stream through a recycled O(MPL) pool, they
  // are never materialized as a batch.  Both runs are long enough to have
  // warmed the disks' bucket map (one retained node per (cylinder, op)
  // touched — O(geometry), and the reason a *cold* short run peaks
  // lower), so any remaining growth would be genuinely per-transaction.
  // A batch workload of 4800 specs would add ~1 MB and trip the
  // 1.3x+64KB envelope.
  auto peak_of = [](int txns) {
    auto setup = ScaledSetup(txns);
    Machine m(setup.machine, workload::MakeGeneratorSource(setup.workload),
              std::make_unique<BareArch>());
    const int64_t start = g_live_bytes.load(std::memory_order_relaxed);
    g_peak_live_bytes.store(start, std::memory_order_relaxed);
    auto r = m.Run();
    EXPECT_EQ(r.completion_ms.count(), txns);
    return g_peak_live_bytes.load(std::memory_order_relaxed) - start;
  };
  const int64_t short_peak = peak_of(1600);
  const int64_t long_peak = peak_of(4800);
  EXPECT_LE(long_peak, short_peak + short_peak / 3 + 64 * 1024)
      << "short=" << short_peak << " long=" << long_peak;
}
#endif

}  // namespace
}  // namespace dbmr::machine
