// Unit tests for the crash-able stable-storage model.

#include <gtest/gtest.h>

#include <vector>

#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

PageData Filled(size_t n, uint8_t v) { return PageData(n, v); }

TEST(VirtualDiskTest, StartsZeroFilled) {
  VirtualDisk d("d", 4, 128);
  PageData out;
  ASSERT_TRUE(d.Read(0, &out).ok());
  EXPECT_EQ(out, Filled(128, 0));
}

TEST(VirtualDiskTest, WriteThenReadBack) {
  VirtualDisk d("d", 4, 128);
  ASSERT_TRUE(d.Write(2, Filled(128, 7)).ok());
  PageData out;
  ASSERT_TRUE(d.Read(2, &out).ok());
  EXPECT_EQ(out, Filled(128, 7));
  EXPECT_EQ(d.writes(), 1u);
  EXPECT_EQ(d.reads(), 1u);
}

TEST(VirtualDiskTest, OutOfRangeRejected) {
  VirtualDisk d("d", 4, 128);
  PageData out;
  EXPECT_EQ(d.Read(4, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(d.Write(4, Filled(128, 1)).code(), StatusCode::kOutOfRange);
}

TEST(VirtualDiskTest, WrongSizeRejected) {
  VirtualDisk d("d", 4, 128);
  EXPECT_EQ(d.Write(0, Filled(64, 1)).code(), StatusCode::kInvalidArgument);
}

TEST(VirtualDiskTest, FailAfterWritesInjectsCrash) {
  VirtualDisk d("d", 4, 128);
  d.FailAfterWrites(2);
  EXPECT_TRUE(d.Write(0, Filled(128, 1)).ok());
  EXPECT_TRUE(d.Write(1, Filled(128, 2)).ok());
  EXPECT_TRUE(d.Write(2, Filled(128, 3)).IsIoError());
  EXPECT_TRUE(d.crashed());
  // Failed write must not modify the block.
  PageData out;
  ASSERT_TRUE(d.Read(2, &out).ok());
  EXPECT_EQ(out, Filled(128, 0));
  // Subsequent writes keep failing until the crash state clears.
  EXPECT_TRUE(d.Write(3, Filled(128, 4)).IsIoError());
  d.ClearCrashState();
  EXPECT_TRUE(d.Write(3, Filled(128, 4)).ok());
}

TEST(VirtualDiskTest, ContentsSurviveCrash) {
  VirtualDisk d("d", 4, 128);
  ASSERT_TRUE(d.Write(1, Filled(128, 9)).ok());
  d.FailAfterWrites(0);
  EXPECT_TRUE(d.Write(1, Filled(128, 5)).IsIoError());
  d.ClearCrashState();
  PageData out;
  ASSERT_TRUE(d.Read(1, &out).ok());
  EXPECT_EQ(out, Filled(128, 9));  // pre-crash content intact
}

TEST(VirtualDiskTest, TornWriteLeavesPrefix) {
  VirtualDisk d("d", 2, 128);
  ASSERT_TRUE(d.Write(0, Filled(128, 1)).ok());
  d.SetTornWriteMode(true, 32);
  d.FailAfterWrites(0);
  EXPECT_TRUE(d.Write(0, Filled(128, 2)).IsIoError());
  PageData out;
  ASSERT_TRUE(d.Read(0, &out).ok());
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(out[i], 2) << i;
  for (size_t i = 32; i < 128; ++i) EXPECT_EQ(out[i], 1) << i;
}

TEST(VirtualDiskTest, FailAfterReadsInjectsReadFailure) {
  VirtualDisk d("d", 4, 128);
  ASSERT_TRUE(d.Write(0, Filled(128, 1)).ok());
  d.FailAfterReads(1);
  PageData out;
  EXPECT_TRUE(d.Read(0, &out).ok());
  EXPECT_TRUE(d.Read(0, &out).IsIoError());
  EXPECT_TRUE(d.Read(1, &out).IsIoError());  // fail-stop: stays down
  EXPECT_EQ(d.fault_counters().read_failures, 2u);
  d.ClearCrashState();
  EXPECT_TRUE(d.Read(0, &out).ok());
}

TEST(VirtualDiskTest, SharedReadFailCounterCutsReadsAcrossDisks) {
  VirtualDisk a("a", 2, 128), b("b", 2, 128);
  auto budget = std::make_shared<int64_t>(3);
  a.SetSharedReadFailCounter(budget);
  b.SetSharedReadFailCounter(budget);
  PageData out;
  EXPECT_TRUE(a.Read(0, &out).ok());
  EXPECT_TRUE(b.Read(0, &out).ok());
  EXPECT_TRUE(a.Read(1, &out).ok());
  EXPECT_TRUE(b.Read(1, &out).IsIoError());  // budget anywhere exhausted
  // ClearCrashState does not reset the shared budget...
  b.ClearCrashState();
  EXPECT_TRUE(b.Read(1, &out).IsIoError());
  // ... refilling it does.
  *budget = 1;
  EXPECT_TRUE(b.Read(1, &out).ok());
}

TEST(VirtualDiskTest, TransientWriteErrorHealsOnRetry) {
  VirtualDisk d("d", 4, 128);
  d.ArmTransientWriteError(1);
  ASSERT_TRUE(d.Write(0, Filled(128, 1)).ok());
  EXPECT_TRUE(d.Write(1, Filled(128, 2)).IsIoError());
  EXPECT_FALSE(d.crashed());  // not a fail-stop fault
  // The failed write modified nothing, and the retry succeeds.
  PageData out;
  ASSERT_TRUE(d.Read(1, &out).ok());
  EXPECT_EQ(out, Filled(128, 0));
  EXPECT_TRUE(d.Write(1, Filled(128, 2)).ok());
  ASSERT_TRUE(d.Read(1, &out).ok());
  EXPECT_EQ(out, Filled(128, 2));
  EXPECT_EQ(d.fault_counters().transient_writes, 1u);
}

TEST(VirtualDiskTest, TransientReadErrorHealsOnRetry) {
  VirtualDisk d("d", 4, 128);
  ASSERT_TRUE(d.Write(0, Filled(128, 9)).ok());
  d.ArmTransientReadError(0);
  PageData out;
  EXPECT_TRUE(d.Read(0, &out).IsIoError());
  EXPECT_FALSE(d.crashed());
  ASSERT_TRUE(d.Read(0, &out).ok());
  EXPECT_EQ(out, Filled(128, 9));
  EXPECT_EQ(d.fault_counters().transient_reads, 1u);
}

TEST(VirtualDiskTest, FlipBitCorruptsInPlace) {
  VirtualDisk d("d", 4, 128);
  ASSERT_TRUE(d.Write(1, Filled(128, 0xFF)).ok());
  ASSERT_TRUE(d.FlipBit(1, 5, 0x10).ok());
  PageData out;
  ASSERT_TRUE(d.Read(1, &out).ok());
  EXPECT_EQ(out[5], 0xEF);
  EXPECT_EQ(out[4], 0xFF);
  EXPECT_EQ(d.fault_counters().bit_flips, 1u);
  EXPECT_TRUE(d.FlipBit(9, 0, 1).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(d.FlipBit(0, 999, 1).code() == StatusCode::kOutOfRange);
}

TEST(VirtualDiskTest, TornWriteCountsAsTornFault) {
  VirtualDisk d("d", 2, 128);
  d.SetTornWriteMode(true, 16);
  d.FailAfterWrites(0);
  EXPECT_TRUE(d.Write(0, Filled(128, 3)).IsIoError());
  EXPECT_EQ(d.fault_counters().torn_writes, 1u);
  EXPECT_EQ(d.fault_counters().write_failures, 1u);
}

TEST(VirtualDiskTest, WriteObserverSeesSuccessfulWrites) {
  VirtualDisk d("d", 4, 128);
  std::vector<BlockId> observed;
  d.SetWriteObserver(
      [&](BlockId b, const PageData&) { observed.push_back(b); });
  ASSERT_TRUE(d.Write(3, Filled(128, 1)).ok());
  d.FailAfterWrites(0);
  (void)d.Write(2, Filled(128, 1));
  EXPECT_EQ(observed, (std::vector<BlockId>{3}));
}

}  // namespace
}  // namespace dbmr::store
