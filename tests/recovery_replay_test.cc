// Parallel recovery replay: planner unit tests plus the determinism
// contract.  The partitioned pipeline (recovery_jobs >= 1) must recover a
// disk image byte-identical to the sequential reference path
// (recovery_jobs == 0) at every job count — including cut-down recoveries
// that crash mid-replay.
//
// The workloads here are sized so the WAL log stream crosses
// kParallelReplayMinBytes and replay genuinely dispatches to the thread
// pool (this test is part of the TSan CI job for exactly that reason).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "store/recovery/differential_page_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/replay_plan.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

namespace dbmr::store {
namespace {

// ---------------------------------------------------------------------------
// ReplayPartitioner

TEST(ReplayPartitionerTest, UnlinkedPagesAreSingletons) {
  ReplayPartitioner p;
  p.AddPage(7);
  p.AddPage(3);
  p.AddPage(11);
  auto parts = p.Partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], std::vector<txn::PageId>{3});
  EXPECT_EQ(parts[1], std::vector<txn::PageId>{7});
  EXPECT_EQ(parts[2], std::vector<txn::PageId>{11});
}

TEST(ReplayPartitionerTest, LinkMergesTransitively) {
  ReplayPartitioner p;
  p.Link(5, 9);
  p.Link(9, 2);
  p.AddPage(4);
  auto parts = p.Partitions();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], (std::vector<txn::PageId>{2, 5, 9}));
  EXPECT_EQ(parts[1], std::vector<txn::PageId>{4});
}

TEST(ReplayPartitionerTest, PartitionsIgnoreInsertionOrder) {
  ReplayPartitioner a;
  a.AddPage(1);
  a.Link(6, 3);
  a.AddPage(8);
  a.Link(3, 8);

  ReplayPartitioner b;
  b.Link(8, 6);
  b.AddPage(3);
  b.Link(3, 6);
  b.AddPage(1);

  EXPECT_EQ(a.Partitions(), b.Partitions());
}

TEST(ReplayPartitionerTest, AddPageIsIdempotent) {
  ReplayPartitioner p;
  p.AddPage(2);
  p.AddPage(2);
  p.Link(2, 2);
  EXPECT_EQ(p.num_pages(), 1u);
  ASSERT_EQ(p.Partitions().size(), 1u);
}

// ---------------------------------------------------------------------------
// SegmentedBytes

TEST(SegmentedBytesTest, CopyOutGathersAcrossSegments) {
  std::vector<uint8_t> s1 = {1, 2, 3};
  std::vector<uint8_t> s2 = {4, 5};
  std::vector<uint8_t> s3 = {6, 7, 8, 9};
  SegmentedBytes sb;
  sb.AddSegment(s1.data(), s1.size());
  sb.AddSegment(s2.data(), s2.size());
  sb.AddSegment(s3.data(), s3.size());
  ASSERT_EQ(sb.size(), 9u);

  std::vector<uint8_t> out(7);
  sb.CopyOut(1, 7, out.data());
  EXPECT_EQ(out, (std::vector<uint8_t>{2, 3, 4, 5, 6, 7, 8}));
}

TEST(SegmentedBytesTest, ContiguousAtRefusesBoundarySpans) {
  std::vector<uint8_t> s1 = {1, 2, 3};
  std::vector<uint8_t> s2 = {4, 5, 6};
  SegmentedBytes sb;
  sb.AddSegment(s1.data(), s1.size());
  sb.AddSegment(s2.data(), s2.size());

  EXPECT_EQ(sb.ContiguousAt(0, 3), s1.data());
  EXPECT_EQ(sb.ContiguousAt(4, 2), s2.data() + 1);
  EXPECT_EQ(sb.ContiguousAt(2, 2), nullptr);  // straddles the boundary
}

// ---------------------------------------------------------------------------
// EffectiveReplayJobs

TEST(EffectiveReplayJobsTest, CollapsesToCallerBelowThreshold) {
  EXPECT_EQ(EffectiveReplayJobs(8, kParallelReplayMinBytes - 1), 1);
  EXPECT_EQ(EffectiveReplayJobs(8, kParallelReplayMinBytes), 8);
  EXPECT_EQ(EffectiveReplayJobs(1, kParallelReplayMinBytes * 2), 1);
}

// ---------------------------------------------------------------------------
// Parallel-vs-sequential recovery equivalence
//
// Each (engine, seed) runs an identical deterministic workload to a crash
// on identically-formatted disks, once per recovery_jobs setting, then
// byte-compares every block of every recovered disk against the
// recovery_jobs=0 reference image.

constexpr size_t kBlock = 4096;

struct Eut {
  std::vector<std::unique_ptr<VirtualDisk>> disks;
  std::unique_ptr<PageEngine> engine;

  void ArmSharedCounter(std::shared_ptr<int64_t> counter) {
    for (auto& d : disks) d->SetSharedFailCounter(counter);
  }
  void ClearCrash() {
    for (auto& d : disks) d->ClearCrashState();
  }
};

Eut MakeEngineCfg(const std::string& kind, int jobs) {
  Eut e;
  if (kind == "wal1" || kind == "wal3") {
    const size_t n_logs = kind == "wal3" ? 3 : 1;
    e.disks.push_back(std::make_unique<VirtualDisk>("data", 256, kBlock));
    std::vector<VirtualDisk*> logs;
    for (size_t i = 0; i < n_logs; ++i) {
      e.disks.push_back(std::make_unique<VirtualDisk>("log", 1024, kBlock));
      logs.push_back(e.disks.back().get());
    }
    WalEngineOptions o;
    o.recovery_jobs = jobs;
    e.engine = std::make_unique<WalEngine>(e.disks[0].get(), logs, o);
  } else if (kind == "overwrite_noundo" || kind == "overwrite_noredo") {
    OverwriteEngineOptions o;
    o.list_blocks = 64;
    o.scratch_blocks = 320;  // 320 * 4 KiB crosses kParallelReplayMinBytes
    o.recovery_jobs = jobs;
    if (kind == "overwrite_noredo") o.mode = OverwriteMode::kNoRedo;
    e.disks.push_back(
        std::make_unique<VirtualDisk>("d", 128 + 1 + 64 + 320, kBlock));
    e.engine = std::make_unique<OverwriteEngine>(e.disks[0].get(), 128, o);
  } else if (kind == "shadow") {
    ShadowEngineOptions o;
    o.recovery_jobs = jobs;
    e.disks.push_back(
        std::make_unique<VirtualDisk>("d", 128 * 3 + 8, kBlock));
    e.engine = std::make_unique<ShadowEngine>(e.disks[0].get(), 128, o);
  } else if (kind == "differential") {
    DifferentialEngineOptions o;
    o.base_blocks = 64;
    o.a_blocks = 512;  // room for an A stream past kParallelReplayMinBytes
    o.d_blocks = 64;
    o.recovery_jobs = jobs;
    e.disks.push_back(std::make_unique<VirtualDisk>(
        "d", 1 + o.a_blocks + o.d_blocks + 2 * o.base_blocks, kBlock));
    // 2 KiB payloads = 256 keys per page write, so the committed A stream
    // crosses kParallelReplayMinBytes and replay genuinely fans out.
    e.engine = std::make_unique<DifferentialPageEngine>(
        e.disks[0].get(), 128, /*payload_bytes=*/2048, o);
  } else {  // version_select
    VersionSelectEngineOptions o;
    o.list_blocks = 64;
    o.recovery_jobs = jobs;
    e.disks.push_back(
        std::make_unique<VirtualDisk>("d", 1 + 64 + 2 * 128, kBlock));
    e.engine = std::make_unique<VersionSelectEngine>(e.disks[0].get(), 128, o);
  }
  EXPECT_TRUE(e.engine->Format().ok());
  return e;
}

/// Every block of every disk, concatenated — the whole stable state.
std::vector<uint8_t> DumpDisks(const Eut& e) {
  std::vector<uint8_t> image;
  for (const auto& d : e.disks) {
    std::vector<uint8_t> block(d->block_size());
    for (uint64_t b = 0; b < d->num_blocks(); ++b) {
      EXPECT_TRUE(d->ReadInto(b, block.data()).ok());
      image.insert(image.end(), block.begin(), block.end());
    }
  }
  return image;
}

/// Deterministic mixed workload ending in a crash with one loser in
/// flight: `txns` transactions of 4 random-page writes each, ~1 in 4
/// aborted.  Sized so the WAL log stream exceeds kParallelReplayMinBytes.
void RunWorkloadToCrash(Eut& e, uint64_t seed, int txns = 60) {
  Rng rng(seed);
  const uint64_t pages = e.engine->num_pages();
  PageData payload(e.engine->payload_size(), 0);
  for (int i = 0; i < txns; ++i) {
    auto t = e.engine->Begin();
    ASSERT_TRUE(t.ok());
    for (int w = 0; w < 4; ++w) {
      const auto page = static_cast<txn::PageId>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      payload[0] = static_cast<uint8_t>(i);
      payload[1] = static_cast<uint8_t>(w);
      ASSERT_TRUE(e.engine->Write(*t, page, payload).ok());
    }
    if (rng.UniformDouble() < 0.25) {
      ASSERT_TRUE(e.engine->Abort(*t).ok());
    } else {
      ASSERT_TRUE(e.engine->Commit(*t).ok());
    }
  }
  auto loser = e.engine->Begin();
  ASSERT_TRUE(loser.ok());
  payload[0] = 0xEE;
  ASSERT_TRUE(e.engine->Write(*loser, 0, payload).ok());
  e.engine->Crash();
}

struct EquivalenceParam {
  std::string kind;
};

class RecoveryEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(RecoveryEquivalenceTest, ImageIdenticalAtEveryJobCount) {
  const std::string& kind = GetParam().kind;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Eut ref = MakeEngineCfg(kind, /*jobs=*/0);
    RunWorkloadToCrash(ref, seed);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(ref.engine->Recover().ok());
    const std::vector<uint8_t> want = DumpDisks(ref);
    const uint64_t want_records =
        ref.engine->last_recovery_stats().replay_records;

    for (int jobs : {1, 2, 8}) {
      Eut e = MakeEngineCfg(kind, jobs);
      RunWorkloadToCrash(e, seed);
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_TRUE(e.engine->Recover().ok()) << kind << " jobs " << jobs;
      const RecoveryStats stats = e.engine->last_recovery_stats();
      EXPECT_EQ(stats.jobs, jobs) << kind;
      EXPECT_EQ(stats.replay_records, want_records)
          << kind << " seed " << seed << " jobs " << jobs;
      // Overwrite partitions count txns with replay work, which can
      // legitimately be zero; the other engines always partition.
      if (kind != "overwrite_noundo" && kind != "overwrite_noredo") {
        EXPECT_GT(stats.partitions, 0u)
            << kind << " seed " << seed << " jobs " << jobs;
      }
      EXPECT_TRUE(DumpDisks(e) == want)
          << kind << " seed " << seed << " jobs " << jobs
          << ": recovered image diverged from the sequential reference";
    }
  }
}

// Cut-down recovery equivalence: crash recovery itself after n physical
// writes for every n until it completes, under both the sequential
// reference path and the partitioned pipeline.  After the follow-up full
// recovery, the *logical* page state must agree between the two paths.
// (Raw disk bytes may legitimately differ after an interrupted recovery —
// the two paths order their recovery writes differently, so the cut lands
// on different intermediate states.)
TEST_P(RecoveryEquivalenceTest, CutDownRecoveryConverges) {
  const std::string& kind = GetParam().kind;
  constexpr int64_t kMaxBudget = 20000;
  for (int64_t n = 0;; ++n) {
    ASSERT_LT(n, kMaxBudget) << "recovery never completed within budget";
    bool both_clean = true;
    std::vector<PageData> state[2];
    const int jobs_of[2] = {0, 2};
    for (int i = 0; i < 2; ++i) {
      Eut e = MakeEngineCfg(kind, jobs_of[i]);
      RunWorkloadToCrash(e, /*seed=*/1, /*txns=*/12);
      if (::testing::Test::HasFatalFailure()) return;
      e.ClearCrash();

      auto budget = std::make_shared<int64_t>(n);
      e.ArmSharedCounter(budget);
      Status st = e.engine->Recover();
      *budget = std::numeric_limits<int64_t>::max();
      if (!st.ok()) {
        both_clean = false;
        e.engine->Crash();
        e.ClearCrash();
        ASSERT_TRUE(e.engine->Recover().ok())
            << kind << " jobs " << jobs_of[i] << " n=" << n;
      }

      auto t = e.engine->Begin();
      ASSERT_TRUE(t.ok());
      for (uint64_t p = 0; p < e.engine->num_pages(); ++p) {
        PageData out;
        ASSERT_TRUE(e.engine->Read(*t, p, &out).ok());
        state[i].push_back(std::move(out));
      }
      ASSERT_TRUE(e.engine->Commit(*t).ok());
    }
    ASSERT_TRUE(state[0] == state[1])
        << kind << ": paths disagree after recovery cut at write " << n;
    if (both_clean) break;  // every cut point up to completion covered
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, RecoveryEquivalenceTest,
    ::testing::Values(EquivalenceParam{"wal1"}, EquivalenceParam{"wal3"},
                      EquivalenceParam{"shadow"},
                      EquivalenceParam{"differential"},
                      EquivalenceParam{"overwrite_noundo"},
                      EquivalenceParam{"overwrite_noredo"},
                      EquivalenceParam{"version_select"}),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      return info.param.kind;
    });

}  // namespace
}  // namespace dbmr::store
