// Equivalence test: the five recovery mechanisms are different roads to
// the same destination.  Apply one deterministic history of transactions
// (commits, aborts, repeated writes, clean crashes) to every functional
// engine and require byte-identical final database states.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 16;

/// A scripted operation history, generated once and replayed per engine.
struct Op {
  enum Kind { kBegin, kWrite, kCommit, kAbort, kCrash } kind;
  int txn_slot = 0;     // index into the live-transaction slots
  txn::PageId page = 0;
  uint8_t fill = 0;
};

std::vector<Op> MakeHistory(uint64_t seed, int n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  bool live[2] = {false, false};
  for (int i = 0; i < n_ops; ++i) {
    int slot = static_cast<int>(rng.UniformInt(0, 1));
    double coin = rng.UniformDouble();
    if (!live[slot]) {
      ops.push_back(Op{Op::kBegin, slot, 0, 0});
      live[slot] = true;
      continue;
    }
    if (coin < 0.6) {
      ops.push_back(Op{Op::kWrite, slot,
                       static_cast<txn::PageId>(rng.UniformInt(
                           0, static_cast<int64_t>(kPages) - 1)),
                       static_cast<uint8_t>(rng.UniformInt(1, 255))});
    } else if (coin < 0.8) {
      ops.push_back(Op{Op::kCommit, slot, 0, 0});
      live[slot] = false;
    } else if (coin < 0.93) {
      ops.push_back(Op{Op::kAbort, slot, 0, 0});
      live[slot] = false;
    } else {
      ops.push_back(Op{Op::kCrash, 0, 0, 0});
      live[0] = live[1] = false;
    }
  }
  return ops;
}

/// Replays the history; returns the final committed page images.
std::map<txn::PageId, PageData> Replay(PageEngine* e,
                                       const std::vector<Op>& ops) {
  EXPECT_TRUE(e->Format().ok());
  txn::TxnId slots[2] = {txn::kNoTxn, txn::kNoTxn};
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kBegin: {
        auto t = e->Begin();
        EXPECT_TRUE(t.ok());
        slots[op.txn_slot] = *t;
        break;
      }
      case Op::kWrite: {
        if (slots[op.txn_slot] == txn::kNoTxn) break;
        PageData payload(e->payload_size(), op.fill);
        Status st = e->Write(slots[op.txn_slot], op.page, payload);
        if (st.IsAborted()) {
          // Lock conflict between the two slots: deterministic for every
          // engine (same locks, same order), abort the requester.
          EXPECT_TRUE(e->Abort(slots[op.txn_slot]).ok());
          slots[op.txn_slot] = txn::kNoTxn;
        } else {
          EXPECT_TRUE(st.ok()) << e->name() << ": " << st.ToString();
        }
        break;
      }
      case Op::kCommit:
        if (slots[op.txn_slot] == txn::kNoTxn) break;
        EXPECT_TRUE(e->Commit(slots[op.txn_slot]).ok()) << e->name();
        slots[op.txn_slot] = txn::kNoTxn;
        break;
      case Op::kAbort:
        if (slots[op.txn_slot] == txn::kNoTxn) break;
        EXPECT_TRUE(e->Abort(slots[op.txn_slot]).ok()) << e->name();
        slots[op.txn_slot] = txn::kNoTxn;
        break;
      case Op::kCrash:
        e->Crash();
        EXPECT_TRUE(e->Recover().ok()) << e->name();
        slots[0] = slots[1] = txn::kNoTxn;
        break;
    }
  }
  // Roll back whatever is still live so the final scan sees only
  // committed state (and holds no conflicting locks).
  for (txn::TxnId& slot : slots) {
    if (slot != txn::kNoTxn) {
      EXPECT_TRUE(e->Abort(slot).ok()) << e->name();
      slot = txn::kNoTxn;
    }
  }
  std::map<txn::PageId, PageData> state;
  auto t = e->Begin();
  EXPECT_TRUE(t.ok());
  for (txn::PageId p = 0; p < kPages; ++p) {
    PageData out;
    EXPECT_TRUE(e->Read(*t, p, &out).ok());
    state[p] = std::move(out);
  }
  EXPECT_TRUE(e->Commit(*t).ok());
  return state;
}

/// Reduces a state to fill bytes so engines with different payload sizes
/// compare (every write fills the whole page with one byte).
std::map<txn::PageId, uint8_t> Fills(
    const std::map<txn::PageId, PageData>& state) {
  std::map<txn::PageId, uint8_t> out;
  for (const auto& [p, data] : state) {
    uint8_t fill = data.empty() ? 0 : data[0];
    for (uint8_t b : data) EXPECT_EQ(b, fill);  // page must be uniform
    out[p] = fill;
  }
  return out;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, AllEnginesConvergeToTheSameState) {
  const auto history = MakeHistory(GetParam(), 400);

  VirtualDisk wal_data("data", kPages, kBlock);
  VirtualDisk wal_log0("log0", 4096, kBlock), wal_log1("log1", 4096, kBlock);
  WalEngine wal(&wal_data, {&wal_log0, &wal_log1});

  VirtualDisk shadow_disk("d", kPages * 3 + 8, kBlock);
  ShadowEngine shadow(&shadow_disk, kPages);

  VirtualDisk over_disk("d", kPages + 161, kBlock);
  OverwriteEngineOptions noundo;
  noundo.list_blocks = 80;
  noundo.scratch_blocks = 80;
  OverwriteEngine over_nu(&over_disk, kPages, noundo);

  VirtualDisk over2_disk("d", kPages + 161, kBlock);
  OverwriteEngineOptions noredo = noundo;
  noredo.mode = OverwriteMode::kNoRedo;
  OverwriteEngine over_nr(&over2_disk, kPages, noredo);

  VirtualDisk vs_disk("d", 1 + 96 + 2 * kPages, kBlock);
  VersionSelectEngineOptions vso;
  vso.list_blocks = 96;
  VersionSelectEngine vs(&vs_disk, kPages, vso);

  auto reference = Fills(Replay(&wal, history));
  EXPECT_EQ(Fills(Replay(&shadow, history)), reference) << "shadow";
  EXPECT_EQ(Fills(Replay(&over_nu, history)), reference) << "no-undo";
  EXPECT_EQ(Fills(Replay(&over_nr, history)), reference) << "no-redo";
  EXPECT_EQ(Fills(Replay(&vs, history)), reference) << "version-select";
}

INSTANTIATE_TEST_SUITE_P(Histories, EquivalenceTest,
                         ::testing::Values(1ull, 7ull, 1985ull, 42ull,
                                           573ull));

}  // namespace
}  // namespace dbmr::store
