// Contract tests for the unified architecture registry: every registered
// name must resolve, schemas must validate, the sim and engine halves must
// pair up, enumeration order must be stable, and the registry rewiring of
// the grid and torture pipelines must leave their reports byte-identical
// (checked against committed goldens through the real CLI binaries).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/engine_zoo.h"
#include "core/arch_registry.h"
#include "machine/recovery_arch.h"
#include "util/str.h"

namespace dbmr::core {
namespace {

/// Both registrar sets must be linked into this test binary: the sim side
/// via the machine anchors, the engine side via EngineNames().
class ArchRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine::EnsureSimArchsLinked();
    chaos::EngineNames();
  }
};

// The 13-variant simulation zoo, in the exact enumeration order every
// consumer (contract tests, --list-archs, the catalog) must observe.
const char* const kSimVariants[] = {
    "bare",
    "logging-cyclic",
    "logging-random",
    "logging-qpmod",
    "logging-txnmod",
    "logging-physical",
    "logging-via-cache",
    "shadow-clustered",
    "shadow-scrambled",
    "overwrite-noundo",
    "overwrite-noredo",
    "version-select",
    "differential",
};

// The 7-fixture torture zoo, in canonical order.
const char* const kEngineVariants[] = {
    "wal",
    "shadow",
    "differential",
    "overwrite-noundo",
    "overwrite-noredo",
    "version-select",
    "aries",
};

TEST_F(ArchRegistryTest, SimEnumerationOrderIsStable) {
  const std::vector<std::string> names =
      ArchRegistry::Global().SimVariantNames();
  ASSERT_EQ(names.size(), std::size(kSimVariants));
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kSimVariants[i]) << "at index " << i;
  }
}

TEST_F(ArchRegistryTest, EngineEnumerationOrderIsStable) {
  const std::vector<std::string> names =
      ArchRegistry::Global().EngineVariantNames();
  ASSERT_EQ(names.size(), std::size(kEngineVariants));
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kEngineVariants[i]) << "at index " << i;
  }
  // chaos::EngineNames() must be the registry enumeration, nothing else.
  EXPECT_EQ(chaos::EngineNames(), names);
}

TEST_F(ArchRegistryTest, EveryEntryNameResolves) {
  const std::vector<std::string> expected = {
      "bare", "logging", "shadow", "overwrite", "version-select",
      "differential"};
  const std::vector<const ArchEntry*> entries =
      ArchRegistry::Global().SimEntries();
  ASSERT_EQ(entries.size(), expected.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i]->name, expected[i]);
    const ArchEntry* found = ArchRegistry::Global().Find(expected[i]);
    ASSERT_NE(found, nullptr) << expected[i];
    EXPECT_EQ(found, entries[i]);
    auto resolved = ArchRegistry::Global().ResolveSim(expected[i]);
    ASSERT_TRUE(resolved.has_value()) << expected[i];
    EXPECT_EQ(resolved->entry, found);
    EXPECT_EQ(resolved->variant, nullptr);
  }
}

TEST_F(ArchRegistryTest, EverySimVariantBuildsAModel) {
  for (const char* name : kSimVariants) {
    SCOPED_TRACE(name);
    auto resolved = ArchRegistry::Global().ResolveSim(name);
    ASSERT_TRUE(resolved.has_value());
    auto factory = MakeSimArchFactory(name);
    ASSERT_TRUE(factory.ok()) << factory.status().message();
    std::unique_ptr<machine::RecoveryArch> arch = (*factory)();
    ASSERT_NE(arch, nullptr);
    // The model must claim the registry entry it was built from.
    EXPECT_EQ(arch->registry_name(), resolved->entry->name);
  }
}

TEST_F(ArchRegistryTest, EveryEngineFixtureConstructs) {
  for (const char* name : kEngineVariants) {
    SCOPED_TRACE(name);
    const VariantSpec* variant = nullptr;
    const ArchEntry* entry =
        ArchRegistry::Global().ResolveEngine(name, &variant);
    ASSERT_NE(entry, nullptr);
    ASSERT_NE(variant, nullptr);
    EXPECT_EQ(variant->name, name);
    ASSERT_TRUE(entry->make_engine);
    chaos::FixtureOptions options;
    auto fx = entry->make_engine(name, options, nullptr);
    ASSERT_TRUE(fx.ok()) << fx.status().message();
    EXPECT_NE(fx->engine, nullptr);
  }
  EXPECT_EQ(ArchRegistry::Global().ResolveEngine("no-such-engine"), nullptr);
}

TEST_F(ArchRegistryTest, SimAndEngineHalvesPairUp) {
  // With both libraries linked, every engine-bearing entry must also have
  // its sim half, and vice versa except for `bare` (no functional engine —
  // there is nothing to recover) and `aries` (engine-only: the 1985 sim
  // zoo predates it, so its registry entry carries catalog prose instead
  // of a sim half).
  for (const ArchEntry* e : ArchRegistry::Global().EngineEntries()) {
    if (e->name == "aries") {
      EXPECT_EQ(e->sim_order, -1);
      EXPECT_TRUE(e->make_sim == nullptr);
      EXPECT_FALSE(e->summary.empty());
      continue;
    }
    EXPECT_GE(e->sim_order, 0) << e->name << " has engines but no sim model";
    EXPECT_TRUE(e->make_sim != nullptr) << e->name;
  }
  for (const ArchEntry* e : ArchRegistry::Global().SimEntries()) {
    if (e->name == "bare") {
      EXPECT_EQ(e->engine_order, -1);
      EXPECT_TRUE(e->engine_variants.empty());
    } else {
      EXPECT_GE(e->engine_order, 0) << e->name << " has no engine fixture";
      EXPECT_FALSE(e->engine_variants.empty()) << e->name;
    }
  }
}

TEST_F(ArchRegistryTest, ConfigRejectsUnknownKnobs) {
  const ArchEntry* logging = ArchRegistry::Global().Find("logging");
  ASSERT_NE(logging, nullptr);
  ArchConfig config(logging);
  Status s = config.Set("log-disk", "2");  // typo: real knob is log-disks
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown knob"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("log-disks"), std::string::npos)
      << "error should list the real knobs: " << s.message();
}

TEST_F(ArchRegistryTest, ConfigRejectsTypeInvalidValues) {
  const ArchEntry* logging = ArchRegistry::Global().Find("logging");
  ASSERT_NE(logging, nullptr);
  ArchConfig config(logging);
  EXPECT_FALSE(config.Set("log-disks", "two").ok());     // int
  EXPECT_FALSE(config.Set("physical", "maybe").ok());    // bool
  EXPECT_FALSE(config.Set("bandwidth", "fast").ok());    // double
  EXPECT_FALSE(config.Set("select", "rotary").ok());     // enum
  EXPECT_TRUE(config.Set("log-disks", "4").ok());
  EXPECT_TRUE(config.Set("physical", "true").ok());
  EXPECT_TRUE(config.Set("bandwidth", "2.5").ok());
  EXPECT_TRUE(config.Set("select", "qpmod").ok());
  EXPECT_EQ(config.GetInt("log-disks"), 4);
  EXPECT_TRUE(config.GetBool("physical"));
  EXPECT_DOUBLE_EQ(config.GetDouble("bandwidth"), 2.5);
  EXPECT_EQ(config.GetString("select"), "qpmod");
}

TEST_F(ArchRegistryTest, ConfigFallsBackToSchemaDefaults) {
  const ArchEntry* shadow = ArchRegistry::Global().Find("shadow");
  ASSERT_NE(shadow, nullptr);
  ArchConfig config(shadow);  // nothing set
  EXPECT_EQ(config.GetInt("pt-processors"), 1);
  EXPECT_EQ(config.GetInt("pt-buffer"), 10);
  EXPECT_FALSE(config.GetBool("scrambled"));
  EXPECT_DOUBLE_EQ(config.GetDouble("cluster-fraction"), 1.0);
}

TEST_F(ArchRegistryTest, VariantPresetsValidateAgainstTheirSchema) {
  for (const ArchEntry* e : ArchRegistry::Global().SimEntries()) {
    for (const VariantSpec& v : e->sim_variants) {
      SCOPED_TRACE(e->name + "/" + v.name);
      Result<ArchConfig> config = e->MakeConfig(v.preset);
      EXPECT_TRUE(config.ok()) << config.status().message();
    }
  }
}

TEST_F(ArchRegistryTest, UnknownNamesFailWithSuggestions) {
  auto factory = MakeSimArchFactory("loging");
  ASSERT_FALSE(factory.ok());
  EXPECT_NE(factory.status().message().find("unknown architecture"),
            std::string::npos);

  const std::vector<std::string> sim =
      ArchRegistry::Global().SuggestSim("loging");
  ASSERT_FALSE(sim.empty());
  EXPECT_EQ(sim.front(), "logging");

  const std::vector<std::string> eng =
      ArchRegistry::Global().SuggestEngine("wall");
  ASSERT_FALSE(eng.empty());
  EXPECT_EQ(eng.front(), "wal");

  // Garbage stays unsuggested rather than surfacing noise.
  EXPECT_TRUE(ArchRegistry::Global().SuggestSim("zzzzzzzzzzzz").empty());
}

TEST(EditDistanceTest, ClassicCases) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("logging", "logging"), 0u);
  EXPECT_EQ(EditDistance("loging", "logging"), 1u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
}

TEST_F(ArchRegistryTest, InvariantCatalogCoversDeclaredChecks) {
  const std::vector<InvariantInfo>& all = ArchRegistry::Global().Invariants();
  EXPECT_EQ(all.size(), 16u);  // 8 universal + 8 per-architecture
  size_t universal = 0;
  for (const InvariantInfo& i : all) universal += i.universal ? 1 : 0;
  EXPECT_EQ(universal, 8u);
  // Every check an entry declares must exist and must not be universal
  // (universal checks are implicit everywhere).
  for (const ArchEntry* e : ArchRegistry::Global().SimEntries()) {
    for (const std::string& check : e->invariants) {
      const InvariantInfo* info = ArchRegistry::Global().FindInvariant(check);
      ASSERT_NE(info, nullptr) << e->name << " declares unknown " << check;
      EXPECT_FALSE(info->universal) << e->name << " declares " << check;
    }
  }
}

TEST_F(ArchRegistryTest, CatalogRenderingIsDeterministic) {
  const std::string md = RenderArchCatalogMarkdown();
  EXPECT_EQ(md, RenderArchCatalogMarkdown());
  for (const ArchEntry* e : ArchRegistry::Global().SimEntries()) {
    EXPECT_NE(md.find("## " + e->name), std::string::npos) << e->name;
    EXPECT_NE(md.find(e->paper_ref), std::string::npos) << e->name;
  }
  const std::string text = RenderArchCatalogText();
  for (const char* name : kSimVariants) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

#if defined(DBMR_TOOL_DBMR) && defined(DBMR_TOOL_TORTURE) && \
    defined(DBMR_GOLDEN_DIR)

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The registry rewiring must not move a byte in any report: both goldens
/// were captured from the pre-registry binaries.
TEST(RegistryGoldenTest, GridReportIsByteIdentical) {
  const std::string out = ::testing::TempDir() + "/arch_registry_grid.json";
  const std::string cmd = StrFormat(
      "%s --arch=logging --grid --jobs=1 --txns=20 --seed=7 --no-timing "
      "--no-audit --out=%s > /dev/null 2>&1",
      DBMR_TOOL_DBMR, out.c_str());
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string golden =
      ReadFile(std::string(DBMR_GOLDEN_DIR) + "/grid_logging_txns20_seed7.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(ReadFile(out), golden);
  std::remove(out.c_str());
}

TEST(RegistryGoldenTest, TortureReportIsByteIdentical) {
  const std::string out =
      ::testing::TempDir() + "/arch_registry_torture.json";
  const std::string cmd = StrFormat(
      "%s --engine=all --seed=1 --txns=6 --jobs=1 --json=%s > /dev/null 2>&1",
      DBMR_TOOL_TORTURE, out.c_str());
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const std::string golden =
      ReadFile(std::string(DBMR_GOLDEN_DIR) + "/torture_all_seed1_txns6.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(ReadFile(out), golden);
  std::remove(out.c_str());
}

#endif  // tool paths wired in by tests/CMakeLists.txt

}  // namespace
}  // namespace dbmr::core
