// Tests for the JSON document model and the CSV writer/parser that back
// the metrics-export layer.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "util/csv.h"
#include "util/json.h"

namespace dbmr {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(static_cast<int64_t>(-12)).Dump(), "-12");
  EXPECT_EQ(JsonValue(static_cast<uint64_t>(18446744073709551615ULL)).Dump(),
            "18446744073709551615");
  EXPECT_EQ(JsonValue(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue(3.0).Dump(), "3.0");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b\\c\n\t").Dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  JsonValue o = JsonValue::Object();
  o["zebra"] = JsonValue(1);
  o["alpha"] = JsonValue(2);
  EXPECT_EQ(o.Dump(), "{\"zebra\":1,\"alpha\":2}");
  o["zebra"] = JsonValue(3);  // update in place, no reorder
  EXPECT_EQ(o.Dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonTest, PrettyPrinting) {
  JsonValue o = JsonValue::Object();
  o["a"] = JsonValue(1);
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(true));
  o["b"] = std::move(arr);
  EXPECT_EQ(o.Dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
}

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("-42")->AsInt(), -42);
  EXPECT_EQ(JsonValue::Parse("18446744073709551615")->AsUint(),
            18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5e3")->AsDouble(), 2500.0);
  EXPECT_EQ(JsonValue::Parse("\"a\\u0041b\"")->AsString(), "aAb");
}

TEST(JsonTest, ParseNested) {
  auto v = JsonValue::Parse(
      " { \"cells\" : [ {\"x\": 1}, {\"x\": 2.5} ], \"n\" : 2 } ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("n")->AsInt(), 2);
  ASSERT_EQ(v->Find("cells")->size(), 2u);
  EXPECT_EQ(v->Find("cells")->at(0).Find("x")->AsInt(), 1);
  EXPECT_DOUBLE_EQ(v->Find("cells")->at(1).Find("x")->AsDouble(), 2.5);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("1 trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(JsonTest, DumpParseRoundTripsExactDoubles) {
  const double values[] = {0.1, 1.0 / 3.0, 12345.6789,
                           std::numeric_limits<double>::denorm_min(),
                           -0.0, 1e300};
  for (double d : values) {
    auto v = JsonValue::Parse(JsonValue(d).Dump());
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsDouble(), d) << d;
  }
}

TEST(JsonTest, FormatDoubleIsShortest) {
  EXPECT_EQ(FormatDoubleRoundTrip(0.1), "0.1");
  EXPECT_EQ(FormatDoubleRoundTrip(2.0), "2.0");
  EXPECT_EQ(FormatDoubleRoundTrip(-7.25), "-7.25");
}

TEST(JsonTest, EqualityIsStructural) {
  auto a = JsonValue::Parse("{\"x\":[1,2],\"y\":\"z\"}");
  auto b = JsonValue::Parse("{\"x\":[1,2],\"y\":\"z\"}");
  auto c = JsonValue::Parse("{\"x\":[1,3],\"y\":\"z\"}");
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

TEST(CsvTest, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvTest, WriterPadsShortRows) {
  CsvWriter w;
  w.SetHeader({"a", "b", "c"});
  w.AddRow({"1"});
  EXPECT_EQ(w.ToString(), "a,b,c\n1,,\n");
}

TEST(CsvTest, RoundTripsQuotedFields) {
  CsvWriter w;
  w.SetHeader({"name", "note"});
  w.AddRow({"x,y", "he said \"go\"\nthen left"});
  w.AddRow({"", "plain"});
  auto rows = ParseCsv(w.ToString());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1][0], "x,y");
  EXPECT_EQ((*rows)[1][1], "he said \"go\"\nthen left");
  EXPECT_EQ((*rows)[2][0], "");
  EXPECT_EQ((*rows)[2][1], "plain");
}

TEST(CsvTest, ParsesCrlfAndNoTrailingNewline) {
  auto rows = ParseCsv("a,b\r\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "2");
}

TEST(CsvTest, RejectsMalformedQuoting) {
  EXPECT_FALSE(ParseCsv("a,b\"c\n").ok());
  EXPECT_FALSE(ParseCsv("\"unterminated").ok());
}

}  // namespace
}  // namespace dbmr
