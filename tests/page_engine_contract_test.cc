// Cross-engine contract tests: every functional recovery engine must obey
// the same transactional page-store semantics.  Parameterized over engine
// factories so a behavior added to the contract is checked five ways.

#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "store/recovery/aries_engine.h"
#include "store/recovery/differential_page_engine.h"
#include "store/recovery/overwrite_engine.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/version_select_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr uint64_t kPages = 24;

/// Owns the disks and the engine under test.
struct EngineUnderTest {
  std::vector<std::unique_ptr<VirtualDisk>> disks;
  std::unique_ptr<PageEngine> engine;

  void ArmSharedCounter(std::shared_ptr<int64_t> counter) {
    for (auto& d : disks) d->SetSharedFailCounter(counter);
  }
  void ClearCrash() {
    for (auto& d : disks) d->ClearCrashState();
  }
  bool AnyCrashed() const {
    for (const auto& d : disks) {
      if (d->crashed()) return true;
    }
    return false;
  }
};

using Factory = std::function<EngineUnderTest()>;

struct EngineParam {
  std::string name;
  Factory make;
};

EngineUnderTest MakeAries(int recovery_jobs = 1) {
  EngineUnderTest e;
  e.disks.push_back(std::make_unique<VirtualDisk>("data", kPages, kBlock));
  e.disks.push_back(std::make_unique<VirtualDisk>("log", 4096, kBlock));
  AriesEngineOptions o;
  o.pool_frames = 6;
  o.recovery_jobs = recovery_jobs;
  e.engine = std::make_unique<AriesEngine>(e.disks[0].get(),
                                           e.disks[1].get(), o);
  EXPECT_TRUE(e.engine->Format().ok());
  return e;
}

EngineUnderTest MakeWal(size_t n_logs, int recovery_jobs = 1) {
  EngineUnderTest e;
  e.disks.push_back(std::make_unique<VirtualDisk>("data", kPages, kBlock));
  std::vector<VirtualDisk*> logs;
  for (size_t i = 0; i < n_logs; ++i) {
    e.disks.push_back(std::make_unique<VirtualDisk>("log", 2048, kBlock));
    logs.push_back(e.disks.back().get());
  }
  WalEngineOptions o;
  o.pool_frames = 6;
  o.recovery_jobs = recovery_jobs;
  e.engine = std::make_unique<WalEngine>(e.disks[0].get(), logs, o);
  EXPECT_TRUE(e.engine->Format().ok());
  return e;
}

std::vector<EngineParam> AllEngines() {
  return {
      {"wal1", [] { return MakeWal(1); }},
      {"wal3", [] { return MakeWal(3); }},
      {"aries", [] { return MakeAries(); }},
      {"aries_seq", [] { return MakeAries(/*recovery_jobs=*/0); }},
      {"shadow",
       [] {
         EngineUnderTest e;
         e.disks.push_back(
             std::make_unique<VirtualDisk>("d", kPages * 3 + 8, kBlock));
         e.engine =
             std::make_unique<ShadowEngine>(e.disks[0].get(), kPages);
         EXPECT_TRUE(e.engine->Format().ok());
         return e;
       }},
      {"overwrite_noundo",
       [] {
         EngineUnderTest e;
         e.disks.push_back(
             std::make_unique<VirtualDisk>("d", kPages + 97, kBlock));
         OverwriteEngineOptions o;
         o.list_blocks = 48;
         o.scratch_blocks = 48;
         e.engine = std::make_unique<OverwriteEngine>(e.disks[0].get(),
                                                      kPages, o);
         EXPECT_TRUE(e.engine->Format().ok());
         return e;
       }},
      {"overwrite_noredo",
       [] {
         EngineUnderTest e;
         e.disks.push_back(
             std::make_unique<VirtualDisk>("d", kPages + 97, kBlock));
         OverwriteEngineOptions o;
         o.mode = OverwriteMode::kNoRedo;
         o.list_blocks = 48;
         o.scratch_blocks = 48;
         e.engine = std::make_unique<OverwriteEngine>(e.disks[0].get(),
                                                      kPages, o);
         EXPECT_TRUE(e.engine->Format().ok());
         return e;
       }},
      {"version_select",
       [] {
         EngineUnderTest e;
         e.disks.push_back(std::make_unique<VirtualDisk>(
             "d", 1 + 48 + 2 * kPages, kBlock));
         VersionSelectEngineOptions o;
         o.list_blocks = 48;
         e.engine = std::make_unique<VersionSelectEngine>(e.disks[0].get(),
                                                          kPages, o);
         EXPECT_TRUE(e.engine->Format().ok());
         return e;
       }},
      {"differential",
       [] {
         EngineUnderTest e;
         DifferentialEngineOptions o;
         // Sized for the contract workloads: ~1500 A-records of 24 bytes
         // between Format()s, no merges.
         o.a_blocks = 192;
         o.d_blocks = 8;
         o.base_blocks = 8;
         e.disks.push_back(std::make_unique<VirtualDisk>(
             "d", 1 + o.a_blocks + o.d_blocks + 2 * o.base_blocks, kBlock));
         e.engine = std::make_unique<DifferentialPageEngine>(
             e.disks[0].get(), kPages, /*payload_bytes=*/32, o);
         EXPECT_TRUE(e.engine->Format().ok());
         return e;
       }},
  };
}

class PageEngineContractTest : public ::testing::TestWithParam<EngineParam> {
 protected:
  void SetUp() override { eut_ = GetParam().make(); }
  PageEngine* engine() { return eut_.engine.get(); }
  PageData Payload(uint8_t fill) {
    return PageData(engine()->payload_size(), fill);
  }
  EngineUnderTest eut_;
};

TEST_P(PageEngineContractTest, NameIsNonEmpty) {
  EXPECT_FALSE(engine()->name().empty());
  EXPECT_EQ(engine()->num_pages(), kPages);
  EXPECT_GT(engine()->payload_size(), 0u);
  EXPECT_LE(engine()->payload_size(), kBlock);
}

TEST_P(PageEngineContractTest, FreshPagesReadZero) {
  auto t = engine()->Begin();
  ASSERT_TRUE(t.ok());
  for (txn::PageId p : {txn::PageId{0}, txn::PageId{kPages - 1}}) {
    PageData out;
    ASSERT_TRUE(engine()->Read(*t, p, &out).ok());
    EXPECT_EQ(out, Payload(0));
  }
  EXPECT_TRUE(engine()->Commit(*t).ok());
}

TEST_P(PageEngineContractTest, ReadYourOwnWrites) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 3, Payload(7)).ok());
  PageData out;
  ASSERT_TRUE(engine()->Read(*t, 3, &out).ok());
  EXPECT_EQ(out, Payload(7));
  ASSERT_TRUE(engine()->Write(*t, 3, Payload(8)).ok());
  ASSERT_TRUE(engine()->Read(*t, 3, &out).ok());
  EXPECT_EQ(out, Payload(8));
  ASSERT_TRUE(engine()->Commit(*t).ok());
}

TEST_P(PageEngineContractTest, AbortHidesWrites) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 3, Payload(7)).ok());
  ASSERT_TRUE(engine()->Abort(*t).ok());
  auto t2 = engine()->Begin();
  PageData out;
  ASSERT_TRUE(engine()->Read(*t2, 3, &out).ok());
  EXPECT_EQ(out, Payload(0));
}

TEST_P(PageEngineContractTest, IsolationUnderLocks) {
  auto writer = engine()->Begin();
  auto reader = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*writer, 3, Payload(7)).ok());
  PageData out;
  EXPECT_TRUE(engine()->Read(*reader, 3, &out).IsAborted());
  ASSERT_TRUE(engine()->Commit(*writer).ok());
  ASSERT_TRUE(engine()->Read(*reader, 3, &out).ok());
  EXPECT_EQ(out, Payload(7));
}

TEST_P(PageEngineContractTest, WrongSizeAndUnknownTxnRejected) {
  auto t = engine()->Begin();
  EXPECT_EQ(engine()->Write(*t, 1, PageData(1, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine()->Commit(99999).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine()->Abort(*t).ok());
}

TEST_P(PageEngineContractTest, OutOfRangePageRejected) {
  auto t = engine()->Begin();
  PageData out;
  Status st = engine()->Read(*t, kPages + 5, &out);
  EXPECT_TRUE(st.code() == StatusCode::kOutOfRange ||
              st.code() == StatusCode::kInvalidArgument)
      << st.ToString();
}

TEST_P(PageEngineContractTest, CommittedSurviveCrash) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 2, Payload(5)).ok());
  ASSERT_TRUE(engine()->Write(*t, 9, Payload(6)).ok());
  ASSERT_TRUE(engine()->Commit(*t).ok());
  engine()->Crash();
  ASSERT_TRUE(engine()->Recover().ok());
  auto t2 = engine()->Begin();
  PageData out;
  ASSERT_TRUE(engine()->Read(*t2, 2, &out).ok());
  EXPECT_EQ(out, Payload(5));
  ASSERT_TRUE(engine()->Read(*t2, 9, &out).ok());
  EXPECT_EQ(out, Payload(6));
}

TEST_P(PageEngineContractTest, ActiveVanishOnCrash) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 2, Payload(5)).ok());
  engine()->Crash();
  ASSERT_TRUE(engine()->Recover().ok());
  auto t2 = engine()->Begin();
  PageData out;
  ASSERT_TRUE(engine()->Read(*t2, 2, &out).ok());
  EXPECT_EQ(out, Payload(0));
}

TEST_P(PageEngineContractTest, LocksReleasedAfterCrashRecovery) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 2, Payload(5)).ok());
  engine()->Crash();
  ASSERT_TRUE(engine()->Recover().ok());
  auto t2 = engine()->Begin();
  EXPECT_TRUE(engine()->Write(*t2, 2, Payload(6)).ok());
  ASSERT_TRUE(engine()->Commit(*t2).ok());
}

TEST_P(PageEngineContractTest, DoubleRecoverIsIdempotent) {
  auto t = engine()->Begin();
  ASSERT_TRUE(engine()->Write(*t, 2, Payload(5)).ok());
  ASSERT_TRUE(engine()->Commit(*t).ok());
  engine()->Crash();
  ASSERT_TRUE(engine()->Recover().ok());
  engine()->Crash();
  ASSERT_TRUE(engine()->Recover().ok());
  auto t2 = engine()->Begin();
  PageData out;
  ASSERT_TRUE(engine()->Read(*t2, 2, &out).ok());
  EXPECT_EQ(out, Payload(5));
}

// Shared body for the crash-during-recovery contract cases.  Runs the same
// small workload (one committed txn, one in-flight loser), crashes, then
// cuts recovery itself short after `n` disk writes for every n until a
// recovery pass completes untouched.  After each interrupted recovery the
// follow-up Recover() must succeed and the committed/loser split must hold;
// with `double_recover` a further Crash()+Recover() must leave it unchanged.
void SweepCrashDuringRecovery(const Factory& make, bool double_recover) {
  constexpr int64_t kMaxBudget = 5000;  // backstop against a runaway loop
  for (int64_t n = 0;; ++n) {
    ASSERT_LT(n, kMaxBudget) << "recovery never completed within budget";
    EngineUnderTest eut = make();
    PageEngine* e = eut.engine.get();
    const PageData five(e->payload_size(), 5);
    const PageData zero(e->payload_size(), 0);

    auto t = e->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(e->Write(*t, 2, five).ok());
    ASSERT_TRUE(e->Commit(*t).ok());
    auto loser = e->Begin();
    ASSERT_TRUE(loser.ok());
    ASSERT_TRUE(e->Write(*loser, 7, PageData(e->payload_size(), 9)).ok());
    e->Crash();
    eut.ClearCrash();

    auto budget = std::make_shared<int64_t>(n);
    eut.ArmSharedCounter(budget);
    Status st = e->Recover();
    // Stand down the fault before any follow-up recovery or verification.
    *budget = std::numeric_limits<int64_t>::max();
    if (st.ok()) {
      // A recovery that reports success must not have swallowed a fault.
      ASSERT_FALSE(eut.AnyCrashed()) << "n=" << n;
    } else {
      e->Crash();
      eut.ClearCrash();
      ASSERT_TRUE(e->Recover().ok()) << "n=" << n;
    }
    if (double_recover) {
      e->Crash();
      eut.ClearCrash();
      ASSERT_TRUE(e->Recover().ok()) << "n=" << n;
    }

    auto t2 = e->Begin();
    ASSERT_TRUE(t2.ok());
    PageData out;
    ASSERT_TRUE(e->Read(*t2, 2, &out).ok()) << "n=" << n;
    EXPECT_EQ(out, five) << "committed write lost, n=" << n;
    ASSERT_TRUE(e->Read(*t2, 7, &out).ok()) << "n=" << n;
    EXPECT_EQ(out, zero) << "loser write resurfaced, n=" << n;
    if (st.ok()) break;  // every crash point up to completion is covered
  }
}

TEST_P(PageEngineContractTest, CrashDuringRecoveryIsSurvivable) {
  SweepCrashDuringRecovery(GetParam().make, /*double_recover=*/false);
}

TEST_P(PageEngineContractTest, DoubleRecoverAfterInjectedCrashIsIdempotent) {
  SweepCrashDuringRecovery(GetParam().make, /*double_recover=*/true);
}

// The same crash-during-recovery sweep with replay dispatched through the
// parallel planner (recovery_jobs=4).  All disk I/O stays on the caller
// thread by contract, so cutting recovery at every write budget must be
// exactly as survivable as on the sequential path.
TEST(ParallelRecoveryContractTest, CrashDuringParallelRecoveryIsSurvivable) {
  SweepCrashDuringRecovery([] { return MakeWal(3, /*recovery_jobs=*/4); },
                           /*double_recover=*/true);
}

TEST(ParallelRecoveryContractTest,
     CrashDuringParallelAriesRecoveryIsSurvivable) {
  SweepCrashDuringRecovery([] { return MakeAries(/*recovery_jobs=*/4); },
                           /*double_recover=*/true);
}

TEST_P(PageEngineContractTest, ManySequentialTransactions) {
  for (int i = 0; i < 30; ++i) {
    auto t = engine()->Begin();
    ASSERT_TRUE(engine()
                    ->Write(*t, static_cast<txn::PageId>(i % kPages),
                            Payload(static_cast<uint8_t>(i + 1)))
                    .ok());
    if (i % 4 == 3) {
      ASSERT_TRUE(engine()->Abort(*t).ok());
    } else {
      ASSERT_TRUE(engine()->Commit(*t).ok());
    }
  }
  // Spot-check the last committed value of page 0 (i = 24: payload 25).
  auto t = engine()->Begin();
  PageData out;
  ASSERT_TRUE(engine()->Read(*t, 0, &out).ok());
  EXPECT_EQ(out, Payload(25));
}

TEST_P(PageEngineContractTest, RandomWorkloadShort) {
  testing::RunRandomWorkload(engine(), 4242, 60);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, PageEngineContractTest, ::testing::ValuesIn(AllEngines()),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dbmr::store
