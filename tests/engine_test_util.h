// Shared correctness harness for the functional page-store engines.
//
// Every recovery mechanism must satisfy the same contract (paper §3:
// "insuring that recovery can still be performed correctly"):
//
//   durability  — a transaction whose Commit() returned OK is fully visible
//                 after any later crash + recovery;
//   atomicity   — a transaction that aborted, or was active at the crash,
//                 leaves no trace;  a transaction whose Commit() failed
//                 mid-crash may surface either entirely or not at all,
//                 never partially.
//
// The harness runs a randomized page workload against a reference model
// (an in-memory map of committed page images) and checks the contract,
// optionally crashing after a budgeted number of physical writes.

#ifndef DBMR_TESTS_ENGINE_TEST_UTIL_H_
#define DBMR_TESTS_ENGINE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "store/page_engine.h"
#include "util/rng.h"

namespace dbmr::store::testing {

/// A page image keyed by page id; absent pages are all-zero.
using ReferenceState = std::map<txn::PageId, PageData>;

inline PageData ExpectedImage(const ReferenceState& ref, txn::PageId page,
                              size_t payload_size) {
  auto it = ref.find(page);
  return it != ref.end() ? it->second : PageData(payload_size, 0);
}

/// Reads every page the reference knows about (plus page 0) through a
/// fresh transaction and asserts it matches.
inline void VerifyMatchesReference(PageEngine* e, const ReferenceState& ref) {
  auto t = e->Begin();
  ASSERT_TRUE(t.ok());
  for (const auto& [page, want] : ref) {
    PageData got;
    ASSERT_TRUE(e->Read(*t, page, &got).ok())
        << e->name() << " page " << page;
    ASSERT_EQ(got, want) << e->name() << " page " << page;
  }
  ASSERT_TRUE(e->Commit(*t).ok());
}

/// One randomized transaction: writes `num_writes` random pages with
/// deterministic content derived from (txn nonce, page).
struct TxnPlan {
  std::vector<std::pair<txn::PageId, PageData>> writes;
};

inline TxnPlan MakePlan(Rng& rng, uint64_t nonce, uint64_t num_pages,
                        size_t payload, int num_writes) {
  TxnPlan plan;
  for (int i = 0; i < num_writes; ++i) {
    txn::PageId page = static_cast<txn::PageId>(
        rng.UniformInt(0, static_cast<int64_t>(num_pages) - 1));
    PageData data(payload, 0);
    for (size_t b = 0; b < payload; ++b) {
      data[b] = static_cast<uint8_t>((nonce * 131 + page * 31 + b) & 0xFF);
    }
    plan.writes.emplace_back(page, std::move(data));
  }
  return plan;
}

/// Runs `rounds` sequential transactions with random commits and aborts,
/// interleaved with clean crashes (no write failures), checking the
/// reference after every recovery.
inline void RunRandomWorkload(PageEngine* e, uint64_t seed, int rounds,
                              double abort_prob = 0.3,
                              double crash_prob = 0.15) {
  Rng rng(seed);
  ReferenceState ref;
  const uint64_t pages = e->num_pages();
  const size_t payload = e->payload_size();

  for (int round = 0; round < rounds; ++round) {
    TxnPlan plan = MakePlan(rng, static_cast<uint64_t>(round) + 1, pages,
                            payload, static_cast<int>(rng.UniformInt(1, 6)));
    auto t = e->Begin();
    ASSERT_TRUE(t.ok());
    bool doomed = false;
    for (auto& [page, data] : plan.writes) {
      Status st = e->Write(*t, page, data);
      if (st.IsAborted()) {  // lock conflict under no-wait; give up
        ASSERT_TRUE(e->Abort(*t).ok());
        doomed = true;
        break;
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
    if (doomed) continue;

    double coin = rng.UniformDouble();
    if (coin < abort_prob) {
      ASSERT_TRUE(e->Abort(*t).ok());
    } else {
      ASSERT_TRUE(e->Commit(*t).ok());
      for (auto& [page, data] : plan.writes) ref[page] = data;
    }

    if (rng.UniformDouble() < crash_prob) {
      e->Crash();
      ASSERT_TRUE(e->Recover().ok());
    }
    if (round % 7 == 0) {
      VerifyMatchesReference(e, ref);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  VerifyMatchesReference(e, ref);
}

/// Crash-everywhere sweep.  The caller supplies:
///   * `arm(budget)`   — allow `budget` more physical writes, then fail;
///   * `disarm()`      — clear injection so recovery can write freely.
///
/// For each budget 0,1,2,... the harness replays a deterministic workload
/// until an injected failure surfaces, then recovers and checks the
/// all-or-nothing contract.  Stops when a full run completes with no
/// failure (every crash point has been exercised).
inline void RunCrashEverywhere(PageEngine* e,
                               const std::function<void(int64_t)>& arm,
                               const std::function<void()>& disarm,
                               uint64_t seed, int txns_per_run = 12) {
  const uint64_t pages = e->num_pages();
  const size_t payload = e->payload_size();

  for (int64_t budget = 0; budget < 100000; ++budget) {
    disarm();
    ASSERT_TRUE(e->Format().ok());
    ASSERT_TRUE(e->Recover().ok());
    ReferenceState ref;
    arm(budget);

    bool crashed = false;
    // Outcome bookkeeping for the transaction whose commit was in flight.
    std::vector<std::pair<txn::PageId, PageData>> in_doubt;
    ReferenceState ref_if_committed;

    Rng rng(seed);
    for (int i = 0; i < txns_per_run && !crashed; ++i) {
      TxnPlan plan = MakePlan(rng, static_cast<uint64_t>(i) + 1, pages,
                              payload,
                              static_cast<int>(rng.UniformInt(1, 5)));
      auto t = e->Begin();
      ASSERT_TRUE(t.ok());
      for (auto& [page, data] : plan.writes) {
        Status st = e->Write(*t, page, data);
        if (st.IsIoError()) {  // the injected crash point fired
          crashed = true;
          break;
        }
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
      if (crashed) break;

      const bool do_abort = rng.UniformDouble() < 0.25;
      if (do_abort) {
        Status st = e->Abort(*t);
        if (!st.ok()) {
          crashed = true;
          break;
        }
      } else {
        Status st = e->Commit(*t);
        if (!st.ok()) {
          // Commit was cut down mid-flight: both outcomes are legal.
          crashed = true;
          ref_if_committed = ref;
          std::map<txn::PageId, PageData> final_writes;
          for (auto& [page, data] : plan.writes) final_writes[page] = data;
          for (auto& [page, data] : final_writes) {
            ref_if_committed[page] = data;
            in_doubt.emplace_back(page, data);
          }
          break;
        }
        for (auto& [page, data] : plan.writes) ref[page] = data;
      }
    }

    if (!crashed) {
      // The whole workload fit under this budget; sweep complete.
      disarm();
      VerifyMatchesReference(e, ref);
      return;  // sweep complete
    }

    disarm();
    e->Crash();
    ASSERT_TRUE(e->Recover().ok()) << e->name() << " budget " << budget;

    if (in_doubt.empty()) {
      VerifyMatchesReference(e, ref);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "state mismatch after recovery at write budget " << budget;
      }
    } else {
      // All-or-nothing: the in-doubt transaction's pages must collectively
      // match either the pre-commit or post-commit reference.
      auto probe = e->Begin();
      ASSERT_TRUE(probe.ok());
      PageData got;
      ASSERT_TRUE(e->Read(*probe, in_doubt[0].first, &got).ok());
      const bool committed =
          got == ExpectedImage(ref_if_committed, in_doubt[0].first, payload) &&
          got != ExpectedImage(ref, in_doubt[0].first, payload);
      ASSERT_TRUE(e->Commit(*probe).ok());
      VerifyMatchesReference(e, committed ? ref_if_committed : ref);
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "in-doubt transaction not atomic at write budget "
               << budget;
      }
    }
  }
  FAIL() << "crash sweep did not terminate";
}

}  // namespace dbmr::store::testing

#endif  // DBMR_TESTS_ENGINE_TEST_UTIL_H_
