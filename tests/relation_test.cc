// Tests for the record-oriented Relation layer over the page engines —
// including that it inherits crash atomicity from whichever recovery
// mechanism runs underneath.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "store/codec.h"
#include "store/recovery/shadow_engine.h"
#include "store/recovery/wal_engine.h"
#include "store/relation.h"
#include "store/virtual_disk.h"
#include "util/rng.h"

namespace dbmr::store {
namespace {

constexpr size_t kBlock = 256;
constexpr size_t kRecord = 24;

std::vector<uint8_t> Rec(uint64_t key, uint64_t value) {
  std::vector<uint8_t> r(kRecord, 0);
  PageData view(r.begin(), r.end());
  PutU64(view, 0, key);
  PutU64(view, 8, value);
  return {view.begin(), view.end()};
}

uint64_t KeyOf(const std::vector<uint8_t>& r) {
  PageData view(r.begin(), r.end());
  return GetU64(view, 0);
}

class RelationTest : public ::testing::Test {
 protected:
  RelationTest()
      : data_("data", 32, kBlock),
        log_("log", 2048, kBlock),
        engine_(&data_, {&log_}) {
    EXPECT_TRUE(engine_.Format().ok());
    rel_ = std::make_unique<Relation>(&engine_, 0, 16, kRecord);
  }

  VirtualDisk data_;
  VirtualDisk log_;
  WalEngine engine_;
  std::unique_ptr<Relation> rel_;
};

TEST_F(RelationTest, InsertGetRoundTrip) {
  auto t = engine_.Begin();
  auto id = rel_->Insert(*t, Rec(1, 100));
  ASSERT_TRUE(id.ok());
  auto got = rel_->Get(*t, *id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, Rec(1, 100));
  ASSERT_TRUE(engine_.Commit(*t).ok());
}

TEST_F(RelationTest, RecordIdsAreStable) {
  auto t = engine_.Begin();
  auto a = rel_->Insert(*t, Rec(1, 1));
  auto b = rel_->Insert(*t, Rec(2, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
  ASSERT_TRUE(engine_.Commit(*t).ok());
  auto t2 = engine_.Begin();
  EXPECT_EQ(KeyOf(*rel_->Get(*t2, *a)), 1u);
  EXPECT_EQ(KeyOf(*rel_->Get(*t2, *b)), 2u);
}

TEST_F(RelationTest, UpdateInPlace) {
  auto t = engine_.Begin();
  auto id = rel_->Insert(*t, Rec(1, 100));
  ASSERT_TRUE(rel_->Update(*t, *id, Rec(1, 200)).ok());
  auto got = rel_->Get(*t, *id);
  EXPECT_EQ(*got, Rec(1, 200));
  ASSERT_TRUE(engine_.Commit(*t).ok());
}

TEST_F(RelationTest, EraseFreesSlotForReuse) {
  auto t = engine_.Begin();
  auto id = rel_->Insert(*t, Rec(1, 100));
  ASSERT_TRUE(rel_->Erase(*t, *id).ok());
  EXPECT_TRUE(rel_->Get(*t, *id).status().IsNotFound());
  auto id2 = rel_->Insert(*t, Rec(2, 200));
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, *id);  // first-fit reuses the freed slot
  ASSERT_TRUE(engine_.Commit(*t).ok());
}

TEST_F(RelationTest, EraseTwiceIsNotFound) {
  auto t = engine_.Begin();
  auto id = rel_->Insert(*t, Rec(1, 100));
  ASSERT_TRUE(rel_->Erase(*t, *id).ok());
  EXPECT_TRUE(rel_->Erase(*t, *id).IsNotFound());
}

TEST_F(RelationTest, ScanVisitsAllLiveRecords) {
  auto t = engine_.Begin();
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(rel_->Insert(*t, Rec(k, k * 10)).ok());
  }
  std::map<uint64_t, int> seen;
  ASSERT_TRUE(rel_->Scan(*t, [&](RecordId, const std::vector<uint8_t>& r) {
                    ++seen[KeyOf(r)];
                    return true;
                  }).ok());
  EXPECT_EQ(seen.size(), 20u);
  auto count = rel_->Count(*t);
  EXPECT_EQ(*count, 20u);
  ASSERT_TRUE(engine_.Commit(*t).ok());
}

TEST_F(RelationTest, ScanEarlyStop) {
  auto t = engine_.Begin();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(rel_->Insert(*t, Rec(k, k)).ok());
  }
  int visited = 0;
  ASSERT_TRUE(rel_->Scan(*t, [&](RecordId, const std::vector<uint8_t>&) {
                    return ++visited < 3;
                  }).ok());
  EXPECT_EQ(visited, 3);
}

TEST_F(RelationTest, FillsToCapacityThenExhausts) {
  auto t = engine_.Begin();
  const uint64_t cap = rel_->capacity();
  for (uint64_t k = 0; k < cap; ++k) {
    ASSERT_TRUE(rel_->Insert(*t, Rec(k, k)).ok()) << k;
  }
  EXPECT_EQ(rel_->Insert(*t, Rec(999, 999)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(RelationTest, WrongRecordSizeRejected) {
  auto t = engine_.Begin();
  EXPECT_EQ(rel_->Insert(*t, std::vector<uint8_t>(3, 0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RelationTest, OutOfRangeIdRejected) {
  auto t = engine_.Begin();
  EXPECT_EQ(rel_->Get(*t, 64 * 1000).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(RelationTest, AbortRollsBackRecordOperations) {
  auto t = engine_.Begin();
  auto id = rel_->Insert(*t, Rec(1, 100));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_.Commit(*t).ok());

  auto t2 = engine_.Begin();
  ASSERT_TRUE(rel_->Update(*t2, *id, Rec(1, 999)).ok());
  ASSERT_TRUE(rel_->Insert(*t2, Rec(2, 200)).ok());
  ASSERT_TRUE(engine_.Abort(*t2).ok());

  auto t3 = engine_.Begin();
  EXPECT_EQ(*rel_->Get(*t3, *id), Rec(1, 100));
  EXPECT_EQ(*rel_->Count(*t3), 1u);
}

TEST_F(RelationTest, CommittedRecordsSurviveCrash) {
  RecordId id;
  {
    auto t = engine_.Begin();
    auto r = rel_->Insert(*t, Rec(7, 700));
    ASSERT_TRUE(r.ok());
    id = *r;
    ASSERT_TRUE(engine_.Commit(*t).ok());
  }
  engine_.Crash();
  ASSERT_TRUE(engine_.Recover().ok());
  auto t = engine_.Begin();
  EXPECT_EQ(*rel_->Get(*t, id), Rec(7, 700));
}

TEST_F(RelationTest, WorksOverShadowEngineToo) {
  VirtualDisk disk("d", 80, kBlock);
  ShadowEngine shadow(&disk, 16);
  ASSERT_TRUE(shadow.Format().ok());
  Relation rel(&shadow, 0, 16, kRecord);
  auto t = shadow.Begin();
  auto id = rel.Insert(*t, Rec(5, 50));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(shadow.Commit(*t).ok());
  shadow.Crash();
  ASSERT_TRUE(shadow.Recover().ok());
  auto t2 = shadow.Begin();
  EXPECT_EQ(*rel.Get(*t2, *id), Rec(5, 50));
}

TEST_F(RelationTest, RandomWorkloadAgainstReferenceMap) {
  Rng rng(13);
  std::map<RecordId, std::vector<uint8_t>> ref;
  for (int round = 0; round < 60; ++round) {
    auto t = engine_.Begin();
    std::map<RecordId, std::optional<std::vector<uint8_t>>> staged;
    for (int op = 0; op < 4; ++op) {
      double coin = rng.UniformDouble();
      if (coin < 0.5 || ref.empty()) {
        auto rec = Rec(rng.Next() % 1000, rng.Next());
        auto id = rel_->Insert(*t, rec);
        if (!id.ok()) continue;  // full
        staged[*id] = rec;
      } else {
        auto it = ref.begin();
        std::advance(it, static_cast<long>(rng.Next() % ref.size()));
        if (coin < 0.75) {
          auto rec = Rec(rng.Next() % 1000, rng.Next());
          if (rel_->Update(*t, it->first, rec).ok()) {
            staged[it->first] = rec;
          }
        } else {
          if (rel_->Erase(*t, it->first).ok()) {
            staged[it->first] = std::nullopt;
          }
        }
      }
    }
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE(engine_.Abort(*t).ok());
    } else {
      ASSERT_TRUE(engine_.Commit(*t).ok());
      for (auto& [id, rec] : staged) {
        if (rec.has_value()) {
          ref[id] = *rec;
        } else {
          ref.erase(id);
        }
      }
    }
    if (rng.Bernoulli(0.15)) {
      engine_.Crash();
      ASSERT_TRUE(engine_.Recover().ok());
    }
    if (round % 10 == 9) {
      auto tv = engine_.Begin();
      std::map<RecordId, std::vector<uint8_t>> got;
      ASSERT_TRUE(
          rel_->Scan(*tv, [&](RecordId id, const std::vector<uint8_t>& r) {
                got[id] = r;
                return true;
              }).ok());
      ASSERT_TRUE(engine_.Commit(*tv).ok());
      ASSERT_EQ(got, ref) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace dbmr::store
