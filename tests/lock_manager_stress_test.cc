// Randomized stress test of the lock manager: thousands of interleaved
// acquire/release operations with continuously checked invariants.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "txn/lock_manager.h"
#include "util/rng.h"

namespace dbmr::txn {
namespace {

constexpr int kTxns = 12;
constexpr PageId kPages = 20;

/// Tracks what each transaction should currently hold, mirroring grants.
class Oracle {
 public:
  void Granted(TxnId t, PageId p, LockMode m) {
    auto& mode = held_[t][p];
    if (m == LockMode::kExclusive) mode = LockMode::kExclusive;
  }
  void Released(TxnId t, PageId p) { held_[t].erase(p); }
  void ReleasedAll(TxnId t) { held_.erase(t); }

  /// Core safety invariant: an exclusive holder excludes all others.
  void CheckMutualExclusion() const {
    for (PageId p = 0; p < kPages; ++p) {
      int holders = 0;
      int exclusive = 0;
      for (const auto& [t, pages] : held_) {
        auto it = pages.find(p);
        if (it == pages.end()) continue;
        ++holders;
        if (it->second == LockMode::kExclusive) ++exclusive;
      }
      ASSERT_LE(exclusive, 1) << "two exclusive holders on page " << p;
      if (exclusive == 1) {
        ASSERT_EQ(holders, 1) << "exclusive plus shared on page " << p;
      }
    }
  }

  const std::map<TxnId, std::map<PageId, LockMode>>& held() const {
    return held_;
  }

 private:
  std::map<TxnId, std::map<PageId, LockMode>> held_;
};

TEST(LockManagerStressTest, RandomizedInvariantSweep) {
  Rng rng(20240707);
  LockManager lm;
  Oracle oracle;
  // Outstanding waiting requests: (txn, page, mode) granted via callback.
  struct Waiting {
    TxnId t;
    PageId p;
    LockMode m;
    bool granted = false;
  };
  std::vector<std::unique_ptr<Waiting>> waits;

  int granted_now = 0;
  int waited = 0;
  int deadlocked = 0;

  for (int step = 0; step < 20000; ++step) {
    TxnId t = static_cast<TxnId>(rng.UniformInt(1, kTxns));
    double coin = rng.UniformDouble();
    if (coin < 0.55) {
      PageId p = static_cast<PageId>(rng.UniformInt(0, kPages - 1));
      LockMode m = rng.Bernoulli(0.3) ? LockMode::kExclusive
                                      : LockMode::kShared;
      auto w = std::make_unique<Waiting>();
      w->t = t;
      w->p = p;
      w->m = m;
      Waiting* wp = w.get();
      auto res = lm.Acquire(t, p, m, [wp] { wp->granted = true; });
      switch (res) {
        case AcquireResult::kGranted:
          oracle.Granted(t, p, m);
          ++granted_now;
          break;
        case AcquireResult::kWaiting:
          waits.push_back(std::move(w));
          ++waited;
          break;
        case AcquireResult::kDeadlock:
          // Victim policy: requester releases everything.
          lm.ReleaseAll(t);
          oracle.ReleasedAll(t);
          ++deadlocked;
          break;
      }
    } else if (coin < 0.8) {
      // Release one held lock, if any.
      auto it = oracle.held().find(t);
      if (it != oracle.held().end() && !it->second.empty()) {
        PageId p = it->second.begin()->first;
        ASSERT_TRUE(lm.Release(t, p).ok());
        oracle.Released(t, p);
      }
    } else {
      lm.ReleaseAll(t);
      oracle.ReleasedAll(t);
    }

    // Collect deferred grants (they may fire during releases above).
    for (auto& w : waits) {
      if (w->granted) {
        oracle.Granted(w->t, w->p, w->m);
        w->granted = false;
        w->t = kNoTxn;  // consumed
      }
    }
    waits.erase(std::remove_if(waits.begin(), waits.end(),
                               [](const auto& w) {
                                 return w->t == kNoTxn;
                               }),
                waits.end());

    oracle.CheckMutualExclusion();
    // Cross-check a sample of the oracle against the lock manager.
    for (const auto& [txn, pages] : oracle.held()) {
      for (const auto& [page, mode] : pages) {
        ASSERT_TRUE(lm.Holds(txn, page, LockMode::kShared))
            << "txn " << txn << " page " << page;
        if (mode == LockMode::kExclusive) {
          ASSERT_TRUE(lm.Holds(txn, page, LockMode::kExclusive));
        }
      }
    }
  }
  // The sweep must have exercised all three outcomes.
  EXPECT_GT(granted_now, 1000);
  EXPECT_GT(waited, 100);
  EXPECT_GT(deadlocked, 0);
}

TEST(LockManagerStressTest, DrainAlwaysPossible) {
  // After any prefix of random operations, releasing every transaction
  // empties the table (no stuck queue entries).
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    LockManager lm;
    for (int step = 0; step < 300; ++step) {
      TxnId t = static_cast<TxnId>(rng.UniformInt(1, 6));
      PageId p = static_cast<PageId>(rng.UniformInt(0, 5));
      LockMode m = rng.Bernoulli(0.5) ? LockMode::kExclusive
                                      : LockMode::kShared;
      auto res = lm.Acquire(t, p, m, [] {});
      if (res == AcquireResult::kDeadlock) lm.ReleaseAll(t);
    }
    for (TxnId t = 1; t <= 6; ++t) lm.ReleaseAll(t);
    EXPECT_EQ(lm.TotalGranted(), 0u);
    EXPECT_EQ(lm.TotalWaiting(), 0u);
  }
}

}  // namespace
}  // namespace dbmr::txn
