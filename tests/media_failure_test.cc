// Media-failure tolerance: mirrored replica pairs, archive-based data-disk
// rebuild, and the double-failure contract — when redundancy is exhausted
// the store must refuse with kDataLoss, never serve a wrong image.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "chaos/engine_zoo.h"
#include "store/mirrored_disk.h"
#include "store/virtual_disk.h"
#include "util/status.h"

namespace dbmr {
namespace {

using chaos::EngineFixture;
using chaos::FixtureOptions;
using chaos::MakeEngineFixture;
using store::BlockId;
using store::MirroredDisk;
using store::PageData;
using store::VirtualDisk;

constexpr size_t kBlock = 256;

PageData Filled(uint8_t v) { return PageData(kBlock, v); }

// ---------------------------------------------------------------------------
// MirroredDisk

TEST(MirroredDiskTest, DualWritesAndSurvivesOneMediaLoss) {
  VirtualDisk p("p", 8, kBlock), m("m", 8, kBlock);
  MirroredDisk pair("pair", &p, &m);

  ASSERT_TRUE(pair.Write(3, Filled(0xAB)).ok());
  PageData out(kBlock);
  ASSERT_TRUE(p.ReadInto(3, out.data()).ok());
  EXPECT_EQ(out[0], 0xAB);
  ASSERT_TRUE(m.ReadInto(3, out.data()).ok());
  EXPECT_EQ(out[0], 0xAB);

  p.FailMedia();
  EXPECT_TRUE(pair.degraded());
  // Reads fall back to the mirror; writes keep landing on it.
  ASSERT_TRUE(pair.Read(3, &out).ok());
  EXPECT_EQ(out[0], 0xAB);
  ASSERT_TRUE(pair.Write(4, Filled(0x11)).ok());

  ASSERT_TRUE(pair.Rebuild().ok());
  EXPECT_FALSE(pair.degraded());
  ASSERT_TRUE(p.ReadInto(4, out.data()).ok());
  EXPECT_EQ(out[0], 0x11);
}

TEST(MirroredDiskTest, DoubleMediaFailureIsDataLossNotWrongData) {
  VirtualDisk p("p", 8, kBlock), m("m", 8, kBlock);
  MirroredDisk pair("pair", &p, &m);
  ASSERT_TRUE(pair.Write(0, Filled(0x77)).ok());

  p.FailMedia();
  m.FailMedia();
  Status st = pair.Rebuild();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  PageData out(kBlock);
  EXPECT_FALSE(pair.Read(0, &out).ok());
  EXPECT_FALSE(pair.Write(0, Filled(0)).ok());
}

TEST(MirroredDiskTest, SurvivorLostDuringRebuildIsDataLoss) {
  VirtualDisk p("p", 8, kBlock), m("m", 8, kBlock);
  MirroredDisk pair("pair", &p, &m);
  for (BlockId b = 0; b < 8; ++b) {
    ASSERT_TRUE(pair.Write(b, Filled(static_cast<uint8_t>(b + 1))).ok());
  }

  // The primary's medium goes first; halfway through its rebuild the
  // surviving mirror dies too.
  p.FailMedia();
  int copied = 0;
  p.SetWriteObserver([&](BlockId, const PageData&) {
    if (++copied == 4) m.FailMedia();
  });
  Status st = pair.Rebuild();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  // The half-rebuilt replica must not pass for a healthy pair image.
  EXPECT_TRUE(p.media_lost());
  PageData out(kBlock);
  EXPECT_FALSE(pair.Read(7, &out).ok());
}

TEST(MirroredDiskTest, HalfWriteFailureWithoutMediaLossIsNotAcked) {
  // A shared fail-stop budget that dies between the two half-writes is the
  // machine crashing mid-pair, not a degraded disk: the logical write must
  // surface the failure, or a later rebuild from the stale twin would roll
  // back an acknowledged write.
  VirtualDisk p("p", 8, kBlock), m("m", 8, kBlock);
  MirroredDisk pair("pair", &p, &m);
  auto budget = std::make_shared<int64_t>(1);
  p.SetSharedFailCounter(budget);
  m.SetSharedFailCounter(budget);
  EXPECT_FALSE(pair.Write(2, Filled(0x42)).ok());
}

// ---------------------------------------------------------------------------
// Engine-level media recovery through the zoo fixtures

/// Runs `txns` committed single-page transactions and returns the expected
/// payload per touched page.
std::vector<std::pair<txn::PageId, PageData>> CommitSome(EngineFixture& fx,
                                                         int txns) {
  std::vector<std::pair<txn::PageId, PageData>> expect;
  const uint64_t pages = fx.engine->num_pages();
  for (int i = 0; i < txns; ++i) {
    auto t = fx.engine->Begin();
    EXPECT_TRUE(t.ok());
    const auto page = static_cast<txn::PageId>(i % pages);
    PageData payload(fx.engine->payload_size(),
                     static_cast<uint8_t>(0x30 + i));
    EXPECT_TRUE(fx.engine->Write(*t, page, payload).ok());
    EXPECT_TRUE(fx.engine->Commit(*t).ok());
    expect.emplace_back(page, std::move(payload));
  }
  return expect;
}

void ExpectState(EngineFixture& fx,
                 const std::vector<std::pair<txn::PageId, PageData>>& expect) {
  auto t = fx.engine->Begin();
  ASSERT_TRUE(t.ok());
  // Newest write per page wins: walk backwards, check each page once.
  std::unordered_set<txn::PageId> seen;
  for (auto it = expect.rbegin(); it != expect.rend(); ++it) {
    if (!seen.insert(it->first).second) continue;
    PageData out;
    ASSERT_TRUE(fx.engine->Read(*t, it->first, &out).ok());
    EXPECT_TRUE(out == it->second) << "page " << it->first;
  }
  ASSERT_TRUE(fx.engine->Abort(*t).ok());
}

TEST(MediaRecoveryTest, WalRebuildsLostDataDiskFromArchiveAndLog) {
  FixtureOptions o;
  o.archive = true;
  auto fxr = MakeEngineFixture("wal", o);
  ASSERT_TRUE(fxr.ok());
  EngineFixture fx = std::move(*fxr);
  // CommitSome writes page i%16 on txn i, so the last 16 txns win.
  auto expect = CommitSome(fx, 24);

  fx.engine->Crash();
  fx.disks[0]->FailMedia();  // the (unmirrored) data disk
  ASSERT_TRUE(fx.AnyMediaLost());
  Status st = fx.RepairMedia();
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(fx.engine->Recover().ok());
  ExpectState(fx, expect);
}

TEST(MediaRecoveryTest, WalDataAndArchiveBothLostIsDataLoss) {
  FixtureOptions o;
  o.archive = true;
  auto fxr = MakeEngineFixture("wal", o);
  ASSERT_TRUE(fxr.ok());
  EngineFixture fx = std::move(*fxr);
  CommitSome(fx, 8);

  fx.engine->Crash();
  fx.disks[0]->FailMedia();                       // data
  fx.disks[fx.disks.size() - 1]->FailMedia();     // archive (added last)
  Status st = fx.RepairMedia();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
}

TEST(MediaRecoveryTest, WalLostLogDiskWithoutMirrorIsDataLoss) {
  FixtureOptions o;
  o.archive = true;
  auto fxr = MakeEngineFixture("wal", o);
  ASSERT_TRUE(fxr.ok());
  EngineFixture fx = std::move(*fxr);
  CommitSome(fx, 8);

  fx.engine->Crash();
  fx.disks[1]->FailMedia();  // log0, unmirrored in this fixture
  Status st = fx.RepairMedia();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
}

TEST(MediaRecoveryTest, MirroredLogSurvivesOneReplicaPerPair) {
  FixtureOptions o;
  o.log_mirroring = true;
  o.archive = true;
  auto fxr = MakeEngineFixture("wal", o);
  ASSERT_TRUE(fxr.ok());
  EngineFixture fx = std::move(*fxr);
  auto expect = CommitSome(fx, 24);

  fx.engine->Crash();
  // disks = data, log0, log0-mirror, log1, log1-mirror, archive: kill one
  // replica of each pair.
  fx.disks[1]->FailMedia();
  fx.disks[4]->FailMedia();
  Status st = fx.RepairMedia();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(fx.AnyMediaLost());
  ASSERT_TRUE(fx.engine->Recover().ok());
  ExpectState(fx, expect);
}

TEST(MediaRecoveryTest, BothLogReplicasLostIsDataLoss) {
  FixtureOptions o;
  o.log_mirroring = true;
  auto fxr = MakeEngineFixture("wal", o);
  ASSERT_TRUE(fxr.ok());
  EngineFixture fx = std::move(*fxr);
  CommitSome(fx, 8);

  fx.engine->Crash();
  fx.disks[1]->FailMedia();
  fx.disks[2]->FailMedia();
  Status st = fx.RepairMedia();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
}

TEST(MediaRecoveryTest, UnmirroredSingleDiskEngineRefusesWithDataLoss) {
  for (const std::string& name :
       {std::string("shadow"), std::string("differential"),
        std::string("overwrite-noundo"), std::string("version-select")}) {
    auto fxr = MakeEngineFixture(name);
    ASSERT_TRUE(fxr.ok()) << name;
    EngineFixture fx = std::move(*fxr);
    CommitSome(fx, 4);
    fx.engine->Crash();
    fx.disks[0]->FailMedia();
    Status st = fx.RepairMedia();
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << name << ": "
                                                << st.ToString();
  }
}

TEST(MediaRecoveryTest, MirroredSingleDiskEngineRebuilds) {
  for (const std::string& name :
       {std::string("shadow"), std::string("differential"),
        std::string("overwrite-noredo"), std::string("version-select")}) {
    FixtureOptions o;
    o.log_mirroring = true;
    auto fxr = MakeEngineFixture(name, o);
    ASSERT_TRUE(fxr.ok()) << name;
    EngineFixture fx = std::move(*fxr);
    auto expect = CommitSome(fx, 24);

    fx.engine->Crash();
    fx.disks[0]->FailMedia();
    Status st = fx.RepairMedia();
    ASSERT_TRUE(st.ok()) << name << ": " << st.ToString();
    ASSERT_TRUE(fx.engine->Recover().ok()) << name;
    ExpectState(fx, expect);
  }
}

// ---------------------------------------------------------------------------
// Checksum scrubbing

TEST(ScrubTest, SilentCorruptionFailsChecksumAndHealthyBlocksPass) {
  VirtualDisk d("d", 16, kBlock);
  ASSERT_TRUE(d.Write(5, Filled(0x5A)).ok());
  ASSERT_TRUE(d.VerifyBlockChecksum(5).ok());

  ASSERT_TRUE(d.CorruptRange(5, 17, 9, /*seed=*/123).ok());
  for (BlockId b = 0; b < 16; ++b) {
    Status st = d.VerifyBlockChecksum(b);
    if (b == 5) {
      EXPECT_EQ(st.code(), StatusCode::kCorruption);
    } else {
      EXPECT_TRUE(st.ok()) << "block " << b << ": " << st.ToString();
    }
  }
  // With read-time verification on, the read path catches it too (off by
  // default so the bit-flip sweeps measure what the engines detect).
  d.SetChecksumVerify(true);
  PageData out(kBlock);
  EXPECT_EQ(d.ReadInto(5, out.data()).code(), StatusCode::kCorruption);
  ASSERT_TRUE(d.Read(4, &out).ok());
}

TEST(ScrubTest, LostMediumScrubsAsIoErrorNotCorruption) {
  VirtualDisk d("d", 4, kBlock);
  ASSERT_TRUE(d.Write(0, Filled(1)).ok());
  d.FailMedia();
  EXPECT_EQ(d.VerifyBlockChecksum(0).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dbmr
