// Tests for the database-machine simulator with the bare architecture:
// completeness, conservation laws, determinism, and the paper's first-
// order performance shapes.

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.h"
#include "machine/machine.h"

namespace dbmr::machine {
namespace {

using core::Configuration;
using core::RunWith;
using core::StandardSetup;

MachineResult RunBare(Configuration c, int txns = 40, uint64_t seed = 7) {
  return RunWith(StandardSetup(c, txns, seed), std::make_unique<BareArch>());
}

TEST(MachineTest, AllTransactionsComplete) {
  auto r = RunBare(Configuration::kConvRandom, 20);
  EXPECT_EQ(r.completion_ms.count(), 20);
  EXPECT_GT(r.total_time_ms, 0.0);
}

TEST(MachineTest, PageConservation) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  auto txns = workload::GenerateWorkload(setup.workload);
  uint64_t reads = 0, writes = 0;
  for (const auto& t : txns) {
    reads += t.num_reads();
    writes += t.num_writes();
  }
  Machine m(setup.machine, txns, std::make_unique<BareArch>());
  auto r = m.Run();
  EXPECT_EQ(r.pages_read, reads);
  EXPECT_EQ(r.pages_written, writes);
  EXPECT_EQ(r.total_pages, reads + writes);
}

TEST(MachineTest, DeterministicAcrossRuns) {
  auto a = RunBare(Configuration::kParSeq, 25, 3);
  auto b = RunBare(Configuration::kParSeq, 25, 3);
  EXPECT_DOUBLE_EQ(a.total_time_ms, b.total_time_ms);
  EXPECT_DOUBLE_EQ(a.completion_ms.mean(), b.completion_ms.mean());
}

TEST(MachineTest, UtilizationsAreFractions) {
  auto r = RunBare(Configuration::kConvRandom, 20);
  for (double u : r.data_disk_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GE(r.qp_util, 0.0);
  EXPECT_LE(r.qp_util, 1.0 + 1e-9);
}

TEST(MachineTest, RandomWorkloadIsDiskBound) {
  // The paper's central observation about the bare machine: the I/O
  // bandwidth between the disks and the cache limits throughput.
  auto r = RunBare(Configuration::kConvRandom, 30);
  EXPECT_GT(r.data_disk_util[0], 0.9);
  EXPECT_LT(r.qp_util, 0.5);
}

TEST(MachineTest, SequentialFasterThanRandom) {
  auto rnd = RunBare(Configuration::kConvRandom, 30);
  auto seq = RunBare(Configuration::kConvSeq, 30);
  EXPECT_LT(seq.exec_time_per_page_ms, rnd.exec_time_per_page_ms);
}

TEST(MachineTest, ParallelSequentialIsAnOrderOfMagnitudeFaster) {
  auto conv = RunBare(Configuration::kConvSeq, 30);
  auto par = RunBare(Configuration::kParSeq, 30);
  EXPECT_LT(par.exec_time_per_page_ms, conv.exec_time_per_page_ms / 4.0);
}

TEST(MachineTest, BareShapesMatchPaperTable1) {
  // Calibration guard: the bare machine must stay in the neighborhood of
  // the paper's Table 1 baseline (18.0 / 16.6 / 11.0 / 1.9 ms per page).
  EXPECT_NEAR(RunBare(Configuration::kConvRandom, 60).exec_time_per_page_ms,
              18.0, 2.5);
  EXPECT_NEAR(RunBare(Configuration::kParRandom, 60).exec_time_per_page_ms,
              16.6, 2.5);
  EXPECT_NEAR(RunBare(Configuration::kConvSeq, 60).exec_time_per_page_ms,
              11.0, 2.0);
  EXPECT_NEAR(RunBare(Configuration::kParSeq, 60).exec_time_per_page_ms,
              1.9, 0.8);
}

TEST(MachineTest, CompletionTimeBoundedByTotal) {
  auto r = RunBare(Configuration::kConvRandom, 20);
  EXPECT_GT(r.completion_ms.min(), 0.0);
  EXPECT_LE(r.completion_ms.max(), r.total_time_ms);
}

TEST(MachineTest, HomePlacementStripesAcrossDisks) {
  auto setup = StandardSetup(Configuration::kConvRandom, 1);
  Machine m(setup.machine, workload::GenerateWorkload(setup.workload),
            std::make_unique<BareArch>());
  const auto ppc =
      static_cast<uint64_t>(setup.machine.geometry.pages_per_cylinder());
  Placement p0 = m.HomePlacement(0);
  Placement p1 = m.HomePlacement(ppc);          // next cylinder group
  Placement p2 = m.HomePlacement(2 * ppc);
  EXPECT_EQ(p0.disk, 0);
  EXPECT_EQ(p1.disk, 1);
  EXPECT_EQ(p2.disk, 0);
  EXPECT_EQ(p2.addr.cylinder, p0.addr.cylinder + 1);
}

TEST(MachineTest, ScratchPlacementInReservedArea) {
  auto setup = StandardSetup(Configuration::kConvRandom, 1);
  Machine m(setup.machine, workload::GenerateWorkload(setup.workload),
            std::make_unique<BareArch>());
  Placement s = m.ScratchPlacement(1, 5);
  EXPECT_EQ(s.disk, 1);
  EXPECT_GE(s.addr.cylinder, setup.machine.geometry.cylinders -
                                 setup.machine.reserved_cylinders);
  EXPECT_LT(s.addr.cylinder, setup.machine.geometry.cylinders);
}

TEST(MachineTest, SequentialOverlapsCauseLockWaitsNotLivelock) {
  // Sequential transactions overlap ranges and must still all complete.
  auto setup = StandardSetup(Configuration::kConvSeq, 40, 5);
  setup.workload.db_pages = 2000;  // force heavy overlap
  setup.machine.db_pages = 120000;
  auto r = RunWith(setup, std::make_unique<BareArch>());
  EXPECT_EQ(r.completion_ms.count(), 40);
}

TEST(MachineTest, HighContentionRandomCompletes) {
  auto setup = StandardSetup(Configuration::kConvRandom, 40, 5);
  setup.workload.db_pages = 500;  // tiny database: many conflicts
  setup.workload.max_pages = 40;
  auto r = RunWith(setup, std::make_unique<BareArch>());
  EXPECT_EQ(r.completion_ms.count(), 40);
}

TEST(MachineTest, MplOneSerializesTransactions) {
  auto setup = StandardSetup(Configuration::kConvRandom, 10);
  setup.machine.mpl = 1;
  auto serial = RunWith(setup, std::make_unique<BareArch>());
  auto parallel = RunBare(Configuration::kConvRandom, 10);
  // Serial completion per txn is faster (no sharing), total time similar
  // or worse.
  EXPECT_LT(serial.completion_ms.mean(), parallel.completion_ms.mean());
  EXPECT_EQ(serial.completion_ms.count(), 10);
}

TEST(MachineTest, OpenSystemLightLoadHasShortResponses) {
  auto setup = StandardSetup(Configuration::kConvRandom, 20);
  setup.machine.mean_interarrival_ms = 30000.0;  // nearly idle machine
  auto r = RunWith(setup, std::make_unique<BareArch>());
  EXPECT_EQ(r.completion_ms.count(), 20);
  // At light load a transaction runs nearly alone: response close to the
  // MPL=1 service time (~150 pages * ~18 ms / overlap).
  auto serial = StandardSetup(Configuration::kConvRandom, 20);
  serial.machine.mpl = 1;
  auto alone = RunWith(serial, std::make_unique<BareArch>());
  EXPECT_LT(r.completion_ms.mean(), alone.completion_ms.mean() * 1.5);
}

TEST(MachineTest, OpenSystemHeavyLoadQueues) {
  auto light = StandardSetup(Configuration::kConvRandom, 30);
  light.machine.mean_interarrival_ms = 20000.0;
  auto heavy = StandardSetup(Configuration::kConvRandom, 30);
  heavy.machine.mean_interarrival_ms = 3000.0;  // near saturation
  auto rl = RunWith(light, std::make_unique<BareArch>());
  auto rh = RunWith(heavy, std::make_unique<BareArch>());
  EXPECT_GT(rh.completion_ms.mean(), rl.completion_ms.mean() * 1.5);
}

TEST(MachineTest, SkewedWorkloadStillCompletes) {
  auto setup = StandardSetup(Configuration::kConvRandom, 30);
  setup.workload.hot_fraction = 0.001;
  setup.workload.hot_access_prob = 0.8;
  setup.machine.mpl = 6;
  auto r = RunWith(setup, std::make_unique<BareArch>());
  EXPECT_EQ(r.completion_ms.count(), 30);
}

TEST(MachineTest, MoreCacheFramesNeverHurtMuch) {
  auto small = StandardSetup(Configuration::kParSeq, 20);
  small.machine.cache_frames = 40;
  auto large = StandardSetup(Configuration::kParSeq, 20);
  large.machine.cache_frames = 200;
  auto rs = RunWith(small, std::make_unique<BareArch>());
  auto rl = RunWith(large, std::make_unique<BareArch>());
  EXPECT_LT(rl.exec_time_per_page_ms, rs.exec_time_per_page_ms * 1.15);
}

}  // namespace
}  // namespace dbmr::machine
