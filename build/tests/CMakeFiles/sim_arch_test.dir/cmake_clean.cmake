file(REMOVE_RECURSE
  "CMakeFiles/sim_arch_test.dir/sim_arch_test.cc.o"
  "CMakeFiles/sim_arch_test.dir/sim_arch_test.cc.o.d"
  "sim_arch_test"
  "sim_arch_test.pdb"
  "sim_arch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
