# Empty dependencies file for sim_arch_test.
# This may be replaced when dependencies are built.
