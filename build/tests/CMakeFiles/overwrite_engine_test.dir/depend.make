# Empty dependencies file for overwrite_engine_test.
# This may be replaced when dependencies are built.
