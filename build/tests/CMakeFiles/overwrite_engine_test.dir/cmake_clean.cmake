file(REMOVE_RECURSE
  "CMakeFiles/overwrite_engine_test.dir/overwrite_engine_test.cc.o"
  "CMakeFiles/overwrite_engine_test.dir/overwrite_engine_test.cc.o.d"
  "overwrite_engine_test"
  "overwrite_engine_test.pdb"
  "overwrite_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overwrite_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
