file(REMOVE_RECURSE
  "CMakeFiles/differential_engine_test.dir/differential_engine_test.cc.o"
  "CMakeFiles/differential_engine_test.dir/differential_engine_test.cc.o.d"
  "differential_engine_test"
  "differential_engine_test.pdb"
  "differential_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
