# Empty dependencies file for page_engine_contract_test.
# This may be replaced when dependencies are built.
