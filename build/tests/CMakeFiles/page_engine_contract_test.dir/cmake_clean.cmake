file(REMOVE_RECURSE
  "CMakeFiles/page_engine_contract_test.dir/page_engine_contract_test.cc.o"
  "CMakeFiles/page_engine_contract_test.dir/page_engine_contract_test.cc.o.d"
  "page_engine_contract_test"
  "page_engine_contract_test.pdb"
  "page_engine_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_engine_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
