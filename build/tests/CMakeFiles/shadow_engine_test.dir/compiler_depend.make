# Empty compiler generated dependencies file for shadow_engine_test.
# This may be replaced when dependencies are built.
