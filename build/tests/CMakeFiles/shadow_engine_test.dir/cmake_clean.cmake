file(REMOVE_RECURSE
  "CMakeFiles/shadow_engine_test.dir/shadow_engine_test.cc.o"
  "CMakeFiles/shadow_engine_test.dir/shadow_engine_test.cc.o.d"
  "shadow_engine_test"
  "shadow_engine_test.pdb"
  "shadow_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
