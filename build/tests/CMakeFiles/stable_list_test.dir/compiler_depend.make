# Empty compiler generated dependencies file for stable_list_test.
# This may be replaced when dependencies are built.
