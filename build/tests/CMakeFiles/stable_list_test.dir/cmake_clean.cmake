file(REMOVE_RECURSE
  "CMakeFiles/stable_list_test.dir/stable_list_test.cc.o"
  "CMakeFiles/stable_list_test.dir/stable_list_test.cc.o.d"
  "stable_list_test"
  "stable_list_test.pdb"
  "stable_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
