# Empty dependencies file for wal_engine_test.
# This may be replaced when dependencies are built.
