file(REMOVE_RECURSE
  "CMakeFiles/wal_engine_test.dir/wal_engine_test.cc.o"
  "CMakeFiles/wal_engine_test.dir/wal_engine_test.cc.o.d"
  "wal_engine_test"
  "wal_engine_test.pdb"
  "wal_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
