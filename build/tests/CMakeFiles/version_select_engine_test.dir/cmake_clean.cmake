file(REMOVE_RECURSE
  "CMakeFiles/version_select_engine_test.dir/version_select_engine_test.cc.o"
  "CMakeFiles/version_select_engine_test.dir/version_select_engine_test.cc.o.d"
  "version_select_engine_test"
  "version_select_engine_test.pdb"
  "version_select_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_select_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
