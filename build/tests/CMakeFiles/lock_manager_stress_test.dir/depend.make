# Empty dependencies file for lock_manager_stress_test.
# This may be replaced when dependencies are built.
