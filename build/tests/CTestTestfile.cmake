# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_disk_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/log_format_test[1]_include.cmake")
include("/root/repo/build/tests/wal_engine_test[1]_include.cmake")
include("/root/repo/build/tests/stable_list_test[1]_include.cmake")
include("/root/repo/build/tests/shadow_engine_test[1]_include.cmake")
include("/root/repo/build/tests/overwrite_engine_test[1]_include.cmake")
include("/root/repo/build/tests/version_select_engine_test[1]_include.cmake")
include("/root/repo/build/tests/differential_engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_arch_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/page_engine_contract_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
