# Empty compiler generated dependencies file for dbmr_workload.
# This may be replaced when dependencies are built.
