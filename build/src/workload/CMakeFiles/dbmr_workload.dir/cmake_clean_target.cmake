file(REMOVE_RECURSE
  "libdbmr_workload.a"
)
