file(REMOVE_RECURSE
  "CMakeFiles/dbmr_workload.dir/workload.cc.o"
  "CMakeFiles/dbmr_workload.dir/workload.cc.o.d"
  "libdbmr_workload.a"
  "libdbmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
