file(REMOVE_RECURSE
  "libdbmr_core.a"
)
