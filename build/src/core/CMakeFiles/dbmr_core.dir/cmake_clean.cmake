file(REMOVE_RECURSE
  "CMakeFiles/dbmr_core.dir/experiment.cc.o"
  "CMakeFiles/dbmr_core.dir/experiment.cc.o.d"
  "libdbmr_core.a"
  "libdbmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
