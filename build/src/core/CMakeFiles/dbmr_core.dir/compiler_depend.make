# Empty compiler generated dependencies file for dbmr_core.
# This may be replaced when dependencies are built.
