file(REMOVE_RECURSE
  "CMakeFiles/dbmr_hw.dir/channel.cc.o"
  "CMakeFiles/dbmr_hw.dir/channel.cc.o.d"
  "CMakeFiles/dbmr_hw.dir/disk.cc.o"
  "CMakeFiles/dbmr_hw.dir/disk.cc.o.d"
  "libdbmr_hw.a"
  "libdbmr_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
