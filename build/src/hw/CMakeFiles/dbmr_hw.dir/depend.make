# Empty dependencies file for dbmr_hw.
# This may be replaced when dependencies are built.
