file(REMOVE_RECURSE
  "libdbmr_hw.a"
)
