# Empty compiler generated dependencies file for dbmr_txn.
# This may be replaced when dependencies are built.
