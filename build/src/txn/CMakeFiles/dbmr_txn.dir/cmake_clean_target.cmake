file(REMOVE_RECURSE
  "libdbmr_txn.a"
)
