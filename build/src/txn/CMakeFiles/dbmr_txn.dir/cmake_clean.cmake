file(REMOVE_RECURSE
  "CMakeFiles/dbmr_txn.dir/lock_manager.cc.o"
  "CMakeFiles/dbmr_txn.dir/lock_manager.cc.o.d"
  "libdbmr_txn.a"
  "libdbmr_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
