# Empty compiler generated dependencies file for dbmr_sim.
# This may be replaced when dependencies are built.
