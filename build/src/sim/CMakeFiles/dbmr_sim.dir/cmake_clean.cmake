file(REMOVE_RECURSE
  "CMakeFiles/dbmr_sim.dir/server.cc.o"
  "CMakeFiles/dbmr_sim.dir/server.cc.o.d"
  "CMakeFiles/dbmr_sim.dir/simulator.cc.o"
  "CMakeFiles/dbmr_sim.dir/simulator.cc.o.d"
  "libdbmr_sim.a"
  "libdbmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
