file(REMOVE_RECURSE
  "libdbmr_sim.a"
)
