# Empty dependencies file for dbmr_util.
# This may be replaced when dependencies are built.
