file(REMOVE_RECURSE
  "CMakeFiles/dbmr_util.dir/rng.cc.o"
  "CMakeFiles/dbmr_util.dir/rng.cc.o.d"
  "CMakeFiles/dbmr_util.dir/stats.cc.o"
  "CMakeFiles/dbmr_util.dir/stats.cc.o.d"
  "CMakeFiles/dbmr_util.dir/status.cc.o"
  "CMakeFiles/dbmr_util.dir/status.cc.o.d"
  "CMakeFiles/dbmr_util.dir/str.cc.o"
  "CMakeFiles/dbmr_util.dir/str.cc.o.d"
  "CMakeFiles/dbmr_util.dir/table.cc.o"
  "CMakeFiles/dbmr_util.dir/table.cc.o.d"
  "libdbmr_util.a"
  "libdbmr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
