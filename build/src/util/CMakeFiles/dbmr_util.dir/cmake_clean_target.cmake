file(REMOVE_RECURSE
  "libdbmr_util.a"
)
