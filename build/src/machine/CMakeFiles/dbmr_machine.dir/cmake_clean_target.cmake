file(REMOVE_RECURSE
  "libdbmr_machine.a"
)
