# Empty compiler generated dependencies file for dbmr_machine.
# This may be replaced when dependencies are built.
