
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine.cc" "src/machine/CMakeFiles/dbmr_machine.dir/machine.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/machine.cc.o.d"
  "/root/repo/src/machine/sim_differential.cc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_differential.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_differential.cc.o.d"
  "/root/repo/src/machine/sim_logging.cc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_logging.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_logging.cc.o.d"
  "/root/repo/src/machine/sim_overwrite.cc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_overwrite.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_overwrite.cc.o.d"
  "/root/repo/src/machine/sim_shadow.cc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_shadow.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_shadow.cc.o.d"
  "/root/repo/src/machine/sim_version_select.cc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_version_select.cc.o" "gcc" "src/machine/CMakeFiles/dbmr_machine.dir/sim_version_select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/dbmr_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dbmr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbmr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbmr_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
