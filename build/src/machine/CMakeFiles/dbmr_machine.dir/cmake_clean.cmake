file(REMOVE_RECURSE
  "CMakeFiles/dbmr_machine.dir/machine.cc.o"
  "CMakeFiles/dbmr_machine.dir/machine.cc.o.d"
  "CMakeFiles/dbmr_machine.dir/sim_differential.cc.o"
  "CMakeFiles/dbmr_machine.dir/sim_differential.cc.o.d"
  "CMakeFiles/dbmr_machine.dir/sim_logging.cc.o"
  "CMakeFiles/dbmr_machine.dir/sim_logging.cc.o.d"
  "CMakeFiles/dbmr_machine.dir/sim_overwrite.cc.o"
  "CMakeFiles/dbmr_machine.dir/sim_overwrite.cc.o.d"
  "CMakeFiles/dbmr_machine.dir/sim_shadow.cc.o"
  "CMakeFiles/dbmr_machine.dir/sim_shadow.cc.o.d"
  "CMakeFiles/dbmr_machine.dir/sim_version_select.cc.o"
  "CMakeFiles/dbmr_machine.dir/sim_version_select.cc.o.d"
  "libdbmr_machine.a"
  "libdbmr_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
