# Empty dependencies file for dbmr_store.
# This may be replaced when dependencies are built.
