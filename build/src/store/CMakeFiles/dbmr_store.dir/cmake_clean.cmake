file(REMOVE_RECURSE
  "CMakeFiles/dbmr_store.dir/buffer_pool.cc.o"
  "CMakeFiles/dbmr_store.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/differential_engine.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/differential_engine.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/log_format.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/log_format.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/overwrite_engine.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/overwrite_engine.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/shadow_engine.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/shadow_engine.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/stable_list.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/stable_list.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/version_select_engine.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/version_select_engine.cc.o.d"
  "CMakeFiles/dbmr_store.dir/recovery/wal_engine.cc.o"
  "CMakeFiles/dbmr_store.dir/recovery/wal_engine.cc.o.d"
  "CMakeFiles/dbmr_store.dir/relation.cc.o"
  "CMakeFiles/dbmr_store.dir/relation.cc.o.d"
  "CMakeFiles/dbmr_store.dir/virtual_disk.cc.o"
  "CMakeFiles/dbmr_store.dir/virtual_disk.cc.o.d"
  "libdbmr_store.a"
  "libdbmr_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
