file(REMOVE_RECURSE
  "libdbmr_store.a"
)
