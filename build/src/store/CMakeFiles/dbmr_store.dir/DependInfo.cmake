
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/buffer_pool.cc" "src/store/CMakeFiles/dbmr_store.dir/buffer_pool.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/buffer_pool.cc.o.d"
  "/root/repo/src/store/recovery/differential_engine.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/differential_engine.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/differential_engine.cc.o.d"
  "/root/repo/src/store/recovery/log_format.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/log_format.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/log_format.cc.o.d"
  "/root/repo/src/store/recovery/overwrite_engine.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/overwrite_engine.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/overwrite_engine.cc.o.d"
  "/root/repo/src/store/recovery/shadow_engine.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/shadow_engine.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/shadow_engine.cc.o.d"
  "/root/repo/src/store/recovery/stable_list.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/stable_list.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/stable_list.cc.o.d"
  "/root/repo/src/store/recovery/version_select_engine.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/version_select_engine.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/version_select_engine.cc.o.d"
  "/root/repo/src/store/recovery/wal_engine.cc" "src/store/CMakeFiles/dbmr_store.dir/recovery/wal_engine.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/recovery/wal_engine.cc.o.d"
  "/root/repo/src/store/relation.cc" "src/store/CMakeFiles/dbmr_store.dir/relation.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/relation.cc.o.d"
  "/root/repo/src/store/virtual_disk.cc" "src/store/CMakeFiles/dbmr_store.dir/virtual_disk.cc.o" "gcc" "src/store/CMakeFiles/dbmr_store.dir/virtual_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/dbmr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
