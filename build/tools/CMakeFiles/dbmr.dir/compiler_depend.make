# Empty compiler generated dependencies file for dbmr.
# This may be replaced when dependencies are built.
