file(REMOVE_RECURSE
  "CMakeFiles/dbmr.dir/dbmr_cli.cc.o"
  "CMakeFiles/dbmr.dir/dbmr_cli.cc.o.d"
  "dbmr"
  "dbmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
