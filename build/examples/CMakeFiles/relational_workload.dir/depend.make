# Empty dependencies file for relational_workload.
# This may be replaced when dependencies are built.
