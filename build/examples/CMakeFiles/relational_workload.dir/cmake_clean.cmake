file(REMOVE_RECURSE
  "CMakeFiles/relational_workload.dir/relational_workload.cpp.o"
  "CMakeFiles/relational_workload.dir/relational_workload.cpp.o.d"
  "relational_workload"
  "relational_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
