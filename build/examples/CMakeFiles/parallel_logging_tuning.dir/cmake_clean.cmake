file(REMOVE_RECURSE
  "CMakeFiles/parallel_logging_tuning.dir/parallel_logging_tuning.cpp.o"
  "CMakeFiles/parallel_logging_tuning.dir/parallel_logging_tuning.cpp.o.d"
  "parallel_logging_tuning"
  "parallel_logging_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_logging_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
