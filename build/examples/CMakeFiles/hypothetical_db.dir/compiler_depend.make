# Empty compiler generated dependencies file for hypothetical_db.
# This may be replaced when dependencies are built.
