file(REMOVE_RECURSE
  "CMakeFiles/hypothetical_db.dir/hypothetical_db.cpp.o"
  "CMakeFiles/hypothetical_db.dir/hypothetical_db.cpp.o.d"
  "hypothetical_db"
  "hypothetical_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypothetical_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
