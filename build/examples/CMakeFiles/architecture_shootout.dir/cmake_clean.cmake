file(REMOVE_RECURSE
  "CMakeFiles/architecture_shootout.dir/architecture_shootout.cpp.o"
  "CMakeFiles/architecture_shootout.dir/architecture_shootout.cpp.o.d"
  "architecture_shootout"
  "architecture_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
