file(REMOVE_RECURSE
  "CMakeFiles/table07_sequential_shadow.dir/table07_sequential_shadow.cc.o"
  "CMakeFiles/table07_sequential_shadow.dir/table07_sequential_shadow.cc.o.d"
  "table07_sequential_shadow"
  "table07_sequential_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_sequential_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
