# Empty compiler generated dependencies file for table07_sequential_shadow.
# This may be replaced when dependencies are built.
