file(REMOVE_RECURSE
  "CMakeFiles/table11_diff_size.dir/table11_diff_size.cc.o"
  "CMakeFiles/table11_diff_size.dir/table11_diff_size.cc.o.d"
  "table11_diff_size"
  "table11_diff_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_diff_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
