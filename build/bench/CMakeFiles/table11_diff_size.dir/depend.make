# Empty dependencies file for table11_diff_size.
# This may be replaced when dependencies are built.
