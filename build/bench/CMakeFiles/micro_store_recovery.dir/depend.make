# Empty dependencies file for micro_store_recovery.
# This may be replaced when dependencies are built.
