file(REMOVE_RECURSE
  "CMakeFiles/micro_store_recovery.dir/micro_store_recovery.cc.o"
  "CMakeFiles/micro_store_recovery.dir/micro_store_recovery.cc.o.d"
  "micro_store_recovery"
  "micro_store_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_store_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
