file(REMOVE_RECURSE
  "CMakeFiles/table04_shadow_impact.dir/table04_shadow_impact.cc.o"
  "CMakeFiles/table04_shadow_impact.dir/table04_shadow_impact.cc.o.d"
  "table04_shadow_impact"
  "table04_shadow_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_shadow_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
