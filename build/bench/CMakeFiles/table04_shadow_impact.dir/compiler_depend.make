# Empty compiler generated dependencies file for table04_shadow_impact.
# This may be replaced when dependencies are built.
