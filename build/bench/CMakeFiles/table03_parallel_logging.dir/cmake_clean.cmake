file(REMOVE_RECURSE
  "CMakeFiles/table03_parallel_logging.dir/table03_parallel_logging.cc.o"
  "CMakeFiles/table03_parallel_logging.dir/table03_parallel_logging.cc.o.d"
  "table03_parallel_logging"
  "table03_parallel_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_parallel_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
