# Empty compiler generated dependencies file for table03_parallel_logging.
# This may be replaced when dependencies are built.
