file(REMOVE_RECURSE
  "CMakeFiles/table01_logging_impact.dir/table01_logging_impact.cc.o"
  "CMakeFiles/table01_logging_impact.dir/table01_logging_impact.cc.o.d"
  "table01_logging_impact"
  "table01_logging_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_logging_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
