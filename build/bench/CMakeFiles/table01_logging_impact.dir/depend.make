# Empty dependencies file for table01_logging_impact.
# This may be replaced when dependencies are built.
