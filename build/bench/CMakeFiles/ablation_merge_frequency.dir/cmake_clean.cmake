file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_frequency.dir/ablation_merge_frequency.cc.o"
  "CMakeFiles/ablation_merge_frequency.dir/ablation_merge_frequency.cc.o.d"
  "ablation_merge_frequency"
  "ablation_merge_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
