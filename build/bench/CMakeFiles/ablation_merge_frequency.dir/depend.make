# Empty dependencies file for ablation_merge_frequency.
# This may be replaced when dependencies are built.
