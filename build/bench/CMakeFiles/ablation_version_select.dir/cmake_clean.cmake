file(REMOVE_RECURSE
  "CMakeFiles/ablation_version_select.dir/ablation_version_select.cc.o"
  "CMakeFiles/ablation_version_select.dir/ablation_version_select.cc.o.d"
  "ablation_version_select"
  "ablation_version_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_version_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
