# Empty dependencies file for ablation_version_select.
# This may be replaced when dependencies are built.
