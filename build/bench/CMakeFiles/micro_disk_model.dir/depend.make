# Empty dependencies file for micro_disk_model.
# This may be replaced when dependencies are built.
