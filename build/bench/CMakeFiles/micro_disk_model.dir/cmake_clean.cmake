file(REMOVE_RECURSE
  "CMakeFiles/micro_disk_model.dir/micro_disk_model.cc.o"
  "CMakeFiles/micro_disk_model.dir/micro_disk_model.cc.o.d"
  "micro_disk_model"
  "micro_disk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_disk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
