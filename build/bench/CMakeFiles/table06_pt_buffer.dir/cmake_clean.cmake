file(REMOVE_RECURSE
  "CMakeFiles/table06_pt_buffer.dir/table06_pt_buffer.cc.o"
  "CMakeFiles/table06_pt_buffer.dir/table06_pt_buffer.cc.o.d"
  "table06_pt_buffer"
  "table06_pt_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_pt_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
