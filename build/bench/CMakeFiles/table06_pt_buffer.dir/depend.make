# Empty dependencies file for table06_pt_buffer.
# This may be replaced when dependencies are built.
