file(REMOVE_RECURSE
  "CMakeFiles/ablation_clustering_decay.dir/ablation_clustering_decay.cc.o"
  "CMakeFiles/ablation_clustering_decay.dir/ablation_clustering_decay.cc.o.d"
  "ablation_clustering_decay"
  "ablation_clustering_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clustering_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
