# Empty compiler generated dependencies file for ablation_clustering_decay.
# This may be replaced when dependencies are built.
