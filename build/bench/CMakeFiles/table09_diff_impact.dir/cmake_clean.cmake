file(REMOVE_RECURSE
  "CMakeFiles/table09_diff_impact.dir/table09_diff_impact.cc.o"
  "CMakeFiles/table09_diff_impact.dir/table09_diff_impact.cc.o.d"
  "table09_diff_impact"
  "table09_diff_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_diff_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
