# Empty dependencies file for table09_diff_impact.
# This may be replaced when dependencies are built.
