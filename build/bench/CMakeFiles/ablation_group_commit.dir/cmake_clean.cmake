file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_commit.dir/ablation_group_commit.cc.o"
  "CMakeFiles/ablation_group_commit.dir/ablation_group_commit.cc.o.d"
  "ablation_group_commit"
  "ablation_group_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
