# Empty dependencies file for table12_comparison.
# This may be replaced when dependencies are built.
