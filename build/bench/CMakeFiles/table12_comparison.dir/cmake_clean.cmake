file(REMOVE_RECURSE
  "CMakeFiles/table12_comparison.dir/table12_comparison.cc.o"
  "CMakeFiles/table12_comparison.dir/table12_comparison.cc.o.d"
  "table12_comparison"
  "table12_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
