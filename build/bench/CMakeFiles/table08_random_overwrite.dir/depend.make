# Empty dependencies file for table08_random_overwrite.
# This may be replaced when dependencies are built.
