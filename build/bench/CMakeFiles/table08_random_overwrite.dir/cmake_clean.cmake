file(REMOVE_RECURSE
  "CMakeFiles/table08_random_overwrite.dir/table08_random_overwrite.cc.o"
  "CMakeFiles/table08_random_overwrite.dir/table08_random_overwrite.cc.o.d"
  "table08_random_overwrite"
  "table08_random_overwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_random_overwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
