file(REMOVE_RECURSE
  "CMakeFiles/ablation_open_system.dir/ablation_open_system.cc.o"
  "CMakeFiles/ablation_open_system.dir/ablation_open_system.cc.o.d"
  "ablation_open_system"
  "ablation_open_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_open_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
