# Empty dependencies file for ablation_open_system.
# This may be replaced when dependencies are built.
