file(REMOVE_RECURSE
  "CMakeFiles/table05_shadow_utilization.dir/table05_shadow_utilization.cc.o"
  "CMakeFiles/table05_shadow_utilization.dir/table05_shadow_utilization.cc.o.d"
  "table05_shadow_utilization"
  "table05_shadow_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_shadow_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
