# Empty dependencies file for table05_shadow_utilization.
# This may be replaced when dependencies are built.
