
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table02_log_utilization.cc" "bench/CMakeFiles/table02_log_utilization.dir/table02_log_utilization.cc.o" "gcc" "bench/CMakeFiles/table02_log_utilization.dir/table02_log_utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dbmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/dbmr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dbmr_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dbmr_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbmr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbmr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
