file(REMOVE_RECURSE
  "CMakeFiles/table02_log_utilization.dir/table02_log_utilization.cc.o"
  "CMakeFiles/table02_log_utilization.dir/table02_log_utilization.cc.o.d"
  "table02_log_utilization"
  "table02_log_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_log_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
