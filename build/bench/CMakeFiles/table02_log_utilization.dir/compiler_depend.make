# Empty compiler generated dependencies file for table02_log_utilization.
# This may be replaced when dependencies are built.
