# Empty compiler generated dependencies file for table10_output_fraction.
# This may be replaced when dependencies are built.
