file(REMOVE_RECURSE
  "CMakeFiles/table10_output_fraction.dir/table10_output_fraction.cc.o"
  "CMakeFiles/table10_output_fraction.dir/table10_output_fraction.cc.o.d"
  "table10_output_fraction"
  "table10_output_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_output_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
