// The unified architecture registry (ROADMAP item 5).
//
// Every recovery architecture in the repository appears exactly once here,
// whether it ships as a discrete-event simulation model (a
// machine::RecoveryArch driven by machine::Machine), as a functional
// storage engine (a chaos::EngineFixture torn down by the crash-torture
// harness), or as both.  An ArchEntry carries everything a consumer needs:
//
//   - the stable architecture name ("logging", "shadow", ...),
//   - a config schema: one KnobSpec per tunable knob, with type, default,
//     and doc string — the same knobs the dbmr CLI exposes as flags,
//   - named sim variants (the 13-variant contract-test zoo) and engine
//     fixtures (the 6-fixture torture zoo), each a preset over the schema,
//   - the invariant checks the runtime auditor applies beyond the
//     universal set,
//   - the paper cross-reference and catalog prose.
//
// Architectures self-register from their own translation units
// (src/machine/sim_*.cc, src/chaos/engine_zoo.cc) via static registrars;
// the sim and engine halves of an entry merge by name, so a binary that
// links only one side still gets a coherent (partial) registry.  Because
// the registrars live in static archives, machine.cc anchors the sim
// objects (see machine/recovery_arch.h) and engine_zoo.cc anchors itself
// through EngineNames().
//
// Consumers enumerate the registry instead of keeping their own lists:
// grid cell expansion, the crash-sweeper zoo, auditor check metadata, the
// dbmr/dbmr_torture CLIs (--arch, --list-archs, typo suggestions), and the
// dbmr_catalog emitter that renders docs/ARCHITECTURES.md.  Enumeration
// order is fixed by explicit sim_order/engine_order fields — never by
// static-initialization order — so reports stay byte-identical.

#ifndef DBMR_CORE_ARCH_REGISTRY_H_
#define DBMR_CORE_ARCH_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chaos/engine_zoo.h"
#include "machine/recovery_arch.h"
#include "util/status.h"

namespace dbmr::core {

struct ArchEntry;

/// Value type of a configuration knob.
enum class KnobType { kBool, kInt, kDouble, kEnum };

/// "bool" | "int" | "double" | "enum".
const char* KnobTypeName(KnobType type);

/// One tunable knob of an architecture: the schema the CLI flags, variant
/// presets, and the catalog are all generated from.
struct KnobSpec {
  std::string key;            // flag-style name, e.g. "log-disks"
  KnobType type = KnobType::kBool;
  std::string default_value;  // textual; must parse under `type`
  std::vector<std::string> enum_values;  // kEnum only: allowed values
  std::string doc;            // one-line description
};

/// A named preset over an entry's knobs: a sim variant of the contract-test
/// zoo ("logging-qpmod") or a functional-engine fixture ("wal").
struct VariantSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> preset;  // knob -> value
  std::string doc;
};

/// A validated knob assignment for one architecture.  Set() rejects unknown
/// keys and type-invalid values; getters fall back to the schema default.
class ArchConfig {
 public:
  ArchConfig() = default;
  explicit ArchConfig(const ArchEntry* entry) : entry_(entry) {}

  /// Validates `key` against the entry's schema and `value` against the
  /// knob's type; InvalidArgument on unknown keys or malformed values.
  Status Set(const std::string& key, const std::string& value);

  /// Set() over every pair, stopping at the first error.
  Status Apply(const std::vector<std::pair<std::string, std::string>>& kv);

  bool GetBool(const std::string& key) const;
  int GetInt(const std::string& key) const;
  double GetDouble(const std::string& key) const;
  std::string GetString(const std::string& key) const;

  const ArchEntry* entry() const { return entry_; }
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  const std::string& Raw(const std::string& key) const;

  const ArchEntry* entry_ = nullptr;
  std::map<std::string, std::string> values_;
};

/// Builds a fresh simulation model from a validated config.
using SimArchFactory =
    std::function<std::unique_ptr<machine::RecoveryArch>(const ArchConfig&)>;

/// Builds a functional-engine fixture for torture sweeps.  `variant` is the
/// fixture name ("wal", "overwrite-noredo", ...); a null `snapshot` means a
/// fresh formatted fixture, non-null means a fork of the imaged state.
using EngineFixtureFactory = std::function<Result<chaos::EngineFixture>(
    const std::string& variant, const chaos::FixtureOptions& options,
    const chaos::FixtureSnapshot* snapshot)>;

/// One architecture.  sim_order / engine_order fix the enumeration
/// positions (-1 = that half is not registered in this binary).
struct ArchEntry {
  std::string name;
  int sim_order = -1;
  int engine_order = -1;

  std::string summary;      // one line for tables and --list-archs
  std::string description;  // catalog paragraph
  std::string paper_ref;    // e.g. "§3.1, §4.1.2"
  std::string trace_track;  // deterministic-trace track name, "" if none

  std::vector<KnobSpec> knobs;
  /// Knobs of the functional engine's runtime (kept apart from the sim
  /// schema `knobs`, which ArchConfig validates against): today the
  /// parallel-recovery controls ("recovery-jobs").
  std::vector<KnobSpec> engine_knobs;
  std::vector<VariantSpec> sim_variants;     // contract-test zoo presets
  std::vector<VariantSpec> engine_variants;  // torture fixture names
  std::vector<std::string> invariants;       // auditor checks beyond universal

  SimArchFactory make_sim;          // null if no sim model linked
  EngineFixtureFactory make_engine;  // null if no functional engine linked

  const KnobSpec* FindKnob(const std::string& key) const;
  const VariantSpec* FindSimVariant(const std::string& variant) const;
  const VariantSpec* FindEngineVariant(const std::string& variant) const;

  /// An ArchConfig seeded with `overrides` (validated against the schema).
  Result<ArchConfig> MakeConfig(
      const std::vector<std::pair<std::string, std::string>>& overrides = {})
      const;
};

/// One auditor invariant check, registered from machine/auditor.cc.
/// Universal checks apply to every architecture; the rest are listed per
/// entry in ArchEntry::invariants.
struct InvariantInfo {
  std::string name;
  std::string doc;
  bool universal = false;
};

/// The process-wide registry.  Populated during static initialization by
/// the registrars below; read-only afterwards (lookups are not locked).
class ArchRegistry {
 public:
  static ArchRegistry& Global();

  /// Registers the sim half of an entry (creating it, or merging into an
  /// engine-registered entry of the same name).  Double registration of
  /// the same half is a checked fatal error.
  ArchEntry& RegisterSim(ArchEntry entry);

  /// Catalog prose for an engine-only architecture (one with no sim model
  /// to supply it).  On entries with both halves the sim registration owns
  /// these fields; engine-provided info only fills in blanks.
  struct EngineArchInfo {
    std::string summary;
    std::string description;
    std::string paper_ref;
    std::vector<std::string> invariants;
  };

  /// Registers the engine half of an entry by name.
  ArchEntry& RegisterEngine(const std::string& name, int engine_order,
                            std::vector<VariantSpec> engine_variants,
                            EngineFixtureFactory make_engine,
                            std::vector<KnobSpec> engine_knobs = {},
                            EngineArchInfo info = {});

  /// Registers an auditor check for the catalog (machine/auditor.cc).
  void RegisterInvariant(const std::string& name, const std::string& doc,
                         bool universal);

  const ArchEntry* Find(const std::string& name) const;

  /// Resolves a --arch value: an entry name ("logging") or a sim-variant
  /// name ("logging-qpmod"); `variant` is null for plain entry names.
  struct SimResolution {
    const ArchEntry* entry = nullptr;
    const VariantSpec* variant = nullptr;
  };
  std::optional<SimResolution> ResolveSim(const std::string& name) const;

  /// Entry owning the named engine fixture ("wal" -> logging), or null.
  const ArchEntry* ResolveEngine(const std::string& fixture_name,
                                 const VariantSpec** variant = nullptr) const;

  /// Entries with a sim (resp. engine) half, in sim_order (engine_order).
  std::vector<const ArchEntry*> SimEntries() const;
  std::vector<const ArchEntry*> EngineEntries() const;

  /// All sim-variant names in enumeration order (the 13-variant zoo).
  std::vector<std::string> SimVariantNames() const;
  /// All engine-fixture names in enumeration order (the torture zoo).
  std::vector<std::string> EngineVariantNames() const;

  const std::vector<InvariantInfo>& Invariants() const { return invariants_; }
  const InvariantInfo* FindInvariant(const std::string& name) const;

  /// Nearest --arch candidates for a typo, by edit distance: entry and
  /// sim-variant names (SuggestSim) or engine-fixture names (SuggestEngine).
  std::vector<std::string> SuggestSim(const std::string& name,
                                      size_t max = 3) const;
  std::vector<std::string> SuggestEngine(const std::string& name,
                                         size_t max = 3) const;

 private:
  ArchEntry& FindOrCreate(const std::string& name);

  std::vector<std::unique_ptr<ArchEntry>> entries_;  // stable pointers
  std::vector<InvariantInfo> invariants_;
};

/// Resolves `name` (entry or sim-variant) plus knob `overrides` into a
/// grid-ready factory thunk: variant preset first, then overrides on top.
/// The thunk is safe to invoke concurrently from grid worker threads.
Result<std::function<std::unique_ptr<machine::RecoveryArch>()>>
MakeSimArchFactory(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& overrides = {});

/// Levenshtein distance (for unknown-name suggestions).
size_t EditDistance(const std::string& a, const std::string& b);

/// Up to `max` candidates nearest to `name`, closest first; candidates
/// further than half their own length away are dropped as noise.
std::vector<std::string> NearestNames(
    const std::string& name, const std::vector<std::string>& candidates,
    size_t max = 3);

/// docs/ARCHITECTURES.md: summary table, per-architecture sections with
/// knob/variant tables, and the invariant-check catalog.  Deterministic —
/// derived only from registry contents.
std::string RenderArchCatalogMarkdown();

/// Compact terminal rendering of the same catalog, for --list-archs.
std::string RenderArchCatalogText();

/// Static self-registration helpers (file-scope objects in sim_*.cc /
/// engine_zoo.cc).
struct SimArchRegistrar {
  explicit SimArchRegistrar(ArchEntry entry) {
    ArchRegistry::Global().RegisterSim(std::move(entry));
  }
};
struct EngineArchRegistrar {
  EngineArchRegistrar(const std::string& name, int engine_order,
                      std::vector<VariantSpec> engine_variants,
                      EngineFixtureFactory make_engine,
                      std::vector<KnobSpec> engine_knobs = {},
                      ArchRegistry::EngineArchInfo info = {}) {
    ArchRegistry::Global().RegisterEngine(
        name, engine_order, std::move(engine_variants),
        std::move(make_engine), std::move(engine_knobs), std::move(info));
  }
};

}  // namespace dbmr::core

#endif  // DBMR_CORE_ARCH_REGISTRY_H_
