#include "core/grid.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "core/arch_registry.h"
#include "core/thread_pool.h"

namespace dbmr::core {

GridSpec& GridSpec::AddConfigSweep(
    const std::string& arch_label, ArchFactory make_arch, int num_txns,
    std::vector<std::pair<std::string, std::string>> params) {
  for (Configuration c : kAllConfigurations) {
    GridCellSpec cell;
    cell.config_name = ConfigurationName(c);
    cell.arch_label = arch_label;
    cell.setup = StandardSetup(c, num_txns, base_seed);
    cell.make_arch = make_arch;
    cell.params = params;
    cells.push_back(std::move(cell));
  }
  return *this;
}

uint64_t DeriveCellSeed(uint64_t base_seed, uint64_t cell_index) {
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (cell_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

MetricsRegistry RunGrid(const GridSpec& spec, const GridRunOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const size_t num_cells = spec.cells.size();

  // Cells run on a core::ThreadPool — the caller's, or a local one sized
  // to the request (never larger than the number of cells).
  std::optional<ThreadPool> local;
  ThreadPool* pool = opts.pool;
  if (pool == nullptr) {
    size_t jobs = opts.jobs > 0
                      ? static_cast<size_t>(opts.jobs)
                      : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::max<size_t>(1, std::min(jobs, std::max<size_t>(1, num_cells)));
    local.emplace(static_cast<int>(jobs));
    pool = &*local;
  }
  const size_t jobs_used =
      std::max<size_t>(1, std::min(pool->size(), std::max<size_t>(1, num_cells)));

  // Results land in a pre-sized slot per cell, so the registry's order is
  // the spec's cell order no matter which worker ran which cell when.
  std::vector<CellMetrics> results(num_cells);
  const auto run_started = Clock::now();

  pool->ParallelFor(num_cells, [&spec, &results](size_t i) {
    const GridCellSpec& c = spec.cells[i];
    ExperimentSetup setup = c.setup;
    if (spec.seed_policy == SeedPolicy::kDerived) {
      const uint64_t seed = DeriveCellSeed(spec.base_seed, i);
      setup.machine.seed = seed;
      setup.workload.seed = seed;
    }
    const auto cell_started = Clock::now();
    machine::MachineResult r = RunWith(setup, c.make_arch());
    const std::chrono::duration<double, std::milli> wall =
        Clock::now() - cell_started;

    CellMetrics m;
    m.cell_index = static_cast<int>(i);
    m.config_name = c.config_name;
    m.arch_label = c.arch_label.empty() ? r.arch_name : c.arch_label;
    m.cell_name = c.name.empty() ? m.arch_label + "/" + m.config_name
                                 : c.name;
    m.seed = setup.machine.seed;
    m.num_txns = setup.workload.num_transactions;
    m.params = c.params;
    m.wall_ms = wall.count();
    m.result = std::move(r);
    results[i] = std::move(m);
  });

  const std::chrono::duration<double, std::milli> total =
      Clock::now() - run_started;
  MetricsRegistry registry;
  registry.SetRunInfo(spec.name, spec.base_seed,
                      static_cast<int>(jobs_used));
  registry.set_total_wall_ms(total.count());
  for (CellMetrics& m : results) registry.Add(std::move(m));
  return registry;
}

GridSpec StandardGrid(const std::string& grid_name,
                      const std::string& arch_label, ArchFactory make_arch,
                      int num_txns, uint64_t base_seed) {
  GridSpec spec;
  spec.name = grid_name;
  spec.base_seed = base_seed;
  spec.AddConfigSweep(arch_label, std::move(make_arch), num_txns);
  return spec;
}

Result<GridSpec> RegistryStandardGrid(
    const std::string& grid_name, const std::string& arch,
    const std::vector<std::pair<std::string, std::string>>& overrides,
    int num_txns, uint64_t base_seed) {
  Result<ArchFactory> factory = MakeSimArchFactory(arch, overrides);
  if (!factory.ok()) return factory.status();
  return StandardGrid(grid_name, arch, std::move(*factory), num_txns,
                      base_seed);
}

}  // namespace dbmr::core
