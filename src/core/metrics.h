// Structured metrics capture and export for experiment grids.
//
// Every grid cell records the full machine::MachineResult plus run
// metadata (configuration, architecture, seed, transaction count, sweep
// parameters, host wall time).  A MetricsRegistry holds the cells of one
// run in cell-index order and serializes them to JSON and CSV.
//
// Determinism contract: with `include_host_timing` disabled, the exported
// bytes depend only on the grid specification and seeds — never on thread
// count, scheduling, or host speed.  tests/grid_runner_test.cc holds the
// system to this.

#ifndef DBMR_CORE_METRICS_H_
#define DBMR_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "machine/config.h"
#include "util/json.h"
#include "util/status.h"

namespace dbmr::core {

/// Everything recorded about one executed grid cell.
struct CellMetrics {
  int cell_index = 0;
  /// Display name, e.g. "logging/Conventional-Random".
  std::string cell_name;
  std::string config_name;
  /// The grid's label for the architecture variant (may carry knob values,
  /// e.g. "shadow-buf50"); result.arch_name has the architecture's own name.
  std::string arch_label;
  uint64_t seed = 0;
  int num_txns = 0;
  /// Sweep-parameter values for this cell, in declaration order.
  std::vector<std::pair<std::string, std::string>> params;
  /// Host wall-clock time spent simulating this cell.  Excluded from
  /// deterministic exports.
  double wall_ms = 0.0;
  machine::MachineResult result;
};

struct MetricsExportOptions {
  /// Include host-dependent fields (per-cell wall_ms, run-level jobs and
  /// total_wall_ms).  Disable to get byte-identical exports regardless of
  /// thread count.
  bool include_host_timing = true;
  /// Spaces per JSON nesting level; < 0 renders compact.
  int json_indent = 2;
};

/// The cells of one grid run, in cell-index order.
class MetricsRegistry {
 public:
  void SetRunInfo(std::string grid_name, uint64_t base_seed, int jobs);
  void set_total_wall_ms(double ms) { total_wall_ms_ = ms; }

  void Add(CellMetrics cell) { cells_.push_back(std::move(cell)); }

  const std::vector<CellMetrics>& cells() const { return cells_; }
  size_t size() const { return cells_.size(); }
  const std::string& grid_name() const { return grid_name_; }
  uint64_t base_seed() const { return base_seed_; }

  /// The full run as a JSON document / text / CSV text.
  JsonValue ToJsonValue(const MetricsExportOptions& opts = {}) const;
  std::string ToJson(const MetricsExportOptions& opts = {}) const;
  std::string ToCsv(const MetricsExportOptions& opts = {}) const;

  Status WriteJsonFile(const std::string& path,
                       const MetricsExportOptions& opts = {}) const;
  Status WriteCsvFile(const std::string& path,
                      const MetricsExportOptions& opts = {}) const;

 private:
  std::string grid_name_ = "grid";
  uint64_t base_seed_ = 0;
  int jobs_ = 1;
  double total_wall_ms_ = 0.0;
  std::vector<CellMetrics> cells_;
};

}  // namespace dbmr::core

#endif  // DBMR_CORE_METRICS_H_
