#include "core/experiment.h"

#include "core/grid.h"
#include "machine/machine.h"

namespace dbmr::core {

const char* ConfigurationName(Configuration c) {
  switch (c) {
    case Configuration::kConvRandom:
      return "Conventional-Random";
    case Configuration::kParRandom:
      return "Parallel-Random";
    case Configuration::kConvSeq:
      return "Conventional-Sequential";
    case Configuration::kParSeq:
      return "Parallel-Sequential";
  }
  return "unknown";
}

ExperimentSetup StandardSetup(Configuration c, int num_txns, uint64_t seed) {
  ExperimentSetup s;
  s.machine.seed = seed;
  switch (c) {
    case Configuration::kConvRandom:
    case Configuration::kConvSeq:
      s.machine.disk_kind = hw::DiskKind::kConventional;
      break;
    case Configuration::kParRandom:
    case Configuration::kParSeq:
      s.machine.disk_kind = hw::DiskKind::kParallelAccess;
      break;
  }
  s.workload.kind = (c == Configuration::kConvRandom ||
                     c == Configuration::kParRandom)
                        ? workload::ReferenceKind::kRandom
                        : workload::ReferenceKind::kSequential;
  s.workload.num_transactions = num_txns;
  s.workload.db_pages = s.machine.db_pages;
  s.workload.seed = seed;
  return s;
}

ExperimentSetup Table3Setup(int num_txns, uint64_t seed) {
  ExperimentSetup s = StandardSetup(Configuration::kParSeq, num_txns, seed);
  s.machine.num_query_processors = 75;
  s.machine.cache_frames = 150;
  return s;
}

machine::MachineResult RunWith(
    const ExperimentSetup& setup,
    std::unique_ptr<machine::RecoveryArch> arch) {
  // Stream the workload: admission pulls specs one at a time, so memory
  // stays O(MPL) even at millions of transactions.
  machine::Machine m(setup.machine,
                     workload::MakeGeneratorSource(setup.workload),
                     std::move(arch));
  return m.Run();
}

std::vector<machine::MachineResult> RunAllConfigs(
    const std::function<std::unique_ptr<machine::RecoveryArch>()>& make_arch,
    int num_txns, uint64_t seed, int jobs) {
  GridSpec spec;
  spec.base_seed = seed;
  spec.seed_policy = SeedPolicy::kFromSetup;  // all cells at `seed`, as ever
  spec.AddConfigSweep("all-configs", make_arch, num_txns);
  MetricsRegistry run = RunGrid(spec, GridRunOptions{jobs});
  std::vector<machine::MachineResult> results;
  results.reserve(run.size());
  for (const CellMetrics& cell : run.cells()) results.push_back(cell.result);
  return results;
}

}  // namespace dbmr::core
