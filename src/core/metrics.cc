#include "core/metrics.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/csv.h"
#include "util/str.h"

namespace dbmr::core {
namespace {

JsonValue CompletionToJson(const RunningStat& s) {
  JsonValue o = JsonValue::Object();
  o["count"] = JsonValue(s.count());
  o["mean"] = JsonValue(s.mean());
  o["min"] = JsonValue(s.min());
  o["max"] = JsonValue(s.max());
  o["stddev"] = JsonValue(s.stddev());
  return o;
}

JsonValue ResultToJson(const machine::MachineResult& r) {
  JsonValue m = JsonValue::Object();
  m["total_time_ms"] = JsonValue(r.total_time_ms);
  m["total_pages"] = JsonValue(r.total_pages);
  m["exec_time_per_page_ms"] = JsonValue(r.exec_time_per_page_ms);
  m["completion_ms"] = CompletionToJson(r.completion_ms);
  m["pages_read"] = JsonValue(r.pages_read);
  m["pages_written"] = JsonValue(r.pages_written);
  JsonValue utils = JsonValue::Array();
  for (double u : r.data_disk_util) utils.Append(JsonValue(u));
  m["data_disk_util"] = std::move(utils);
  JsonValue accesses = JsonValue::Array();
  for (uint64_t a : r.data_disk_accesses) accesses.Append(JsonValue(a));
  m["data_disk_accesses"] = std::move(accesses);
  m["qp_util"] = JsonValue(r.qp_util);
  m["avg_blocked_pages"] = JsonValue(r.avg_blocked_pages);
  m["deadlock_restarts"] = JsonValue(r.deadlock_restarts);
  JsonValue extra = JsonValue::Object();
  for (const auto& [k, v] : r.extra) extra[k] = JsonValue(v);
  m["extra"] = std::move(extra);
  return m;
}

Status WriteStringToFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != text.size() || !close_ok) {
    return Status::Internal(StrFormat("short write to %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace

void MetricsRegistry::SetRunInfo(std::string grid_name, uint64_t base_seed,
                                 int jobs) {
  grid_name_ = std::move(grid_name);
  base_seed_ = base_seed;
  jobs_ = jobs;
}

JsonValue MetricsRegistry::ToJsonValue(
    const MetricsExportOptions& opts) const {
  JsonValue root = JsonValue::Object();
  root["grid"] = JsonValue(grid_name_);
  root["base_seed"] = JsonValue(base_seed_);
  root["num_cells"] = JsonValue(static_cast<int64_t>(cells_.size()));
  if (opts.include_host_timing) {
    root["jobs"] = JsonValue(static_cast<int64_t>(jobs_));
    root["total_wall_ms"] = JsonValue(total_wall_ms_);
  }
  JsonValue cells = JsonValue::Array();
  for (const CellMetrics& c : cells_) {
    JsonValue cell = JsonValue::Object();
    cell["index"] = JsonValue(static_cast<int64_t>(c.cell_index));
    cell["name"] = JsonValue(c.cell_name);
    cell["config"] = JsonValue(c.config_name);
    cell["arch"] = JsonValue(c.arch_label);
    cell["seed"] = JsonValue(c.seed);
    cell["num_txns"] = JsonValue(static_cast<int64_t>(c.num_txns));
    JsonValue params = JsonValue::Object();
    for (const auto& [k, v] : c.params) params[k] = JsonValue(v);
    cell["params"] = std::move(params);
    cell["metrics"] = ResultToJson(c.result);
    if (opts.include_host_timing) cell["wall_ms"] = JsonValue(c.wall_ms);
    cells.Append(std::move(cell));
  }
  root["cells"] = std::move(cells);
  return root;
}

std::string MetricsRegistry::ToJson(const MetricsExportOptions& opts) const {
  std::string out = ToJsonValue(opts).Dump(opts.json_indent);
  out += '\n';
  return out;
}

std::string MetricsRegistry::ToCsv(const MetricsExportOptions& opts) const {
  // Column layout: fixed metadata + core metrics, then per-disk columns and
  // the sorted union of architecture extras (blank where a cell lacks the
  // key), then optional host timing.
  size_t max_disks = 0;
  std::set<std::string> extra_keys;
  for (const CellMetrics& c : cells_) {
    max_disks = std::max(max_disks, c.result.data_disk_util.size());
    for (const auto& [k, v] : c.result.extra) extra_keys.insert(k);
  }

  std::vector<std::string> header = {
      "index", "name", "config", "arch", "seed", "num_txns", "params",
      "total_time_ms", "total_pages", "exec_time_per_page_ms",
      "completion_mean_ms", "completion_min_ms", "completion_max_ms",
      "completion_stddev_ms", "pages_read", "pages_written", "qp_util",
      "avg_blocked_pages", "deadlock_restarts"};
  for (size_t d = 0; d < max_disks; ++d) {
    header.push_back(StrFormat("data_disk_util_%zu", d));
    header.push_back(StrFormat("data_disk_accesses_%zu", d));
  }
  for (const std::string& k : extra_keys) header.push_back(k);
  if (opts.include_host_timing) header.push_back("wall_ms");

  CsvWriter w;
  w.SetHeader(header);
  for (const CellMetrics& c : cells_) {
    const machine::MachineResult& r = c.result;
    std::vector<std::string> param_strs;
    for (const auto& [k, v] : c.params) param_strs.push_back(k + "=" + v);
    std::vector<std::string> row = {
        std::to_string(c.cell_index),
        c.cell_name,
        c.config_name,
        c.arch_label,
        std::to_string(c.seed),
        std::to_string(c.num_txns),
        Join(param_strs, ";"),
        FormatDoubleRoundTrip(r.total_time_ms),
        std::to_string(r.total_pages),
        FormatDoubleRoundTrip(r.exec_time_per_page_ms),
        FormatDoubleRoundTrip(r.completion_ms.mean()),
        FormatDoubleRoundTrip(r.completion_ms.min()),
        FormatDoubleRoundTrip(r.completion_ms.max()),
        FormatDoubleRoundTrip(r.completion_ms.stddev()),
        std::to_string(r.pages_read),
        std::to_string(r.pages_written),
        FormatDoubleRoundTrip(r.qp_util),
        FormatDoubleRoundTrip(r.avg_blocked_pages),
        std::to_string(r.deadlock_restarts)};
    for (size_t d = 0; d < max_disks; ++d) {
      if (d < r.data_disk_util.size()) {
        row.push_back(FormatDoubleRoundTrip(r.data_disk_util[d]));
        row.push_back(std::to_string(r.data_disk_accesses[d]));
      } else {
        row.push_back("");
        row.push_back("");
      }
    }
    for (const std::string& k : extra_keys) {
      auto it = r.extra.find(k);
      row.push_back(it == r.extra.end()
                        ? ""
                        : FormatDoubleRoundTrip(it->second));
    }
    if (opts.include_host_timing) {
      row.push_back(FormatDoubleRoundTrip(c.wall_ms));
    }
    w.AddRow(std::move(row));
  }
  return w.ToString();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path,
                                      const MetricsExportOptions& opts) const {
  return WriteStringToFile(path, ToJson(opts));
}

Status MetricsRegistry::WriteCsvFile(const std::string& path,
                                     const MetricsExportOptions& opts) const {
  return WriteStringToFile(path, ToCsv(opts));
}

}  // namespace dbmr::core
