#include "core/arch_registry.h"

#include <algorithm>
#include <cstdlib>

#include "util/str.h"

namespace dbmr::core {

const char* KnobTypeName(KnobType type) {
  switch (type) {
    case KnobType::kBool: return "bool";
    case KnobType::kInt: return "int";
    case KnobType::kDouble: return "double";
    case KnobType::kEnum: return "enum";
  }
  return "?";
}

namespace {

bool ParseBool(const std::string& v, bool* out) {
  if (v == "1" || v == "true" || v == "on") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseInt(const std::string& v, int* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool ParseDouble(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

std::vector<std::string> KnobKeys(const ArchEntry& entry) {
  std::vector<std::string> keys;
  keys.reserve(entry.knobs.size());
  for (const KnobSpec& k : entry.knobs) keys.push_back(k.key);
  return keys;
}

}  // namespace

// ---------------------------------------------------------------- ArchConfig

Status ArchConfig::Set(const std::string& key, const std::string& value) {
  DBMR_CHECK(entry_ != nullptr);
  const KnobSpec* knob = entry_->FindKnob(key);
  if (knob == nullptr) {
    std::string known = Join(KnobKeys(*entry_), ", ");
    if (known.empty()) known = "none";
    return Status::InvalidArgument(
        StrFormat("unknown knob \"%s\" for architecture \"%s\" (knobs: %s)",
                  key.c_str(), entry_->name.c_str(), known.c_str()));
  }
  switch (knob->type) {
    case KnobType::kBool: {
      bool b;
      if (!ParseBool(value, &b)) {
        return Status::InvalidArgument(
            StrFormat("knob \"%s\": \"%s\" is not a bool (use 0/1)",
                      key.c_str(), value.c_str()));
      }
      break;
    }
    case KnobType::kInt: {
      int i;
      if (!ParseInt(value, &i)) {
        return Status::InvalidArgument(
            StrFormat("knob \"%s\": \"%s\" is not an integer", key.c_str(),
                      value.c_str()));
      }
      break;
    }
    case KnobType::kDouble: {
      double d;
      if (!ParseDouble(value, &d)) {
        return Status::InvalidArgument(
            StrFormat("knob \"%s\": \"%s\" is not a number", key.c_str(),
                      value.c_str()));
      }
      break;
    }
    case KnobType::kEnum: {
      if (std::find(knob->enum_values.begin(), knob->enum_values.end(),
                    value) == knob->enum_values.end()) {
        return Status::InvalidArgument(StrFormat(
            "knob \"%s\": \"%s\" is not one of {%s}", key.c_str(),
            value.c_str(), Join(knob->enum_values, ", ").c_str()));
      }
      break;
    }
  }
  values_[key] = value;
  return Status::OK();
}

Status ArchConfig::Apply(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  for (const auto& [key, value] : kv) DBMR_RETURN_IF_ERROR(Set(key, value));
  return Status::OK();
}

const std::string& ArchConfig::Raw(const std::string& key) const {
  DBMR_CHECK(entry_ != nullptr);
  auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  const KnobSpec* knob = entry_->FindKnob(key);
  DBMR_CHECK(knob != nullptr);  // getters only for schema knobs
  return knob->default_value;
}

bool ArchConfig::GetBool(const std::string& key) const {
  bool b = false;
  DBMR_CHECK(ParseBool(Raw(key), &b));
  return b;
}

int ArchConfig::GetInt(const std::string& key) const {
  int i = 0;
  DBMR_CHECK(ParseInt(Raw(key), &i));
  return i;
}

double ArchConfig::GetDouble(const std::string& key) const {
  double d = 0.0;
  DBMR_CHECK(ParseDouble(Raw(key), &d));
  return d;
}

std::string ArchConfig::GetString(const std::string& key) const {
  return Raw(key);
}

// ----------------------------------------------------------------- ArchEntry

const KnobSpec* ArchEntry::FindKnob(const std::string& key) const {
  for (const KnobSpec& k : knobs) {
    if (k.key == key) return &k;
  }
  return nullptr;
}

const VariantSpec* ArchEntry::FindSimVariant(
    const std::string& variant) const {
  for (const VariantSpec& v : sim_variants) {
    if (v.name == variant) return &v;
  }
  return nullptr;
}

const VariantSpec* ArchEntry::FindEngineVariant(
    const std::string& variant) const {
  for (const VariantSpec& v : engine_variants) {
    if (v.name == variant) return &v;
  }
  return nullptr;
}

Result<ArchConfig> ArchEntry::MakeConfig(
    const std::vector<std::pair<std::string, std::string>>& overrides) const {
  ArchConfig config(this);
  Status st = config.Apply(overrides);
  if (!st.ok()) return st;
  return config;
}

// -------------------------------------------------------------- ArchRegistry

ArchRegistry& ArchRegistry::Global() {
  static ArchRegistry* registry = new ArchRegistry();  // never destroyed
  return *registry;
}

ArchEntry& ArchRegistry::FindOrCreate(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return *e;
  }
  entries_.push_back(std::make_unique<ArchEntry>());
  entries_.back()->name = name;
  return *entries_.back();
}

ArchEntry& ArchRegistry::RegisterSim(ArchEntry entry) {
  DBMR_CHECK(!entry.name.empty());
  DBMR_CHECK(entry.sim_order >= 0);
  ArchEntry& e = FindOrCreate(entry.name);
  DBMR_CHECK(e.sim_order < 0);  // one sim registration per architecture
  e.sim_order = entry.sim_order;
  e.summary = std::move(entry.summary);
  e.description = std::move(entry.description);
  e.paper_ref = std::move(entry.paper_ref);
  e.trace_track = std::move(entry.trace_track);
  e.knobs = std::move(entry.knobs);
  e.sim_variants = std::move(entry.sim_variants);
  e.invariants = std::move(entry.invariants);
  e.make_sim = std::move(entry.make_sim);
  return e;
}

ArchEntry& ArchRegistry::RegisterEngine(
    const std::string& name, int engine_order,
    std::vector<VariantSpec> engine_variants,
    EngineFixtureFactory make_engine, std::vector<KnobSpec> engine_knobs,
    EngineArchInfo info) {
  DBMR_CHECK(!name.empty());
  DBMR_CHECK(engine_order >= 0);
  ArchEntry& e = FindOrCreate(name);
  DBMR_CHECK(e.engine_order < 0);  // one engine registration per architecture
  e.engine_order = engine_order;
  e.engine_variants = std::move(engine_variants);
  e.make_engine = std::move(make_engine);
  e.engine_knobs = std::move(engine_knobs);
  // Only blanks: a sim half registered in either order owns the prose
  // (RegisterSim overwrites unconditionally, and here we never clobber).
  if (e.summary.empty()) e.summary = std::move(info.summary);
  if (e.description.empty()) e.description = std::move(info.description);
  if (e.paper_ref.empty()) e.paper_ref = std::move(info.paper_ref);
  if (e.invariants.empty()) e.invariants = std::move(info.invariants);
  return e;
}

void ArchRegistry::RegisterInvariant(const std::string& name,
                                     const std::string& doc, bool universal) {
  DBMR_CHECK(FindInvariant(name) == nullptr);
  invariants_.push_back({name, doc, universal});
}

const ArchEntry* ArchRegistry::Find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

std::optional<ArchRegistry::SimResolution> ArchRegistry::ResolveSim(
    const std::string& name) const {
  if (const ArchEntry* e = Find(name)) {
    if (e->sim_order >= 0) return SimResolution{e, nullptr};
  }
  for (const ArchEntry* e : SimEntries()) {
    if (const VariantSpec* v = e->FindSimVariant(name)) {
      return SimResolution{e, v};
    }
  }
  return std::nullopt;
}

const ArchEntry* ArchRegistry::ResolveEngine(
    const std::string& fixture_name, const VariantSpec** variant) const {
  for (const ArchEntry* e : EngineEntries()) {
    if (const VariantSpec* v = e->FindEngineVariant(fixture_name)) {
      if (variant != nullptr) *variant = v;
      return e;
    }
  }
  return nullptr;
}

std::vector<const ArchEntry*> ArchRegistry::SimEntries() const {
  std::vector<const ArchEntry*> out;
  for (const auto& e : entries_) {
    if (e->sim_order >= 0) out.push_back(e.get());
  }
  std::sort(out.begin(), out.end(), [](const ArchEntry* a, const ArchEntry* b) {
    return a->sim_order < b->sim_order;
  });
  return out;
}

std::vector<const ArchEntry*> ArchRegistry::EngineEntries() const {
  std::vector<const ArchEntry*> out;
  for (const auto& e : entries_) {
    if (e->engine_order >= 0) out.push_back(e.get());
  }
  std::sort(out.begin(), out.end(), [](const ArchEntry* a, const ArchEntry* b) {
    return a->engine_order < b->engine_order;
  });
  return out;
}

std::vector<std::string> ArchRegistry::SimVariantNames() const {
  std::vector<std::string> out;
  for (const ArchEntry* e : SimEntries()) {
    for (const VariantSpec& v : e->sim_variants) out.push_back(v.name);
  }
  return out;
}

std::vector<std::string> ArchRegistry::EngineVariantNames() const {
  std::vector<std::string> out;
  for (const ArchEntry* e : EngineEntries()) {
    for (const VariantSpec& v : e->engine_variants) out.push_back(v.name);
  }
  return out;
}

const InvariantInfo* ArchRegistry::FindInvariant(
    const std::string& name) const {
  for (const InvariantInfo& inv : invariants_) {
    if (inv.name == name) return &inv;
  }
  return nullptr;
}

std::vector<std::string> ArchRegistry::SuggestSim(const std::string& name,
                                                  size_t max) const {
  std::vector<std::string> candidates;
  for (const ArchEntry* e : SimEntries()) candidates.push_back(e->name);
  for (const std::string& v : SimVariantNames()) {
    if (std::find(candidates.begin(), candidates.end(), v) ==
        candidates.end()) {
      candidates.push_back(v);
    }
  }
  return NearestNames(name, candidates, max);
}

std::vector<std::string> ArchRegistry::SuggestEngine(const std::string& name,
                                                     size_t max) const {
  return NearestNames(name, EngineVariantNames(), max);
}

// ------------------------------------------------------------------ helpers

Result<std::function<std::unique_ptr<machine::RecoveryArch>()>>
MakeSimArchFactory(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  const auto resolved = ArchRegistry::Global().ResolveSim(name);
  if (!resolved.has_value()) {
    return Status::NotFound(
        StrFormat("unknown architecture \"%s\"", name.c_str()));
  }
  const ArchEntry* entry = resolved->entry;
  if (!entry->make_sim) {
    return Status::FailedPrecondition(StrFormat(
        "architecture \"%s\" has no simulation model registered in this "
        "binary",
        entry->name.c_str()));
  }
  ArchConfig config(entry);
  if (resolved->variant != nullptr) {
    Status st = config.Apply(resolved->variant->preset);
    if (!st.ok()) return st;
  }
  Status st = config.Apply(overrides);
  if (!st.ok()) return st;
  // The thunk only reads the captured config and calls a stateless factory,
  // so concurrent grid workers may invoke it freely.
  return std::function<std::unique_ptr<machine::RecoveryArch>()>(
      [entry, config] { return entry->make_sim(config); });
}

size_t EditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      const size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[m];
}

std::vector<std::string> NearestNames(const std::string& name,
                                      const std::vector<std::string>& candidates,
                                      size_t max) {
  std::vector<std::pair<size_t, std::string>> scored;
  for (const std::string& c : candidates) {
    const size_t d = EditDistance(name, c);
    if (d <= std::max<size_t>(2, c.size() / 2)) scored.emplace_back(d, c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::string> out;
  for (const auto& [d, c] : scored) {
    if (out.size() >= max) break;
    out.push_back(c);
  }
  return out;
}

// ---------------------------------------------------------------- rendering

namespace {

std::string KnobDefaultLabel(const KnobSpec& k) {
  if (k.type == KnobType::kEnum) {
    return k.default_value + " ∈ {" + Join(k.enum_values, ", ") + "}";
  }
  return k.default_value;
}

std::string PresetLabel(const VariantSpec& v) {
  if (v.preset.empty()) return "defaults";
  std::vector<std::string> parts;
  for (const auto& [key, value] : v.preset) parts.push_back(key + "=" + value);
  return Join(parts, ", ");
}

std::string VariantNameList(const std::vector<VariantSpec>& variants) {
  std::vector<std::string> names;
  for (const VariantSpec& v : variants) names.push_back("`" + v.name + "`");
  return names.empty() ? "—" : Join(names, ", ");
}

}  // namespace

std::string RenderArchCatalogMarkdown() {
  const ArchRegistry& reg = ArchRegistry::Global();
  // Sim-registered entries first (historical order), then engine-only
  // architectures appended in engine order.
  std::vector<const ArchEntry*> sims = reg.SimEntries();
  for (const ArchEntry* e : reg.EngineEntries()) {
    if (e->sim_order < 0) sims.push_back(e);
  }

  std::string md;
  md += "# Architecture catalog\n";
  md += "\n";
  md +=
      "<!-- Generated by tools/dbmr_catalog from core::ArchRegistry.\n"
      "     Do not edit by hand: regenerate with\n"
      "         ./build/tools/dbmr_catalog --out=docs/ARCHITECTURES.md\n"
      "     CI fails when this file drifts from the registry. -->\n";
  md += "\n";
  md +=
      "Every recovery architecture registers itself once in "
      "`core::ArchRegistry`\n"
      "(src/core/arch_registry.h): the discrete-event simulation model "
      "driven by\n"
      "`machine::Machine`, the functional storage engine torn down by the "
      "crash-torture\n"
      "harness, or both.  Grids, sweeps, the auditor, the CLIs, and this "
      "file all\n"
      "enumerate that registry — there is no other list to keep in sync.\n";
  md += "\n";
  md += "## Summary\n";
  md += "\n";
  md +=
      "| Architecture | Paper | Sim variants | Engine fixtures | Extra "
      "invariants |\n";
  md += "|---|---|---|---|---|\n";
  for (const ArchEntry* e : sims) {
    std::vector<std::string> inv;
    for (const std::string& i : e->invariants) inv.push_back("`" + i + "`");
    md += StrFormat(
        "| [`%s`](#%s) | %s | %s | %s | %s |\n", e->name.c_str(),
        e->name.c_str(), e->paper_ref.c_str(),
        VariantNameList(e->sim_variants).c_str(),
        VariantNameList(e->engine_variants).c_str(),
        inv.empty() ? "—" : Join(inv, ", ").c_str());
  }
  md += "\n";
  md += StrFormat(
      "%zu simulation variants and %zu functional-engine fixtures in "
      "total.\n",
      reg.SimVariantNames().size(), reg.EngineVariantNames().size());

  for (const ArchEntry* e : sims) {
    md += "\n";
    md += "## " + e->name + "\n";
    md += "\n";
    md += "**Paper:** " + e->paper_ref + " — " + e->summary + "\n";
    md += "\n";
    md += e->description + "\n";
    if (!e->knobs.empty()) {
      md += "\n";
      md += "**Configuration knobs** (CLI flags of `dbmr --arch=" + e->name +
            "`):\n";
      md += "\n";
      md += "| Knob | Type | Default | Description |\n";
      md += "|---|---|---|---|\n";
      for (const KnobSpec& k : e->knobs) {
        md += StrFormat("| `--%s` | %s | `%s` | %s |\n", k.key.c_str(),
                        KnobTypeName(k.type), KnobDefaultLabel(k).c_str(),
                        k.doc.c_str());
      }
    }
    if (!e->sim_variants.empty()) {
      md += "\n";
      md += "**Simulation variants** (the contract-test zoo):\n";
      md += "\n";
      md += "| Variant | Preset | Description |\n";
      md += "|---|---|---|\n";
      for (const VariantSpec& v : e->sim_variants) {
        md += StrFormat("| `%s` | %s | %s |\n", v.name.c_str(),
                        PresetLabel(v).c_str(), v.doc.c_str());
      }
    }
    if (!e->engine_variants.empty()) {
      md += "\n";
      md += "**Functional-engine fixtures** (the crash-torture zoo):\n";
      md += "\n";
      md += "| Fixture | Description |\n";
      md += "|---|---|\n";
      for (const VariantSpec& v : e->engine_variants) {
        md += StrFormat("| `%s` | %s |\n", v.name.c_str(), v.doc.c_str());
      }
    }
    if (!e->engine_knobs.empty()) {
      md += "\n";
      md += "**Engine runtime knobs** (flags of `dbmr_torture`):\n";
      md += "\n";
      md += "| Knob | Type | Default | Description |\n";
      md += "|---|---|---|---|\n";
      for (const KnobSpec& k : e->engine_knobs) {
        md += StrFormat("| `--%s` | %s | `%s` | %s |\n", k.key.c_str(),
                        KnobTypeName(k.type), KnobDefaultLabel(k).c_str(),
                        k.doc.c_str());
      }
    }
    if (!e->trace_track.empty()) {
      md += "\n";
      md += "**Trace track:** `" + e->trace_track +
            "` (in addition to the machine's `machine` track).\n";
    }
    md += "\n";
    if (e->invariants.empty()) {
      md += "**Invariants audited:** the universal checks only.\n";
    } else {
      std::vector<std::string> inv;
      for (const std::string& i : e->invariants) inv.push_back("`" + i + "`");
      md += "**Invariants audited:** the universal checks plus " +
            Join(inv, ", ") + ".\n";
    }
  }

  md += "\n";
  md += "## Invariant checks\n";
  md += "\n";
  md +=
      "The runtime auditor (src/machine/auditor.h) verifies these named "
      "checks;\n"
      "`Scope: universal` checks apply to every architecture, the rest only "
      "where an\n"
      "architecture declares them above.\n";
  md += "\n";
  md += "| Check | Scope | Description |\n";
  md += "|---|---|---|\n";
  for (const InvariantInfo& inv : reg.Invariants()) {
    md += StrFormat("| `%s` | %s | %s |\n", inv.name.c_str(),
                    inv.universal ? "universal" : "per-arch",
                    inv.doc.c_str());
  }
  return md;
}

std::string RenderArchCatalogText() {
  const ArchRegistry& reg = ArchRegistry::Global();
  std::string out;
  out += "recovery architectures (core::ArchRegistry):\n";
  for (const ArchEntry* e : reg.SimEntries()) {
    out += StrFormat("\n  %-15s %s  [%s]\n", e->name.c_str(),
                     e->summary.c_str(), e->paper_ref.c_str());
    for (const KnobSpec& k : e->knobs) {
      out += StrFormat("    --%-18s %-6s default %-10s %s\n", k.key.c_str(),
                       KnobTypeName(k.type), KnobDefaultLabel(k).c_str(),
                       k.doc.c_str());
    }
    std::vector<std::string> sim_names;
    for (const VariantSpec& v : e->sim_variants) sim_names.push_back(v.name);
    if (!sim_names.empty()) {
      out += "    sim variants: " + Join(sim_names, ", ") + "\n";
    }
    std::vector<std::string> eng_names;
    for (const VariantSpec& v : e->engine_variants) {
      eng_names.push_back(v.name);
    }
    if (!eng_names.empty()) {
      out += "    engine fixtures: " + Join(eng_names, ", ") + "\n";
    }
    for (const KnobSpec& k : e->engine_knobs) {
      out += StrFormat("    --%-18s %-6s default %-10s %s (engine)\n",
                       k.key.c_str(), KnobTypeName(k.type),
                       KnobDefaultLabel(k).c_str(), k.doc.c_str());
    }
    if (!e->invariants.empty()) {
      out += "    extra invariants: " + Join(e->invariants, ", ") + "\n";
    }
  }
  // Engine-only entries (no sim model registered).
  for (const ArchEntry* e : reg.EngineEntries()) {
    if (e->sim_order >= 0) continue;
    out += StrFormat("\n  %-15s %s  [%s] (functional engine only)\n",
                     e->name.c_str(), e->summary.c_str(),
                     e->paper_ref.c_str());
    std::vector<std::string> eng_names;
    for (const VariantSpec& v : e->engine_variants) {
      eng_names.push_back(v.name);
    }
    out += "    engine fixtures: " + Join(eng_names, ", ") + "\n";
    for (const KnobSpec& k : e->engine_knobs) {
      out += StrFormat("    --%-18s %-6s default %-10s %s (engine)\n",
                       k.key.c_str(), KnobTypeName(k.type),
                       KnobDefaultLabel(k).c_str(), k.doc.c_str());
    }
    if (!e->invariants.empty()) {
      out += "    extra invariants: " + Join(e->invariants, ", ") + "\n";
    }
  }
  return out;
}

}  // namespace dbmr::core
