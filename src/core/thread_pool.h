// Reusable fixed-size worker pool for index-parallel work.
//
// Extracted from the grid runner so every embarrassingly-parallel loop in
// the repo (grid cells, crash-sweep trials, future batch jobs) shares one
// pool abstraction instead of spawning ad-hoc std::threads.  The model is
// deliberately minimal: ParallelFor(n, fn) runs fn(0) .. fn(n-1) across
// the pool and returns when every index has finished.  Indices are handed
// out through one atomic counter, so scheduling order is arbitrary —
// determinism is the caller's job and is achieved the usual way: write
// results into an index-addressed slot and merge in index order.
//
// The calling thread participates in the work, so ThreadPool(j) gives
// exactly j concurrent executors (j-1 workers + the caller), and
// ThreadPool(1) spawns no threads at all: ParallelFor degrades to a plain
// sequential loop on the caller, which keeps jobs=1 runs byte-identical
// to never having had a pool.
//
// ParallelFor is not reentrant: fn must not call ParallelFor on the same
// pool.  Distinct pools nest fine.

#ifndef DBMR_CORE_THREAD_POOL_H_
#define DBMR_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbmr::core {

class ThreadPool {
 public:
  /// Creates a pool with `threads` concurrent executors (including the
  /// caller); 0 means one per hardware thread.  Requests beyond the
  /// hardware thread count are capped to it — oversubscribing a CPU-bound
  /// loop only adds context switches, never throughput.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrent executors available to ParallelFor (>= 1).
  size_t size() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n), blocking until all have returned.
  /// fn is invoked concurrently from up to size() threads.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Drains indices of the current job; returns when none are left.
  void DrainIndices();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals a new job (or shutdown)
  std::condition_variable done_cv_;   // signals workers leaving a job
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
  size_t workers_in_job_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dbmr::core

#endif  // DBMR_CORE_THREAD_POOL_H_
