// Experiment harness: the paper's standard configurations and helpers to
// run a recovery architecture against them.
//
// This is the main entry point of the library for reproducing the paper:
//
//   auto setup = core::StandardSetup(core::Configuration::kConvRandom);
//   auto result = core::RunWith(setup, std::make_unique<machine::SimLogging>());
//   printf("%.1f ms/page\n", result.exec_time_per_page_ms);

#ifndef DBMR_CORE_EXPERIMENT_H_
#define DBMR_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/config.h"
#include "machine/recovery_arch.h"
#include "workload/workload.h"

namespace dbmr::core {

/// The four experimental configurations of §4.
enum class Configuration {
  kConvRandom,
  kParRandom,
  kConvSeq,
  kParSeq,
};

/// All four, in the paper's table order.
inline constexpr Configuration kAllConfigurations[] = {
    Configuration::kConvRandom,
    Configuration::kParRandom,
    Configuration::kConvSeq,
    Configuration::kParSeq,
};

/// Paper-style display name ("Conventional-Random", ...).
const char* ConfigurationName(Configuration c);

/// Machine + workload parameters for one experiment.
struct ExperimentSetup {
  machine::MachineConfig machine;
  workload::WorkloadOptions workload;
};

/// The paper's baseline machine (25 query processors, 100 cache frames,
/// 2 data disks) with the given configuration's disk kind and reference
/// pattern.  `num_txns` scales simulation length (more = tighter
/// confidence, slower); results stabilize around 60.
ExperimentSetup StandardSetup(Configuration c, int num_txns = 60,
                              uint64_t seed = 7);

/// The scaled-up machine of Table 3: 75 query processors, 150 cache
/// frames, 2 parallel-access data disks, sequential transactions.
ExperimentSetup Table3Setup(int num_txns = 60, uint64_t seed = 7);

/// Builds the machine, runs the workload, returns the metrics.
machine::MachineResult RunWith(
    const ExperimentSetup& setup,
    std::unique_ptr<machine::RecoveryArch> arch);

/// Runs one architecture (fresh instance per configuration) across all
/// four standard configurations, on `jobs` worker threads (0 = one per
/// hardware thread).  Every configuration uses `seed` exactly as before,
/// so results do not depend on `jobs`.
std::vector<machine::MachineResult> RunAllConfigs(
    const std::function<std::unique_ptr<machine::RecoveryArch>()>& make_arch,
    int num_txns = 60, uint64_t seed = 7, int jobs = 1);

}  // namespace dbmr::core

#endif  // DBMR_CORE_EXPERIMENT_H_
