#include "core/thread_pool.h"

#include <algorithm>

namespace dbmr::core {

ThreadPool::ThreadPool(int threads) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  size_t want = threads > 0 ? static_cast<size_t>(threads) : hw;
  // The pool runs CPU-bound index loops; executors beyond the hardware
  // thread count only add context-switch overhead, so oversubscription
  // requests are capped (results are unaffected — merge order, not
  // scheduling, defines them).
  want = std::min(want, hw);
  workers_.reserve(want - 1);
  for (size_t i = 1; i < want; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainIndices() {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*fn_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++workers_in_job_;
    }
    DrainIndices();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_in_job_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  DrainIndices();  // the caller is one of the executors
  // The index counter is exhausted, but workers may still be inside fn for
  // the last indices.  A worker that wakes late simply finds no indices and
  // leaves the job immediately, so waiting for workers_in_job_ == 0 is safe
  // even if some workers never woke for this generation.
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return workers_in_job_ == 0; });
  fn_ = nullptr;
  n_ = 0;
}

}  // namespace dbmr::core
