// Parallel experiment grid runner.
//
// The paper's evaluation is a grid — architecture × configuration × knob
// (Tables 1–12) — and this module executes such grids on a fixed-size
// thread pool.  Each cell simulates an independent Machine, so cells are
// embarrassingly parallel; the cell's RNG seed is derived deterministically
// from (base seed, cell index), making results bit-identical regardless of
// thread count or scheduling order.
//
//   core::GridSpec spec = core::StandardGrid(
//       "logging", "logging",
//       [] { return std::make_unique<machine::SimLogging>(); });
//   core::MetricsRegistry run = core::RunGrid(spec, {.jobs = 8});
//   run.WriteJsonFile("run.json");

#ifndef DBMR_CORE_GRID_H_
#define DBMR_CORE_GRID_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/metrics.h"
#include "machine/recovery_arch.h"
#include "util/status.h"

namespace dbmr::core {

/// Creates a fresh architecture instance for one cell.  Must be safe to
/// invoke concurrently from multiple threads (factories that only copy
/// captured option structs are).
using ArchFactory = std::function<std::unique_ptr<machine::RecoveryArch>()>;

/// One cell of the grid: a fully-formed experiment setup plus the
/// architecture to run on it.
struct GridCellSpec {
  /// Display name; defaults to "<arch_label>/<config_name>" when empty.
  std::string name;
  std::string config_name;
  std::string arch_label;
  ExperimentSetup setup;
  ArchFactory make_arch;
  /// Sweep-parameter values, recorded verbatim into the metrics.
  std::vector<std::pair<std::string, std::string>> params;
};

/// How each cell's RNG seed is chosen.
enum class SeedPolicy {
  /// seed = DeriveCellSeed(base_seed, cell_index): unique and stable per
  /// cell, independent of scheduling.  The default for new grids.
  kDerived,
  /// The cell's setup carries its own seed untouched.  Used by the table
  /// benches, which reproduce the paper's cells (all at the standard seed).
  kFromSetup,
};

struct GridSpec {
  std::string name = "grid";
  uint64_t base_seed = 7;
  SeedPolicy seed_policy = SeedPolicy::kDerived;
  std::vector<GridCellSpec> cells;

  GridSpec& Add(GridCellSpec cell) {
    cells.push_back(std::move(cell));
    return *this;
  }

  /// Adds one cell per §4 configuration (StandardSetup at `base_seed`) for
  /// the given architecture variant.
  GridSpec& AddConfigSweep(
      const std::string& arch_label, ArchFactory make_arch, int num_txns = 60,
      std::vector<std::pair<std::string, std::string>> params = {});
};

/// SplitMix64-style mix of (base_seed, cell_index): stable across runs and
/// platforms, distinct for every cell index (the mix is a bijection of a
/// sequence with step 2^64/φ, so collisions within a grid are impossible
/// in practice).
uint64_t DeriveCellSeed(uint64_t base_seed, uint64_t cell_index);

class ThreadPool;

struct GridRunOptions {
  /// Worker threads; 0 means one per hardware thread.  Ignored when
  /// `pool` is set.
  int jobs = 1;
  /// Optional externally owned pool to run cells on (shared with other
  /// parallel phases, e.g. torture sweeps); when null, a pool of `jobs`
  /// threads is built for the run.
  ThreadPool* pool = nullptr;
};

/// Executes every cell and returns the metrics in cell-index order.
MetricsRegistry RunGrid(const GridSpec& spec,
                        const GridRunOptions& opts = {});

/// The standard four-configuration grid of §4 for one architecture.
GridSpec StandardGrid(const std::string& grid_name,
                      const std::string& arch_label, ArchFactory make_arch,
                      int num_txns = 60, uint64_t base_seed = 7);

/// Registry-driven StandardGrid: resolves `arch` — a core::ArchRegistry
/// entry name ("logging") or sim-variant name ("logging-qpmod") — and
/// layers `overrides` over the variant preset.  The cell layout, labels,
/// and seeds are identical to StandardGrid with a hand-built factory, so
/// rewiring a caller through the registry leaves its reports byte-for-byte
/// unchanged.  NotFound for unknown names (see ArchRegistry::SuggestSim
/// for "did you mean" candidates).
Result<GridSpec> RegistryStandardGrid(
    const std::string& grid_name, const std::string& arch,
    const std::vector<std::pair<std::string, std::string>>& overrides = {},
    int num_txns = 60, uint64_t base_seed = 7);

}  // namespace dbmr::core

#endif  // DBMR_CORE_GRID_H_
