// Bounded, deterministic retry for device I/O.
//
// Transient device errors (VirtualDisk::ArmTransientWriteError and friends)
// heal themselves: the very next attempt succeeds.  Engines therefore wrap
// their disk reads and writes in RetryDiskIo instead of failing the whole
// transaction or recovery pass on the first kIoError.  Permanent faults —
// a fail-stop crash point or a lost medium — are recognizable on the disk
// itself (crashed() / media_lost()), so the helper gives up on them
// immediately rather than burning attempts (and inflating injected-fault
// tallies) on a device that cannot come back.
//
// "Backoff" in this simulated world must not read a clock: reports are
// required to be byte-identical at any thread count, and wall-clock sleeps
// would add nondeterministic latency for nothing.  BackoffSpin burns a
// deterministic, attempt-proportional amount of CPU instead, standing in
// for the escalating delays a real driver would use.

#ifndef DBMR_STORE_IO_RETRY_H_
#define DBMR_STORE_IO_RETRY_H_

#include <cstdint>

#include "store/virtual_disk.h"
#include "util/status.h"

namespace dbmr::store {

/// Tally of retry activity, aggregated per engine and surfaced into
/// sweep-report metrics as io_retries / io_giveups.
struct IoRetryStats {
  uint64_t retries = 0;  ///< re-attempts after a transient failure
  uint64_t giveups = 0;  ///< operations abandoned after the attempt budget

  IoRetryStats& operator+=(const IoRetryStats& o) {
    retries += o.retries;
    giveups += o.giveups;
    return *this;
  }
};

/// Attempts engines make per device operation (first try + retries).
inline constexpr int kIoRetryAttempts = 3;

/// Deterministic stand-in for retry backoff: spins attempt-proportional
/// work instead of sleeping, so behavior is identical at any --jobs.
inline void BackoffSpin(int attempt) {
  volatile uint64_t sink = 0;
  const uint64_t spins = static_cast<uint64_t>(attempt) * 64;
  for (uint64_t i = 0; i < spins; ++i) sink = sink + i;
}

/// Runs `op` (a callable returning Status) against disk `d`, retrying up
/// to `max_attempts` total attempts.  Retries only transient kIoError
/// results: once the disk reports crashed() or media_lost() the fault is
/// permanent and the last error is returned at once.  Non-IoError
/// statuses (corruption, out-of-range, ...) never retry.
template <typename Op>
Status RetryDiskIo(const VirtualDisk& d, Op&& op, IoRetryStats* stats,
                   int max_attempts = kIoRetryAttempts) {
  Status st;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSpin(attempt);
      if (stats != nullptr) ++stats->retries;
    }
    st = op();
    if (st.ok() || st.code() != StatusCode::kIoError) return st;
    if (d.crashed() || d.media_lost()) return st;  // permanent: do not retry
  }
  if (stats != nullptr) ++stats->giveups;
  return st;
}

}  // namespace dbmr::store

#endif  // DBMR_STORE_IO_RETRY_H_
