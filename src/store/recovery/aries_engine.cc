#include "store/recovery/aries_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
/// Data page block layout: [u64 pageLSN][payload].
constexpr size_t kPageHeader = 8;

uint64_t PageLsn(const PageData& block) { return GetU64(block, 0); }
void SetPageLsn(PageData& block, uint64_t lsn) { PutU64(block, 0, lsn); }
}  // namespace

AriesEngine::AriesEngine(VirtualDisk* data_disk, VirtualDisk* log_disk,
                         AriesEngineOptions options,
                         VirtualDisk* archive_disk)
    : data_(data_disk), log_(log_disk), opts_(options) {
  DBMR_CHECK(data_ != nullptr);
  DBMR_CHECK(log_ != nullptr);
  DBMR_CHECK(log_->block_size() == data_->block_size());
  // Room for the master (48 bytes), a block header, and a page header.
  DBMR_CHECK(data_->block_size() >= 64);
  if (archive_disk != nullptr) {
    DBMR_CHECK(archive_disk->block_size() == data_->block_size());
    DBMR_CHECK(archive_disk->num_blocks() >= 1 + data_->num_blocks());
    archive_ = std::make_unique<ArchiveStore>(archive_disk);
  }
  pool_ = std::make_unique<BufferPool>(
      opts_.pool_frames,
      [this](txn::PageId p, PageData* out) { return FetchBlock(p, out); },
      [this](txn::PageId p, const PageData& b) {
        return FlushDataPage(p, b);
      });
}

size_t AriesEngine::payload_size() const {
  return data_->block_size() - kPageHeader;
}

size_t AriesEngine::PayloadBytesPerLogBlock() const {
  return data_->block_size() - LogBlockHeader::kSize;
}

Status AriesEngine::Format() {
  // Zero the data disk: a fresh page's pageLSN of 0 predates every record.
  PageData zero(data_->block_size(), 0);
  for (BlockId b = 0; b < data_->num_blocks(); ++b) {
    DBMR_RETURN_IF_ERROR(data_->Write(b, zero));
  }
  // The archive master must exist before TruncateLog below sweeps into it.
  if (archive_ != nullptr) {
    DBMR_RETURN_IF_ERROR(
        archive_->Format(data_->num_blocks(), data_->block_size()));
  }
  // Epoch advances past any previous life of the log disk, and the epoch
  // base keeps LSNs monotone even across a reformat.
  DBMR_RETURN_IF_ERROR(TruncateLog());
  pool_->DiscardAll();
  active_.clear();
  dpt_.clear();
  locks_.Reset();
  next_txn_ = 1;
  records_since_checkpoint_ = 0;
  media_restored_ = false;
  return Status::OK();
}

Result<txn::TxnId> AriesEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

Status AriesEngine::FetchBlock(txn::PageId page, PageData* out) {
  if (page >= data_->num_blocks()) {
    return Status::OutOfRange(
        StrFormat("page %llu out of range", (unsigned long long)page));
  }
  return RetryDiskIo(
      *data_, [&] { return data_->Read(page, out); }, &io_retry_);
}

Status AriesEngine::FlushDataPage(txn::PageId page, const PageData& block) {
  // WAL rule as an LSN inequality: the record that produced this page
  // image must be durable (pageLSN <= flushedLSN) before the page may
  // reach disk.
  const uint64_t page_lsn = PageLsn(block);
  if (page_lsn > flushed_lsn_ && !opts_.test_skip_log_force) {
    DBMR_RETURN_IF_ERROR(ForceLog());
  }
  if (hooks_.on_write_back) hooks_.on_write_back(page, page_lsn, flushed_lsn_);
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *data_, [&] { return data_->Write(page, block); }, &io_retry_));
  dpt_.erase(page);
  return Status::OK();
}

uint64_t AriesEngine::AppendRecord(const AriesLogRecord& rec) {
  PageData tmp(rec.EncodedSize(), 0);
  EncodeAriesRecord(rec, tmp, 0);
  pending_.insert(pending_.end(), tmp.begin(), tmp.end());
  next_lsn_ += tmp.size();
  ++records_appended_;
  ++records_since_checkpoint_;
  return next_lsn_;
}

Status AriesEngine::ForceLog() {
  if (flushed_lsn_ == next_lsn_) return Status::OK();
  ++forces_;
  const size_t cap = PayloadBytesPerLogBlock();
  // `pending_` holds the stream's bytes from the start of block
  // `next_block_` onward (durable prefix of the partial block included,
  // for in-place group fill).
  while (!pending_.empty()) {
    const size_t used = std::min(cap, pending_.size());
    if (next_block_ >= log_->num_blocks()) {
      return Status::ResourceExhausted(
          StrFormat("aries log %s full", log_->name().c_str()));
    }
    PageData block(log_->block_size(), 0);
    LogBlockHeader h;
    h.epoch = epoch_;
    h.used_bytes = static_cast<uint32_t>(used);
    h.EncodeTo(block);
    std::copy(pending_.begin(), pending_.begin() + static_cast<long>(used),
              block.begin() + LogBlockHeader::kSize);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *log_, [&] { return log_->Write(next_block_, block); }, &io_retry_));
    if (used == cap) {
      // Block finalized; it will never be rewritten.
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<long>(used));
      ++next_block_;
    } else {
      // Partial block stays buffered for in-place group fill.
      break;
    }
  }
  flushed_lsn_ = next_lsn_;
  return Status::OK();
}

Status AriesEngine::WriteMaster(const AriesLogMaster& m) {
  PageData block(log_->block_size(), 0);
  m.EncodeTo(block);
  return RetryDiskIo(
      *log_, [&] { return log_->Write(0, block); }, &io_retry_);
}

Status AriesEngine::Read(txn::TxnId t, txn::PageId page, PageData* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  PageData block;
  DBMR_RETURN_IF_ERROR(pool_->Get(page, &block));
  out->assign(block.begin() + kPageHeader, block.end());
  return Status::OK();
}

Status AriesEngine::Write(txn::TxnId t, txn::PageId page,
                          const PageData& payload) {
  DBMR_RETURN_IF_ERROR(MaybeAutoCheckpoint());
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (payload.size() != payload_size()) {
    return Status::InvalidArgument(StrFormat(
        "payload size %zu != %zu", payload.size(), payload_size()));
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  PageData block;
  DBMR_RETURN_IF_ERROR(pool_->Get(page, &block));

  // Byte-range diff of the payload (logical logging).
  size_t lo = 0;
  size_t hi = payload.size();
  const uint8_t* old = block.data() + kPageHeader;
  while (lo < payload.size() && old[lo] == payload[lo]) ++lo;
  if (lo == payload.size()) {
    // Identical content: nothing to log or write.
    return Status::OK();
  }
  while (hi > lo && old[hi - 1] == payload[hi - 1]) --hi;

  ActiveTxn& at = it->second;
  AriesLogRecord rec;
  rec.kind = LogRecordKind::kUpdate;
  rec.txn = t;
  rec.page = page;
  rec.prev_lsn = at.last_lsn;
  rec.offset = static_cast<uint32_t>(lo);
  rec.before.assign(old + lo, old + hi);
  rec.after.assign(payload.begin() + static_cast<long>(lo),
                   payload.begin() + static_cast<long>(hi));
  // The record's start offset is the fuzzy-checkpoint horizon bound (the
  // retained stream must keep the whole record); its end offset is the
  // LSN stamped into the page.
  const uint64_t start_lsn = next_lsn_;
  const uint64_t lsn = AppendRecord(rec);
  at.last_lsn = lsn;
  if (at.first_lsn == 0) at.first_lsn = start_lsn;
  at.undo.push_back(
      UndoEntry{page, rec.offset, rec.before, lsn, rec.prev_lsn});
  dpt_.try_emplace(page, start_lsn);

  SetPageLsn(block, lsn);
  std::copy(payload.begin(), payload.end(), block.begin() + kPageHeader);
  if (hooks_.on_update) hooks_.on_update(t, lsn);
  return pool_->Put(page, std::move(block));
}

Status AriesEngine::Commit(txn::TxnId t) {
  DBMR_RETURN_IF_ERROR(MaybeAutoCheckpoint());
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  AriesLogRecord rec;
  rec.kind = LogRecordKind::kCommit;
  rec.txn = t;
  rec.prev_lsn = it->second.last_lsn;
  AppendRecord(rec);
  DBMR_RETURN_IF_ERROR(ForceLog());
  ++commits_;
  if (hooks_.on_txn_end) hooks_.on_txn_end(t, /*committed=*/true);
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status AriesEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  // Undo in reverse order, writing CLRs whose undo_next pointers skip the
  // compensated record — a crash mid-rollback resumes exactly where this
  // abort stopped.  CLRs are redo-only and forced lazily: if none reach
  // disk, restart undoes from the update records' before-images instead.
  for (auto u = at.undo.rbegin(); u != at.undo.rend(); ++u) {
    PageData block;
    DBMR_RETURN_IF_ERROR(pool_->Get(u->page, &block));
    AriesLogRecord clr;
    clr.kind = LogRecordKind::kClr;
    clr.txn = t;
    clr.page = u->page;
    clr.prev_lsn = at.last_lsn;
    clr.undo_next_lsn = opts_.test_break_clr_chain ? u->lsn : u->prev_lsn;
    clr.offset = u->offset;
    clr.after = u->before;
    const uint64_t start_lsn = next_lsn_;
    const uint64_t lsn = AppendRecord(clr);
    at.last_lsn = lsn;
    dpt_.try_emplace(u->page, start_lsn);
    SetPageLsn(block, lsn);
    std::copy(u->before.begin(), u->before.end(),
              block.begin() + kPageHeader + u->offset);
    DBMR_RETURN_IF_ERROR(pool_->Put(u->page, std::move(block)));
    if (hooks_.on_clr) hooks_.on_clr(t, clr.undo_next_lsn);
  }
  AriesLogRecord end;
  end.kind = LogRecordKind::kAbort;
  end.txn = t;
  end.prev_lsn = at.last_lsn;
  AppendRecord(end);
  ++aborts_;
  if (hooks_.on_txn_end) hooks_.on_txn_end(t, /*committed=*/false);
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void AriesEngine::Crash() {
  pool_->DiscardAll();
  active_.clear();
  dpt_.clear();
  locks_.Reset();
  // Volatile log buffers vanish; only what was forced survives.  The rest
  // of the stream state is rebuilt from the master by Recover().
  pending_.clear();
  next_lsn_ = flushed_lsn_;
  records_since_checkpoint_ = 0;
  in_checkpoint_ = false;
}

Status AriesEngine::MaybeAutoCheckpoint() {
  if (opts_.checkpoint_interval == 0 || in_checkpoint_) return Status::OK();
  if (records_since_checkpoint_ < opts_.checkpoint_interval) {
    return Status::OK();
  }
  return FuzzyCheckpoint();
}

Status AriesEngine::FuzzyCheckpoint() {
  in_checkpoint_ = true;
  struct Guard {
    bool* flag;
    ~Guard() { *flag = false; }
  } guard{&in_checkpoint_};

  // Serialize the tables in id order so the record is deterministic.
  AriesCheckpointData data;
  data.dirty_pages.reserve(dpt_.size());
  for (const auto& [page, rec_lsn] : dpt_) {
    data.dirty_pages.push_back({page, rec_lsn});
  }
  std::sort(data.dirty_pages.begin(), data.dirty_pages.end(),
            [](const auto& a, const auto& b) { return a.page < b.page; });
  for (const auto& [t, at] : active_) {
    if (at.last_lsn != 0) data.txns.push_back({t, at.last_lsn});
  }
  std::sort(data.txns.begin(), data.txns.end(),
            [](const auto& a, const auto& b) { return a.txn < b.txn; });

  AriesLogRecord rec;
  rec.kind = LogRecordKind::kCheckpoint;
  rec.after = EncodeAriesCheckpoint(data);
  const uint64_t cp_start = next_lsn_;
  const uint64_t cp_lsn = AppendRecord(rec);
  DBMR_RETURN_IF_ERROR(ForceLog());
  // The horizon drops records from the recovery scan; the archive must
  // absorb the data image first — same ordering rule as truncation.
  DBMR_RETURN_IF_ERROR(SweepArchive());

  // Retention horizon: nothing an active transaction's undo or a dirty
  // page's redo could still need — nor the checkpoint record itself — may
  // fall behind the scan origin.
  uint64_t horizon = cp_start;
  for (const auto& [page, rec_lsn] : dpt_) {
    horizon = std::min(horizon, rec_lsn);
  }
  for (const auto& [t, at] : active_) {
    if (at.first_lsn != 0) horizon = std::min(horizon, at.first_lsn);
  }

  const size_t cap = PayloadBytesPerLogBlock();
  const uint64_t rel = horizon - epoch_base_lsn_;
  AriesLogMaster m;
  m.epoch = epoch_;
  m.start_block = 1 + rel / cap;
  m.start_offset = rel % cap;
  m.epoch_base_lsn = epoch_base_lsn_;
  m.checkpoint_lsn = cp_lsn;
  m.first_epoch = first_epoch_;
  DBMR_RETURN_IF_ERROR(WriteMaster(m));
  checkpoint_lsn_ = cp_lsn;
  ++fuzzy_checkpoints_;
  records_since_checkpoint_ = 0;
  return Status::OK();
}

Status AriesEngine::Checkpoint() {
  // Flushing enforces the WAL rule per page, so everything a finished
  // transaction did is home after this; only active transactions still
  // need their log records.
  DBMR_RETURN_IF_ERROR(pool_->FlushAll());
  if (active_.empty()) {
    ++full_checkpoints_;
    DBMR_RETURN_IF_ERROR(TruncateLog());
    records_since_checkpoint_ = 0;
    return Status::OK();
  }
  return FuzzyCheckpoint();
}

Status AriesEngine::SweepArchive() {
  if (archive_ == nullptr) return Status::OK();
  DBMR_RETURN_IF_ERROR(
      archive_->Sweep(data_, data_->num_blocks(), &io_retry_));
  ++archive_sweeps_;
  return Status::OK();
}

Status AriesEngine::TruncateLog() {
  // Truncation drops records forever; the archive must absorb the data
  // image first so archive + log still covers every committed update.
  DBMR_RETURN_IF_ERROR(SweepArchive());
  PageData master_block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *log_, [&] { return log_->Read(0, &master_block); }, &io_retry_));
  AriesLogMaster old;
  Status st = AriesLogMaster::DecodeFrom(master_block, &old);
  // The epoch must advance past any previous life of this disk; the LSN
  // space continues from wherever the stream ended, so pageLSNs written
  // before the truncation stay comparable (and smaller) forever.
  epoch_ = st.ok() ? old.epoch + 1 : 1;
  first_epoch_ = epoch_;
  epoch_base_lsn_ = next_lsn_;
  next_block_ = 1;
  pending_.clear();
  flushed_lsn_ = next_lsn_;
  checkpoint_lsn_ = 0;
  AriesLogMaster m;
  m.epoch = epoch_;
  m.start_block = 1;
  m.start_offset = 0;
  m.epoch_base_lsn = epoch_base_lsn_;
  m.checkpoint_lsn = 0;
  m.first_epoch = first_epoch_;
  return WriteMaster(m);
}

Status AriesEngine::LoadMaster(AriesLogMaster* m,
                               uint64_t* retained_start_lsn) {
  PageData master_block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *log_, [&] { return log_->Read(0, &master_block); }, &io_retry_));
  DBMR_RETURN_IF_ERROR(AriesLogMaster::DecodeFrom(master_block, m));
  epoch_ = m->epoch;
  first_epoch_ = m->first_epoch;
  epoch_base_lsn_ = m->epoch_base_lsn;
  checkpoint_lsn_ = m->checkpoint_lsn;
  const size_t cap = PayloadBytesPerLogBlock();
  *retained_start_lsn =
      m->epoch_base_lsn + (m->start_block - 1) * cap + m->start_offset;
  return Status::OK();
}

Status AriesEngine::ReconstructAppendState(const AriesLogMaster& m,
                                           uint64_t end_rel) {
  // Every scanned block before the last is full, so the retained stream
  // maps contiguously into payload space: stream byte i sits at absolute
  // payload offset (start_block - 1) * cap + start_offset + i.
  const size_t cap = PayloadBytesPerLogBlock();
  const uint64_t end_abs =
      (m.start_block - 1) * cap + m.start_offset + end_rel;
  next_lsn_ = epoch_base_lsn_ + end_abs;
  flushed_lsn_ = next_lsn_;
  next_block_ = static_cast<BlockId>(1 + end_abs / cap);
  const size_t in_block = static_cast<size_t>(end_abs % cap);
  pending_.clear();
  if (in_block > 0) {
    // Re-buffer the durable prefix of the partial tail block so restart
    // CLR appends group-fill it in place (chopping any truncated record
    // tail: used_bytes shrinks to the last complete record boundary).
    PageData block;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *log_, [&] { return log_->Read(next_block_, &block); }, &io_retry_));
    pending_.assign(block.begin() + LogBlockHeader::kSize,
                    block.begin() + LogBlockHeader::kSize +
                        static_cast<long>(in_block));
  }
  // Fence the tail: a truncated-record chop can leave whole stale blocks
  // beyond the logical end that still look valid (same epoch, full
  // used_bytes).  Restart appends must not let those blocks reconnect to
  // the stream later, so every restart advances the epoch — durably,
  // before a single new byte is flushed — and the scan only accepts
  // non-decreasing block epochs: a stale block behind a rewritten one is
  // provably older and gets rejected.
  epoch_ = m.epoch + 1;
  AriesLogMaster fenced = m;
  fenced.epoch = epoch_;
  return WriteMaster(fenced);
}

Status AriesEngine::CollectSegments(const AriesLogMaster& m,
                                    SegmentedBytes* out) const {
  const size_t cap = PayloadBytesPerLogBlock();
  bool first = true;
  uint64_t prev_epoch = m.first_epoch;
  for (BlockId b = m.start_block; b < log_->num_blocks(); ++b) {
    const uint8_t* block = nullptr;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *log_, [&] { return log_->ReadRef(b, &block); }, &io_retry_));
    const LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch < prev_epoch || h.epoch > m.epoch || h.used_bytes == 0 ||
        h.used_bytes > cap) {
      break;
    }
    prev_epoch = h.epoch;
    // A fuzzy checkpoint may have moved the scan origin mid-block.
    size_t skip = 0;
    if (first) {
      first = false;
      if (m.start_offset >= h.used_bytes) {
        if (h.used_bytes < cap) break;
        continue;  // horizon consumed the whole (finalized) block
      }
      skip = static_cast<size_t>(m.start_offset);
    }
    out->AddSegment(block + LogBlockHeader::kSize + skip,
                    h.used_bytes - skip);
    if (h.used_bytes < cap) break;  // partial block is always the last
  }
  return Status::OK();
}

Status AriesEngine::Recover() {
  // Injected crash budgets are gone after the reboot; a lost medium stays
  // lost (MediaRecover handles that first).
  data_->ClearCrashState();
  log_->ClearCrashState();
  if (archive_ != nullptr) archive_->disk()->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  if (hooks_.on_restart) hooks_.on_restart();
  if (opts_.recovery_jobs <= 0) return RecoverSequential();
  return RecoverPartitioned();
}

Status AriesEngine::RecoverSequential() {
  AriesLogMaster m;
  uint64_t retained_start = 0;
  DBMR_RETURN_IF_ERROR(LoadMaster(&m, &retained_start));
  SegmentedBytes segs;
  DBMR_RETURN_IF_ERROR(CollectSegments(m, &segs));

  // Reassemble the retained stream into one buffer and decode with owned
  // images — the reference path shares no replay machinery with the
  // partitioned one, which is what makes their byte-compare meaningful.
  struct SeqRecord {
    AriesLogRecord rec;
    uint64_t lsn = 0;  // end-LSN: offset just past the record
  };
  PageData raw(static_cast<size_t>(segs.size()), 0);
  if (!raw.empty()) segs.CopyOut(0, segs.size(), raw.data());
  std::vector<SeqRecord> recs;
  size_t pos = 0;
  while (pos < raw.size()) {
    const size_t before = pos;
    AriesLogRecord r;
    if (!DecodeAriesRecord(raw, &pos, &r).ok()) {
      pos = before;  // truncated trailing record: never durable
      break;
    }
    recs.push_back(SeqRecord{std::move(r), retained_start + pos});
  }
  DBMR_RETURN_IF_ERROR(ReconstructAppendState(m, pos));
  last_stats_.replay_records = recs.size();
  last_stats_.partitions = 1;

  std::unordered_map<uint64_t, const AriesLogRecord*> by_lsn;
  by_lsn.reserve(recs.size());
  for (const SeqRecord& s : recs) by_lsn.emplace(s.lsn, &s.rec);

  // ANALYSIS: start from the checkpointed tables, roll them forward over
  // everything the checkpoint record could not see.
  std::unordered_map<txn::PageId, uint64_t> adpt;  // page -> recLSN
  std::map<txn::TxnId, uint64_t> tt;               // loser -> lastLSN
  txn::TxnId max_txn = 0;
  if (checkpoint_lsn_ != 0) {
    auto cp = by_lsn.find(checkpoint_lsn_);
    if (cp == by_lsn.end() ||
        cp->second->kind != LogRecordKind::kCheckpoint) {
      return Status::Corruption(
          "aries checkpoint record missing from retained log");
    }
    AriesCheckpointData tables;
    DBMR_RETURN_IF_ERROR(DecodeAriesCheckpoint(
        cp->second->after.data(), cp->second->after.size(), &tables));
    for (const auto& d : tables.dirty_pages) adpt.emplace(d.page, d.rec_lsn);
    for (const auto& t : tables.txns) {
      tt[t.txn] = t.last_lsn;
      max_txn = std::max(max_txn, t.txn);
    }
  }
  for (const SeqRecord& s : recs) {
    max_txn = std::max(max_txn, s.rec.txn);
    if (s.lsn <= checkpoint_lsn_) continue;
    switch (s.rec.kind) {
      case LogRecordKind::kUpdate:
      case LogRecordKind::kClr:
        tt[s.rec.txn] = s.lsn;
        adpt.try_emplace(s.rec.page, s.lsn);
        break;
      case LogRecordKind::kCommit:
      case LogRecordKind::kAbort:
        tt.erase(s.rec.txn);
        break;
      case LogRecordKind::kCheckpoint:
        break;
    }
  }

  // REDO repeats history: updates and CLRs alike re-apply wherever the
  // page image predates them (pageLSN gate).  The dirty-page table prunes
  // pages known clean in the crash case; after a media restore the disk
  // image is older than the crash-time tables imply, so every retained
  // record is reconsidered.
  const size_t block_size = data_->block_size();
  std::map<txn::PageId, PageData> images;
  auto image_of = [&](txn::PageId page, PageData** out) -> Status {
    auto [it, inserted] = images.try_emplace(page);
    if (inserted) {
      Status st = RetryDiskIo(
          *data_, [&] { return data_->Read(page, &it->second); },
          &io_retry_);
      if (!st.ok()) {
        images.erase(it);
        return st;
      }
    }
    *out = &it->second;
    return Status::OK();
  };
  for (const SeqRecord& s : recs) {
    if (s.rec.kind != LogRecordKind::kUpdate &&
        s.rec.kind != LogRecordKind::kClr) {
      continue;
    }
    if (!media_restored_) {
      auto d = adpt.find(s.rec.page);
      if (d == adpt.end() || s.lsn < d->second) continue;
    }
    if (kPageHeader + s.rec.offset + s.rec.after.size() > block_size) {
      return Status::Corruption("aries log image exceeds page bounds");
    }
    PageData* img = nullptr;
    DBMR_RETURN_IF_ERROR(image_of(s.rec.page, &img));
    if (PageLsn(*img) >= s.lsn) continue;
    std::copy(s.rec.after.begin(), s.rec.after.end(),
              img->begin() + kPageHeader + s.rec.offset);
    SetPageLsn(*img, s.lsn);
    ++redo_applied_;
  }

  // Losers resume where rollback stopped: a trailing CLR hands us its
  // undo-next pointer, anything else starts from the record itself.
  std::map<txn::TxnId, RestartLoser> losers;
  for (const auto& [t, last] : tt) {
    auto r = by_lsn.find(last);
    if (r == by_lsn.end()) {
      return Status::Corruption(
          "aries loser record missing from retained log");
    }
    RestartLoser ls;
    ls.last_lsn = last;
    ls.next_undo = r->second->kind == LogRecordKind::kClr
                       ? r->second->undo_next_lsn
                       : last;
    losers.emplace(t, ls);
  }
  auto record_at = [&](uint64_t lsn) -> const AriesLogRecord* {
    auto it = by_lsn.find(lsn);
    return it == by_lsn.end() ? nullptr : it->second;
  };
  return FinishRestart(&images, losers, record_at, max_txn);
}

Status AriesEngine::RecoverPartitioned() {
  AriesLogMaster m;
  uint64_t retained_start = 0;
  DBMR_RETURN_IF_ERROR(LoadMaster(&m, &retained_start));
  SegmentedBytes segs;
  DBMR_RETURN_IF_ERROR(CollectSegments(m, &segs));

  // Records are variable-length, so a single stream offers no parallel
  // decode; the caller decodes refs and the parallelism is per page below.
  std::vector<AriesLogRecordRef> recs;
  uint64_t pos = 0;
  while (pos < segs.size()) {
    const uint64_t before = pos;
    AriesLogRecordRef r;
    if (!DecodeAriesRecordRef(segs, &pos, &r).ok()) {
      pos = before;
      break;
    }
    r.lsn = retained_start + pos;
    recs.push_back(r);
  }
  DBMR_RETURN_IF_ERROR(ReconstructAppendState(m, pos));
  last_stats_.replay_records = recs.size();

  std::unordered_map<uint64_t, const AriesLogRecordRef*> by_lsn;
  by_lsn.reserve(recs.size());
  for (const AriesLogRecordRef& r : recs) by_lsn.emplace(r.lsn, &r);

  // ANALYSIS (same rules as the sequential path).
  std::unordered_map<txn::PageId, uint64_t> adpt;
  std::map<txn::TxnId, uint64_t> tt;
  txn::TxnId max_txn = 0;
  if (checkpoint_lsn_ != 0) {
    auto cp = by_lsn.find(checkpoint_lsn_);
    if (cp == by_lsn.end() ||
        cp->second->kind != LogRecordKind::kCheckpoint) {
      return Status::Corruption(
          "aries checkpoint record missing from retained log");
    }
    std::vector<uint8_t> cp_buf(cp->second->after_len);
    if (!cp_buf.empty()) {
      segs.CopyOut(cp->second->after_pos, cp_buf.size(), cp_buf.data());
    }
    AriesCheckpointData tables;
    DBMR_RETURN_IF_ERROR(
        DecodeAriesCheckpoint(cp_buf.data(), cp_buf.size(), &tables));
    for (const auto& d : tables.dirty_pages) adpt.emplace(d.page, d.rec_lsn);
    for (const auto& t : tables.txns) {
      tt[t.txn] = t.last_lsn;
      max_txn = std::max(max_txn, t.txn);
    }
  }
  for (const AriesLogRecordRef& r : recs) {
    max_txn = std::max(max_txn, r.txn);
    if (r.lsn <= checkpoint_lsn_) continue;
    switch (r.kind) {
      case LogRecordKind::kUpdate:
      case LogRecordKind::kClr:
        tt[r.txn] = r.lsn;
        adpt.try_emplace(r.page, r.lsn);
        break;
      case LogRecordKind::kCommit:
      case LogRecordKind::kAbort:
        tt.erase(r.txn);
        break;
      case LogRecordKind::kCheckpoint:
        break;
    }
  }

  // PLAN: per-page chains of redo-eligible records.  ARIES redo is
  // strictly per page (the pageLSN gate needs no cross-page state) and
  // undo runs on the caller, so the partitioner needs no Link edges.
  std::unordered_map<txn::PageId, std::vector<const AriesLogRecordRef*>>
      chains;
  for (const AriesLogRecordRef& r : recs) {
    if (r.kind != LogRecordKind::kUpdate && r.kind != LogRecordKind::kClr) {
      continue;
    }
    if (!media_restored_) {
      auto d = adpt.find(r.page);
      if (d == adpt.end() || r.lsn < d->second) continue;
    }
    chains[r.page].push_back(&r);
  }
  ReplayPartitioner parts;
  for (const auto& [page, chain] : chains) parts.AddPage(page);
  const auto partitions = parts.Partitions();
  last_stats_.partitions = partitions.size();
  const int jobs = EffectiveReplayJobs(opts_.recovery_jobs,
                                       static_cast<size_t>(segs.size()));

  // Disk refs are taken on the caller, in deterministic partition order;
  // workers only gather-copy from the segmented log into private images.
  struct RedoTask {
    txn::PageId page = 0;
    const std::vector<const AriesLogRecordRef*>* chain = nullptr;
    const uint8_t* disk_image = nullptr;
    PageData out;
    uint64_t redo = 0;
    bool bounds_error = false;
  };
  std::vector<RedoTask> work;
  work.reserve(parts.num_pages());
  for (const auto& group : partitions) {
    for (txn::PageId page : group) {
      RedoTask t;
      t.page = page;
      t.chain = &chains.at(page);
      DBMR_RETURN_IF_ERROR(RetryDiskIo(
          *data_, [&] { return data_->ReadRef(page, &t.disk_image); },
          &io_retry_));
      work.push_back(std::move(t));
    }
  }
  const size_t block_size = data_->block_size();
  RunReplayJobs(jobs, work.size(), [&](size_t i) {
    RedoTask& t = work[i];
    t.out.assign(t.disk_image, t.disk_image + block_size);
    for (const AriesLogRecordRef* r : *t.chain) {
      if (GetU64(t.out, 0) >= r->lsn) continue;  // pageLSN gate
      if (kPageHeader + r->offset + r->after_len > block_size) {
        t.bounds_error = true;
        return;
      }
      if (r->after_len > 0) {
        segs.CopyOut(r->after_pos, r->after_len,
                     t.out.data() + kPageHeader + r->offset);
      }
      SetPageLsn(t.out, r->lsn);
      ++t.redo;
    }
  });

  // Deterministic reduce: page-ordered map, identical to the sequential
  // path's materialized set.
  std::map<txn::PageId, PageData> images;
  for (RedoTask& t : work) {
    if (t.bounds_error) {
      return Status::Corruption("aries log image exceeds page bounds");
    }
    redo_applied_ += t.redo;
    images.emplace(t.page, std::move(t.out));
  }

  std::map<txn::TxnId, RestartLoser> losers;
  for (const auto& [t, last] : tt) {
    auto r = by_lsn.find(last);
    if (r == by_lsn.end()) {
      return Status::Corruption(
          "aries loser record missing from retained log");
    }
    RestartLoser ls;
    ls.last_lsn = last;
    ls.next_undo = r->second->kind == LogRecordKind::kClr
                       ? r->second->undo_next_lsn
                       : last;
    losers.emplace(t, ls);
  }
  // Undo touches few records; materialize them lazily from the segmented
  // stream into a scratch record (valid until the next call).
  AriesLogRecord scratch;
  auto record_at = [&](uint64_t lsn) -> const AriesLogRecord* {
    auto it = by_lsn.find(lsn);
    if (it == by_lsn.end()) return nullptr;
    const AriesLogRecordRef& r = *it->second;
    scratch.kind = r.kind;
    scratch.txn = r.txn;
    scratch.page = r.page;
    scratch.prev_lsn = r.prev_lsn;
    scratch.undo_next_lsn = r.undo_next_lsn;
    scratch.offset = r.offset;
    scratch.before.resize(r.before_len);
    if (r.before_len > 0) {
      segs.CopyOut(r.before_pos, r.before_len, scratch.before.data());
    }
    scratch.after.clear();
    return &scratch;
  };
  return FinishRestart(&images, losers, record_at, max_txn);
}

Status AriesEngine::FinishRestart(
    std::map<txn::PageId, PageData>* images,
    const std::map<txn::TxnId, RestartLoser>& losers,
    const std::function<const AriesLogRecord*(uint64_t)>& record_at,
    txn::TxnId max_txn) {
  const size_t block_size = data_->block_size();
  auto image_of = [&](txn::PageId page, PageData** out) -> Status {
    auto [it, inserted] = images->try_emplace(page);
    if (inserted) {
      Status st = RetryDiskIo(
          *data_, [&] { return data_->Read(page, &it->second); },
          &io_retry_);
      if (!st.ok()) {
        images->erase(it);
        return st;
      }
    }
    *out = &it->second;
    return Status::OK();
  };

  // Rebuild the auditor's pending-undo model from the durable log: the
  // live model may still hold updates whose records never reached disk
  // (on_restart dropped them), and a crash mid-rollback means CLRs will
  // compensate updates this Recover() never appended.
  if (hooks_.on_update) {
    for (const auto& [t, ls] : losers) {
      std::vector<uint64_t> chain;
      for (uint64_t cur = ls.next_undo; cur != 0;) {
        const AriesLogRecord* rec = record_at(cur);
        if (rec == nullptr || rec->kind != LogRecordKind::kUpdate) break;
        chain.push_back(cur);
        cur = rec->prev_lsn;
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        hooks_.on_update(t, *it);
      }
    }
  }

  // UNDO: losers' in-flight page sets are disjoint (exclusive locks held
  // to the end, and durability is a prefix of the single log stream), so
  // ascending transaction order is both safe and deterministic across the
  // sequential and partitioned paths.
  for (const auto& [t, ls] : losers) {
    uint64_t cur = ls.next_undo;
    uint64_t last = ls.last_lsn;
    while (cur != 0) {
      const AriesLogRecord* rec = record_at(cur);
      if (rec == nullptr || rec->kind != LogRecordKind::kUpdate ||
          rec->txn != t) {
        return Status::Corruption(
            "aries undo chain points outside the retained log");
      }
      if (kPageHeader + rec->offset + rec->before.size() > block_size) {
        return Status::Corruption("aries log image exceeds page bounds");
      }
      AriesLogRecord clr;
      clr.kind = LogRecordKind::kClr;
      clr.txn = t;
      clr.page = rec->page;
      clr.prev_lsn = last;
      clr.undo_next_lsn = opts_.test_break_clr_chain ? cur : rec->prev_lsn;
      clr.offset = rec->offset;
      clr.after = rec->before;
      const uint64_t lsn = AppendRecord(clr);
      last = lsn;
      PageData* img = nullptr;
      DBMR_RETURN_IF_ERROR(image_of(rec->page, &img));
      std::copy(clr.after.begin(), clr.after.end(),
                img->begin() + kPageHeader + clr.offset);
      SetPageLsn(*img, lsn);
      ++undo_applied_;
      if (hooks_.on_clr) hooks_.on_clr(t, clr.undo_next_lsn);
      cur = rec->prev_lsn;
    }
    AriesLogRecord end;
    end.kind = LogRecordKind::kAbort;
    end.txn = t;
    end.prev_lsn = last;
    AppendRecord(end);
    if (hooks_.on_txn_end) hooks_.on_txn_end(t, false);
  }

  // All restart CLRs become durable in one force before any page goes
  // home — the WAL rule applies to recovery's own writes too.
  DBMR_RETURN_IF_ERROR(ForceLog());
  for (auto& [page, img] : *images) {
    if (hooks_.on_write_back) {
      hooks_.on_write_back(page, PageLsn(img), flushed_lsn_);
    }
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *data_, [&, page = page] { return data_->Write(page, img); },
        &io_retry_));
  }
  // The recovered image is now self-contained; truncating here gives the
  // restarted engine an empty analysis window.
  DBMR_RETURN_IF_ERROR(TruncateLog());

  pool_->DiscardAll();
  active_.clear();
  dpt_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  records_since_checkpoint_ = 0;
  in_checkpoint_ = false;
  media_restored_ = false;
  return Status::OK();
}

Status AriesEngine::MediaRecover() {
  data_->ClearCrashState();
  log_->ClearCrashState();
  if (archive_ != nullptr) archive_->disk()->ClearCrashState();
  if (log_->media_lost()) {
    // A mirrored log disk only reports media_lost once every replica is
    // gone; at that point committed work is unrecoverable.
    return Status::DataLoss(StrFormat("aries: log disk %s lost with no mirror",
                                      log_->name().c_str()));
  }
  const bool data_lost = data_->media_lost();
  const bool archive_lost =
      archive_ != nullptr && archive_->disk()->media_lost();
  if (data_lost && (archive_ == nullptr || archive_lost)) {
    return Status::DataLoss(archive_ == nullptr
                                ? "aries: data disk lost with no archive"
                                : "aries: data disk and archive both lost");
  }
  if (data_lost) {
    data_->ReplaceMedia();
    Status st = archive_->Validate(data_->num_blocks(), data_->block_size());
    if (st.ok()) st = archive_->Restore(data_, data_->num_blocks(), &io_retry_);
    if (!st.ok()) {
      data_->FailMedia();
      if (archive_->disk()->media_lost()) {
        return Status::DataLoss(
            "aries: archive lost while restoring the data disk");
      }
      return st;
    }
    // The restored image predates the crash-time dirty-page table, so the
    // upcoming Recover() must reconsider every retained record.  The flag
    // survives Crash(): it describes stable storage, not volatile state.
    media_restored_ = true;
  } else if (archive_lost) {
    archive_->disk()->ReplaceMedia();
    Status st = archive_->Format(data_->num_blocks(), data_->block_size());
    if (st.ok()) st = SweepArchive();
    if (!st.ok()) {
      archive_->disk()->FailMedia();
      return st;
    }
  }
  return Status::OK();
}

}  // namespace dbmr::store
