#include "store/recovery/stable_list.h"

#include <algorithm>

#include "store/codec.h"
#include "store/recovery/log_format.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
constexpr uint64_t kListMagic = 0x4442'4d52'4c53'5431ULL;  // "DBMRLST1"
}  // namespace

StableList::StableList(VirtualDisk* disk, BlockId master_block,
                       BlockId first_block, uint64_t num_blocks)
    : disk_(disk),
      master_block_(master_block),
      first_block_(first_block),
      num_blocks_(num_blocks) {
  DBMR_CHECK(disk != nullptr);
  DBMR_CHECK(num_blocks > 0);
  DBMR_CHECK(first_block + num_blocks <= disk->num_blocks());
}

Status StableList::WriteMaster() {
  PageData block(disk_->block_size(), 0);
  PutU64(block, 0, kListMagic);
  PutU64(block, 8, epoch_);
  return disk_->Write(master_block_, block);
}

Status StableList::Load(std::vector<std::vector<uint8_t>>* records) {
  PageData block;
  DBMR_RETURN_IF_ERROR(disk_->Read(master_block_, &block));
  if (GetU64(block, 0) != kListMagic) {
    return Status::Corruption("stable list master invalid");
  }
  epoch_ = GetU64(block, 8);
  // Writer state resumes from the durable scan; simplest is to require a
  // Truncate() before appending again, which every caller does after
  // recovery.  Position conservatively at the end of the durable data.
  std::vector<std::vector<uint8_t>> local;
  if (records == nullptr) records = &local;
  DBMR_RETURN_IF_ERROR(Scan(records));
  uint64_t bytes = 0;
  for (const auto& r : *records) bytes += 4 + r.size();
  appended_bytes_ = flushed_bytes_ = bytes;
  next_block_ = first_block_ + bytes / Cap();
  pending_.clear();
  return Status::OK();
}

Status StableList::Truncate() {
  PageData block;
  Status st = disk_->Read(master_block_, &block);
  uint64_t old_epoch = 0;
  if (st.ok() && GetU64(block, 0) == kListMagic) {
    old_epoch = GetU64(block, 8);
  }
  epoch_ = old_epoch + 1;
  next_block_ = first_block_;
  pending_.clear();
  appended_bytes_ = 0;
  flushed_bytes_ = 0;
  return WriteMaster();
}

Status StableList::Append(const std::vector<uint8_t>& blob) {
  DBMR_CHECK(epoch_ > 0);  // Truncate/Load must have run
  std::vector<uint8_t> framed(4 + blob.size());
  PageData tmp(4, 0);
  PutU32(tmp, 0, static_cast<uint32_t>(blob.size()));
  std::copy(tmp.begin(), tmp.end(), framed.begin());
  std::copy(blob.begin(), blob.end(), framed.begin() + 4);
  pending_.insert(pending_.end(), framed.begin(), framed.end());
  appended_bytes_ += framed.size();
  return Status::OK();
}

Status StableList::Force() {
  if (!HasUnforced()) return Status::OK();
  const size_t cap = Cap();
  while (!pending_.empty()) {
    const size_t used = std::min(cap, pending_.size());
    if (next_block_ >= first_block_ + num_blocks_) {
      return Status::ResourceExhausted("stable list full");
    }
    PageData block(disk_->block_size(), 0);
    LogBlockHeader h;
    h.epoch = epoch_;
    h.used_bytes = static_cast<uint32_t>(used);
    h.EncodeTo(block);
    std::copy(pending_.begin(), pending_.begin() + static_cast<long>(used),
              block.begin() + LogBlockHeader::kSize);
    DBMR_RETURN_IF_ERROR(disk_->Write(next_block_, block));
    if (used == cap) {
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<long>(used));
      ++next_block_;
    } else {
      break;  // partial tail stays buffered for group fill
    }
  }
  flushed_bytes_ = appended_bytes_;
  return Status::OK();
}

void StableList::DropVolatile() {
  // Discard unforced bytes.  The durable prefix of the partial tail block
  // is also dropped from the buffer; callers always Truncate after a crash
  // (via recovery), so the writer never appends to a stale tail.
  pending_.clear();
  appended_bytes_ = flushed_bytes_;
}

Status StableList::Scan(std::vector<std::vector<uint8_t>>* out) const {
  PageData mblock;
  DBMR_RETURN_IF_ERROR(disk_->Read(master_block_, &mblock));
  if (GetU64(mblock, 0) != kListMagic) {
    return Status::Corruption("stable list master invalid");
  }
  const uint64_t epoch = GetU64(mblock, 8);
  const size_t cap = Cap();

  std::vector<uint8_t> stream;
  PageData block(disk_->block_size());
  for (BlockId b = first_block_; b < first_block_ + num_blocks_; ++b) {
    DBMR_RETURN_IF_ERROR(disk_->ReadInto(b, block.data()));
    LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != epoch || h.used_bytes == 0 || h.used_bytes > cap) break;
    stream.insert(stream.end(), block.begin() + LogBlockHeader::kSize,
                  block.begin() + LogBlockHeader::kSize + h.used_bytes);
    if (h.used_bytes < cap) break;
  }

  size_t pos = 0;
  while (pos + 4 <= stream.size()) {
    const uint32_t len = GetU32(stream, pos);
    if (pos + 4 + len > stream.size()) break;  // truncated tail record
    out->emplace_back(stream.begin() + static_cast<long>(pos + 4),
                      stream.begin() + static_cast<long>(pos + 4 + len));
    pos += 4 + len;
  }
  return Status::OK();
}

}  // namespace dbmr::store
