// Write-ahead-logging page engine, including the paper's *parallel logging*
// architecture (§3.1): update records are distributed over N independent
// log streams, each on its own log disk, and recovery is performed without
// ever merging the physical logs — per-page version numbers give the only
// ordering that matters, exactly as in the companion parallel-logging
// algorithm the paper cites [13].
//
// Properties implemented and tested:
//  * WAL rule: a dirty data page may only be flushed after the log stream
//    holding its latest update record has been forced past that record.
//  * Commit: a commit record is appended to one stream, then every stream
//    the transaction touched is forced; data pages are NOT forced
//    (no-force), so redo may be needed after a crash.
//  * Steal: dirty pages of uncommitted transactions may be evicted (after
//    their log records are safe), so undo may be needed after a crash.
//  * Abort writes redo-only compensation records (CLRs), making abort
//    itself crash-safe.
//  * Logical mode logs byte-range diffs; physical mode logs full
//    before/after page images (used by the paper's Table 3 experiment).

#ifndef DBMR_STORE_RECOVERY_WAL_ENGINE_H_
#define DBMR_STORE_RECOVERY_WAL_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "store/buffer_pool.h"
#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/archive.h"
#include "store/recovery/log_format.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"
#include "util/rng.h"

namespace dbmr::store {

/// How update images are logged.
enum class LoggingMode {
  kLogical,   ///< byte-range diff of the page payload
  kPhysical,  ///< full before and after page images
};

/// How a log stream is chosen for each record (paper §3.1).
enum class LogSelectPolicy {
  kCyclic,  ///< round-robin over streams
  kRandom,  ///< uniform random stream
  kTxnMod,  ///< transaction id mod stream count
};

/// Options for WalEngine.
struct WalEngineOptions {
  LoggingMode mode = LoggingMode::kLogical;
  LogSelectPolicy policy = LogSelectPolicy::kCyclic;
  size_t pool_frames = 64;
  uint64_t rng_seed = 42;
  /// Parallel replay jobs for Recover().  >= 1 runs the partitioned
  /// zero-copy replay planner (1 = planner pipeline on the caller thread
  /// alone); 0 keeps the pre-planner sequential scan+replay as a
  /// reference path.  The recovered image is byte-identical across every
  /// setting.
  int recovery_jobs = 1;
};

/// The WAL page engine.  With one log disk this is classical logging; with
/// several it is the paper's parallel logging.
class WalEngine : public PageEngine {
 public:
  /// Disks are borrowed, not owned; all log disks must share the data
  /// disk's block size.  An optional `archive_disk` (1 + num_pages blocks
  /// of the same size) enables fuzzy archive checkpoints: the engine
  /// sweeps the data disk into it before every log-truncation point, and
  /// MediaRecover() can then rebuild a lost data disk from archive + log.
  WalEngine(VirtualDisk* data_disk, std::vector<VirtualDisk*> log_disks,
            WalEngineOptions options = {},
            VirtualDisk* archive_disk = nullptr);
  ~WalEngine() override = default;

  Status Format() override;
  Status Recover() override;
  Result<txn::TxnId> Begin() override;
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override;
  Status Abort(txn::TxnId t) override;
  void Crash() override;
  size_t payload_size() const override;
  uint64_t num_pages() const override { return data_->num_blocks(); }
  std::string name() const override;

  /// Checkpoint.  With no active transactions: flushes all dirty pages and
  /// truncates every log stream.  With active transactions it degrades to
  /// a FUZZY checkpoint (the paper's companion [13]: "checkpointing can be
  /// performed in parallel with the normal data processing ... without
  /// complete system quiescing"): dirty pages are flushed and each
  /// stream's recovery-scan origin advances past every record that is no
  /// longer needed — everything older than the oldest active
  /// transaction's first record on that stream.
  Status Checkpoint();

  /// Media recovery (requires an archive disk).  A lost data disk is
  /// replaced and restored from the archive image; calling Recover()
  /// afterwards replays the surviving log over it.  A lost archive disk
  /// is replaced and re-swept from the live data disk.  Both lost — or a
  /// lost, unmirrored log disk — is unrecoverable: kDataLoss.
  Status MediaRecover() override;

  /// --- Introspection (tests, examples) --------------------------------
  size_t num_log_streams() const { return logs_.size(); }
  uint64_t log_forces() const { return forces_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t redo_applied() const { return redo_applied_; }
  uint64_t undo_applied() const { return undo_applied_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  uint64_t full_checkpoints() const { return full_checkpoints_; }
  uint64_t fuzzy_checkpoints() const { return fuzzy_checkpoints_; }
  /// Records appended to stream `i` since Format/Recover.
  uint64_t stream_records(size_t i) const;
  uint64_t archive_sweeps() const { return archive_sweeps_; }
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const override { return last_stats_; }
  IoRetryStats io_retry_stats() const override { return io_retry_; }

 private:
  /// One append-only log stream over a VirtualDisk.
  struct LogStream {
    VirtualDisk* disk = nullptr;
    uint64_t epoch = 1;
    BlockId start_block = 1;
    /// First block not yet fully finalized.
    BlockId next_block = 1;
    /// Bytes buffered but not yet on disk (suffix of the stream).
    std::vector<uint8_t> pending;
    /// Bytes already durable in the current partial block.
    size_t partial_durable = 0;
    uint64_t appended_bytes = 0;
    uint64_t flushed_bytes = 0;
    uint64_t records = 0;
  };

  struct UndoEntry {
    txn::PageId page;
    uint32_t offset;
    std::vector<uint8_t> before;
  };

  struct ActiveTxn {
    std::vector<UndoEntry> undo;
    std::unordered_set<size_t> logs_used;
    /// Byte position of this transaction's first record on each stream —
    /// the fuzzy-checkpoint horizon must not pass it.
    std::unordered_map<size_t, uint64_t> first_pos;
  };

  /// Durability requirement of a dirty page: for every stream holding one
  /// of its not-yet-forced records, the appended_bytes watermark that must
  /// be durable before the page may flush.  With a single log the latest
  /// record's position dominates, but across independent parallel streams
  /// every stream must be tracked — undo needs every before-image.
  using WalPoint = std::unordered_map<size_t, uint64_t>;

  size_t PayloadBytesPerLogBlock() const;
  size_t ChooseLog(txn::TxnId t);
  Status AppendRecord(size_t log_idx, const LogRecord& rec);
  Status ForceLog(size_t log_idx);
  Status ForceLogsOf(const ActiveTxn& at, size_t also);
  Status FetchBlock(txn::PageId page, PageData* out);
  Status FlushDataPage(txn::PageId page, const PageData& block);
  /// Reassembles stream `idx`'s durable bytes into `*raw` and decodes them
  /// as views into that buffer; `*raw` must outlive `*out`.
  Status ScanStream(size_t idx, std::vector<uint8_t>* raw,
                    std::vector<LogRecordView>* out) const;
  /// Zero-copy scan: collects stream `idx`'s durable bytes as segments
  /// pointing into the log disk's block storage (same stop rules and disk
  /// reads as ScanStream, no reassembly).  Valid until the log disk is
  /// written (recovery truncates only after replay).
  Status CollectStreamSegments(size_t idx, SegmentedBytes* out) const;
  /// The pre-planner single-threaded recovery, kept as the equivalence
  /// and benchmark reference (recovery_jobs == 0).
  Status RecoverSequential();
  /// The partitioned replay pipeline (recovery_jobs >= 1): zero-copy
  /// scan, parallel decode, page-partitioned parallel replay, ordered
  /// reduction.
  Status RecoverPartitioned();
  Status TruncateLogs();
  Status ApplyRecordImage(PageData& block, const LogRecordView& rec,
                          bool redo) const;
  /// Refreshes the archive from the data disk (no-op without one).  Must
  /// run before any log records are dropped — see archive.h for why.
  Status SweepArchive();

  VirtualDisk* data_;
  std::vector<LogStream> logs_;
  WalEngineOptions opts_;
  Rng rng_;
  txn::LockManager locks_;
  std::unique_ptr<BufferPool> pool_;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  std::unordered_map<txn::PageId, WalPoint> wal_point_;
  txn::TxnId next_txn_ = 1;
  size_t cyclic_next_ = 0;

  uint64_t forces_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t redo_applied_ = 0;
  uint64_t undo_applied_ = 0;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t full_checkpoints_ = 0;
  uint64_t fuzzy_checkpoints_ = 0;
  uint64_t archive_sweeps_ = 0;
  RecoveryStats last_stats_;
  std::unique_ptr<ArchiveStore> archive_;  ///< null: archiving disabled
  mutable IoRetryStats io_retry_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_WAL_ENGINE_H_
