// Version-selection engine (paper §3.2.2.1).
//
// Every logical page owns two physically adjacent disk blocks holding the
// current and the shadow copy; neither the page table nor any indirection
// exists.  Each copy is stamped with a monotonically increasing version
// timestamp, the writing transaction's id, and a checksum.  A read fetches
// BOTH copies and applies the version-selection rule:
//
//   current = the valid copy with the highest stamp whose writer is known
//             committed; the other copy is the shadow.
//
// An update overwrites the non-current copy with a higher stamp; commit
// appends the transaction id to a stable commit list (the commit point).
// Recovery is pure version selection: uncommitted writers simply lose the
// selection, and a torn write fails the checksum and yields to the intact
// copy — this engine is the only one that tolerates torn page writes by
// construction.
//
// The paper rejects this architecture on performance grounds (every read
// costs two block fetches unless disk heads do on-the-fly selection); the
// machine simulator quantifies that, while this engine demonstrates the
// mechanism is correct.

#ifndef DBMR_STORE_RECOVERY_VERSION_SELECT_ENGINE_H_
#define DBMR_STORE_RECOVERY_VERSION_SELECT_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/stable_list.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"

namespace dbmr::store {

/// Options for VersionSelectEngine.
struct VersionSelectEngineOptions {
  /// Blocks reserved for the stable commit list.
  uint64_t list_blocks = 64;
  /// Parallel replay jobs for Recover(): >= 1 reads every copy once
  /// (zero-copy) and validates/selects in parallel; 0 keeps the two-pass
  /// sequential reference path.  Recovered image is byte-identical either
  /// way; the single-pass path halves recovery disk reads.
  int recovery_jobs = 1;
};

/// The two-copies-per-page version-selection engine.
class VersionSelectEngine : public PageEngine {
 public:
  VersionSelectEngine(VirtualDisk* disk, uint64_t num_pages,
                      VersionSelectEngineOptions options = {});

  Status Format() override;
  Status Recover() override;
  Result<txn::TxnId> Begin() override;
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override;
  Status Abort(txn::TxnId t) override;
  void Crash() override;
  size_t payload_size() const override;
  uint64_t num_pages() const override { return num_pages_; }
  std::string name() const override { return "version-select"; }

  /// --- Introspection ---------------------------------------------------
  /// Runs the version-selection rule against the disk for one page and
  /// returns which copy (0/1) is current; -1 if neither is valid.
  int SelectCurrent(txn::PageId page) const;
  uint64_t commits() const { return commits_; }
  uint64_t torn_copies_rejected() const { return torn_rejected_; }
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const override { return last_stats_; }
  IoRetryStats io_retry_stats() const override { return io_retry_; }

 private:
  struct Copy {
    bool valid = false;
    uint64_t stamp = 0;
    txn::TxnId writer = 0;
    PageData payload;
  };
  struct ActiveTxn {
    /// Pages this transaction has written (their non-current copy).
    std::unordered_set<txn::PageId> written;
  };

  BlockId CopyBlock(txn::PageId page, int which) const;
  Status ReadCopy(txn::PageId page, int which, Copy* out) const;
  Status WriteCopy(txn::PageId page, int which, uint64_t stamp,
                   txn::TxnId writer, const PageData& payload);
  /// Zero-copy variant used by partitioned recovery: `payload` points at
  /// `len` bytes inside a copy-block ref.
  Status WriteCopy(txn::PageId page, int which, uint64_t stamp,
                   txn::TxnId writer, const uint8_t* payload, size_t len);
  /// Selection rule given both copies and the committed set.
  static int Select(const Copy& a, const Copy& b,
                    const std::unordered_set<txn::TxnId>& committed);
  /// The pre-planner two-pass sequential recovery (recovery_jobs == 0).
  Status RecoverSequential();
  /// Single-pass zero-copy scan + parallel selection (recovery_jobs >= 1).
  Status RecoverPartitioned();

  VirtualDisk* disk_;
  uint64_t num_pages_;
  VersionSelectEngineOptions opts_;
  txn::LockManager locks_;
  StableList commit_list_;

  /// Cached selection: page -> (which copy is current, its stamp).
  struct Cached {
    int current = 0;
    uint64_t stamp = 0;
  };
  std::vector<Cached> cache_;
  std::unordered_set<txn::TxnId> committed_;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  uint64_t stamp_counter_ = 0;
  txn::TxnId next_txn_ = 1;

  uint64_t commits_ = 0;
  mutable uint64_t torn_rejected_ = 0;
  RecoveryStats last_stats_;
  mutable IoRetryStats io_retry_;
  /// Scratch block for ReadCopy/WriteCopy so per-page I/O does not
  /// allocate (recovery reads every copy of every page).
  mutable PageData io_buf_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_VERSION_SELECT_ENGINE_H_
