// Differential-file engine (paper §3.3, after Severance & Lohman and
// Stonebraker's hypothetical-database decomposition).
//
// A relation R is represented as R = (B ∪ A) − D:
//   B — the read-only base file (two on-disk copies; merge flips between
//       them so the fold is atomic),
//   A — an append-only file of additions,
//   D — an append-only file of deletions.
//
// Additions and deletions carry global sequence numbers so a re-inserted
// key beats an older deletion.  A transaction buffers its operations and
// commits by appending them to A/D and then atomically rewriting a master
// block holding the committed byte anchors of both files — bytes past the
// anchors are garbage from failed commits and are ignored.  Recovery is a
// scan of B plus the anchored prefixes of A and D; there is nothing to
// undo or redo.
//
// Merge() folds A and D into the alternate copy of B and resets the
// anchors, again committing through the master block.
//
// The paper's cost concern — every query reads extra A/D pages and pays
// set-union/difference CPU — is modeled in machine/SimDifferential; this
// engine establishes the mechanism's correctness.

#ifndef DBMR_STORE_RECOVERY_DIFFERENTIAL_ENGINE_H_
#define DBMR_STORE_RECOVERY_DIFFERENTIAL_ENGINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/replay_plan.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::store {

/// A tuple of the differential relation.
struct Tuple {
  uint64_t key = 0;
  uint64_t value = 0;

  bool operator==(const Tuple&) const = default;
};

/// Options for DifferentialEngine.
struct DifferentialEngineOptions {
  /// Blocks per base-file copy (bounds relation size).
  uint64_t base_blocks = 64;
  /// Blocks for the A (additions) file.
  uint64_t a_blocks = 64;
  /// Blocks for the D (deletions) file.
  uint64_t d_blocks = 64;
  /// Parallel replay jobs for Recover(): >= 1 rebuilds the A/D maps
  /// through the zero-copy planner pipeline (record chunks decoded in
  /// parallel, merged by the seq-max rule, which is order-independent);
  /// 0 keeps the pre-planner sequential scan as the reference path.  The
  /// recovered state is identical at every setting.
  int recovery_jobs = 1;
};

/// Transactional key-value relation with differential-file recovery.
class DifferentialEngine {
 public:
  DifferentialEngine(VirtualDisk* disk, DifferentialEngineOptions options = {});

  /// Initializes an empty relation.
  Status Format();

  /// Rebuilds in-memory state from the master, B, and the anchored
  /// prefixes of A and D.
  Status Recover();

  Result<txn::TxnId> Begin();

  /// Inserts (or overwrites) `key` with `value`.
  Status Insert(txn::TxnId t, uint64_t key, uint64_t value);

  /// Deletes `key` (idempotent).
  Status Remove(txn::TxnId t, uint64_t key);

  /// Point lookup; sees the transaction's own buffered operations.
  Result<std::optional<uint64_t>> Lookup(txn::TxnId t, uint64_t key);

  /// Full (B ∪ A) − D scan merged with the transaction's own operations,
  /// in key order.
  Status Scan(txn::TxnId t, std::vector<Tuple>* out);

  Status Commit(txn::TxnId t);
  Status Abort(txn::TxnId t);

  /// Loses all volatile state; call Recover() next.
  void Crash();

  /// Folds A and D into the alternate base copy and resets the anchors.
  /// Requires no active transactions.
  Status Merge();

  /// --- Introspection ---------------------------------------------------
  uint64_t base_tuples() const { return b_.size(); }
  size_t a_entries() const { return a_.size(); }
  size_t d_entries() const { return d_.size(); }
  uint64_t a_anchor_bytes() const { return a_stream_.anchor; }
  uint64_t d_anchor_bytes() const { return d_stream_.anchor; }
  uint64_t merges() const { return merges_; }
  uint64_t commits() const { return commits_; }
  std::string name() const { return "differential"; }
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const { return last_stats_; }
  IoRetryStats io_retry_stats() const { return io_retry_; }

 private:
  enum class OpKind : uint8_t { kInsert = 1, kDelete = 2 };
  struct Op {
    OpKind kind;
    uint64_t key;
    uint64_t value;  // inserts only
  };
  struct ActiveTxn {
    std::vector<Op> ops;
  };
  /// Byte stream over a block area, committed up to `anchor`.
  struct Stream {
    BlockId first = 0;
    uint64_t blocks = 0;
    uint64_t epoch = 1;
    uint64_t anchor = 0;          // committed bytes (from master)
    std::vector<uint8_t> tail;    // bytes of the unfinalized last block
    BlockId next_block = 0;       // first unfinalized block
    uint64_t length = 0;          // anchor + buffered bytes
  };

  size_t StreamCap() const { return disk_->block_size() - 16; }
  BlockId BaseStart(int which) const;
  Status WriteMaster();
  Status LoadMaster();
  Status AppendToStream(Stream* s, const std::vector<uint8_t>& bytes);
  Status ForceStream(Stream* s);
  Status ScanStream(const Stream& s, std::vector<uint8_t>* out) const;
  /// Zero-copy scan of the committed prefix: segments pointing into the
  /// disk's block storage (same stop rules and reads as ScanStream).
  /// Valid until the disk is next written.
  Status CollectStreamSegments(const Stream& s, SegmentedBytes* out) const;
  /// Planner-pipeline map rebuild (recovery_jobs >= 1): contiguous record
  /// chunks decode in parallel into private maps, then fold by the
  /// seq-max rule in deterministic chunk order.
  Status RecoverMapsPartitioned(const SegmentedBytes& a_bytes,
                                const SegmentedBytes& d_bytes);
  Status LoadStreamWriter(Stream* s);
  Status ResetStream(Stream* s, uint64_t new_epoch);
  Status WriteBase(int which, const std::map<uint64_t, uint64_t>& tuples);
  Status ReadBase(int which, uint64_t count,
                  std::map<uint64_t, uint64_t>* out) const;
  /// Committed visibility of `key` (ignores active transactions).
  std::optional<uint64_t> CommittedLookup(uint64_t key) const;

  VirtualDisk* disk_;
  DifferentialEngineOptions opts_;
  txn::LockManager locks_;

  std::map<uint64_t, uint64_t> b_;               // base: key -> value
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>>
      a_;                                        // key -> (seq, value)
  std::unordered_map<uint64_t, uint64_t> d_;     // key -> seq
  Stream a_stream_;
  Stream d_stream_;
  int current_base_ = 0;
  uint64_t seq_ = 0;
  uint64_t generation_ = 0;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  txn::TxnId next_txn_ = 1;

  uint64_t merges_ = 0;
  uint64_t commits_ = 0;
  RecoveryStats last_stats_;
  mutable IoRetryStats io_retry_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_DIFFERENTIAL_ENGINE_H_
