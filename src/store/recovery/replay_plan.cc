#include "store/recovery/replay_plan.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "core/thread_pool.h"
#include "util/status.h"

namespace dbmr::store {

// ------------------------------------------------------------ SegmentedBytes

void SegmentedBytes::AddSegment(const uint8_t* data, size_t n) {
  if (n == 0) return;
  segs_.push_back(Segment{data, size_, n});
  size_ += n;
}

size_t SegmentedBytes::Locate(uint64_t pos) const {
  DBMR_CHECK(pos < size_);
  // Binary search for the last segment starting at or before pos.
  size_t lo = 0, hi = segs_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    if (segs_[mid].start <= pos) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void SegmentedBytes::CopyOut(uint64_t pos, size_t n, uint8_t* dst) const {
  if (n == 0) return;
  DBMR_CHECK(pos + n <= size_);
  size_t i = Locate(pos);
  uint64_t off = pos - segs_[i].start;
  while (n > 0) {
    const Segment& s = segs_[i];
    const size_t take = std::min<size_t>(n, s.len - static_cast<size_t>(off));
    std::memcpy(dst, s.data + off, take);
    dst += take;
    n -= take;
    off = 0;
    ++i;
  }
}

const uint8_t* SegmentedBytes::ContiguousAt(uint64_t pos, size_t n) const {
  if (n == 0) return nullptr;
  DBMR_CHECK(pos + n <= size_);
  const size_t i = Locate(pos);
  const Segment& s = segs_[i];
  const uint64_t off = pos - s.start;
  if (off + n <= s.len) return s.data + off;
  return nullptr;
}

// -------------------------------------------------------- ReplayPartitioner

size_t ReplayPartitioner::Intern(txn::PageId page) {
  auto [it, inserted] = index_.try_emplace(page, pages_.size());
  if (inserted) {
    pages_.push_back(page);
    parent_.push_back(parent_.size());
  }
  return it->second;
}

void ReplayPartitioner::AddPage(txn::PageId page) { Intern(page); }

size_t ReplayPartitioner::Root(size_t i) const {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];  // halve the path
    i = parent_[i];
  }
  return i;
}

void ReplayPartitioner::Link(txn::PageId a, txn::PageId b) {
  const size_t ra = Root(Intern(a));
  const size_t rb = Root(Intern(b));
  if (ra == rb) return;
  // Union by smaller page id so roots are reproducible (the result's
  // partitioning is order-independent anyway; this keeps Root() stable).
  if (pages_[ra] <= pages_[rb]) {
    parent_[rb] = ra;
  } else {
    parent_[ra] = rb;
  }
}

std::vector<std::vector<txn::PageId>> ReplayPartitioner::Partitions() const {
  // Group by root, then order partitions by smallest member and members
  // ascending — a canonical form independent of insertion or link order.
  std::unordered_map<size_t, std::vector<txn::PageId>> groups;
  for (size_t i = 0; i < pages_.size(); ++i) {
    groups[Root(i)].push_back(pages_[i]);
  }
  std::map<txn::PageId, std::vector<txn::PageId>> ordered;
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    const txn::PageId key = members.front();
    ordered.emplace(key, std::move(members));
  }
  std::vector<std::vector<txn::PageId>> out;
  out.reserve(ordered.size());
  for (auto& [key, members] : ordered) out.push_back(std::move(members));
  return out;
}

// ------------------------------------------------------------ RunReplayJobs

namespace {

/// A process-wide pool per job count.  Pools are created lazily under a
/// registry mutex and leaked deliberately: recovery can run during static
/// teardown of tests, and a leaked pool's threads park forever instead of
/// racing destruction order.  `in_use` serializes ParallelFor (the pool is
/// not reentrant and not shareable mid-job); contenders run sequentially.
struct SharedPool {
  core::ThreadPool* pool;
  std::mutex in_use;
};

SharedPool* PoolFor(int jobs) {
  static std::mutex registry_mu;
  static std::map<int, SharedPool*>* registry = new std::map<int, SharedPool*>();
  std::lock_guard<std::mutex> lk(registry_mu);
  auto it = registry->find(jobs);
  if (it == registry->end()) {
    auto* sp = new SharedPool{new core::ThreadPool(jobs), {}};
    it = registry->emplace(jobs, sp).first;
  }
  return it->second;
}

}  // namespace

void RunReplayJobs(int jobs, size_t n, const std::function<void(size_t)>& fn) {
  if (jobs <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  SharedPool* sp = PoolFor(jobs);
  std::unique_lock<std::mutex> lk(sp->in_use, std::try_to_lock);
  if (!lk.owns_lock()) {
    // Another recovery holds this pool (parallel sweep trials); results do
    // not depend on scheduling, so fall back to the caller's own loop.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  sp->pool->ParallelFor(n, fn);
}

}  // namespace dbmr::store
