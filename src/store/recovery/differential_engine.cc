#include "store/recovery/differential_engine.h"

#include <algorithm>
#include <utility>

#include "store/codec.h"
#include "store/recovery/log_format.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
constexpr uint64_t kMasterMagic = 0x4442'4d52'4449'4631ULL;  // "DBMRDIF1"
constexpr size_t kARecord = 24;  // key, value, seq
constexpr size_t kDRecord = 16;  // key, seq
}  // namespace

DifferentialEngine::DifferentialEngine(VirtualDisk* disk,
                                       DifferentialEngineOptions options)
    : disk_(disk), opts_(options) {
  DBMR_CHECK(disk != nullptr);
  a_stream_.first = 1;
  a_stream_.blocks = opts_.a_blocks;
  d_stream_.first = a_stream_.first + opts_.a_blocks;
  d_stream_.blocks = opts_.d_blocks;
  DBMR_CHECK(BaseStart(1) + opts_.base_blocks <= disk->num_blocks());
}

BlockId DifferentialEngine::BaseStart(int which) const {
  return 1 + opts_.a_blocks + opts_.d_blocks +
         static_cast<BlockId>(which) * opts_.base_blocks;
}

Status DifferentialEngine::WriteMaster() {
  PageData block(disk_->block_size(), 0);
  PutU64(block, 0, kMasterMagic);
  PutU64(block, 8, generation_);
  PutU64(block, 16, static_cast<uint64_t>(current_base_));
  PutU64(block, 24, b_.size());
  PutU64(block, 32, a_stream_.epoch);
  PutU64(block, 40, a_stream_.anchor);
  PutU64(block, 48, d_stream_.epoch);
  PutU64(block, 56, d_stream_.anchor);
  PutU64(block, 64, seq_);
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(0, block); }, &io_retry_);
}

Status DifferentialEngine::LoadMaster() {
  PageData block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *disk_, [&] { return disk_->Read(0, &block); }, &io_retry_));
  if (GetU64(block, 0) != kMasterMagic) {
    return Status::Corruption("differential master invalid");
  }
  generation_ = GetU64(block, 8);
  current_base_ = static_cast<int>(GetU64(block, 16));
  if (current_base_ != 0 && current_base_ != 1) {
    return Status::Corruption("differential master names a bad base");
  }
  const uint64_t b_count = GetU64(block, 24);
  a_stream_.epoch = GetU64(block, 32);
  a_stream_.anchor = GetU64(block, 40);
  d_stream_.epoch = GetU64(block, 48);
  d_stream_.anchor = GetU64(block, 56);
  seq_ = GetU64(block, 64);
  return ReadBase(current_base_, b_count, &b_);
}

Status DifferentialEngine::WriteBase(
    int which, const std::map<uint64_t, uint64_t>& tuples) {
  const size_t per_block = disk_->block_size() / 16;
  if (tuples.size() > per_block * opts_.base_blocks) {
    return Status::ResourceExhausted("base file area full");
  }
  auto it = tuples.begin();
  for (uint64_t b = 0; b < opts_.base_blocks && it != tuples.end(); ++b) {
    PageData block(disk_->block_size(), 0);
    for (size_t i = 0; i < per_block && it != tuples.end(); ++i, ++it) {
      PutU64(block, i * 16, it->first);
      PutU64(block, i * 16 + 8, it->second);
    }
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->Write(BaseStart(which) + b, block); },
        &io_retry_));
  }
  return Status::OK();
}

Status DifferentialEngine::ReadBase(
    int which, uint64_t count, std::map<uint64_t, uint64_t>* out) const {
  out->clear();
  const size_t per_block = disk_->block_size() / 16;
  uint64_t remaining = count;
  PageData block(disk_->block_size());
  for (uint64_t b = 0; b < opts_.base_blocks && remaining > 0; ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_,
        [&] { return disk_->ReadInto(BaseStart(which) + b, block.data()); },
        &io_retry_));
    for (size_t i = 0; i < per_block && remaining > 0; ++i, --remaining) {
      out->emplace(GetU64(block, i * 16), GetU64(block, i * 16 + 8));
    }
  }
  if (remaining != 0) return Status::Corruption("base file truncated");
  return Status::OK();
}

Status DifferentialEngine::AppendToStream(Stream* s,
                                          const std::vector<uint8_t>& bytes) {
  s->tail.insert(s->tail.end(), bytes.begin(), bytes.end());
  s->length += bytes.size();
  return Status::OK();
}

Status DifferentialEngine::ForceStream(Stream* s) {
  const size_t cap = StreamCap();
  while (!s->tail.empty()) {
    const size_t used = std::min(cap, s->tail.size());
    if (s->next_block >= s->first + s->blocks) {
      return Status::ResourceExhausted("differential file full");
    }
    PageData block(disk_->block_size(), 0);
    LogBlockHeader h;
    h.epoch = s->epoch;
    h.used_bytes = static_cast<uint32_t>(used);
    h.EncodeTo(block);
    std::copy(s->tail.begin(), s->tail.begin() + static_cast<long>(used),
              block.begin() + LogBlockHeader::kSize);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->Write(s->next_block, block); },
        &io_retry_));
    if (used == cap) {
      s->tail.erase(s->tail.begin(), s->tail.begin() + static_cast<long>(used));
      ++s->next_block;
    } else {
      break;  // partial tail kept for group fill
    }
  }
  return Status::OK();
}

Status DifferentialEngine::ScanStream(const Stream& s,
                                      std::vector<uint8_t>* out) const {
  // Reads the committed prefix: `anchor` bytes, cut out of epoch-matching
  // blocks.  Bytes past the anchor are uncommitted garbage.
  out->clear();
  const size_t cap = StreamCap();
  uint64_t remaining = s.anchor;
  PageData block(disk_->block_size());
  for (BlockId b = s.first; b < s.first + s.blocks && remaining > 0; ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&, b] { return disk_->ReadInto(b, block.data()); },
        &io_retry_));
    LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != s.epoch || h.used_bytes > cap) {
      return Status::Corruption("differential stream truncated");
    }
    const uint64_t take = std::min<uint64_t>(remaining, h.used_bytes);
    out->insert(out->end(), block.begin() + LogBlockHeader::kSize,
                block.begin() + LogBlockHeader::kSize +
                    static_cast<long>(take));
    remaining -= take;
    if (remaining > 0 && h.used_bytes < cap) {
      return Status::Corruption("differential stream short");
    }
  }
  if (remaining != 0) {
    return Status::Corruption("differential stream anchor beyond data");
  }
  return Status::OK();
}

Status DifferentialEngine::CollectStreamSegments(const Stream& s,
                                                 SegmentedBytes* out) const {
  // Zero-copy twin of ScanStream: same reads, same stop rules, but the
  // committed prefix is exposed as segments into the disk's block storage
  // instead of one flat copy.  Valid until the disk is next written —
  // Recover() performs no writes while the segments are alive.
  const size_t cap = StreamCap();
  uint64_t remaining = s.anchor;
  for (BlockId b = s.first; b < s.first + s.blocks && remaining > 0; ++b) {
    const uint8_t* block = nullptr;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&, b] { return disk_->ReadRef(b, &block); }, &io_retry_));
    LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != s.epoch || h.used_bytes > cap) {
      return Status::Corruption("differential stream truncated");
    }
    const uint64_t take = std::min<uint64_t>(remaining, h.used_bytes);
    out->AddSegment(block + LogBlockHeader::kSize,
                    static_cast<size_t>(take));
    remaining -= take;
    if (remaining > 0 && h.used_bytes < cap) {
      return Status::Corruption("differential stream short");
    }
  }
  if (remaining != 0) {
    return Status::Corruption("differential stream anchor beyond data");
  }
  return Status::OK();
}

Status DifferentialEngine::RecoverMapsPartitioned(
    const SegmentedBytes& a_bytes, const SegmentedBytes& d_bytes) {
  if (a_bytes.size() % kARecord != 0) {
    return Status::Corruption("A file not record-aligned");
  }
  if (d_bytes.size() % kDRecord != 0) {
    return Status::Corruption("D file not record-aligned");
  }
  const size_t a_records = a_bytes.size() / kARecord;
  const size_t d_records = d_bytes.size() / kDRecord;
  last_stats_.replay_records = a_records + d_records;

  const int jobs = EffectiveReplayJobs(opts_.recovery_jobs,
                                       a_bytes.size() + d_bytes.size());
  struct Chunk {
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> a;
    std::unordered_map<uint64_t, uint64_t> d;
  };
  // One contiguous record range per worker and per file; records may
  // straddle block payloads, so each decode tries the zero-copy fast path
  // and falls back to a small stack copy.
  const int n = std::max(1, jobs);
  const size_t a_per = (a_records + n - 1) / n;
  const size_t d_per = (d_records + n - 1) / n;
  std::vector<Chunk> chunks(static_cast<size_t>(n));
  RunReplayJobs(jobs, static_cast<size_t>(n), [&](size_t c) {
    Chunk& out = chunks[c];
    uint8_t buf[kARecord];
    const size_t a_lo = std::min(a_records, c * a_per);
    const size_t a_hi = std::min(a_records, a_lo + a_per);
    for (size_t r = a_lo; r < a_hi; ++r) {
      const size_t pos = r * kARecord;
      const uint8_t* rec = a_bytes.ContiguousAt(pos, kARecord);
      if (rec == nullptr) {
        a_bytes.CopyOut(pos, kARecord, buf);
        rec = buf;
      }
      const uint64_t key = GetU64(rec);
      const uint64_t value = GetU64(rec + 8);
      const uint64_t seq = GetU64(rec + 16);
      auto& slot = out.a[key];
      if (seq >= slot.first) slot = {seq, value};
    }
    const size_t d_lo = std::min(d_records, c * d_per);
    const size_t d_hi = std::min(d_records, d_lo + d_per);
    for (size_t r = d_lo; r < d_hi; ++r) {
      const size_t pos = r * kDRecord;
      const uint8_t* rec = d_bytes.ContiguousAt(pos, kDRecord);
      if (rec == nullptr) {
        d_bytes.CopyOut(pos, kDRecord, buf);
        rec = buf;
      }
      const uint64_t key = GetU64(rec);
      const uint64_t seq = GetU64(rec + 8);
      auto& slot = out.d[key];
      if (seq >= slot) slot = seq;
    }
  });
  // Fold: the seq-max rule is order-independent, so merging chunk maps in
  // chunk order gives the same result as the sequential scan.
  for (const Chunk& c : chunks) {
    for (const auto& [key, sv] : c.a) {
      auto& slot = a_[key];
      if (sv.first >= slot.first) slot = sv;
    }
    for (const auto& [key, seq] : c.d) {
      auto& slot = d_[key];
      if (seq >= slot) slot = seq;
    }
  }
  last_stats_.partitions = static_cast<uint64_t>(n);
  return Status::OK();
}

Status DifferentialEngine::LoadStreamWriter(Stream* s) {
  const size_t cap = StreamCap();
  s->next_block = s->first + s->anchor / cap;
  s->length = s->anchor;
  s->tail.clear();
  const size_t partial = static_cast<size_t>(s->anchor % cap);
  if (partial > 0) {
    PageData block;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->Read(s->next_block, &block); },
        &io_retry_));
    LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != s->epoch || h.used_bytes < partial) {
      return Status::Corruption("differential stream tail invalid");
    }
    s->tail.assign(block.begin() + LogBlockHeader::kSize,
                   block.begin() + LogBlockHeader::kSize +
                       static_cast<long>(partial));
  }
  return Status::OK();
}

Status DifferentialEngine::ResetStream(Stream* s, uint64_t new_epoch) {
  s->epoch = new_epoch;
  s->anchor = 0;
  s->length = 0;
  s->tail.clear();
  s->next_block = s->first;
  return Status::OK();
}

Status DifferentialEngine::Format() {
  b_.clear();
  a_.clear();
  d_.clear();
  seq_ = 0;
  current_base_ = 0;
  generation_ = 1;
  // Epochs advance past any previous life of the disk.
  PageData block;
  uint64_t old_epoch = 0;
  if (disk_->Read(0, &block).ok() && GetU64(block, 0) == kMasterMagic) {
    old_epoch = std::max(GetU64(block, 32), GetU64(block, 48));
  }
  DBMR_RETURN_IF_ERROR(ResetStream(&a_stream_, old_epoch + 1));
  DBMR_RETURN_IF_ERROR(ResetStream(&d_stream_, old_epoch + 1));
  DBMR_RETURN_IF_ERROR(WriteBase(0, b_));
  DBMR_RETURN_IF_ERROR(WriteMaster());
  active_.clear();
  locks_.Reset();
  next_txn_ = 1;
  return Status::OK();
}

Status DifferentialEngine::Recover() {
  disk_->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  DBMR_RETURN_IF_ERROR(LoadMaster());
  a_.clear();
  d_.clear();
  if (opts_.recovery_jobs <= 0) {
    // Reference path: flat copies of the committed prefixes, sequential
    // decode.  Kept verbatim so the planner pipeline has a byte-identical
    // baseline to compare against.
    std::vector<uint8_t> bytes;
    DBMR_RETURN_IF_ERROR(ScanStream(a_stream_, &bytes));
    if (bytes.size() % kARecord != 0) {
      return Status::Corruption("A file not record-aligned");
    }
    last_stats_.replay_records = bytes.size() / kARecord;
    PageData view(bytes.begin(), bytes.end());
    for (size_t p = 0; p < bytes.size(); p += kARecord) {
      const uint64_t key = GetU64(view, p);
      const uint64_t value = GetU64(view, p + 8);
      const uint64_t seq = GetU64(view, p + 16);
      auto& slot = a_[key];
      if (seq >= slot.first) slot = {seq, value};
    }
    DBMR_RETURN_IF_ERROR(ScanStream(d_stream_, &bytes));
    if (bytes.size() % kDRecord != 0) {
      return Status::Corruption("D file not record-aligned");
    }
    last_stats_.replay_records += bytes.size() / kDRecord;
    view.assign(bytes.begin(), bytes.end());
    for (size_t p = 0; p < bytes.size(); p += kDRecord) {
      const uint64_t key = GetU64(view, p);
      const uint64_t seq = GetU64(view, p + 8);
      auto& slot = d_[key];
      if (seq >= slot) slot = seq;
    }
  } else {
    SegmentedBytes a_bytes;
    SegmentedBytes d_bytes;
    DBMR_RETURN_IF_ERROR(CollectStreamSegments(a_stream_, &a_bytes));
    DBMR_RETURN_IF_ERROR(CollectStreamSegments(d_stream_, &d_bytes));
    DBMR_RETURN_IF_ERROR(RecoverMapsPartitioned(a_bytes, d_bytes));
  }
  DBMR_RETURN_IF_ERROR(LoadStreamWriter(&a_stream_));
  DBMR_RETURN_IF_ERROR(LoadStreamWriter(&d_stream_));
  active_.clear();
  locks_.Reset();
  return Status::OK();
}

Result<txn::TxnId> DifferentialEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

Status DifferentialEngine::Insert(txn::TxnId t, uint64_t key,
                                  uint64_t value) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (!locks_.TryAcquire(t, key, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  it->second.ops.push_back(Op{OpKind::kInsert, key, value});
  return Status::OK();
}

Status DifferentialEngine::Remove(txn::TxnId t, uint64_t key) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (!locks_.TryAcquire(t, key, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  it->second.ops.push_back(Op{OpKind::kDelete, key, 0});
  return Status::OK();
}

std::optional<uint64_t> DifferentialEngine::CommittedLookup(
    uint64_t key) const {
  auto a = a_.find(key);
  auto d = d_.find(key);
  const uint64_t a_seq = a != a_.end() ? a->second.first : 0;
  const uint64_t d_seq = d != d_.end() ? d->second : 0;
  if (a != a_.end() && (d == d_.end() || a_seq > d_seq)) {
    return a->second.second;
  }
  if (d != d_.end()) return std::nullopt;
  auto b = b_.find(key);
  if (b != b_.end()) return b->second;
  return std::nullopt;
}

Result<std::optional<uint64_t>> DifferentialEngine::Lookup(txn::TxnId t,
                                                           uint64_t key) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (!locks_.TryAcquire(t, key, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  // Own buffered operations win, latest first.
  for (auto op = it->second.ops.rbegin(); op != it->second.ops.rend();
       ++op) {
    if (op->key != key) continue;
    if (op->kind == OpKind::kInsert) {
      return std::optional<uint64_t>(op->value);
    }
    return std::optional<uint64_t>(std::nullopt);
  }
  return CommittedLookup(key);
}

Status DifferentialEngine::Scan(txn::TxnId t, std::vector<Tuple>* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  std::map<uint64_t, std::optional<uint64_t>> view;
  for (const auto& [key, value] : b_) {
    view[key] = CommittedLookup(key);
  }
  for (const auto& [key, sv] : a_) {
    view[key] = CommittedLookup(key);
  }
  for (const Op& op : it->second.ops) {
    view[op.key] = op.kind == OpKind::kInsert
                       ? std::optional<uint64_t>(op.value)
                       : std::nullopt;
  }
  out->clear();
  for (const auto& [key, value] : view) {
    if (value.has_value()) out->push_back(Tuple{key, *value});
  }
  return Status::OK();
}

Status DifferentialEngine::Commit(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  if (!at.ops.empty()) {
    struct Applied {
      uint64_t key;
      uint64_t seq;
      std::optional<uint64_t> value;
    };
    std::vector<Applied> applied;
    for (const Op& op : at.ops) {
      const uint64_t seq = ++seq_;
      if (op.kind == OpKind::kInsert) {
        PageData rec(kARecord, 0);
        PutU64(rec, 0, op.key);
        PutU64(rec, 8, op.value);
        PutU64(rec, 16, seq);
        DBMR_RETURN_IF_ERROR(
            AppendToStream(&a_stream_, {rec.begin(), rec.end()}));
        applied.push_back(Applied{op.key, seq, op.value});
      } else {
        PageData rec(kDRecord, 0);
        PutU64(rec, 0, op.key);
        PutU64(rec, 8, seq);
        DBMR_RETURN_IF_ERROR(
            AppendToStream(&d_stream_, {rec.begin(), rec.end()}));
        applied.push_back(Applied{op.key, seq, std::nullopt});
      }
    }
    DBMR_RETURN_IF_ERROR(ForceStream(&a_stream_));
    DBMR_RETURN_IF_ERROR(ForceStream(&d_stream_));
    a_stream_.anchor = a_stream_.length;
    d_stream_.anchor = d_stream_.length;
    ++generation_;
    Status st = WriteMaster();
    if (!st.ok()) return st;  // commit never happened; caller crashes
    // --- commit point passed ---
    for (const Applied& ap : applied) {
      if (ap.value.has_value()) {
        a_[ap.key] = {ap.seq, *ap.value};
      } else {
        d_[ap.key] = ap.seq;
      }
    }
  }
  ++commits_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status DifferentialEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void DifferentialEngine::Crash() {
  active_.clear();
  locks_.Reset();
  // Maps, anchors, and stream writers are stale; Recover() reloads them.
}

Status DifferentialEngine::Merge() {
  if (!active_.empty()) {
    return Status::FailedPrecondition("merge requires no active transactions");
  }
  std::map<uint64_t, uint64_t> folded = b_;
  for (const auto& [key, sv] : a_) {
    auto v = CommittedLookup(key);
    if (v.has_value()) {
      folded[key] = *v;
    } else {
      folded.erase(key);
    }
  }
  for (const auto& [key, seq] : d_) {
    if (!CommittedLookup(key).has_value()) folded.erase(key);
  }
  const int alternate = 1 - current_base_;
  DBMR_RETURN_IF_ERROR(WriteBase(alternate, folded));
  // Atomically switch: new base, empty differential files (fresh epochs).
  b_ = std::move(folded);
  current_base_ = alternate;
  const uint64_t new_epoch =
      std::max(a_stream_.epoch, d_stream_.epoch) + 1;
  DBMR_RETURN_IF_ERROR(ResetStream(&a_stream_, new_epoch));
  DBMR_RETURN_IF_ERROR(ResetStream(&d_stream_, new_epoch));
  ++generation_;
  DBMR_RETURN_IF_ERROR(WriteMaster());
  a_.clear();
  d_.clear();
  ++merges_;
  return Status::OK();
}

}  // namespace dbmr::store
