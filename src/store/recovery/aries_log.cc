#include "store/recovery/aries_log.h"

#include <cstring>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
// Record wire layout (see AriesLogRecord::kFixedBytes):
//   u32 total_len | u8 kind | u64 txn | u64 page | u64 prev_lsn |
//   u64 undo_next_lsn | u32 offset | u32 before_len | u32 after_len |
//   before | after
constexpr size_t kFixed = AriesLogRecord::kFixedBytes;
}  // namespace

size_t AriesLogRecord::EncodedSize() const {
  return kFixed + before.size() + after.size();
}

size_t EncodeAriesRecord(const AriesLogRecord& rec, PageData& buf,
                         size_t pos) {
  const size_t total = rec.EncodedSize();
  DBMR_CHECK(pos + total <= buf.size());
  PutU32(buf, pos, static_cast<uint32_t>(total));
  buf[pos + 4] = static_cast<uint8_t>(rec.kind);
  PutU64(buf, pos + 5, rec.txn);
  PutU64(buf, pos + 13, rec.page);
  PutU64(buf, pos + 21, rec.prev_lsn);
  PutU64(buf, pos + 29, rec.undo_next_lsn);
  PutU32(buf, pos + 37, rec.offset);
  PutU32(buf, pos + 41, static_cast<uint32_t>(rec.before.size()));
  PutU32(buf, pos + 45, static_cast<uint32_t>(rec.after.size()));
  size_t p = pos + kFixed;
  if (!rec.before.empty()) {
    std::memcpy(buf.data() + p, rec.before.data(), rec.before.size());
    p += rec.before.size();
  }
  if (!rec.after.empty()) {
    std::memcpy(buf.data() + p, rec.after.data(), rec.after.size());
    p += rec.after.size();
  }
  DBMR_CHECK(p == pos + total);
  return p;
}

namespace {
/// Decodes the fixed header at `hdr` into `out` and validates the length
/// fields against `total`.  Shared by both decode paths.
Status DecodeHeader(const uint8_t* hdr, uint32_t total,
                    AriesLogRecordRef* out) {
  const uint8_t kind = hdr[4];
  if (kind < static_cast<uint8_t>(LogRecordKind::kUpdate) ||
      kind > static_cast<uint8_t>(LogRecordKind::kCheckpoint)) {
    return Status::Corruption(
        StrFormat("aries record kind %u invalid", kind));
  }
  out->kind = static_cast<LogRecordKind>(kind);
  out->txn = GetU64(hdr + 5);
  out->page = GetU64(hdr + 13);
  out->prev_lsn = GetU64(hdr + 21);
  out->undo_next_lsn = GetU64(hdr + 29);
  out->offset = GetU32(hdr + 37);
  out->before_len = GetU32(hdr + 41);
  out->after_len = GetU32(hdr + 45);
  if (kFixed + out->before_len + out->after_len != total) {
    return Status::Corruption("aries record image lengths inconsistent");
  }
  return Status::OK();
}
}  // namespace

Status DecodeAriesRecord(const PageData& buf, size_t* pos,
                         AriesLogRecord* out) {
  const size_t p = *pos;
  if (p + kFixed > buf.size()) {
    return Status::Corruption("aries record header past buffer end");
  }
  const uint32_t total = GetU32(buf, p);
  if (total < kFixed || p + total > buf.size()) {
    return Status::Corruption(
        StrFormat("aries record length %u invalid at offset %zu", total, p));
  }
  AriesLogRecordRef ref;
  DBMR_RETURN_IF_ERROR(DecodeHeader(buf.data() + p, total, &ref));
  out->kind = ref.kind;
  out->txn = ref.txn;
  out->page = ref.page;
  out->prev_lsn = ref.prev_lsn;
  out->undo_next_lsn = ref.undo_next_lsn;
  out->offset = ref.offset;
  const uint8_t* images = buf.data() + p + kFixed;
  out->before.assign(images, images + ref.before_len);
  out->after.assign(images + ref.before_len,
                    images + ref.before_len + ref.after_len);
  *pos = p + total;
  return Status::OK();
}

Status DecodeAriesRecordRef(const SegmentedBytes& stream, uint64_t* pos,
                            AriesLogRecordRef* out) {
  const uint64_t p = *pos;
  if (p + kFixed > stream.size()) {
    return Status::Corruption("aries record header past stream end");
  }
  uint8_t hdr[kFixed];
  stream.CopyOut(p, kFixed, hdr);
  const uint32_t total = GetU32(hdr);
  if (total < kFixed || p + total > stream.size()) {
    return Status::Corruption(
        StrFormat("aries record length %u invalid at offset %llu", total,
                  static_cast<unsigned long long>(p)));
  }
  DBMR_RETURN_IF_ERROR(DecodeHeader(hdr, total, out));
  out->before_pos = p + kFixed;
  out->after_pos = out->before_pos + out->before_len;
  *pos = p + total;
  return Status::OK();
}

void AriesLogMaster::EncodeTo(PageData& block) const {
  DBMR_CHECK(block.size() >= 56);
  PutU64(block, 0, kMagic);
  PutU64(block, 8, epoch);
  PutU64(block, 16, start_block);
  PutU64(block, 24, start_offset);
  PutU64(block, 32, epoch_base_lsn);
  PutU64(block, 40, checkpoint_lsn);
  PutU64(block, 48, first_epoch);
}

Status AriesLogMaster::DecodeFrom(const PageData& block,
                                  AriesLogMaster* out) {
  if (block.size() < 56) return Status::Corruption("bad aries master block");
  return DecodeFrom(block.data(), out);
}

Status AriesLogMaster::DecodeFrom(const uint8_t* block,
                                  AriesLogMaster* out) {
  if (GetU64(block) != kMagic) {
    return Status::Corruption("bad aries master block");
  }
  out->epoch = GetU64(block + 8);
  out->start_block = GetU64(block + 16);
  out->start_offset = GetU64(block + 24);
  out->epoch_base_lsn = GetU64(block + 32);
  out->checkpoint_lsn = GetU64(block + 40);
  out->first_epoch = GetU64(block + 48);
  if (out->first_epoch == 0 || out->first_epoch > out->epoch) {
    return Status::Corruption("bad aries master block");
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeAriesCheckpoint(const AriesCheckpointData& data) {
  PageData buf(4 + data.dirty_pages.size() * 16 + 4 + data.txns.size() * 16,
               0);
  size_t p = 0;
  PutU32(buf, p, static_cast<uint32_t>(data.dirty_pages.size()));
  p += 4;
  for (const auto& d : data.dirty_pages) {
    PutU64(buf, p, d.page);
    PutU64(buf, p + 8, d.rec_lsn);
    p += 16;
  }
  PutU32(buf, p, static_cast<uint32_t>(data.txns.size()));
  p += 4;
  for (const auto& t : data.txns) {
    PutU64(buf, p, t.txn);
    PutU64(buf, p + 8, t.last_lsn);
    p += 16;
  }
  DBMR_CHECK(p == buf.size());
  return buf;
}

Status DecodeAriesCheckpoint(const uint8_t* data, size_t len,
                             AriesCheckpointData* out) {
  size_t p = 0;
  if (p + 4 > len) return Status::Corruption("aries checkpoint truncated");
  const uint32_t n_dirty = GetU32(data + p);
  p += 4;
  if (p + static_cast<size_t>(n_dirty) * 16 > len) {
    return Status::Corruption("aries checkpoint dirty-page table truncated");
  }
  out->dirty_pages.clear();
  out->dirty_pages.reserve(n_dirty);
  for (uint32_t i = 0; i < n_dirty; ++i) {
    out->dirty_pages.push_back(
        {GetU64(data + p), GetU64(data + p + 8)});
    p += 16;
  }
  if (p + 4 > len) return Status::Corruption("aries checkpoint truncated");
  const uint32_t n_txns = GetU32(data + p);
  p += 4;
  if (p + static_cast<size_t>(n_txns) * 16 != len) {
    return Status::Corruption("aries checkpoint txn table truncated");
  }
  out->txns.clear();
  out->txns.reserve(n_txns);
  for (uint32_t i = 0; i < n_txns; ++i) {
    out->txns.push_back({GetU64(data + p), GetU64(data + p + 8)});
    p += 16;
  }
  return Status::OK();
}

}  // namespace dbmr::store
