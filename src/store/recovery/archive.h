// Fuzzy archive checkpoints for media recovery (paper §4).
//
// A crash takes volatile state; a MEDIA failure takes a whole disk.  The
// log alone cannot rebuild a lost data disk unless it reaches back to
// Format, so the engines that truncate their logs keep an ARCHIVE copy of
// the database on a separate disk: a page-by-page sweep of the data disk
// plus a checkpoint record (the archive master).  Media recovery is then
// archive image + replay of every log record since the sweep.
//
// The sweep is FUZZY in the paper's sense: it copies pages while the
// system keeps running, with no quiescing and no consistency of its own.
// Two things make that safe here:
//
//  * Ordering — the engine sweeps before every log-truncation point
//    (Format, full checkpoint, end of recovery) and before a fuzzy
//    checkpoint advances its scan horizon.  Every update that the log has
//    dropped is therefore already in the archive, so
//    archive + surviving log ⊇ every committed update, always.
//  * Version-driven replay — recovery decides per page what to redo by
//    comparing page version numbers, so an archive holding a mix of old
//    and new page images (a sweep cut down by a crash, or pages copied
//    while transactions run) replays exactly like the data disk image it
//    is standing in for.  Uncommitted bytes swept into the archive are
//    undone by the same records that would have undone them on the data
//    disk.
//
// Archive disk layout: block 0 is the master record, blocks 1..num_pages
// are the page images, same block size as the data disk.

#ifndef DBMR_STORE_RECOVERY_ARCHIVE_H_
#define DBMR_STORE_RECOVERY_ARCHIVE_H_

#include <cstdint>

#include "store/io_retry.h"
#include "store/virtual_disk.h"
#include "util/status.h"

namespace dbmr::store {

/// The archive's checkpoint record, stored in block 0 of the archive disk.
struct ArchiveMaster {
  static constexpr uint64_t kMagic = 0x4442'4d52'4152'4348ULL;  // "DBMRARCH"
  static constexpr size_t kSize = 32;

  uint64_t sweep_seq = 0;   ///< completed sweeps since Format
  uint64_t num_pages = 0;   ///< page images the archive covers
  uint64_t block_size = 0;  ///< geometry stamp, rejects mismatched disks

  void EncodeTo(PageData& block) const;
  static Status DecodeFrom(const PageData& block, ArchiveMaster* out);
};

/// Archive checkpoint storage over a borrowed VirtualDisk.
///
/// All device I/O goes through bounded retry (store/io_retry.h): a
/// transient fault costs a re-attempt, not a failed sweep.  Retry tallies
/// land in the caller's IoRetryStats when one is supplied.
class ArchiveStore {
 public:
  /// `disk` is borrowed and must outlive the store.  Geometry required:
  /// at least 1 + num_pages blocks of the data disk's block size.
  explicit ArchiveStore(VirtualDisk* disk) : disk_(disk) {}

  /// Initializes the master record (sweep_seq 0) and zeroes the page
  /// images so a reused disk cannot leak a previous life's pages into a
  /// later Restore.
  Status Format(uint64_t num_pages, size_t block_size);

  /// Fuzzy sweep: copies blocks [0, num_pages) of `src` into the archive
  /// one page at a time, then durably bumps sweep_seq.  A sweep cut down
  /// mid-copy leaves a mix of old and new images — safe by the version
  /// argument above.
  Status Sweep(VirtualDisk* src, uint64_t num_pages, IoRetryStats* retry);

  /// Copies every archived page image onto `dst` (blocks [0, num_pages)),
  /// typically a freshly replaced medium.  The caller must replay its log
  /// afterwards to roll the image forward.
  Status Restore(VirtualDisk* dst, uint64_t num_pages,
                 IoRetryStats* retry) const;

  /// Checks that the archive carries a valid master matching the given
  /// geometry; kCorruption otherwise.  Run before trusting Restore.
  Status Validate(uint64_t num_pages, size_t block_size) const;

  VirtualDisk* disk() const { return disk_; }

 private:
  VirtualDisk* disk_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_ARCHIVE_H_
