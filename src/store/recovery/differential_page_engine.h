// PageEngine facade over the differential-file engine.
//
// The differential mechanism (paper §3.3) is a key-value relation, not a
// page store, so it cannot be exercised by the cross-engine contract and
// torture harnesses directly.  This adapter closes the gap: each logical
// page is represented as payload_size()/8 consecutive u64 keys
// (key = page * words + i holds payload bytes [8i, 8i+8)), which maps page
// reads/writes onto Lookup/Insert while preserving the differential
// engine's commit, abort, crash, and recovery semantics unchanged.  An
// absent key reads as zero, so fresh pages are all-zero like every other
// engine.
//
// Locking is per key; a page write locks all of its keys exclusively, so
// page-level conflict behavior matches the other engines (the first
// conflicting key aborts the request under no-wait).

#ifndef DBMR_STORE_RECOVERY_DIFFERENTIAL_PAGE_ENGINE_H_
#define DBMR_STORE_RECOVERY_DIFFERENTIAL_PAGE_ENGINE_H_

#include <cstdint>
#include <string>

#include "store/page_engine.h"
#include "store/recovery/differential_engine.h"
#include "store/virtual_disk.h"

namespace dbmr::store {

/// Transactional page store backed by a DifferentialEngine.
class DifferentialPageEngine : public PageEngine {
 public:
  /// `payload_bytes` must be a positive multiple of 8 and at most the
  /// disk's block size.  The differential engine's A/D areas must be sized
  /// for num_pages * payload_bytes/8 keys worth of traffic between merges.
  DifferentialPageEngine(VirtualDisk* disk, uint64_t num_pages,
                         size_t payload_bytes = 32,
                         DifferentialEngineOptions options = {});

  Status Format() override { return inner_.Format(); }
  Status Recover() override { return inner_.Recover(); }
  Result<txn::TxnId> Begin() override { return inner_.Begin(); }
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override { return inner_.Commit(t); }
  Status Abort(txn::TxnId t) override { return inner_.Abort(t); }
  void Crash() override { inner_.Crash(); }
  size_t payload_size() const override { return payload_bytes_; }
  uint64_t num_pages() const override { return num_pages_; }
  std::string name() const override { return "differential"; }
  RecoveryStats last_recovery_stats() const override {
    return inner_.last_recovery_stats();
  }
  IoRetryStats io_retry_stats() const override {
    return inner_.io_retry_stats();
  }

  DifferentialEngine& inner() { return inner_; }

 private:
  uint64_t num_pages_;
  size_t payload_bytes_;
  uint64_t words_;  // keys per page
  DifferentialEngine inner_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_DIFFERENTIAL_PAGE_ENGINE_H_
