// On-disk log record and log block encoding for the WAL engine.
//
// A log is an append-only sequence of fixed-size blocks on a VirtualDisk.
// Block 0 is the log master: {magic, epoch, start_block}.  Data blocks
// carry {epoch, used_bytes, n_records} followed by packed records.  A
// partially filled block may be rewritten in place with more records (same
// epoch, larger n_records) — the standard group-fill technique; recovery
// reads whatever state of the block survived.
//
// Record kinds:
//   kUpdate — page update: before/after images (physical) or byte-range
//             diffs (logical), plus the page's new version number.
//   kClr    — compensation record written by Abort; redo-only.
//   kCommit / kAbort — transaction outcome.
//   kCheckpoint — quiescent checkpoint marker.

#ifndef DBMR_STORE_RECOVERY_LOG_FORMAT_H_
#define DBMR_STORE_RECOVERY_LOG_FORMAT_H_

#include <cstdint>
#include <vector>

#include "store/page.h"
#include "store/recovery/replay_plan.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::store {

/// Types of log records.
enum class LogRecordKind : uint8_t {
  kUpdate = 1,
  kClr = 2,
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
};

/// A decoded log record.
struct LogRecord {
  LogRecordKind kind = LogRecordKind::kUpdate;
  txn::TxnId txn = txn::kNoTxn;
  txn::PageId page = 0;
  /// Version the page has AFTER this update applies.
  uint64_t page_version = 0;
  /// Byte offset of the (possibly partial) images within the page payload.
  uint32_t offset = 0;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;

  /// Bytes of the fixed header preceding the images:
  ///   u32 total_len | u8 kind | u64 txn | u64 page | u64 page_version |
  ///   u32 offset | u32 before_len | u32 after_len
  static constexpr size_t kFixedBytes = 4 + 1 + 8 + 8 + 8 + 4 + 4 + 4;

  /// Encoded size in bytes.
  size_t EncodedSize() const;
};

/// Serializes `rec` at `pos` in `buf` (which must have room).
/// Returns the new position.
size_t EncodeLogRecord(const LogRecord& rec, PageData& buf, size_t pos);

/// Parses one record at `pos`; advances `*pos`.
Status DecodeLogRecord(const PageData& buf, size_t* pos, LogRecord* out);

/// A decoded log record whose images point into the scanned stream bytes
/// instead of owning copies.  Recovery decodes thousands of records per
/// pass; the view form keeps that allocation-free.  Valid only while the
/// buffer passed to DecodeLogRecordView is alive and unmodified.
struct LogRecordView {
  LogRecordKind kind = LogRecordKind::kUpdate;
  txn::TxnId txn = txn::kNoTxn;
  txn::PageId page = 0;
  uint64_t page_version = 0;
  uint32_t offset = 0;
  const uint8_t* before = nullptr;
  size_t before_len = 0;
  const uint8_t* after = nullptr;
  size_t after_len = 0;
};

/// Parses one record at `pos` without copying its images; advances `*pos`.
Status DecodeLogRecordView(const PageData& buf, size_t* pos,
                           LogRecordView* out);

/// A decoded record whose images are logical positions within a log
/// stream's byte sequence instead of pointers, so it can be decoded from
/// non-contiguous storage (SegmentedBytes over zero-copy block refs) and
/// applied by gather-copying straight from log blocks into the page.
struct LogRecordRef {
  LogRecordKind kind = LogRecordKind::kUpdate;
  txn::TxnId txn = txn::kNoTxn;
  txn::PageId page = 0;
  uint64_t page_version = 0;
  uint32_t offset = 0;
  uint32_t stream = 0;  ///< log-stream index; filled by the scanner
  uint64_t before_pos = 0;
  uint32_t before_len = 0;
  uint64_t after_pos = 0;
  uint32_t after_len = 0;
};

/// Parses one record at `*pos` of the segmented stream; advances `*pos`.
/// Corruption on a truncated or inconsistent record (recovery treats that
/// as the never-durable tail, exactly like DecodeLogRecordView).
Status DecodeLogRecordRef(const SegmentedBytes& stream, uint64_t* pos,
                          LogRecordRef* out);

/// Header layout of a log data block.
struct LogBlockHeader {
  uint64_t epoch = 0;
  uint32_t used_bytes = 0;
  uint32_t n_records = 0;

  static constexpr size_t kSize = 16;

  void EncodeTo(PageData& block) const;
  static LogBlockHeader DecodeFrom(const PageData& block);
  /// Zero-copy variant for block refs; `block` must hold >= kSize bytes.
  static LogBlockHeader DecodeFrom(const uint8_t* block);
};

/// Log master block (block 0).  `start_block`/`start_offset` give the scan
/// origin: a fuzzy checkpoint advances them past records that are no
/// longer needed (everything before the oldest active transaction's first
/// record) without quiescing the system.
struct LogMaster {
  static constexpr uint64_t kMagic = 0x4442'4d52'4c4f'4731ULL;  // "DBMRLOG1"
  uint64_t epoch = 1;
  uint64_t start_block = 1;
  /// Bytes to skip within the first scanned block (records before the
  /// checkpoint horizon that share its block).
  uint64_t start_offset = 0;

  void EncodeTo(PageData& block) const;
  static Status DecodeFrom(const PageData& block, LogMaster* out);
  /// Zero-copy variant for block refs; `block` must hold >= 32 bytes
  /// (every VirtualDisk block does).
  static Status DecodeFrom(const uint8_t* block, LogMaster* out);
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_LOG_FORMAT_H_
