#include "store/recovery/shadow_engine.h"

#include <algorithm>
#include <utility>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
constexpr uint64_t kMasterMagic = 0x4442'4d52'5348'4431ULL;  // "DBMRSHD1"
}  // namespace

ShadowEngine::ShadowEngine(VirtualDisk* disk, uint64_t num_pages,
                           ShadowEngineOptions options)
    : disk_(disk), num_pages_(num_pages), opts_(options) {
  DBMR_CHECK(disk != nullptr);
  DBMR_CHECK(num_pages > 0);
  // Need master + two tables + at least one data block per page + slack.
  DBMR_CHECK(DataStart() + num_pages < disk_->num_blocks());
}

uint64_t ShadowEngine::TableBlocks() const {
  const uint64_t entries_per_block = disk_->block_size() / 8;
  return (num_pages_ + entries_per_block - 1) / entries_per_block;
}

BlockId ShadowEngine::TableStart(int which) const {
  return 1 + static_cast<BlockId>(which) * TableBlocks();
}

BlockId ShadowEngine::DataStart() const { return 1 + 2 * TableBlocks(); }

Status ShadowEngine::WriteMaster(int which, uint64_t generation) {
  PageData block(disk_->block_size(), 0);
  PutU64(block, 0, kMasterMagic);
  PutU64(block, 8, static_cast<uint64_t>(which));
  PutU64(block, 16, generation);
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(0, block); }, &io_retry_);
}

Status ShadowEngine::WriteTable(int which,
                                const std::vector<BlockId>& table) {
  const uint64_t per_block = disk_->block_size() / 8;
  for (uint64_t b = 0; b < TableBlocks(); ++b) {
    PageData block(disk_->block_size(), 0);
    for (uint64_t i = 0; i < per_block; ++i) {
      uint64_t idx = b * per_block + i;
      if (idx >= num_pages_) break;
      PutU64(block, static_cast<size_t>(i * 8), table[idx]);
    }
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->Write(TableStart(which) + b, block); },
        &io_retry_));
  }
  return Status::OK();
}

Status ShadowEngine::ReadTable(int which, std::vector<BlockId>* table) const {
  const uint64_t per_block = disk_->block_size() / 8;
  table->assign(num_pages_, 0);
  PageData block(disk_->block_size());
  for (uint64_t b = 0; b < TableBlocks(); ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_,
        [&] { return disk_->ReadInto(TableStart(which) + b, block.data()); },
        &io_retry_));
    for (uint64_t i = 0; i < per_block; ++i) {
      uint64_t idx = b * per_block + i;
      if (idx >= num_pages_) break;
      (*table)[idx] = GetU64(block, static_cast<size_t>(i * 8));
    }
  }
  return Status::OK();
}

Status ShadowEngine::ReadTablePartitioned(int which,
                                          std::vector<BlockId>* table) {
  // Scan (caller thread): zero-copy refs to every table block.  The refs
  // stay valid through the decode — nothing writes the disk until the
  // table is loaded.
  const uint64_t tb = TableBlocks();
  std::vector<const uint8_t*> refs(tb, nullptr);
  for (uint64_t b = 0; b < tb; ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_,
        [&] { return disk_->ReadRef(TableStart(which) + b, &refs[b]); },
        &io_retry_));
  }
  // Decode (parallel over table blocks): pure memory walk into disjoint
  // slices of the output table, so workers never contend.
  const uint64_t per_block = disk_->block_size() / 8;
  table->assign(num_pages_, 0);
  const int jobs = EffectiveReplayJobs(
      opts_.recovery_jobs, static_cast<size_t>(tb) * disk_->block_size());
  RunReplayJobs(jobs, tb, [&](size_t b) {
    for (uint64_t i = 0; i < per_block; ++i) {
      uint64_t idx = b * per_block + i;
      if (idx >= num_pages_) break;
      (*table)[idx] = GetU64(refs[b] + i * 8);
    }
  });
  last_stats_.partitions = tb;
  return Status::OK();
}

Status ShadowEngine::Format() {
  // Identity layout: page i lives at DataStart() + i.
  committed_table_.assign(num_pages_, 0);
  for (uint64_t i = 0; i < num_pages_; ++i) {
    committed_table_[i] = DataStart() + i;
  }
  PageData zero(disk_->block_size(), 0);
  for (BlockId b = DataStart(); b < disk_->num_blocks(); ++b) {
    DBMR_RETURN_IF_ERROR(disk_->Write(b, zero));
  }
  DBMR_RETURN_IF_ERROR(WriteTable(0, committed_table_));
  DBMR_RETURN_IF_ERROR(WriteTable(1, committed_table_));
  DBMR_RETURN_IF_ERROR(WriteMaster(0, 1));
  current_table_ = 0;
  generation_ = 1;
  RebuildFreeSet();
  active_.clear();
  locks_.Reset();
  next_txn_ = 1;
  return Status::OK();
}

void ShadowEngine::RebuildFreeSet() {
  free_.clear();
  std::set<BlockId> used(committed_table_.begin(), committed_table_.end());
  for (BlockId b = DataStart(); b < disk_->num_blocks(); ++b) {
    if (used.find(b) == used.end()) free_.insert(b);
  }
}

Status ShadowEngine::Recover() {
  disk_->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  PageData block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *disk_, [&] { return disk_->Read(0, &block); }, &io_retry_));
  if (GetU64(block, 0) != kMasterMagic) {
    return Status::Corruption("shadow master record invalid");
  }
  current_table_ = static_cast<int>(GetU64(block, 8));
  if (current_table_ != 0 && current_table_ != 1) {
    return Status::Corruption("shadow master names a bad table");
  }
  generation_ = GetU64(block, 16);
  if (opts_.recovery_jobs <= 0) {
    DBMR_RETURN_IF_ERROR(ReadTable(current_table_, &committed_table_));
  } else {
    DBMR_RETURN_IF_ERROR(
        ReadTablePartitioned(current_table_, &committed_table_));
  }
  last_stats_.replay_records = TableBlocks();
  // Blocks allocated by in-flight transactions are unreferenced by the
  // committed table and simply fall back into the free set: undo for free.
  RebuildFreeSet();
  active_.clear();
  locks_.Reset();
  return Status::OK();
}

Result<txn::TxnId> ShadowEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

BlockId ShadowEngine::ResolveBlock(const ActiveTxn& at,
                                   txn::PageId page) const {
  auto it = at.mapping.find(page);
  if (it != at.mapping.end()) return it->second;
  return committed_table_[page];
}

Status ShadowEngine::Read(txn::TxnId t, txn::PageId page, PageData* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (!locks_.TryAcquire(t, page, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  const BlockId b = ResolveBlock(it->second, page);
  return RetryDiskIo(
      *disk_, [&] { return disk_->Read(b, out); }, &io_retry_);
}

Result<BlockId> ShadowEngine::AllocBlock(BlockId near) {
  if (free_.empty()) {
    return Status::ResourceExhausted("no free shadow blocks");
  }
  if (opts_.alloc == ShadowAllocPolicy::kFirstFree) {
    BlockId b = *free_.begin();
    free_.erase(free_.begin());
    return b;
  }
  // kNearShadow: closest free block to `near`.
  auto hi = free_.lower_bound(near);
  BlockId best;
  if (hi == free_.end()) {
    best = *std::prev(hi);
  } else if (hi == free_.begin()) {
    best = *hi;
  } else {
    BlockId above = *hi;
    BlockId below = *std::prev(hi);
    best = (above - near <= near - below) ? above : below;
  }
  free_.erase(best);
  return best;
}

Status ShadowEngine::Write(txn::TxnId t, txn::PageId page,
                           const PageData& payload) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (payload.size() != payload_size()) {
    return Status::InvalidArgument(
        StrFormat("payload size %zu != %zu", payload.size(),
                  payload_size()));
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  ActiveTxn& at = it->second;
  auto prev = at.mapping.find(page);
  if (prev != at.mapping.end()) {
    // Second write by the same transaction: overwrite its own new copy in
    // place (it is not a shadow of anything).
    return RetryDiskIo(
        *disk_, [&] { return disk_->Write(prev->second, payload); },
        &io_retry_);
  }
  auto blk = AllocBlock(committed_table_[page]);
  DBMR_RETURN_IF_ERROR(blk.status());
  Status st = RetryDiskIo(
      *disk_, [&] { return disk_->Write(*blk, payload); }, &io_retry_);
  if (!st.ok()) {
    free_.insert(*blk);
    return st;
  }
  at.mapping.emplace(page, *blk);
  return Status::OK();
}

Status ShadowEngine::Commit(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  if (at.mapping.empty()) {  // read-only: nothing to flip
    locks_.ReleaseAll(t);
    active_.erase(it);
    ++commits_;
    return Status::OK();
  }
  std::vector<BlockId> new_table = committed_table_;
  for (const auto& [page, block] : at.mapping) new_table[page] = block;
  const int alternate = 1 - current_table_;
  DBMR_RETURN_IF_ERROR(WriteTable(alternate, new_table));
  DBMR_RETURN_IF_ERROR(WriteMaster(alternate, generation_ + 1));
  // --- commit point passed ---
  for (const auto& [page, block] : at.mapping) {
    free_.insert(committed_table_[page]);  // old shadow reusable
  }
  committed_table_ = std::move(new_table);
  current_table_ = alternate;
  ++generation_;
  ++table_flips_;
  ++commits_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status ShadowEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  for (const auto& [page, block] : it->second.mapping) free_.insert(block);
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void ShadowEngine::Crash() {
  // All volatile state is reconstructed by Recover(); blocks held by
  // in-flight transactions leak back via RebuildFreeSet.
  active_.clear();
  locks_.Reset();
}

BlockId ShadowEngine::CommittedBlockOf(txn::PageId page) const {
  DBMR_CHECK(page < num_pages_);
  return committed_table_[page];
}

double ShadowEngine::ClusteringFactor() const {
  if (num_pages_ < 2) return 1.0;
  uint64_t adjacent = 0;
  for (uint64_t i = 0; i + 1 < num_pages_; ++i) {
    if (committed_table_[i] + 1 == committed_table_[i + 1]) ++adjacent;
  }
  return static_cast<double>(adjacent) /
         static_cast<double>(num_pages_ - 1);
}

}  // namespace dbmr::store
