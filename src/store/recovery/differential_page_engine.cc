#include "store/recovery/differential_page_engine.h"

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

DifferentialPageEngine::DifferentialPageEngine(
    VirtualDisk* disk, uint64_t num_pages, size_t payload_bytes,
    DifferentialEngineOptions options)
    : num_pages_(num_pages),
      payload_bytes_(payload_bytes),
      words_(payload_bytes / 8),
      inner_(disk, options) {
  DBMR_CHECK(payload_bytes > 0 && payload_bytes % 8 == 0);
  DBMR_CHECK(payload_bytes <= disk->block_size());
}

Status DifferentialPageEngine::Read(txn::TxnId t, txn::PageId page,
                                    PageData* out) {
  if (page >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("differential: page %llu beyond %llu",
                  static_cast<unsigned long long>(page),
                  static_cast<unsigned long long>(num_pages_)));
  }
  PageData result(payload_bytes_, 0);
  for (uint64_t i = 0; i < words_; ++i) {
    auto v = inner_.Lookup(t, page * words_ + i);
    if (!v.ok()) return v.status();
    if (v->has_value()) PutU64(result, i * 8, **v);
  }
  *out = std::move(result);
  return Status::OK();
}

Status DifferentialPageEngine::Write(txn::TxnId t, txn::PageId page,
                                     const PageData& payload) {
  if (page >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("differential: page %llu beyond %llu",
                  static_cast<unsigned long long>(page),
                  static_cast<unsigned long long>(num_pages_)));
  }
  if (payload.size() != payload_bytes_) {
    return Status::InvalidArgument(
        StrFormat("differential: payload size %zu != %zu", payload.size(),
                  payload_bytes_));
  }
  for (uint64_t i = 0; i < words_; ++i) {
    DBMR_RETURN_IF_ERROR(
        inner_.Insert(t, page * words_ + i, GetU64(payload, i * 8)));
  }
  return Status::OK();
}

}  // namespace dbmr::store
