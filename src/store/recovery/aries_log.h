// On-disk record, master, and checkpoint encoding for the ARIES engine.
//
// ARIES needs strictly more per record than the WAL engine's format: every
// record carries its transaction's backward chain (prev_lsn) and CLRs carry
// the undo-next pointer that makes rollback restartable.  Records are
// addressed by LSN — the record's byte offset in the logical log stream,
// assigned at append time and never reused (truncation advances the epoch
// base instead of resetting positions), so a page's pageLSN stays
// comparable against the log forever.
//
// The stream reuses the WAL block container (LogBlockHeader: {epoch,
// used_bytes, n_records} + packed records, group-filled partial tail
// block), but block 0 holds the richer AriesLogMaster: besides the scan
// origin it records the LSN of the first byte of block 1 (epoch_base_lsn),
// which ties physical block positions back to LSNs, and the LSN of the
// most recent fuzzy checkpoint record, where restart analysis begins.
//
// Record kinds reuse LogRecordKind:
//   kUpdate     — byte-range page diff; before/after images.
//   kClr        — compensation; redo-only after image + undo_next_lsn.
//   kCommit     — transaction commit (forced).
//   kAbort      — rollback complete; all CLRs precede it.
//   kCheckpoint — fuzzy checkpoint; after image holds the serialized
//                 dirty-page and transaction tables.

#ifndef DBMR_STORE_RECOVERY_ARIES_LOG_H_
#define DBMR_STORE_RECOVERY_ARIES_LOG_H_

#include <cstdint>
#include <vector>

#include "store/page.h"
#include "store/recovery/log_format.h"
#include "store/recovery/replay_plan.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::store {

/// A decoded ARIES log record with owned images (sequential recovery and
/// the append path).
struct AriesLogRecord {
  LogRecordKind kind = LogRecordKind::kUpdate;
  txn::TxnId txn = txn::kNoTxn;
  txn::PageId page = 0;
  /// LSN of this transaction's previous record (0 = first record).
  uint64_t prev_lsn = 0;
  /// CLRs only: LSN of the next record of this transaction to undo
  /// (0 = rollback complete).  The compensated record's prev_lsn.
  uint64_t undo_next_lsn = 0;
  /// Byte offset of the images within the page payload.
  uint32_t offset = 0;
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;

  /// Fixed header preceding the images:
  ///   u32 total_len | u8 kind | u64 txn | u64 page | u64 prev_lsn |
  ///   u64 undo_next_lsn | u32 offset | u32 before_len | u32 after_len
  static constexpr size_t kFixedBytes = 4 + 1 + 8 + 8 + 8 + 8 + 4 + 4 + 4;

  size_t EncodedSize() const;
};

/// Serializes `rec` at `pos` in `buf` (which must have room); returns the
/// new position.
size_t EncodeAriesRecord(const AriesLogRecord& rec, PageData& buf,
                         size_t pos);

/// Parses one record at `*pos` of `buf`, filling owned images; advances
/// `*pos`.  Corruption on a truncated or inconsistent record (recovery
/// treats that as the never-durable tail).
Status DecodeAriesRecord(const PageData& buf, size_t* pos,
                         AriesLogRecord* out);

/// A decoded record whose images are logical positions within the log
/// stream (SegmentedBytes over zero-copy block refs) — the partitioned
/// recovery path's working form.  `lsn` is filled by the scanner.
struct AriesLogRecordRef {
  LogRecordKind kind = LogRecordKind::kUpdate;
  txn::TxnId txn = txn::kNoTxn;
  txn::PageId page = 0;
  uint64_t lsn = 0;
  uint64_t prev_lsn = 0;
  uint64_t undo_next_lsn = 0;
  uint32_t offset = 0;
  uint64_t before_pos = 0;
  uint32_t before_len = 0;
  uint64_t after_pos = 0;
  uint32_t after_len = 0;
};

/// Parses one record at `*pos` of the segmented stream; advances `*pos`.
Status DecodeAriesRecordRef(const SegmentedBytes& stream, uint64_t* pos,
                            AriesLogRecordRef* out);

/// ARIES log master (block 0).  All fields sit within the first 56 bytes,
/// inside the torn-write prefix the fault model preserves, so a cut-down
/// master rewrite leaves either the old or the new master — never a
/// half-written one.
struct AriesLogMaster {
  static constexpr uint64_t kMagic = 0x4442'4d52'4152'4931ULL;  // "DBMRARI1"

  uint64_t epoch = 1;
  /// Scan origin: first retained block / bytes to skip within it.
  uint64_t start_block = 1;
  uint64_t start_offset = 0;
  /// LSN of the first payload byte of block 1 in this epoch.  Converts
  /// between LSNs and physical positions; advances at truncation so LSNs
  /// never repeat.
  uint64_t epoch_base_lsn = 1;
  /// LSN of the newest durable kCheckpoint record (0 = none since
  /// truncation); restart analysis starts here.
  uint64_t checkpoint_lsn = 0;
  /// Epoch the retained stream begins in.  Restart bumps `epoch` before it
  /// appends (so blocks it rewrites fence off any stale same-position
  /// blocks a truncated-tail chop left beyond the logical end), which
  /// makes the stream a run of non-decreasing block epochs in
  /// [first_epoch, epoch] rather than a single value; truncation resets
  /// first_epoch = epoch.
  uint64_t first_epoch = 1;

  void EncodeTo(PageData& block) const;
  static Status DecodeFrom(const PageData& block, AriesLogMaster* out);
  /// Zero-copy variant for block refs; `block` must hold >= 48 bytes.
  static Status DecodeFrom(const uint8_t* block, AriesLogMaster* out);
};

/// The tables a fuzzy checkpoint record carries (serialized into the
/// record's after image).  Both vectors are sorted by id so the encoding
/// is deterministic.
struct AriesCheckpointData {
  struct DirtyPage {
    txn::PageId page = 0;
    /// LSN of the earliest record that may not be reflected on disk.
    uint64_t rec_lsn = 0;
  };
  struct ActiveTxn {
    txn::TxnId txn = txn::kNoTxn;
    /// LSN of the transaction's most recent record.
    uint64_t last_lsn = 0;
  };
  std::vector<DirtyPage> dirty_pages;
  std::vector<ActiveTxn> txns;
};

/// Wire form: u32 n_dirty | (u64 page, u64 rec_lsn)* | u32 n_txns |
/// (u64 txn, u64 last_lsn)*.
std::vector<uint8_t> EncodeAriesCheckpoint(const AriesCheckpointData& data);
Status DecodeAriesCheckpoint(const uint8_t* data, size_t len,
                             AriesCheckpointData* out);

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_ARIES_LOG_H_
