#include "store/recovery/log_format.h"

#include <cstring>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
// Record wire layout (see LogRecord::kFixedBytes):
//   u32 total_len | u8 kind | u64 txn | u64 page | u64 page_version |
//   u32 offset | u32 before_len | u32 after_len | before | after
constexpr size_t kRecordFixed = LogRecord::kFixedBytes;
}  // namespace

size_t LogRecord::EncodedSize() const {
  return kRecordFixed + before.size() + after.size();
}

size_t EncodeLogRecord(const LogRecord& rec, PageData& buf, size_t pos) {
  const size_t total = rec.EncodedSize();
  DBMR_CHECK(pos + total <= buf.size());
  PutU32(buf, pos, static_cast<uint32_t>(total));
  buf[pos + 4] = static_cast<uint8_t>(rec.kind);
  PutU64(buf, pos + 5, rec.txn);
  PutU64(buf, pos + 13, rec.page);
  PutU64(buf, pos + 21, rec.page_version);
  PutU32(buf, pos + 29, rec.offset);
  PutU32(buf, pos + 33, static_cast<uint32_t>(rec.before.size()));
  PutU32(buf, pos + 37, static_cast<uint32_t>(rec.after.size()));
  size_t p = pos + kRecordFixed;
  if (!rec.before.empty()) {
    std::memcpy(buf.data() + p, rec.before.data(), rec.before.size());
    p += rec.before.size();
  }
  if (!rec.after.empty()) {
    std::memcpy(buf.data() + p, rec.after.data(), rec.after.size());
    p += rec.after.size();
  }
  DBMR_CHECK(p == pos + total);
  return p;
}

Status DecodeLogRecord(const PageData& buf, size_t* pos, LogRecord* out) {
  LogRecordView v;
  DBMR_RETURN_IF_ERROR(DecodeLogRecordView(buf, pos, &v));
  out->kind = v.kind;
  out->txn = v.txn;
  out->page = v.page;
  out->page_version = v.page_version;
  out->offset = v.offset;
  out->before.assign(v.before, v.before + v.before_len);
  out->after.assign(v.after, v.after + v.after_len);
  return Status::OK();
}

Status DecodeLogRecordView(const PageData& buf, size_t* pos,
                           LogRecordView* out) {
  size_t p = *pos;
  if (p + kRecordFixed > buf.size()) {
    return Status::Corruption("log record header past block end");
  }
  const uint32_t total = GetU32(buf, p);
  if (total < kRecordFixed || p + total > buf.size()) {
    return Status::Corruption(
        StrFormat("log record length %u invalid at offset %zu", total, p));
  }
  out->kind = static_cast<LogRecordKind>(buf[p + 4]);
  out->txn = GetU64(buf, p + 5);
  out->page = GetU64(buf, p + 13);
  out->page_version = GetU64(buf, p + 21);
  out->offset = GetU32(buf, p + 29);
  const uint32_t blen = GetU32(buf, p + 33);
  const uint32_t alen = GetU32(buf, p + 37);
  if (kRecordFixed + blen + alen != total) {
    return Status::Corruption("log record image lengths inconsistent");
  }
  out->before = buf.data() + p + kRecordFixed;
  out->before_len = blen;
  out->after = out->before + blen;
  out->after_len = alen;
  *pos = p + total;
  return Status::OK();
}

Status DecodeLogRecordRef(const SegmentedBytes& stream, uint64_t* pos,
                          LogRecordRef* out) {
  const uint64_t p = *pos;
  if (p + kRecordFixed > stream.size()) {
    return Status::Corruption("log record header past stream end");
  }
  // The fixed header is tiny; gather it onto the stack once and decode
  // scalar fields from there — the images are never copied.
  uint8_t hdr[kRecordFixed];
  stream.CopyOut(p, kRecordFixed, hdr);
  const uint32_t total = GetU32(hdr);
  if (total < kRecordFixed || p + total > stream.size()) {
    return Status::Corruption(
        StrFormat("log record length %u invalid at offset %llu", total,
                  static_cast<unsigned long long>(p)));
  }
  out->kind = static_cast<LogRecordKind>(hdr[4]);
  out->txn = GetU64(hdr + 5);
  out->page = GetU64(hdr + 13);
  out->page_version = GetU64(hdr + 21);
  out->offset = GetU32(hdr + 29);
  const uint32_t blen = GetU32(hdr + 33);
  const uint32_t alen = GetU32(hdr + 37);
  if (kRecordFixed + blen + alen != total) {
    return Status::Corruption("log record image lengths inconsistent");
  }
  out->before_pos = p + kRecordFixed;
  out->before_len = blen;
  out->after_pos = out->before_pos + blen;
  out->after_len = alen;
  *pos = p + total;
  return Status::OK();
}

void LogBlockHeader::EncodeTo(PageData& block) const {
  DBMR_CHECK(block.size() >= kSize);
  PutU64(block, 0, epoch);
  PutU32(block, 8, used_bytes);
  PutU32(block, 12, n_records);
}

LogBlockHeader LogBlockHeader::DecodeFrom(const PageData& block) {
  DBMR_CHECK(block.size() >= kSize);
  return DecodeFrom(block.data());
}

LogBlockHeader LogBlockHeader::DecodeFrom(const uint8_t* block) {
  LogBlockHeader h;
  h.epoch = GetU64(block);
  h.used_bytes = GetU32(block + 8);
  h.n_records = GetU32(block + 12);
  return h;
}

void LogMaster::EncodeTo(PageData& block) const {
  DBMR_CHECK(block.size() >= 32);
  PutU64(block, 0, kMagic);
  PutU64(block, 8, epoch);
  PutU64(block, 16, start_block);
  PutU64(block, 24, start_offset);
}

Status LogMaster::DecodeFrom(const PageData& block, LogMaster* out) {
  if (block.size() < 32) return Status::Corruption("bad log master block");
  return DecodeFrom(block.data(), out);
}

Status LogMaster::DecodeFrom(const uint8_t* block, LogMaster* out) {
  if (GetU64(block) != kMagic) {
    return Status::Corruption("bad log master block");
  }
  out->epoch = GetU64(block + 8);
  out->start_block = GetU64(block + 16);
  out->start_offset = GetU64(block + 24);
  return Status::OK();
}

}  // namespace dbmr::store
