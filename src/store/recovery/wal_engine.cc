#include "store/recovery/wal_engine.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
/// Data page block layout: [u64 version][payload].
constexpr size_t kPageHeader = 8;

uint64_t BlockVersion(const PageData& block) { return GetU64(block, 0); }
void SetBlockVersion(PageData& block, uint64_t v) { PutU64(block, 0, v); }

/// Per-page record chains over zero-copy refs; the mirror of the
/// sequential path's per-page structures (see RecoverSequential for the
/// semantics of update vs CLR chains).
struct RefLoserChain {
  std::map<uint64_t, const LogRecordRef*> updates;  // by version
  std::map<uint64_t, const LogRecordRef*> clrs;     // by version
};
struct RefPageChains {
  std::map<uint64_t, const LogRecordRef*> redo;  // committed
  std::map<txn::TxnId, RefLoserChain> losers;
};

/// One page's unit of parallel replay work.  Everything a worker touches
/// is private to the task or read-only shared (the chains, the stream
/// segments, the disk image ref) — workers never call into a VirtualDisk.
struct PageReplayTask {
  txn::PageId page = 0;
  const RefPageChains* pc = nullptr;
  const uint8_t* disk_image = nullptr;  ///< current block bytes (ReadRef)
  PageData out;                         ///< recovered block image
  uint64_t undo_count = 0;
  uint64_t redo_count = 0;
  bool bounds_error = false;
};

/// Recovers one page into `w->out`.  Runs the exact walk of the
/// sequential path — the walk is driven only by the page version, never
/// by applied bytes, so it can be split into a plan step (map lookups)
/// and an apply step (gather-copies from the log blocks).  The apply
/// step skips every op dominated by a later full-payload image, which is
/// what makes physical-mode replay O(1) copies per page instead of
/// O(chain length).
void ReplayPageFromLog(const std::vector<SegmentedBytes>& streams,
                       size_t block_size, PageReplayTask* w) {
  const size_t payload = block_size - kPageHeader;
  const RefPageChains& pc = *w->pc;

  // Redo-eligible records and max version: same rules as the sequential
  // path (committed updates plus complete CLR chains).
  std::map<uint64_t, const LogRecordRef*> redo = pc.redo;
  uint64_t max_ver = 0;
  for (const auto& [ver, rec] : pc.redo) max_ver = std::max(max_ver, ver);
  for (const auto& [t, ch] : pc.losers) {
    if (!ch.updates.empty()) {
      max_ver = std::max(max_ver, ch.updates.rbegin()->first);
    }
    if (!ch.clrs.empty()) {
      max_ver = std::max(max_ver, ch.clrs.rbegin()->first);
    }
    if (!ch.clrs.empty() && ch.clrs.size() == ch.updates.size()) {
      for (const auto& [ver, rec] : ch.clrs) redo[ver] = rec;
    }
  }

  // Plan: collect the (record, direction) apply sequence.
  std::vector<std::pair<const LogRecordRef*, bool>> ops;  // (rec, is_redo)
  uint64_t v = GetU64(w->disk_image);
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& [t, ch] : pc.losers) {
      auto u = ch.updates.find(v);
      if (u != ch.updates.end()) {
        ops.emplace_back(u->second, false);
        --v;
        moved = true;
        break;
      }
      auto c = ch.clrs.find(v);
      if (c != ch.clrs.end()) {
        const size_t j =
            static_cast<size_t>(std::distance(ch.clrs.begin(), c));
        const size_t m = ch.updates.size();
        if (m >= j + 1) {
          std::vector<const LogRecordRef*> ups;
          ups.reserve(m);
          for (const auto& [ver, rec] : ch.updates) ups.push_back(rec);
          for (size_t idx = m - 1 - j; idx-- > 0;) {
            ops.emplace_back(ups[idx], false);
          }
          v = ch.updates.begin()->first - 1;
        } else {
          v = c->first - 1;  // unreachable: defensive
        }
        moved = true;
        break;
      }
    }
  }
  for (const auto& [version, rec] : redo) {
    if (version <= v) continue;
    ops.emplace_back(rec, true);
    v = version;
  }

  // Count and bounds-check every op (identical to the sequential path's
  // counters and Corruption check), and find the last full-payload image:
  // everything before it is a dead write.
  size_t first_live = 0;
  bool full_cover = false;
  for (size_t i = 0; i < ops.size(); ++i) {
    const LogRecordRef* rec = ops[i].first;
    const bool is_redo = ops[i].second;
    const uint64_t len = is_redo ? rec->after_len : rec->before_len;
    if (kPageHeader + rec->offset + len > block_size) {
      w->bounds_error = true;
      return;
    }
    if (is_redo) {
      ++w->redo_count;
    } else {
      ++w->undo_count;
    }
    if (rec->offset == 0 && len == payload) {
      first_live = i;
      full_cover = true;
    }
  }

  // Apply: start from the disk image unless a full-payload image makes it
  // (and every op before that image) irrelevant.
  w->out.assign(block_size, 0);
  if (!full_cover) {
    std::memcpy(w->out.data(), w->disk_image, block_size);
  }
  for (size_t i = full_cover ? first_live : 0; i < ops.size(); ++i) {
    const LogRecordRef* rec = ops[i].first;
    const bool is_redo = ops[i].second;
    streams[rec->stream].CopyOut(
        is_redo ? rec->after_pos : rec->before_pos,
        is_redo ? rec->after_len : rec->before_len,
        w->out.data() + kPageHeader + rec->offset);
  }
  SetBlockVersion(w->out, max_ver + 1);
}
}  // namespace

WalEngine::WalEngine(VirtualDisk* data_disk,
                     std::vector<VirtualDisk*> log_disks,
                     WalEngineOptions options, VirtualDisk* archive_disk)
    : data_(data_disk), opts_(options), rng_(options.rng_seed) {
  DBMR_CHECK(data_ != nullptr);
  DBMR_CHECK(!log_disks.empty());
  if (archive_disk != nullptr) {
    DBMR_CHECK(archive_disk->block_size() == data_->block_size());
    DBMR_CHECK(archive_disk->num_blocks() >= 1 + data_->num_blocks());
    archive_ = std::make_unique<ArchiveStore>(archive_disk);
  }
  for (VirtualDisk* d : log_disks) {
    DBMR_CHECK(d != nullptr);
    DBMR_CHECK(d->block_size() == data_->block_size());
    LogStream s;
    s.disk = d;
    logs_.push_back(std::move(s));
  }
  pool_ = std::make_unique<BufferPool>(
      opts_.pool_frames,
      [this](txn::PageId p, PageData* out) { return FetchBlock(p, out); },
      [this](txn::PageId p, const PageData& b) {
        return FlushDataPage(p, b);
      });
}

size_t WalEngine::payload_size() const {
  return data_->block_size() - kPageHeader;
}

size_t WalEngine::PayloadBytesPerLogBlock() const {
  return data_->block_size() - LogBlockHeader::kSize;
}

std::string WalEngine::name() const {
  return logs_.size() == 1 ? "wal" : StrFormat("wal-x%zu", logs_.size());
}

uint64_t WalEngine::stream_records(size_t i) const {
  DBMR_CHECK(i < logs_.size());
  return logs_[i].records;
}

Status WalEngine::Format() {
  // Zero the data disk so reused disks start from version 0 everywhere.
  PageData zero(data_->block_size(), 0);
  for (BlockId b = 0; b < data_->num_blocks(); ++b) {
    DBMR_RETURN_IF_ERROR(data_->Write(b, zero));
  }
  // The archive master must exist before TruncateLogs below sweeps into it.
  if (archive_ != nullptr) {
    DBMR_RETURN_IF_ERROR(
        archive_->Format(data_->num_blocks(), data_->block_size()));
  }
  // Epochs must advance past any previous life of these disks; resetting to
  // epoch 1 would let a scan run off the new tail into stale epoch-1 blocks
  // surviving from before the reformat.
  DBMR_RETURN_IF_ERROR(TruncateLogs());
  for (auto& s : logs_) s.records = 0;
  pool_->DiscardAll();
  active_.clear();
  wal_point_.clear();
  locks_.Reset();
  next_txn_ = 1;
  return Status::OK();
}

Result<txn::TxnId> WalEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

Status WalEngine::FetchBlock(txn::PageId page, PageData* out) {
  if (page >= data_->num_blocks()) {
    return Status::OutOfRange(StrFormat("page %llu out of range",
                                        (unsigned long long)page));
  }
  return RetryDiskIo(
      *data_, [&] { return data_->Read(page, out); }, &io_retry_);
}

Status WalEngine::FlushDataPage(txn::PageId page, const PageData& block) {
  // WAL rule: force the stream holding this page's latest update record
  // before the data page may reach disk.
  auto it = wal_point_.find(page);
  if (it != wal_point_.end()) {
    for (const auto& [log_idx, watermark] : it->second) {
      if (logs_[log_idx].flushed_bytes < watermark) {
        DBMR_RETURN_IF_ERROR(ForceLog(log_idx));
      }
    }
  }
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *data_, [&] { return data_->Write(page, block); }, &io_retry_));
  if (it != wal_point_.end()) wal_point_.erase(it);
  return Status::OK();
}

size_t WalEngine::ChooseLog(txn::TxnId t) {
  switch (opts_.policy) {
    case LogSelectPolicy::kCyclic:
      return cyclic_next_++ % logs_.size();
    case LogSelectPolicy::kRandom:
      return static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(logs_.size()) - 1));
    case LogSelectPolicy::kTxnMod:
      return static_cast<size_t>(t % logs_.size());
  }
  return 0;
}

Status WalEngine::AppendRecord(size_t log_idx, const LogRecord& rec) {
  LogStream& s = logs_[log_idx];
  PageData tmp(rec.EncodedSize(), 0);
  EncodeLogRecord(rec, tmp, 0);
  s.pending.insert(s.pending.end(), tmp.begin(), tmp.end());
  s.appended_bytes += tmp.size();
  ++s.records;
  ++records_appended_;
  return Status::OK();
}

Status WalEngine::ForceLog(size_t log_idx) {
  LogStream& s = logs_[log_idx];
  if (s.flushed_bytes == s.appended_bytes) return Status::OK();
  ++forces_;
  const size_t cap = PayloadBytesPerLogBlock();
  // `pending` holds the bytes of the stream from the start of block
  // `next_block` onward (durable prefix of the partial block included).
  while (!s.pending.empty()) {
    const size_t used = std::min(cap, s.pending.size());
    if (s.next_block >= s.disk->num_blocks()) {
      return Status::ResourceExhausted(
          StrFormat("log %s full", s.disk->name().c_str()));
    }
    PageData block(s.disk->block_size(), 0);
    LogBlockHeader h;
    h.epoch = s.epoch;
    h.used_bytes = static_cast<uint32_t>(used);
    h.EncodeTo(block);
    std::copy(s.pending.begin(),
              s.pending.begin() + static_cast<long>(used),
              block.begin() + LogBlockHeader::kSize);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *s.disk, [&] { return s.disk->Write(s.next_block, block); },
        &io_retry_));
    if (used == cap) {
      // Block finalized; it will never be rewritten.
      s.pending.erase(s.pending.begin(),
                      s.pending.begin() + static_cast<long>(used));
      ++s.next_block;
      s.flushed_bytes =
          (s.next_block - s.start_block) * cap;
    } else {
      // Partial block stays buffered for in-place group fill.
      s.flushed_bytes = (s.next_block - s.start_block) * cap + used;
      break;
    }
  }
  s.flushed_bytes = s.appended_bytes;
  return Status::OK();
}

Status WalEngine::ForceLogsOf(const ActiveTxn& at, size_t also) {
  for (size_t idx : at.logs_used) {
    if (idx == also) continue;
    DBMR_RETURN_IF_ERROR(ForceLog(idx));
  }
  return ForceLog(also);
}

Status WalEngine::Read(txn::TxnId t, txn::PageId page, PageData* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  PageData block;
  DBMR_RETURN_IF_ERROR(pool_->Get(page, &block));
  out->assign(block.begin() + kPageHeader, block.end());
  return Status::OK();
}

Status WalEngine::Write(txn::TxnId t, txn::PageId page,
                        const PageData& payload) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (payload.size() != payload_size()) {
    return Status::InvalidArgument(
        StrFormat("payload size %zu != %zu", payload.size(),
                  payload_size()));
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  PageData block;
  DBMR_RETURN_IF_ERROR(pool_->Get(page, &block));
  const uint64_t version = BlockVersion(block);

  LogRecord rec;
  rec.kind = LogRecordKind::kUpdate;
  rec.txn = t;
  rec.page = page;
  rec.page_version = version + 1;
  if (opts_.mode == LoggingMode::kPhysical) {
    rec.offset = 0;
    rec.before.assign(block.begin() + kPageHeader, block.end());
    rec.after = payload;
  } else {
    // Logical: byte-range diff of the payload.
    size_t lo = 0;
    size_t hi = payload.size();
    const uint8_t* old = block.data() + kPageHeader;
    while (lo < payload.size() && old[lo] == payload[lo]) ++lo;
    if (lo == payload.size()) {
      // Identical content: nothing to log or write.
      return Status::OK();
    }
    while (hi > lo && old[hi - 1] == payload[hi - 1]) --hi;
    rec.offset = static_cast<uint32_t>(lo);
    rec.before.assign(old + lo, old + hi);
    rec.after.assign(payload.begin() + static_cast<long>(lo),
                     payload.begin() + static_cast<long>(hi));
  }

  const size_t idx = ChooseLog(t);
  DBMR_RETURN_IF_ERROR(AppendRecord(idx, rec));
  wal_point_[page][idx] = logs_[idx].appended_bytes;
  it->second.logs_used.insert(idx);
  it->second.first_pos.try_emplace(
      idx, logs_[idx].appended_bytes - rec.EncodedSize());
  it->second.undo.push_back(UndoEntry{page, rec.offset, rec.before});

  SetBlockVersion(block, version + 1);
  std::copy(payload.begin(), payload.end(), block.begin() + kPageHeader);
  return pool_->Put(page, std::move(block));
}

Status WalEngine::Commit(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  LogRecord rec;
  rec.kind = LogRecordKind::kCommit;
  rec.txn = t;
  const size_t idx = ChooseLog(t);
  DBMR_RETURN_IF_ERROR(AppendRecord(idx, rec));
  DBMR_RETURN_IF_ERROR(ForceLogsOf(it->second, idx));
  ++commits_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status WalEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  // Undo in reverse order, writing redo-only CLRs so the rollback itself
  // survives a crash.
  for (auto u = at.undo.rbegin(); u != at.undo.rend(); ++u) {
    PageData block;
    DBMR_RETURN_IF_ERROR(pool_->Get(u->page, &block));
    const uint64_t version = BlockVersion(block);
    LogRecord clr;
    clr.kind = LogRecordKind::kClr;
    clr.txn = t;
    clr.page = u->page;
    clr.page_version = version + 1;
    clr.offset = u->offset;
    clr.after = u->before;
    const size_t idx = ChooseLog(t);
    DBMR_RETURN_IF_ERROR(AppendRecord(idx, clr));
    wal_point_[u->page][idx] = logs_[idx].appended_bytes;
    at.logs_used.insert(idx);
    at.first_pos.try_emplace(idx,
                             logs_[idx].appended_bytes - clr.EncodedSize());
    SetBlockVersion(block, version + 1);
    std::copy(u->before.begin(), u->before.end(),
              block.begin() + kPageHeader + u->offset);
    DBMR_RETURN_IF_ERROR(pool_->Put(u->page, std::move(block)));
  }
  LogRecord rec;
  rec.kind = LogRecordKind::kAbort;
  rec.txn = t;
  DBMR_RETURN_IF_ERROR(AppendRecord(ChooseLog(t), rec));
  ++aborts_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void WalEngine::Crash() {
  pool_->DiscardAll();
  active_.clear();
  wal_point_.clear();
  locks_.Reset();
  for (auto& s : logs_) {
    // Volatile log buffers vanish; only what was forced survives.
    s.pending.clear();
    s.appended_bytes = s.flushed_bytes;
  }
}

Status WalEngine::ScanStream(size_t idx, std::vector<uint8_t>* raw,
                             std::vector<LogRecordView>* out) const {
  const LogStream& s = logs_[idx];
  const size_t cap = PayloadBytesPerLogBlock();
  PageData master_block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *s.disk, [&] { return s.disk->Read(0, &master_block); }, &io_retry_));
  LogMaster m;
  DBMR_RETURN_IF_ERROR(LogMaster::DecodeFrom(master_block, &m));

  std::vector<uint8_t>& stream = *raw;
  stream.clear();
  bool first = true;
  PageData block(s.disk->block_size());
  for (BlockId b = m.start_block; b < s.disk->num_blocks(); ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *s.disk, [&] { return s.disk->ReadInto(b, block.data()); },
        &io_retry_));
    LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != m.epoch || h.used_bytes == 0 || h.used_bytes > cap) {
      break;
    }
    // A fuzzy checkpoint may have moved the scan origin mid-block.
    size_t skip = 0;
    if (first) {
      first = false;
      if (m.start_offset >= h.used_bytes) {
        if (h.used_bytes < cap) break;
        continue;  // horizon consumed the whole (finalized) block
      }
      skip = static_cast<size_t>(m.start_offset);
    }
    stream.insert(
        stream.end(),
        block.begin() + LogBlockHeader::kSize + static_cast<long>(skip),
        block.begin() + LogBlockHeader::kSize + h.used_bytes);
    if (h.used_bytes < cap) break;  // partial block is always the last
  }

  // Decoded views point into `stream`, which the caller keeps alive; no
  // record images are copied during the scan.
  const PageData& view = stream;  // PageData is std::vector<uint8_t>
  size_t pos = 0;
  while (pos < view.size()) {
    LogRecordView rec;
    size_t before = pos;
    Status st = DecodeLogRecordView(view, &pos, &rec);
    if (!st.ok()) {
      // A truncated trailing record was never fully durable; ignore it.
      pos = before;
      break;
    }
    out->push_back(rec);
  }
  return Status::OK();
}

Status WalEngine::ApplyRecordImage(PageData& block, const LogRecordView& rec,
                                   bool redo) const {
  const uint8_t* img = redo ? rec.after : rec.before;
  const size_t len = redo ? rec.after_len : rec.before_len;
  if (kPageHeader + rec.offset + len > block.size()) {
    return Status::Corruption("log image exceeds page bounds");
  }
  std::copy(img, img + len, block.begin() + kPageHeader + rec.offset);
  return Status::OK();
}

Status WalEngine::Recover() {
  data_->ClearCrashState();
  for (auto& s : logs_) s.disk->ClearCrashState();
  if (archive_ != nullptr) archive_->disk()->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  if (opts_.recovery_jobs <= 0) return RecoverSequential();
  return RecoverPartitioned();
}

Status WalEngine::RecoverSequential() {
  // 1. Analysis: scan every stream independently.  `raw_streams` owns the
  // reassembled bytes the record views point into, so it must stay alive
  // for the rest of recovery.
  std::vector<std::vector<uint8_t>> raw_streams(logs_.size());
  std::vector<std::vector<LogRecordView>> per_stream(logs_.size());
  std::unordered_set<txn::TxnId> committed;
  txn::TxnId max_txn = 0;
  for (size_t i = 0; i < logs_.size(); ++i) {
    DBMR_RETURN_IF_ERROR(ScanStream(i, &raw_streams[i], &per_stream[i]));
    last_stats_.replay_records += per_stream[i].size();
    for (const LogRecordView& r : per_stream[i]) {
      max_txn = std::max(max_txn, r.txn);
      if (r.kind == LogRecordKind::kCommit) committed.insert(r.txn);
    }
  }

  // Per-page chains, keyed by page version (per-page version numbers make
  // cross-stream merging unnecessary).  Committed updates are redo.  An
  // uncommitted transaction's records are kept per transaction, with its
  // updates and its CLRs separate: a CLR's after-image restores an
  // *intermediate* state of the rollback, so CLRs are only meaningful as
  // a complete chain.  A crash can leave a partial chain durable (the
  // abort's CLRs are forced lazily and may be spread across streams), in
  // which case the missing tail is reconstructed from the update records'
  // before-images — those are durable whenever the page could have
  // reached disk, by the write-ahead rule.
  struct LoserChain {
    std::map<uint64_t, const LogRecordView*> updates;              // by version
    std::map<uint64_t, const LogRecordView*> clrs;                 // by version
  };
  struct PageChains {
    std::map<uint64_t, const LogRecordView*> redo;                 // committed
    std::map<txn::TxnId, LoserChain> losers;
  };
  std::unordered_map<txn::PageId, PageChains> chains;
  for (const auto& stream : per_stream) {
    for (const LogRecordView& r : stream) {
      if (r.kind == LogRecordKind::kUpdate) {
        if (committed.count(r.txn)) {
          chains[r.page].redo[r.page_version] = &r;
        } else {
          chains[r.page].losers[r.txn].updates[r.page_version] = &r;
        }
      } else if (r.kind == LogRecordKind::kClr) {
        chains[r.page].losers[r.txn].clrs[r.page_version] = &r;
      }
    }
  }

  // 2. Per page: UNDO first, then REDO.  The page on disk may carry an
  // uncommitted transaction's flushed update (or a partially compensated
  // rollback); later committed diffs were computed against the pre-image
  // of that transaction, so its bytes must come off before they go on.
  PageData block(data_->block_size());
  for (auto& [page, pc] : chains) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *data_, [&, page = page] { return data_->ReadInto(page, block.data()); },
        &io_retry_));
    uint64_t v = BlockVersion(block);

    // Redo-eligible records: committed updates, plus each loser's CLR
    // chain when it is complete (one CLR per update on this page).  An
    // incomplete chain contributes nothing forward: its CLRs would leave
    // the page in an intermediate uncommitted state, and a page whose
    // durable image predates the transaction needs no compensation.
    std::map<uint64_t, const LogRecordView*> redo = pc.redo;
    uint64_t max_ver = 0;
    for (const auto& [ver, rec] : pc.redo) max_ver = std::max(max_ver, ver);
    for (const auto& [t, ch] : pc.losers) {
      if (!ch.updates.empty()) {
        max_ver = std::max(max_ver, ch.updates.rbegin()->first);
      }
      if (!ch.clrs.empty()) {
        max_ver = std::max(max_ver, ch.clrs.rbegin()->first);
      }
      if (!ch.clrs.empty() && ch.clrs.size() == ch.updates.size()) {
        for (const auto& [ver, rec] : ch.clrs) redo[ver] = rec;
      }
    }

    // Undo: walk the version back down while it belongs to a loser.  A
    // version inside a loser's update chain is rolled back record by
    // record; a version inside its CLR chain means the rollback itself
    // was cut short mid-flush, and the un-compensated prefix of the
    // update chain is undone from the updates' before-images.
    bool moved = true;
    while (moved) {
      moved = false;
      for (const auto& [t, ch] : pc.losers) {
        auto u = ch.updates.find(v);
        if (u != ch.updates.end()) {
          DBMR_RETURN_IF_ERROR(
              ApplyRecordImage(block, *u->second, /*redo=*/false));
          --v;
          ++undo_applied_;
          moved = true;
          break;
        }
        auto c = ch.clrs.find(v);
        if (c != ch.clrs.end()) {
          const size_t j = static_cast<size_t>(
              std::distance(ch.clrs.begin(), c));
          const size_t m = ch.updates.size();
          if (m >= j + 1) {
            // The j-th CLR compensated the (m-1-j)-th update; updates
            // 0 .. m-2-j still need undoing.
            std::vector<const LogRecordView*> ups;
            ups.reserve(m);
            for (const auto& [ver, rec] : ch.updates) ups.push_back(rec);
            for (size_t idx = m - 1 - j; idx-- > 0;) {
              DBMR_RETURN_IF_ERROR(
                  ApplyRecordImage(block, *ups[idx], /*redo=*/false));
              ++undo_applied_;
            }
            v = ch.updates.begin()->first - 1;
          } else {
            v = c->first - 1;  // unreachable: defensive
          }
          moved = true;
          break;
        }
      }
    }

    for (const auto& [version, rec] : redo) {
      if (version <= v) continue;
      DBMR_RETURN_IF_ERROR(ApplyRecordImage(block, *rec, /*redo=*/true));
      v = version;
      ++redo_applied_;
    }

    // Write the recovered page home with a version above everything in
    // the log.  If this recovery is itself cut down after here (even
    // mid-way through the non-atomic per-stream truncation below, which
    // can lose a commit record from one stream while the transaction's
    // update records survive on another), the next recovery sees a page
    // version newer than every surviving record and leaves the finished
    // page alone instead of re-classifying its content.
    SetBlockVersion(block, max_ver + 1);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *data_, [&, page = page] { return data_->Write(page, block); },
        &io_retry_));
  }

  // 4. Truncate the logs: all surviving state is home now.
  DBMR_RETURN_IF_ERROR(TruncateLogs());

  pool_->DiscardAll();
  active_.clear();
  wal_point_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

Status WalEngine::CollectStreamSegments(size_t idx,
                                        SegmentedBytes* out) const {
  const LogStream& s = logs_[idx];
  const size_t cap = PayloadBytesPerLogBlock();
  const uint8_t* master = nullptr;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *s.disk, [&] { return s.disk->ReadRef(0, &master); }, &io_retry_));
  LogMaster m;
  DBMR_RETURN_IF_ERROR(LogMaster::DecodeFrom(master, &m));

  bool first = true;
  for (BlockId b = m.start_block; b < s.disk->num_blocks(); ++b) {
    const uint8_t* block = nullptr;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *s.disk, [&] { return s.disk->ReadRef(b, &block); }, &io_retry_));
    const LogBlockHeader h = LogBlockHeader::DecodeFrom(block);
    if (h.epoch != m.epoch || h.used_bytes == 0 || h.used_bytes > cap) {
      break;
    }
    // A fuzzy checkpoint may have moved the scan origin mid-block.
    size_t skip = 0;
    if (first) {
      first = false;
      if (m.start_offset >= h.used_bytes) {
        if (h.used_bytes < cap) break;
        continue;  // horizon consumed the whole (finalized) block
      }
      skip = static_cast<size_t>(m.start_offset);
    }
    out->AddSegment(block + LogBlockHeader::kSize + skip,
                    h.used_bytes - skip);
    if (h.used_bytes < cap) break;  // partial block is always the last
  }
  return Status::OK();
}

Status WalEngine::RecoverPartitioned() {
  // Phase 1 — scan (caller thread): zero-copy per-stream segment lists.
  // Same disk reads and stop rules as the sequential scan, but no log
  // byte is copied or reassembled.
  std::vector<SegmentedBytes> streams(logs_.size());
  uint64_t log_bytes = 0;
  for (size_t i = 0; i < logs_.size(); ++i) {
    DBMR_RETURN_IF_ERROR(CollectStreamSegments(i, &streams[i]));
    log_bytes += streams[i].size();
  }
  // Total log volume bounds both the decode and the replay work.
  const int jobs =
      EffectiveReplayJobs(opts_.recovery_jobs, static_cast<size_t>(log_bytes));

  // Phase 2 — decode (parallel over streams): pure memory walk.  A
  // truncated trailing record was never fully durable; ignore it, exactly
  // like the sequential scan.
  std::vector<std::vector<LogRecordRef>> per_stream(logs_.size());
  RunReplayJobs(jobs, logs_.size(), [&](size_t i) {
    uint64_t pos = 0;
    while (pos < streams[i].size()) {
      LogRecordRef rec;
      if (!DecodeLogRecordRef(streams[i], &pos, &rec).ok()) break;
      rec.stream = static_cast<uint32_t>(i);
      per_stream[i].push_back(rec);
    }
  });

  // Phase 3 — plan (caller thread): transaction outcomes, per-page
  // chains, and the partition graph.  Replay itself is per-page (per-page
  // version numbers make cross-stream merging unnecessary), so pages are
  // independent; pages sharing an uncommitted transaction that wrote CLRs
  // are still conservatively grouped into one partition, because such a
  // transaction's undo-next chain is the one structure that spans pages.
  std::unordered_set<txn::TxnId> committed;
  txn::TxnId max_txn = 0;
  for (const auto& stream : per_stream) {
    last_stats_.replay_records += stream.size();
    for (const LogRecordRef& r : stream) {
      max_txn = std::max(max_txn, r.txn);
      if (r.kind == LogRecordKind::kCommit) committed.insert(r.txn);
    }
  }
  std::unordered_map<txn::PageId, RefPageChains> chains;
  for (const auto& stream : per_stream) {
    for (const LogRecordRef& r : stream) {
      if (r.kind == LogRecordKind::kUpdate) {
        if (committed.count(r.txn)) {
          chains[r.page].redo[r.page_version] = &r;
        } else {
          chains[r.page].losers[r.txn].updates[r.page_version] = &r;
        }
      } else if (r.kind == LogRecordKind::kClr) {
        chains[r.page].losers[r.txn].clrs[r.page_version] = &r;
      }
    }
  }

  ReplayPartitioner parts;
  std::unordered_map<txn::TxnId, txn::PageId> clr_anchor;
  for (const auto& [page, pc] : chains) {
    parts.AddPage(page);
    for (const auto& [t, ch] : pc.losers) {
      if (ch.clrs.empty()) continue;
      auto [anchor, inserted] = clr_anchor.try_emplace(t, page);
      if (!inserted) parts.Link(anchor->second, page);
    }
  }
  const std::vector<std::vector<txn::PageId>> partitions =
      parts.Partitions();
  last_stats_.partitions = partitions.size();

  // Phase 4 — page refs (caller thread, deterministic partition order).
  // ReadRef pointers stay valid through phase 5: nothing writes the data
  // disk until phase 6, and writes to other blocks never move them.
  std::vector<PageReplayTask> work;
  work.reserve(parts.num_pages());
  std::vector<std::pair<size_t, size_t>> ranges;  // [begin,end) into work
  ranges.reserve(partitions.size());
  for (const auto& group : partitions) {
    const size_t begin = work.size();
    for (txn::PageId page : group) {
      PageReplayTask t;
      t.page = page;
      t.pc = &chains.at(page);
      DBMR_RETURN_IF_ERROR(RetryDiskIo(
          *data_, [&] { return data_->ReadRef(page, &t.disk_image); },
          &io_retry_));
      work.push_back(std::move(t));
    }
    ranges.emplace_back(begin, work.size());
  }

  // Phase 5 — replay (parallel over partitions): private memory only.
  // Workers never touch a VirtualDisk; record images are gather-copied
  // straight from the log blocks into the output pages.
  const size_t block_size = data_->block_size();
  RunReplayJobs(jobs, ranges.size(), [&](size_t pi) {
    for (size_t wi = ranges[pi].first; wi < ranges[pi].second; ++wi) {
      ReplayPageFromLog(streams, block_size, &work[wi]);
    }
  });

  // Phase 6 — reduce (caller thread): write-back and counter fold in the
  // same deterministic partition order, so the disk-op sequence and the
  // recovered image are identical at every jobs setting.
  for (PageReplayTask& t : work) {
    if (t.bounds_error) {
      return Status::Corruption("log image exceeds page bounds");
    }
    undo_applied_ += t.undo_count;
    redo_applied_ += t.redo_count;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *data_, [&] { return data_->Write(t.page, t.out); }, &io_retry_));
  }

  DBMR_RETURN_IF_ERROR(TruncateLogs());
  pool_->DiscardAll();
  active_.clear();
  wal_point_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

Status WalEngine::SweepArchive() {
  if (archive_ == nullptr) return Status::OK();
  DBMR_RETURN_IF_ERROR(
      archive_->Sweep(data_, data_->num_blocks(), &io_retry_));
  ++archive_sweeps_;
  return Status::OK();
}

Status WalEngine::TruncateLogs() {
  // Truncation drops records forever; the archive must absorb the data
  // image first so archive + log still covers every committed update.
  DBMR_RETURN_IF_ERROR(SweepArchive());
  for (auto& s : logs_) {
    PageData master_block;
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *s.disk, [&] { return s.disk->Read(0, &master_block); },
        &io_retry_));
    LogMaster m;
    Status st = LogMaster::DecodeFrom(master_block, &m);
    uint64_t epoch = st.ok() ? m.epoch + 1 : 1;
    s.epoch = epoch;
    s.start_block = 1;
    s.next_block = 1;
    s.pending.clear();
    s.appended_bytes = 0;
    s.flushed_bytes = 0;
    LogMaster nm{};
    nm.epoch = epoch;
    nm.start_block = 1;
    PageData block(s.disk->block_size(), 0);
    nm.EncodeTo(block);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *s.disk, [&] { return s.disk->Write(0, block); }, &io_retry_));
  }
  return Status::OK();
}

Status WalEngine::Checkpoint() {
  // Flushing enforces the write-ahead rule per page, so everything a
  // committed (or aborted-and-compensated) transaction did is home after
  // this; only active transactions still need their log records.
  DBMR_RETURN_IF_ERROR(pool_->FlushAll());
  wal_point_.clear();
  if (active_.empty()) {
    ++full_checkpoints_;
    return TruncateLogs();
  }

  // Fuzzy checkpoint: advance each stream's recovery-scan origin to the
  // oldest active transaction's first record on that stream.  No
  // quiescing; transactions keep appending behind the new horizon.  The
  // horizon drops records, so the archive must be refreshed first — same
  // ordering rule as truncation.
  DBMR_RETURN_IF_ERROR(SweepArchive());
  ++fuzzy_checkpoints_;
  const size_t cap = PayloadBytesPerLogBlock();
  for (size_t i = 0; i < logs_.size(); ++i) {
    LogStream& stm = logs_[i];
    uint64_t horizon = stm.flushed_bytes;
    for (const auto& [t, at] : active_) {
      auto fp = at.first_pos.find(i);
      if (fp != at.first_pos.end()) {
        horizon = std::min(horizon, fp->second);
      }
    }
    LogMaster m{};
    m.epoch = stm.epoch;
    m.start_block = stm.start_block + horizon / cap;
    m.start_offset = horizon % cap;
    PageData block(stm.disk->block_size(), 0);
    m.EncodeTo(block);
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *stm.disk, [&] { return stm.disk->Write(0, block); }, &io_retry_));
  }
  return Status::OK();
}

Status WalEngine::MediaRecover() {
  // Media recovery happens after a reboot: injected crash budgets are
  // gone, but a lost medium stays lost (ClearCrashState never clears it).
  data_->ClearCrashState();
  for (auto& s : logs_) s.disk->ClearCrashState();
  if (archive_ != nullptr) archive_->disk()->ClearCrashState();
  for (const auto& s : logs_) {
    if (s.disk->media_lost()) {
      return Status::DataLoss(StrFormat(
          "wal: log disk %s lost with no mirror", s.disk->name().c_str()));
    }
  }
  const bool data_lost = data_->media_lost();
  const bool archive_lost =
      archive_ != nullptr && archive_->disk()->media_lost();
  if (data_lost && (archive_ == nullptr || archive_lost)) {
    return Status::DataLoss(archive_ == nullptr
                                ? "wal: data disk lost with no archive"
                                : "wal: data disk and archive both lost");
  }
  if (data_lost) {
    data_->ReplaceMedia();
    Status st = archive_->Validate(data_->num_blocks(), data_->block_size());
    if (st.ok()) {
      st = archive_->Restore(data_, data_->num_blocks(), &io_retry_);
    }
    if (!st.ok()) {
      // Fail the half-restored data disk again so its partial image can
      // never be served as the store.
      data_->FailMedia();
      if (archive_->disk()->media_lost()) {
        return Status::DataLoss("wal: archive lost while restoring the "
                                "data disk");
      }
      return st;
    }
    // The restored image is the last swept one; the caller's Recover()
    // replays the surviving log over it, exactly like crash recovery over
    // a stale-but-consistent data disk.
  } else if (archive_lost) {
    archive_->disk()->ReplaceMedia();
    Status st = archive_->Format(data_->num_blocks(), data_->block_size());
    if (st.ok()) st = SweepArchive();
    if (!st.ok()) {
      // A partially rebuilt archive must not pass for a swept one.
      archive_->disk()->FailMedia();
      return st;
    }
  }
  return Status::OK();
}

}  // namespace dbmr::store
