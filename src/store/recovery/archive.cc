#include "store/recovery/archive.h"

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

void ArchiveMaster::EncodeTo(PageData& block) const {
  PutU64(block, 0, kMagic);
  PutU64(block, 8, sweep_seq);
  PutU64(block, 16, num_pages);
  PutU64(block, 24, block_size);
}

Status ArchiveMaster::DecodeFrom(const PageData& block, ArchiveMaster* out) {
  if (block.size() < kSize || GetU64(block, 0) != kMagic) {
    return Status::Corruption("archive master record invalid");
  }
  out->sweep_seq = GetU64(block, 8);
  out->num_pages = GetU64(block, 16);
  out->block_size = GetU64(block, 24);
  return Status::OK();
}

Status ArchiveStore::Format(uint64_t num_pages, size_t block_size) {
  if (disk_->num_blocks() < 1 + num_pages ||
      disk_->block_size() != block_size) {
    return Status::InvalidArgument(StrFormat(
        "archive disk %s: need %llu blocks of %zu bytes, have %llu of %zu",
        disk_->name().c_str(),
        static_cast<unsigned long long>(1 + num_pages), block_size,
        static_cast<unsigned long long>(disk_->num_blocks()),
        disk_->block_size()));
  }
  PageData zero(block_size, 0);
  for (uint64_t p = 0; p < num_pages; ++p) {
    DBMR_RETURN_IF_ERROR(disk_->Write(1 + p, zero));
  }
  ArchiveMaster m;
  m.sweep_seq = 0;
  m.num_pages = num_pages;
  m.block_size = block_size;
  PageData block(disk_->block_size(), 0);
  m.EncodeTo(block);
  return disk_->Write(0, block);
}

Status ArchiveStore::Sweep(VirtualDisk* src, uint64_t num_pages,
                           IoRetryStats* retry) {
  PageData master_block;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *disk_, [&] { return disk_->Read(0, &master_block); }, retry));
  ArchiveMaster m;
  DBMR_RETURN_IF_ERROR(ArchiveMaster::DecodeFrom(master_block, &m));
  PageData buf(src->block_size());
  for (uint64_t p = 0; p < num_pages; ++p) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *src, [&] { return src->ReadInto(p, buf.data()); }, retry));
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->Write(1 + p, buf); }, retry));
  }
  // The checkpoint record goes last: a sweep_seq is only ever durable
  // above a fully copied image.
  ++m.sweep_seq;
  m.EncodeTo(master_block);
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(0, master_block); }, retry);
}

Status ArchiveStore::Restore(VirtualDisk* dst, uint64_t num_pages,
                             IoRetryStats* retry) const {
  PageData buf(disk_->block_size());
  for (uint64_t p = 0; p < num_pages; ++p) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&] { return disk_->ReadInto(1 + p, buf.data()); }, retry));
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *dst, [&] { return dst->Write(p, buf); }, retry));
  }
  return Status::OK();
}

Status ArchiveStore::Validate(uint64_t num_pages, size_t block_size) const {
  PageData master_block;
  DBMR_RETURN_IF_ERROR(disk_->Read(0, &master_block));
  ArchiveMaster m;
  DBMR_RETURN_IF_ERROR(ArchiveMaster::DecodeFrom(master_block, &m));
  if (m.num_pages != num_pages || m.block_size != block_size) {
    return Status::Corruption(StrFormat(
        "archive disk %s: geometry mismatch (archive %llux%llu, "
        "store %llux%zu)",
        disk_->name().c_str(),
        static_cast<unsigned long long>(m.num_pages),
        static_cast<unsigned long long>(m.block_size),
        static_cast<unsigned long long>(num_pages), block_size));
  }
  return Status::OK();
}

}  // namespace dbmr::store
