#include "store/recovery/version_select_engine.h"

#include <algorithm>
#include <utility>

#include "store/codec.h"
#include "store/recovery/replay_plan.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
// Copy layout: [u64 magic][u64 stamp][u64 writer][u64 checksum][payload].
constexpr uint64_t kCopyMagic = 0x4442'4d52'5653'4c31ULL;  // "DBMRVSL1"
constexpr size_t kCopyHeader = 32;
}  // namespace

VersionSelectEngine::VersionSelectEngine(VirtualDisk* disk,
                                         uint64_t num_pages,
                                         VersionSelectEngineOptions options)
    : disk_(disk),
      num_pages_(num_pages),
      opts_(options),
      commit_list_(disk, 0, 1, options.list_blocks) {
  DBMR_CHECK(disk != nullptr);
  DBMR_CHECK(num_pages > 0);
  DBMR_CHECK(1 + opts_.list_blocks + 2 * num_pages <= disk->num_blocks());
  cache_.resize(num_pages);
}

size_t VersionSelectEngine::payload_size() const {
  return disk_->block_size() - kCopyHeader;
}

BlockId VersionSelectEngine::CopyBlock(txn::PageId page, int which) const {
  return 1 + opts_.list_blocks + page * 2 + static_cast<BlockId>(which);
}

Status VersionSelectEngine::WriteCopy(txn::PageId page, int which,
                                      uint64_t stamp, txn::TxnId writer,
                                      const PageData& payload) {
  // Every byte is overwritten below (header + full payload), so the
  // scratch block needs sizing but no zeroing.
  PageData& block = io_buf_;
  block.resize(disk_->block_size());
  PutU64(block, 0, kCopyMagic);
  PutU64(block, 8, stamp);
  PutU64(block, 16, writer);
  std::copy(payload.begin(), payload.end(), block.begin() + kCopyHeader);
  PutU64(block, 24, Checksum(block, kCopyHeader, block.size()) ^
                        (stamp * 0x9e3779b97f4a7c15ULL + writer));
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(CopyBlock(page, which), block); },
      &io_retry_);
}

Status VersionSelectEngine::WriteCopy(txn::PageId page, int which,
                                      uint64_t stamp, txn::TxnId writer,
                                      const uint8_t* payload, size_t len) {
  PageData& block = io_buf_;
  block.resize(disk_->block_size());
  PutU64(block, 0, kCopyMagic);
  PutU64(block, 8, stamp);
  PutU64(block, 16, writer);
  std::copy(payload, payload + len, block.begin() + kCopyHeader);
  PutU64(block, 24, Checksum(block, kCopyHeader, block.size()) ^
                        (stamp * 0x9e3779b97f4a7c15ULL + writer));
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(CopyBlock(page, which), block); },
      &io_retry_);
}

Status VersionSelectEngine::ReadCopy(txn::PageId page, int which,
                                     Copy* out) const {
  PageData& block = io_buf_;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *disk_, [&] { return disk_->Read(CopyBlock(page, which), &block); },
      &io_retry_));
  out->valid = false;
  if (GetU64(block, 0) != kCopyMagic) return Status::OK();
  out->stamp = GetU64(block, 8);
  out->writer = GetU64(block, 16);
  const uint64_t want =
      Checksum(block, kCopyHeader, block.size()) ^
      (out->stamp * 0x9e3779b97f4a7c15ULL + out->writer);
  if (GetU64(block, 24) != want) {
    ++torn_rejected_;
    return Status::OK();
  }
  out->payload.assign(block.begin() + kCopyHeader, block.end());
  out->valid = true;
  return Status::OK();
}

int VersionSelectEngine::Select(
    const Copy& a, const Copy& b,
    const std::unordered_set<txn::TxnId>& committed) {
  auto eligible = [&](const Copy& c) {
    return c.valid && (c.writer == 0 || committed.count(c.writer) > 0);
  };
  const bool ea = eligible(a);
  const bool eb = eligible(b);
  if (ea && eb) return a.stamp >= b.stamp ? 0 : 1;
  if (ea) return 0;
  if (eb) return 1;
  return -1;
}

Status VersionSelectEngine::Format() {
  DBMR_RETURN_IF_ERROR(commit_list_.Truncate());
  PageData empty(payload_size(), 0);
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    DBMR_RETURN_IF_ERROR(WriteCopy(p, 0, 0, 0, empty));
    DBMR_RETURN_IF_ERROR(WriteCopy(p, 1, 0, 0, empty));
    cache_[p] = Cached{0, 0};
  }
  committed_.clear();
  active_.clear();
  locks_.Reset();
  stamp_counter_ = 0;
  next_txn_ = 1;
  return Status::OK();
}

Result<txn::TxnId> VersionSelectEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

Status VersionSelectEngine::Read(txn::TxnId t, txn::PageId page,
                                 PageData* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (!locks_.TryAcquire(t, page, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  // Own uncommitted write lives in the non-current copy.
  const bool own = it->second.written.count(page) > 0;
  const int which = own ? 1 - cache_[page].current : cache_[page].current;
  Copy c;
  DBMR_RETURN_IF_ERROR(ReadCopy(page, which, &c));
  if (!c.valid) return Status::Corruption("selected copy invalid");
  *out = std::move(c.payload);
  return Status::OK();
}

Status VersionSelectEngine::Write(txn::TxnId t, txn::PageId page,
                                  const PageData& payload) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (payload.size() != payload_size()) {
    return Status::InvalidArgument(
        StrFormat("payload size %zu != %zu", payload.size(),
                  payload_size()));
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  const int target = 1 - cache_[page].current;
  DBMR_RETURN_IF_ERROR(
      WriteCopy(page, target, ++stamp_counter_, t, payload));
  it->second.written.insert(page);
  return Status::OK();
}

Status VersionSelectEngine::Commit(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  if (!at.written.empty()) {
    PageData blob(8, 0);
    PutU64(blob, 0, t);
    DBMR_RETURN_IF_ERROR(
        commit_list_.Append({blob.begin(), blob.end()}));
    DBMR_RETURN_IF_ERROR(commit_list_.Force());
    // --- commit point passed ---
    committed_.insert(t);
    for (txn::PageId page : at.written) {
      cache_[page].current = 1 - cache_[page].current;
    }
  }
  ++commits_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status VersionSelectEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  // The non-current copies it wrote simply lose version selection.
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void VersionSelectEngine::Crash() {
  active_.clear();
  locks_.Reset();
  commit_list_.DropVolatile();
}

int VersionSelectEngine::SelectCurrent(txn::PageId page) const {
  Copy a, b;
  if (!ReadCopy(page, 0, &a).ok() || !ReadCopy(page, 1, &b).ok()) return -1;
  return Select(a, b, committed_);
}

Status VersionSelectEngine::Recover() {
  disk_->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  if (opts_.recovery_jobs <= 0) return RecoverSequential();
  return RecoverPartitioned();
}

Status VersionSelectEngine::RecoverSequential() {
  std::vector<std::vector<uint8_t>> records;
  DBMR_RETURN_IF_ERROR(commit_list_.Load(&records));
  committed_.clear();
  txn::TxnId max_txn = 0;
  for (const auto& blob : records) {
    if (blob.size() != 8) return Status::Corruption("bad commit record");
    txn::TxnId t = GetU64(blob, 0);
    committed_.insert(t);
    max_txn = std::max(max_txn, t);
  }

  // Version-select every page; normalize current copies so the commit list
  // can be truncated.  Normalization writes the selected content into the
  // shadow slot under the system writer id (0); if that write tears, the
  // old copy still wins selection because the list is truncated only after
  // every page is normalized.
  stamp_counter_ = 0;
  bool any_normalized = false;
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    Copy c[2];
    DBMR_RETURN_IF_ERROR(ReadCopy(p, 0, &c[0]));
    DBMR_RETURN_IF_ERROR(ReadCopy(p, 1, &c[1]));
    for (const Copy& cc : c) {
      if (cc.valid) {
        ++last_stats_.replay_records;
        stamp_counter_ = std::max(stamp_counter_, cc.stamp);
        max_txn = std::max(max_txn, cc.writer);
      }
    }
    int cur = Select(c[0], c[1], committed_);
    if (cur < 0) {
      return Status::Corruption(
          StrFormat("page %llu has no valid committed copy",
                    static_cast<unsigned long long>(p)));
    }
    cache_[p] = Cached{cur, c[cur].stamp};
  }
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    Copy c[2];
    DBMR_RETURN_IF_ERROR(ReadCopy(p, 0, &c[0]));
    DBMR_RETURN_IF_ERROR(ReadCopy(p, 1, &c[1]));
    int cur = Select(c[0], c[1], committed_);
    DBMR_CHECK(cur >= 0);
    if (c[cur].writer != 0) {
      const int shadow = 1 - cur;
      DBMR_RETURN_IF_ERROR(
          WriteCopy(p, shadow, ++stamp_counter_, 0, c[cur].payload));
      cache_[p] = Cached{shadow, stamp_counter_};
      any_normalized = true;
    }
  }
  if (any_normalized || !records.empty()) {
    DBMR_RETURN_IF_ERROR(commit_list_.Truncate());
    committed_.clear();
  }
  active_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

Status VersionSelectEngine::RecoverPartitioned() {
  const int jobs = opts_.recovery_jobs;
  std::vector<std::vector<uint8_t>> records;
  DBMR_RETURN_IF_ERROR(commit_list_.Load(&records));
  committed_.clear();
  txn::TxnId max_txn = 0;
  for (const auto& blob : records) {
    if (blob.size() != 8) return Status::Corruption("bad commit record");
    txn::TxnId t = GetU64(blob, 0);
    committed_.insert(t);
    max_txn = std::max(max_txn, t);
  }

  // Phase 1 — scan (caller thread): one zero-copy read of every copy of
  // every page, in page order.  The sequential path reads each copy twice
  // (selection pass + normalization pass); this pass keeps the refs alive
  // instead, halving recovery disk reads.
  std::vector<const uint8_t*> refs(2 * num_pages_);
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&, p] { return disk_->ReadRef(CopyBlock(p, 0), &refs[p * 2]); },
        &io_retry_));
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_,
        [&, p] { return disk_->ReadRef(CopyBlock(p, 1), &refs[p * 2 + 1]); },
        &io_retry_));
  }

  // Phase 2 — select (parallel over pages): validate checksums and run
  // the selection rule on private memory; `committed_` is read-only here.
  struct PageState {
    bool valid[2] = {false, false};
    uint64_t stamp[2] = {0, 0};
    txn::TxnId writer[2] = {0, 0};
    int cur = -1;
    uint8_t torn = 0;
  };
  std::vector<PageState> pages(num_pages_);
  const size_t bs = disk_->block_size();
  // Selection work is one checksum pass over both copies of every page.
  const int eff_jobs = EffectiveReplayJobs(
      jobs, static_cast<size_t>(2 * num_pages_) * bs);
  RunReplayJobs(eff_jobs, num_pages_, [&](size_t p) {
    PageState& ps = pages[p];
    Copy c[2];
    for (int which = 0; which < 2; ++which) {
      const uint8_t* b = refs[p * 2 + which];
      if (GetU64(b) != kCopyMagic) continue;
      const uint64_t stamp = GetU64(b + 8);
      const uint64_t writer = GetU64(b + 16);
      const uint64_t want = HashBytes(b + kCopyHeader, bs - kCopyHeader) ^
                            (stamp * 0x9e3779b97f4a7c15ULL + writer);
      if (GetU64(b + 24) != want) {
        ++ps.torn;
        continue;
      }
      ps.valid[which] = true;
      ps.stamp[which] = stamp;
      ps.writer[which] = writer;
      c[which].valid = true;
      c[which].stamp = stamp;
      c[which].writer = writer;
    }
    ps.cur = Select(c[0], c[1], committed_);
  });

  // Phase 3 — reduce (caller thread, page order): fold stamps, writers
  // and torn counts exactly as the sequential selection pass does, then
  // normalize in page order with the identical stamp sequence (global max
  // first, one increment per normalized page).
  stamp_counter_ = 0;
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    const PageState& ps = pages[p];
    torn_rejected_ += ps.torn;
    for (int which = 0; which < 2; ++which) {
      if (!ps.valid[which]) continue;
      ++last_stats_.replay_records;
      stamp_counter_ = std::max(stamp_counter_, ps.stamp[which]);
      max_txn = std::max(max_txn, ps.writer[which]);
    }
    if (ps.cur < 0) {
      return Status::Corruption(
          StrFormat("page %llu has no valid committed copy",
                    static_cast<unsigned long long>(p)));
    }
    cache_[p] = Cached{ps.cur, ps.stamp[ps.cur]};
  }
  last_stats_.partitions = num_pages_;
  bool any_normalized = false;
  for (txn::PageId p = 0; p < num_pages_; ++p) {
    const PageState& ps = pages[p];
    if (ps.writer[ps.cur] != 0) {
      const int shadow = 1 - ps.cur;
      DBMR_RETURN_IF_ERROR(WriteCopy(p, shadow, ++stamp_counter_, 0,
                                     refs[p * 2 + ps.cur] + kCopyHeader,
                                     bs - kCopyHeader));
      cache_[p] = Cached{shadow, stamp_counter_};
      any_normalized = true;
    }
  }
  if (any_normalized || !records.empty()) {
    DBMR_RETURN_IF_ERROR(commit_list_.Truncate());
    committed_.clear();
  }
  active_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

}  // namespace dbmr::store
