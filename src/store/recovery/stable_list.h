// A small append-only list of records on stable storage.
//
// Several recovery mechanisms in the paper need "a list of transactions
// that should survive system crash" (§3.2.2.2) — uncommitted transactions
// for the no-redo overwriting architecture, committed-but-unapplied ones
// for no-undo, and the commit list of the version-selection scheme.  This
// class provides that primitive: length-framed byte blobs appended to a
// block region with group-fill partial-block rewrites, an epoch-stamped
// master block, and whole-list truncation.

#ifndef DBMR_STORE_RECOVERY_STABLE_LIST_H_
#define DBMR_STORE_RECOVERY_STABLE_LIST_H_

#include <cstdint>
#include <vector>

#include "store/virtual_disk.h"

namespace dbmr::store {

/// Append-only record list over a block range of a VirtualDisk.
class StableList {
 public:
  /// Uses blocks [first_block, first_block + num_blocks) for data and
  /// `master_block` for the epoch master.
  StableList(VirtualDisk* disk, BlockId master_block, BlockId first_block,
             uint64_t num_blocks);

  /// Initializes/advances the epoch, invalidating all existing records.
  Status Truncate();

  /// Loads the master (after a restart) and positions the writer state
  /// consistently for Truncate/Append.  Loading scans the durable records
  /// to find the end of the data; passing non-null `records` hands them to
  /// the caller, saving recovery a second full Scan() of the region.
  Status Load(std::vector<std::vector<uint8_t>>* records = nullptr);

  /// Buffers a record; durable only after Force().
  Status Append(const std::vector<uint8_t>& blob);

  /// Writes buffered records to disk (group-fill: the partial tail block
  /// is rewritten in place).
  Status Force();

  /// Reads every durable record, in append order.
  Status Scan(std::vector<std::vector<uint8_t>>* out) const;

  /// Drops buffered-but-unforced records (volatile loss on crash).
  void DropVolatile();

  uint64_t epoch() const { return epoch_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t flushed_bytes() const { return flushed_bytes_; }
  bool HasUnforced() const { return flushed_bytes_ != appended_bytes_; }

 private:
  size_t Cap() const { return disk_->block_size() - 16; }
  Status WriteMaster();

  VirtualDisk* disk_;
  BlockId master_block_;
  BlockId first_block_;
  uint64_t num_blocks_;

  uint64_t epoch_ = 0;
  BlockId next_block_ = 0;  // first not-finalized block
  std::vector<uint8_t> pending_;  // bytes from start of next_block_ onward
  uint64_t appended_bytes_ = 0;
  uint64_t flushed_bytes_ = 0;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_STABLE_LIST_H_
