// ARIES recovery engine — the 1992 answer to the paper's 1985 question.
//
// The paper's five architectures predate the design that won: ARIES
// (Mohan et al., TODS 1992).  This engine implements its core over the
// same crash-able VirtualDisks as the rest of the zoo, so the original
// comparison can be run against it:
//
//  * Per-page pageLSN: every data page's first 8 bytes hold the LSN of
//    the last log record applied to it.  LSNs are byte offsets in the
//    logical log stream and never repeat (truncation advances the epoch
//    base), so pageLSN comparisons stay valid across the store's life.
//  * WAL rule as an LSN inequality: a page may reach disk only once
//    pageLSN <= flushedLSN (FlushDataPage forces the log first).  The
//    auditor's "aries-wal-lsn" invariant observes exactly this check.
//  * No-force / steal, like the WAL engine: commit forces the log only;
//    dirty pages of uncommitted transactions may be evicted.
//  * Fuzzy checkpoints: every checkpoint_interval appended records, a
//    kCheckpoint record carrying the dirty-page table (page -> recLSN)
//    and transaction table (txn -> lastLSN) is appended and forced, the
//    archive (when configured) is re-swept, and the master's scan origin
//    advances to min(active transactions' first LSN, dirty pages'
//    recLSN) — no quiescing, transactions keep running throughout.
//  * Three-pass restart: ANALYSIS rebuilds the tables from the last
//    checkpoint record plus a forward scan; REDO repeats history —
//    updates and CLRs alike are re-applied wherever pageLSN < LSN,
//    starting from the dirty-page table's minimum recLSN (or from the
//    retention origin after a media restore, where the disk image is
//    older than the crash-time tables imply); UNDO rolls back losers by
//    walking prev_lsn chains, writing CLRs whose undo_next pointers make
//    rollback itself restartable ("aries-clr-chain" audits the pointer
//    discipline).  All CLRs are forced before any page is written back.
//  * recovery_jobs wires restart through the PR-7 replay planner: redo
//    partitions by page and runs on the thread pool; jobs=0 keeps a
//    separate, simpler sequential implementation as a cross-check — the
//    recovered image is byte-identical at every setting.
//  * Media recovery mirrors the WAL engine's: a lost data disk is
//    replaced and restored from the archive sweep, and the retained log
//    (whose origin never passes a record the archive still needs) is
//    replayed over it by the subsequent Recover().

#ifndef DBMR_STORE_RECOVERY_ARIES_ENGINE_H_
#define DBMR_STORE_RECOVERY_ARIES_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/buffer_pool.h"
#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/archive.h"
#include "store/recovery/aries_log.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"

namespace dbmr::store {

/// Observation points for the auditor's ARIES invariants.  The engine
/// invokes whichever callbacks are set; tests wire these to an Auditor.
struct AriesAuditHooks {
  /// Recover() began: volatile state — and with it any never-durable log
  /// tail — is gone.  Restart rebuilds the auditor's pending-undo model
  /// from the durable log by replaying `on_update` for every loser record
  /// it is about to undo.
  std::function<void()> on_restart;
  /// A data page is about to be written back; the WAL rule requires
  /// page_lsn <= flushed_lsn here.
  std::function<void(txn::PageId page, uint64_t page_lsn,
                     uint64_t flushed_lsn)>
      on_write_back;
  /// An update record was appended for `txn` at `lsn`.
  std::function<void(txn::TxnId txn, uint64_t lsn)> on_update;
  /// A CLR was appended for `txn` carrying `undo_next_lsn`.
  std::function<void(txn::TxnId txn, uint64_t undo_next_lsn)> on_clr;
  /// `txn` ended (commit record forced, or rollback's kAbort appended).
  std::function<void(txn::TxnId txn, bool committed)> on_txn_end;
};

/// Options for AriesEngine.
struct AriesEngineOptions {
  size_t pool_frames = 64;
  /// Parallel replay jobs for Recover(): >= 1 runs the partitioned
  /// planner pipeline, 0 the sequential reference path.  Byte-identical
  /// recovered images at every setting.
  int recovery_jobs = 1;
  /// Appended records between automatic fuzzy checkpoints (0 disables
  /// them; explicit Checkpoint() calls still work).
  uint64_t checkpoint_interval = 64;
  /// Deliberately broken variants for auditor negative tests: skip the
  /// log force on write-back (violates the WAL rule), or point CLRs'
  /// undo_next at the compensated record instead of past it (breaks the
  /// undo chain).  Never set outside tests.
  bool test_skip_log_force = false;
  bool test_break_clr_chain = false;
};

/// The ARIES page engine.
class AriesEngine : public PageEngine {
 public:
  /// Disks are borrowed, not owned; the log disk must share the data
  /// disk's block size.  An optional archive disk (1 + num_pages blocks
  /// of the same size) enables fuzzy archive sweeps and MediaRecover().
  /// The constructor performs no disk I/O (crash-sweep trials construct
  /// engines over forked snapshots before Recover()).
  AriesEngine(VirtualDisk* data_disk, VirtualDisk* log_disk,
              AriesEngineOptions options = {},
              VirtualDisk* archive_disk = nullptr);
  ~AriesEngine() override = default;

  Status Format() override;
  Status Recover() override;
  Result<txn::TxnId> Begin() override;
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override;
  Status Abort(txn::TxnId t) override;
  void Crash() override;
  size_t payload_size() const override;
  uint64_t num_pages() const override { return data_->num_blocks(); }
  std::string name() const override { return "aries"; }

  /// Checkpoint.  With no active transactions: flushes all dirty pages
  /// and truncates the log (a new epoch).  With active transactions it
  /// degrades to a fuzzy checkpoint after the flush.
  Status Checkpoint();

  /// Media recovery (requires an archive disk).  A lost data disk is
  /// replaced and restored from the archive; the subsequent Recover()
  /// replays the full retained log over the restored image.  A lost
  /// archive is replaced and re-swept.  A lost, unmirrored log disk —
  /// or data and archive both lost — is kDataLoss.
  Status MediaRecover() override;

  /// --- Introspection (tests, examples, benches) ------------------------
  uint64_t flushed_lsn() const { return flushed_lsn_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t log_forces() const { return forces_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t redo_applied() const { return redo_applied_; }
  uint64_t undo_applied() const { return undo_applied_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }
  uint64_t full_checkpoints() const { return full_checkpoints_; }
  uint64_t fuzzy_checkpoints() const { return fuzzy_checkpoints_; }
  uint64_t archive_sweeps() const { return archive_sweeps_; }
  /// Current dirty-page table size (pages possibly newer in the pool
  /// than on disk) — the bench crashes at its peak.
  size_t dirty_page_count() const { return dpt_.size(); }
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const override { return last_stats_; }
  IoRetryStats io_retry_stats() const override { return io_retry_; }
  void set_audit_hooks(AriesAuditHooks hooks) {
    hooks_ = std::move(hooks);
  }

 private:
  struct UndoEntry {
    txn::PageId page;
    uint32_t offset;
    std::vector<uint8_t> before;
    uint64_t lsn;       ///< LSN of the update this entry undoes
    uint64_t prev_lsn;  ///< that update's prev_lsn (the CLR's undo_next)
  };

  struct ActiveTxn {
    std::vector<UndoEntry> undo;
    uint64_t first_lsn = 0;  ///< fuzzy horizon must not pass this
    uint64_t last_lsn = 0;
  };

  size_t PayloadBytesPerLogBlock() const;
  /// Appends `rec`, assigning and returning its LSN.
  uint64_t AppendRecord(const AriesLogRecord& rec);
  Status ForceLog();
  Status FetchBlock(txn::PageId page, PageData* out);
  Status FlushDataPage(txn::PageId page, const PageData& block);
  Status WriteMaster(const AriesLogMaster& m);
  /// Runs a fuzzy checkpoint when the append counter crosses the
  /// interval (no-op mid-checkpoint or when disabled).
  Status MaybeAutoCheckpoint();
  /// Appends + forces a checkpoint record, re-sweeps the archive, and
  /// advances the master's scan origin to the retention horizon.
  Status FuzzyCheckpoint();
  /// Reads and decodes the master, adopting its epoch / epoch base /
  /// checkpoint LSN; `*retained_start_lsn` receives the LSN of the first
  /// retained stream byte.
  Status LoadMaster(AriesLogMaster* m, uint64_t* retained_start_lsn);
  /// Reconstructs the stream's append state (next block, pending
  /// partial-block prefix, LSN watermarks) after a scan whose decode
  /// found the last complete record `end_rel` bytes into the retained
  /// stream.  The never-fully-durable tail past it is discarded: restart
  /// CLRs append from there, group-rewriting the partial block.
  Status ReconstructAppendState(const AriesLogMaster& m, uint64_t end_rel);
  /// Zero-copy scan of the retained stream into segments (stop rules
  /// identical to LoadAppendState's walk).
  Status CollectSegments(const AriesLogMaster& m, SegmentedBytes* out) const;
  /// The pre-planner single-threaded restart (recovery_jobs == 0), kept
  /// as the equivalence reference.
  Status RecoverSequential();
  /// The partitioned restart (recovery_jobs >= 1): zero-copy scan,
  /// page-partitioned parallel redo, sequential undo, ordered write-back.
  Status RecoverPartitioned();
  /// A loser transaction's undo state at restart.
  struct RestartLoser {
    uint64_t next_undo = 0;  ///< LSN of the next record to undo (0 = done)
    uint64_t last_lsn = 0;   ///< the transaction's newest record
  };
  /// Shared restart tail: undoes losers into `images` (writing CLRs;
  /// `record_at` resolves an LSN to its record, valid until the next
  /// call), forces the log once, writes every image back in ascending
  /// page order, truncates, and resets volatile state.
  Status FinishRestart(
      std::map<txn::PageId, PageData>* images,
      const std::map<txn::TxnId, RestartLoser>& losers,
      const std::function<const AriesLogRecord*(uint64_t)>& record_at,
      txn::TxnId max_txn);
  Status TruncateLog();
  /// Refreshes the archive from the data disk (no-op without one); must
  /// run before any log records are dropped.
  Status SweepArchive();

  VirtualDisk* data_;
  VirtualDisk* log_;
  AriesEngineOptions opts_;
  txn::LockManager locks_;
  std::unique_ptr<BufferPool> pool_;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  /// Dirty-page table: page -> recLSN (earliest record possibly not yet
  /// on disk for that page).
  std::unordered_map<txn::PageId, uint64_t> dpt_;
  txn::TxnId next_txn_ = 1;

  // --- log stream state (volatile mirrors of the master + tail) -------
  uint64_t epoch_ = 1;
  /// Epoch the retained stream begins in; blocks scan as a non-decreasing
  /// epoch run in [first_epoch_, epoch_] (see AriesLogMaster::first_epoch).
  uint64_t first_epoch_ = 1;
  uint64_t epoch_base_lsn_ = 1;
  BlockId next_block_ = 1;  ///< block the pending bytes start in
  std::vector<uint8_t> pending_;  ///< block-aligned unflushed tail
  uint64_t next_lsn_ = 1;
  uint64_t flushed_lsn_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  bool in_checkpoint_ = false;
  /// Set by MediaRecover after an archive restore; survives Crash() (it
  /// describes stable storage, not volatile state) and makes the next
  /// restart redo from the retention origin instead of the dirty-page
  /// table's minimum recLSN.
  bool media_restored_ = false;

  uint64_t forces_ = 0;
  uint64_t records_appended_ = 0;
  uint64_t redo_applied_ = 0;
  uint64_t undo_applied_ = 0;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
  uint64_t full_checkpoints_ = 0;
  uint64_t fuzzy_checkpoints_ = 0;
  uint64_t archive_sweeps_ = 0;
  RecoveryStats last_stats_;
  std::unique_ptr<ArchiveStore> archive_;  ///< null: archiving disabled
  AriesAuditHooks hooks_;
  mutable IoRetryStats io_retry_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_ARIES_ENGINE_H_
