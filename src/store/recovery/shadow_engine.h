// Shadow-paging ("thru page-table") engine, System R style (paper §3.2).
//
// Every logical page is reached through a page table mapping it to a
// physical block.  An update never overwrites the current block: the new
// image goes to a freshly allocated block (copy-on-write), and the
// transaction's private mapping points at it while the committed table
// still points at the shadow.  Commit serializes the updated table into
// the alternate on-disk table copy and then atomically flips a one-block
// master record — the commit point.  Recovery is trivial by construction:
// read the master, load the table it points to; no redo, no undo.
//
// The defining costs the paper measures — indirection through the page
// table on every access, and the loss of physical clustering as pages are
// relocated — are modeled on the performance side (machine/SimShadow);
// this engine establishes the mechanism's correctness.

#ifndef DBMR_STORE_RECOVERY_SHADOW_ENGINE_H_
#define DBMR_STORE_RECOVERY_SHADOW_ENGINE_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/replay_plan.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"

namespace dbmr::store {

/// How the copy-on-write allocator picks a free block (paper §4.2.3: the
/// shadow mechanism tends to scramble logical adjacency).
enum class ShadowAllocPolicy {
  kFirstFree,    ///< lowest-numbered free block (scrambles over time)
  kNearShadow,   ///< free block closest to the shadow copy (clustering)
};

/// Options for ShadowEngine.
struct ShadowEngineOptions {
  ShadowAllocPolicy alloc = ShadowAllocPolicy::kFirstFree;
  /// Parallel replay jobs for Recover(): >= 1 loads the committed page
  /// table through the zero-copy planner pipeline (table blocks decoded
  /// in parallel); 0 keeps the pre-planner sequential ReadTable as the
  /// reference path.  The recovered state is identical at every setting.
  int recovery_jobs = 1;
};

/// Shadow page-table engine over a single VirtualDisk.
class ShadowEngine : public PageEngine {
 public:
  /// Lays out: block 0 master, two page-table copies, then a data area.
  /// `num_pages` logical pages; the disk must leave enough spare data
  /// blocks for copy-on-write (at least the write-set sizes of concurrent
  /// transactions).
  ShadowEngine(VirtualDisk* disk, uint64_t num_pages,
               ShadowEngineOptions options = {});

  Status Format() override;
  Status Recover() override;
  Result<txn::TxnId> Begin() override;
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override;
  Status Abort(txn::TxnId t) override;
  void Crash() override;
  size_t payload_size() const override { return disk_->block_size(); }
  uint64_t num_pages() const override { return num_pages_; }
  std::string name() const override { return "shadow"; }

  /// --- Introspection ---------------------------------------------------
  /// Physical block currently mapped to `page` in the committed table.
  BlockId CommittedBlockOf(txn::PageId page) const;
  size_t free_blocks() const { return free_.size(); }
  uint64_t commits() const { return commits_; }
  uint64_t table_flips() const { return table_flips_; }
  /// Fraction of logically adjacent page pairs whose physical blocks are
  /// also adjacent — the clustering the paper's Table 7 worries about.
  double ClusteringFactor() const;
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const override { return last_stats_; }
  IoRetryStats io_retry_stats() const override { return io_retry_; }

 private:
  struct ActiveTxn {
    /// page -> freshly allocated block holding this txn's current copy.
    std::unordered_map<txn::PageId, BlockId> mapping;
  };

  uint64_t TableBlocks() const;
  BlockId TableStart(int which) const;
  BlockId DataStart() const;
  Status WriteMaster(int which, uint64_t generation);
  Status WriteTable(int which, const std::vector<BlockId>& table);
  Status ReadTable(int which, std::vector<BlockId>* table) const;
  /// Planner-pipeline table load (recovery_jobs >= 1): zero-copy refs to
  /// the table blocks, entries decoded in parallel into disjoint slices.
  Status ReadTablePartitioned(int which, std::vector<BlockId>* table);
  Result<BlockId> AllocBlock(BlockId near);
  /// Block serving reads of `page` for transaction `t`.
  BlockId ResolveBlock(const ActiveTxn& at, txn::PageId page) const;
  void RebuildFreeSet();

  VirtualDisk* disk_;
  uint64_t num_pages_;
  ShadowEngineOptions opts_;
  txn::LockManager locks_;

  std::vector<BlockId> committed_table_;
  std::set<BlockId> free_;  // ordered for deterministic allocation
  int current_table_ = 0;
  uint64_t generation_ = 0;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  txn::TxnId next_txn_ = 1;

  uint64_t commits_ = 0;
  uint64_t table_flips_ = 0;
  RecoveryStats last_stats_;
  mutable IoRetryStats io_retry_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_SHADOW_ENGINE_H_
