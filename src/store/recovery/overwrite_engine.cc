#include "store/recovery/overwrite_engine.h"

#include <algorithm>
#include <utility>

#include "store/codec.h"
#include "store/recovery/replay_plan.h"
#include "util/str.h"

namespace dbmr::store {

namespace {
// Scratch entry layout:
//   [u64 magic][u64 epoch][u64 txn][u64 page][u64 seq][u64 checksum]
//   [payload ...]
constexpr uint64_t kScratchMagic = 0x4442'4d52'4f5657'31ULL;
constexpr size_t kScratchHeader = 48;
}  // namespace

OverwriteEngine::OverwriteEngine(VirtualDisk* disk, uint64_t num_pages,
                                 OverwriteEngineOptions options)
    : disk_(disk),
      num_pages_(num_pages),
      opts_(options),
      list_(disk, 0, 1, options.list_blocks) {
  DBMR_CHECK(disk != nullptr);
  DBMR_CHECK(num_pages > 0);
  DBMR_CHECK(HomeStart() + num_pages <= disk->num_blocks());
}

size_t OverwriteEngine::payload_size() const {
  return disk_->block_size() - kScratchHeader;
}

std::string OverwriteEngine::name() const {
  return opts_.mode == OverwriteMode::kNoRedo ? "overwrite-noredo"
                                              : "overwrite-noundo";
}

Status OverwriteEngine::Format() {
  PageData zero(disk_->block_size(), 0);
  for (BlockId b = ScratchStart(); b < disk_->num_blocks(); ++b) {
    DBMR_RETURN_IF_ERROR(disk_->Write(b, zero));
  }
  DBMR_RETURN_IF_ERROR(list_.Truncate());
  free_slots_.clear();
  for (BlockId b = ScratchStart(); b < HomeStart(); ++b) free_slots_.insert(b);
  active_.clear();
  locks_.Reset();
  next_txn_ = 1;
  return Status::OK();
}

Status OverwriteEngine::AppendOutcome(ListKind kind, txn::TxnId t,
                                      bool force) {
  std::vector<uint8_t> blob(9, 0);
  blob[0] = static_cast<uint8_t>(kind);
  PageData tmp(8, 0);
  PutU64(tmp, 0, t);
  std::copy(tmp.begin(), tmp.end(), blob.begin() + 1);
  DBMR_RETURN_IF_ERROR(list_.Append(blob));
  return force ? list_.Force() : Status::OK();
}

Result<BlockId> OverwriteEngine::AllocSlot() {
  if (free_slots_.empty()) {
    return Status::ResourceExhausted("scratch ring full");
  }
  BlockId b = *free_slots_.begin();
  free_slots_.erase(free_slots_.begin());
  return b;
}

Status OverwriteEngine::WriteScratch(BlockId slot, txn::TxnId t,
                                     txn::PageId page, uint64_t seq,
                                     const PageData& payload) {
  PageData block(disk_->block_size(), 0);
  PutU64(block, 0, kScratchMagic);
  PutU64(block, 8, list_.epoch());
  PutU64(block, 16, t);
  PutU64(block, 24, page);
  PutU64(block, 32, seq);
  std::copy(payload.begin(), payload.end(),
            block.begin() + kScratchHeader);
  PutU64(block, 40, Checksum(block, kScratchHeader, block.size()) ^
                        (t * 0x9e3779b97f4a7c15ULL + page + seq));
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(slot, block); }, &io_retry_);
}

bool OverwriteEngine::ParseScratch(const PageData& block, txn::TxnId* t,
                                   txn::PageId* page, uint64_t* seq,
                                   PageData* payload) const {
  if (GetU64(block, 0) != kScratchMagic) return false;
  if (GetU64(block, 8) != list_.epoch()) return false;
  *t = GetU64(block, 16);
  *page = GetU64(block, 24);
  *seq = GetU64(block, 32);
  const uint64_t want = Checksum(block, kScratchHeader, block.size()) ^
                        (*t * 0x9e3779b97f4a7c15ULL + *page + *seq);
  if (GetU64(block, 40) != want) return false;
  payload->assign(block.begin() + kScratchHeader, block.end());
  return true;
}

Status OverwriteEngine::ReadHome(txn::PageId page, PageData* out) const {
  PageData& block = io_buf_;
  DBMR_RETURN_IF_ERROR(RetryDiskIo(
      *disk_, [&] { return disk_->Read(HomeBlock(page), &block); },
      &io_retry_));
  out->assign(block.begin(), block.begin() + static_cast<long>(payload_size()));
  return Status::OK();
}

Status OverwriteEngine::WriteHome(txn::PageId page, const PageData& payload) {
  PageData block(disk_->block_size(), 0);
  std::copy(payload.begin(), payload.end(), block.begin());
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(HomeBlock(page), block); },
      &io_retry_);
}

Status OverwriteEngine::WriteHome(txn::PageId page, const uint8_t* payload,
                                  size_t len) {
  PageData block(disk_->block_size(), 0);
  std::copy(payload, payload + len, block.begin());
  return RetryDiskIo(
      *disk_, [&] { return disk_->Write(HomeBlock(page), block); },
      &io_retry_);
}

Result<txn::TxnId> OverwriteEngine::Begin() {
  txn::TxnId t = next_txn_++;
  active_.emplace(t, ActiveTxn{});
  return t;
}

Status OverwriteEngine::Read(txn::TxnId t, txn::PageId page, PageData* out) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (!locks_.TryAcquire(t, page, txn::LockMode::kShared)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  if (opts_.mode == OverwriteMode::kNoUndo) {
    auto own = it->second.current.find(page);
    if (own != it->second.current.end()) {
      *out = own->second;
      return Status::OK();
    }
  }
  return ReadHome(page, out);
}

Status OverwriteEngine::Write(txn::TxnId t, txn::PageId page,
                              const PageData& payload) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  if (page >= num_pages_) return Status::OutOfRange("page id");
  if (payload.size() != payload_size()) {
    return Status::InvalidArgument(
        StrFormat("payload size %zu != %zu", payload.size(),
                  payload_size()));
  }
  if (!locks_.TryAcquire(t, page, txn::LockMode::kExclusive)) {
    return Status::Aborted("lock conflict (no-wait)");
  }
  ActiveTxn& at = it->second;

  if (opts_.mode == OverwriteMode::kNoRedo) {
    // Register the transaction as uncommitted on stable storage before its
    // first in-place overwrite.
    if (!at.registered) {
      DBMR_RETURN_IF_ERROR(AppendOutcome(ListKind::kActive, t, true));
      at.registered = true;
    }
    if (at.slots.find(page) == at.slots.end()) {
      // First touch of this page: save the shadow to scratch.
      PageData original;
      DBMR_RETURN_IF_ERROR(ReadHome(page, &original));
      auto slot = AllocSlot();
      DBMR_RETURN_IF_ERROR(slot.status());
      Status st = WriteScratch(*slot, t, page, at.next_seq++, original);
      if (!st.ok()) {
        free_slots_.insert(*slot);
        return st;
      }
      at.slots.emplace(page, *slot);
      at.originals.emplace(page, std::move(original));
    }
    return WriteHome(page, payload);
  }

  // kNoUndo: the new image goes to scratch only; home stays untouched.
  auto slot_it = at.slots.find(page);
  BlockId slot;
  if (slot_it == at.slots.end()) {
    auto s = AllocSlot();
    DBMR_RETURN_IF_ERROR(s.status());
    slot = *s;
  } else {
    slot = slot_it->second;
  }
  Status st = WriteScratch(slot, t, page, at.next_seq++, payload);
  if (!st.ok()) {
    if (slot_it == at.slots.end()) free_slots_.insert(slot);
    return st;
  }
  if (slot_it == at.slots.end()) at.slots.emplace(page, slot);
  at.current[page] = payload;
  return Status::OK();
}

void OverwriteEngine::FreeSlots(const ActiveTxn& at) {
  for (const auto& [page, slot] : at.slots) free_slots_.insert(slot);
}

Status OverwriteEngine::Commit(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;

  if (opts_.mode == OverwriteMode::kNoRedo) {
    // All updates are already home (written in place at Write time, and
    // VirtualDisk writes are synchronous).  The commit record both commits
    // and de-registers the transaction.
    if (at.registered) {
      DBMR_RETURN_IF_ERROR(AppendOutcome(ListKind::kCommit, t, true));
    }
    FreeSlots(at);
  } else {
    if (!at.slots.empty()) {
      // Commit point: the commit record makes the scratch copies the
      // transaction's durable updates.
      DBMR_RETURN_IF_ERROR(AppendOutcome(ListKind::kCommit, t, true));
      // Overwrite the shadows with the current copies; locks are still
      // held, exactly as the paper requires.
      for (const auto& [page, payload] : at.current) {
        DBMR_RETURN_IF_ERROR(WriteHome(page, payload));
      }
      DBMR_RETURN_IF_ERROR(AppendOutcome(ListKind::kDone, t, true));
    }
    FreeSlots(at);
  }
  ++commits_;
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

Status OverwriteEngine::Abort(txn::TxnId t) {
  auto it = active_.find(t);
  if (it == active_.end()) {
    return Status::FailedPrecondition("transaction not active");
  }
  ActiveTxn& at = it->second;
  if (opts_.mode == OverwriteMode::kNoRedo) {
    // Restore the shadows over the in-place updates, then mark the
    // transaction terminal.  A crash mid-restore is fine: recovery
    // restores from scratch again (idempotent).
    for (const auto& [page, original] : at.originals) {
      DBMR_RETURN_IF_ERROR(WriteHome(page, original));
      ++shadows_restored_;
    }
    if (at.registered) {
      DBMR_RETURN_IF_ERROR(AppendOutcome(ListKind::kAbort, t, true));
    }
  }
  // kNoUndo: home was never touched; dropping scratch is enough.
  FreeSlots(at);
  locks_.ReleaseAll(t);
  active_.erase(it);
  return Status::OK();
}

void OverwriteEngine::Crash() {
  active_.clear();
  locks_.Reset();
  list_.DropVolatile();
  // free_slots_ is rebuilt by Recover.
}

Status OverwriteEngine::Recover() {
  disk_->ClearCrashState();
  last_stats_ = RecoveryStats{};
  last_stats_.jobs = opts_.recovery_jobs;
  if (opts_.recovery_jobs <= 0) return RecoverSequential();
  return RecoverPartitioned();
}

Status OverwriteEngine::RecoverSequential() {
  // Classify transactions from the stable list (Load hands back the
  // records its positioning scan already read).
  std::unordered_map<txn::TxnId, ListKind> last_kind;
  std::vector<std::vector<uint8_t>> records;
  DBMR_RETURN_IF_ERROR(list_.Load(&records));
  txn::TxnId max_txn = 0;
  for (const auto& blob : records) {
    if (blob.size() != 9) return Status::Corruption("bad outcome record");
    txn::TxnId t = GetU64(blob, 1);
    max_txn = std::max(max_txn, t);
    last_kind[t] = static_cast<ListKind>(blob[0]);
  }
  last_stats_.replay_records += records.size();

  // Scan the scratch ring once, grouping valid current-epoch entries.
  struct Entry {
    uint64_t seq;
    PageData payload;
  };
  std::unordered_map<txn::TxnId, std::map<txn::PageId, Entry>> scratch;
  PageData block(disk_->block_size());
  for (BlockId b = ScratchStart(); b < HomeStart(); ++b) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_, [&, b] { return disk_->ReadInto(b, block.data()); },
        &io_retry_));
    txn::TxnId t;
    txn::PageId page;
    uint64_t seq;
    PageData payload;
    if (!ParseScratch(block, &t, &page, &seq, &payload)) continue;
    ++last_stats_.replay_records;
    auto& slot = scratch[t][page];
    if (payload.size() >= slot.payload.size() && seq >= slot.seq) {
      slot = Entry{seq, std::move(payload)};
    }
  }

  if (opts_.mode == OverwriteMode::kNoRedo) {
    // Restore shadows for transactions registered active with no terminal
    // record.
    for (const auto& [t, kind] : last_kind) {
      if (kind != ListKind::kActive) continue;
      auto sc = scratch.find(t);
      if (sc == scratch.end()) continue;
      for (const auto& [page, entry] : sc->second) {
        DBMR_RETURN_IF_ERROR(WriteHome(page, entry.payload));
        ++shadows_restored_;
      }
    }
  } else {
    // Re-copy scratch to home for committed-but-not-done transactions.
    for (const auto& [t, kind] : last_kind) {
      if (kind != ListKind::kCommit) continue;
      auto sc = scratch.find(t);
      if (sc == scratch.end()) continue;
      for (const auto& [page, entry] : sc->second) {
        DBMR_RETURN_IF_ERROR(WriteHome(page, entry.payload));
        ++redo_copies_;
      }
    }
  }

  // Fresh epoch: every scratch entry and outcome record is now obsolete.
  DBMR_RETURN_IF_ERROR(list_.Truncate());
  free_slots_.clear();
  for (BlockId b = ScratchStart(); b < HomeStart(); ++b) free_slots_.insert(b);
  active_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

Status OverwriteEngine::RecoverPartitioned() {
  const int jobs = opts_.recovery_jobs;

  // Outcome classification, same as the sequential path (stable-list I/O
  // stays on the caller thread).
  std::unordered_map<txn::TxnId, ListKind> last_kind;
  std::vector<std::vector<uint8_t>> records;
  DBMR_RETURN_IF_ERROR(list_.Load(&records));
  txn::TxnId max_txn = 0;
  for (const auto& blob : records) {
    if (blob.size() != 9) return Status::Corruption("bad outcome record");
    txn::TxnId t = GetU64(blob, 1);
    max_txn = std::max(max_txn, t);
    last_kind[t] = static_cast<ListKind>(blob[0]);
  }
  last_stats_.replay_records += records.size();

  // Phase 1 — scan (caller thread): zero-copy refs of the whole scratch
  // ring.  Same reads as the sequential scan, no block is copied.
  const BlockId scratch_start = ScratchStart();
  const uint64_t n_scratch = HomeStart() - scratch_start;
  std::vector<const uint8_t*> blocks(n_scratch);
  for (uint64_t i = 0; i < n_scratch; ++i) {
    DBMR_RETURN_IF_ERROR(RetryDiskIo(
        *disk_,
        [&, i] { return disk_->ReadRef(scratch_start + i, &blocks[i]); },
        &io_retry_));
  }

  // Phase 2 — validate (parallel over blocks): magic/epoch/checksum, the
  // expensive part of the scan, on private memory only.
  struct Parsed {
    bool valid = false;
    txn::TxnId t = 0;
    txn::PageId page = 0;
    uint64_t seq = 0;
    const uint8_t* payload = nullptr;
  };
  std::vector<Parsed> parsed(n_scratch);
  const size_t bs = disk_->block_size();
  const uint64_t epoch = list_.epoch();
  // Validation work is one checksum pass over the scratch ring.
  const int eff_jobs =
      EffectiveReplayJobs(jobs, static_cast<size_t>(n_scratch) * bs);
  RunReplayJobs(eff_jobs, n_scratch, [&](size_t i) {
    const uint8_t* b = blocks[i];
    if (GetU64(b) != kScratchMagic || GetU64(b + 8) != epoch) return;
    Parsed p;
    p.t = GetU64(b + 16);
    p.page = GetU64(b + 24);
    p.seq = GetU64(b + 32);
    const uint64_t want =
        HashBytes(b + kScratchHeader, bs - kScratchHeader) ^
        (p.t * 0x9e3779b97f4a7c15ULL + p.page + p.seq);
    if (GetU64(b + 40) != want) return;
    p.valid = true;
    p.payload = b + kScratchHeader;
    parsed[i] = p;
  });

  // Phase 3 — merge (caller thread, ring order): newest entry per
  // (txn, page).  Every current-epoch payload has the same length, so the
  // sequential keep-rule reduces to the seq comparison.
  struct Slot {
    uint64_t seq = 0;
    const uint8_t* payload = nullptr;
  };
  std::unordered_map<txn::TxnId, std::map<txn::PageId, Slot>> scratch;
  for (const Parsed& p : parsed) {
    if (!p.valid) continue;
    ++last_stats_.replay_records;
    auto& slot = scratch[p.t][p.page];
    if (slot.payload == nullptr || p.seq >= slot.seq) {
      slot = Slot{p.seq, p.payload};
    }
  }

  // Phase 4 — reduce (caller thread): home writes in sorted (txn, page)
  // order.  Qualifying transactions have disjoint page sets (2PL holds
  // home-page locks until the terminal record), so the order only fixes
  // determinism, not the result.
  const ListKind want_kind = opts_.mode == OverwriteMode::kNoRedo
                                 ? ListKind::kActive
                                 : ListKind::kCommit;
  std::vector<txn::TxnId> todo;
  for (const auto& [t, kind] : last_kind) {
    if (kind == want_kind && scratch.count(t)) todo.push_back(t);
  }
  std::sort(todo.begin(), todo.end());
  last_stats_.partitions = todo.size();
  for (txn::TxnId t : todo) {
    for (const auto& [page, slot] : scratch[t]) {
      DBMR_RETURN_IF_ERROR(
          WriteHome(page, slot.payload, bs - kScratchHeader));
      if (opts_.mode == OverwriteMode::kNoRedo) {
        ++shadows_restored_;
      } else {
        ++redo_copies_;
      }
    }
  }

  // Fresh epoch: every scratch entry and outcome record is now obsolete.
  DBMR_RETURN_IF_ERROR(list_.Truncate());
  free_slots_.clear();
  for (BlockId b = ScratchStart(); b < HomeStart(); ++b) free_slots_.insert(b);
  active_.clear();
  locks_.Reset();
  next_txn_ = max_txn + 1;
  return Status::OK();
}

}  // namespace dbmr::store
