// Overwriting shadow engine (paper §3.2.2.2).
//
// Keeps a separate current/shadow copy of each updated page only while the
// updating transaction is active, using scratch space on disk managed as a
// ring buffer; at transaction completion the shadow is overwritten with
// the current copy, preserving physical placement (and hence sequential
// clustering — the property the paper's Table 7 prizes).
//
// Two variants, exactly as in the paper:
//
//  * kNoRedo — the original of every page is saved to scratch before the
//    home location is overwritten in place.  A stable list of uncommitted
//    transactions survives crashes; recovery restores shadows from scratch
//    for them.  Commit requires all updates on disk (force), so committed
//    transactions never need redo.
//
//  * kNoUndo — updated pages are first written only to scratch; the commit
//    record makes them durable, and the home copies are overwritten
//    afterwards (locks held until then).  Recovery re-copies scratch to
//    home for committed-but-unapplied transactions; uncommitted ones never
//    touched home, so no undo exists.

#ifndef DBMR_STORE_RECOVERY_OVERWRITE_ENGINE_H_
#define DBMR_STORE_RECOVERY_OVERWRITE_ENGINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/io_retry.h"
#include "store/page_engine.h"
#include "store/recovery/stable_list.h"
#include "store/virtual_disk.h"
#include "txn/lock_manager.h"

namespace dbmr::store {

/// Which overwriting variant to run.
enum class OverwriteMode {
  kNoRedo,
  kNoUndo,
};

/// Options for OverwriteEngine.
struct OverwriteEngineOptions {
  OverwriteMode mode = OverwriteMode::kNoUndo;
  /// Blocks reserved for the stable transaction list.
  uint64_t list_blocks = 64;
  /// Blocks in the scratch ring (bounds the combined write-set size of
  /// concurrent transactions).
  uint64_t scratch_blocks = 64;
  /// Parallel replay jobs for Recover(): >= 1 scans the scratch ring
  /// zero-copy and validates entries in parallel; 0 keeps the sequential
  /// reference path.  Recovered image is identical either way.
  int recovery_jobs = 1;
};

/// The overwriting page engine over a single VirtualDisk.
class OverwriteEngine : public PageEngine {
 public:
  OverwriteEngine(VirtualDisk* disk, uint64_t num_pages,
                  OverwriteEngineOptions options = {});

  Status Format() override;
  Status Recover() override;
  Result<txn::TxnId> Begin() override;
  Status Read(txn::TxnId t, txn::PageId page, PageData* out) override;
  Status Write(txn::TxnId t, txn::PageId page,
               const PageData& payload) override;
  Status Commit(txn::TxnId t) override;
  Status Abort(txn::TxnId t) override;
  void Crash() override;
  size_t payload_size() const override;
  uint64_t num_pages() const override { return num_pages_; }
  std::string name() const override;

  /// --- Introspection ---------------------------------------------------
  OverwriteMode mode() const { return opts_.mode; }
  size_t free_scratch_slots() const { return free_slots_.size(); }
  uint64_t commits() const { return commits_; }
  uint64_t shadows_restored() const { return shadows_restored_; }
  uint64_t redo_copies() const { return redo_copies_; }
  txn::LockManager& lock_manager() { return locks_; }
  RecoveryStats last_recovery_stats() const override { return last_stats_; }
  IoRetryStats io_retry_stats() const override { return io_retry_; }

 private:
  /// Outcome-record kinds in the stable transaction list.
  enum class ListKind : uint8_t {
    kActive = 1,  ///< no-redo: txn registered before first home overwrite
    kCommit = 2,
    kDone = 3,    ///< no-undo: scratch fully copied home
    kAbort = 4,   ///< no-redo: shadows restored; ignore this txn
  };

  struct ActiveTxn {
    bool registered = false;  // no-redo: active record forced
    /// page -> scratch slot used for this page.
    std::unordered_map<txn::PageId, BlockId> slots;
    /// no-redo: original images for in-memory abort.
    std::unordered_map<txn::PageId, PageData> originals;
    /// no-undo: current images (serving reads, applied at commit).
    std::unordered_map<txn::PageId, PageData> current;
    uint64_t next_seq = 1;
  };

  BlockId ScratchStart() const { return 1 + opts_.list_blocks; }
  BlockId HomeStart() const { return ScratchStart() + opts_.scratch_blocks; }
  BlockId HomeBlock(txn::PageId page) const { return HomeStart() + page; }

  Status AppendOutcome(ListKind kind, txn::TxnId t, bool force);
  Result<BlockId> AllocSlot();
  Status WriteScratch(BlockId slot, txn::TxnId t, txn::PageId page,
                      uint64_t seq, const PageData& payload);
  /// Parses a scratch block; returns false if not a valid current-epoch
  /// entry.
  bool ParseScratch(const PageData& block, txn::TxnId* t, txn::PageId* page,
                    uint64_t* seq, PageData* payload) const;
  Status ReadHome(txn::PageId page, PageData* out) const;
  Status WriteHome(txn::PageId page, const PageData& payload);
  /// Zero-copy variant used by partitioned recovery: `payload` points at
  /// `len` bytes inside a scratch block ref.
  Status WriteHome(txn::PageId page, const uint8_t* payload, size_t len);
  void FreeSlots(const ActiveTxn& at);
  /// The pre-planner single-threaded recovery (recovery_jobs == 0).
  Status RecoverSequential();
  /// Zero-copy scan + parallel scratch validation (recovery_jobs >= 1).
  Status RecoverPartitioned();

  VirtualDisk* disk_;
  uint64_t num_pages_;
  OverwriteEngineOptions opts_;
  txn::LockManager locks_;
  StableList list_;

  std::set<BlockId> free_slots_;
  std::unordered_map<txn::TxnId, ActiveTxn> active_;
  txn::TxnId next_txn_ = 1;

  uint64_t commits_ = 0;
  uint64_t shadows_restored_ = 0;
  uint64_t redo_copies_ = 0;
  RecoveryStats last_stats_;
  mutable IoRetryStats io_retry_;
  /// Scratch block for ReadHome so per-page reads do not allocate.
  mutable PageData io_buf_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_OVERWRITE_ENGINE_H_
