// Parallel recovery replay planning (ROADMAP item 2).
//
// Every engine's Recover() decomposes into the same pipeline:
//
//   1. scan    — read the stable structures (log streams, scratch ring,
//                page copies) once, zero-copy via VirtualDisk::ReadRef;
//   2. plan    — bucket the work by page and derive cross-page dependency
//                edges (ReplayPartitioner);
//   3. replay  — run the independent partitions on a core::ThreadPool
//                (RunReplayJobs), each worker computing page images in
//                private memory — never touching a VirtualDisk;
//   4. reduce  — write the recovered images and fold the per-partition
//                counters back in a deterministic (partition, page) order.
//
// Determinism argument: all disk I/O happens on the calling thread in a
// fixed order (scan before replay, reduction after), workers only read
// shared immutable scan results and write partition-private slots, and the
// reduction iterates partitions in their canonical order.  The recovered
// image is therefore byte-identical at any job count — including jobs=1,
// which never builds a pool at all.
//
// This header also provides SegmentedBytes: a logical byte sequence backed
// by non-contiguous block storage.  Log records are decoded against it
// directly (see LogRecordRef in log_format.h), so a recovery scan no
// longer reassembles the stream — the only bytes ever copied are the
// images actually applied to pages.

#ifndef DBMR_STORE_RECOVERY_REPLAY_PLAN_H_
#define DBMR_STORE_RECOVERY_REPLAY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "txn/types.h"

namespace dbmr::store {

/// A read-only logical byte sequence stitched from segments that point
/// into block storage (VirtualDisk::ReadRef results).  Valid only while
/// the referenced blocks are (see the ReadRef validity contract).
class SegmentedBytes {
 public:
  /// Appends `n` bytes at the current end of the sequence.
  void AddSegment(const uint8_t* data, size_t n);

  uint64_t size() const { return size_; }

  /// Gather-copies [pos, pos + n) into `dst`.  The range must be in
  /// bounds.
  void CopyOut(uint64_t pos, size_t n, uint8_t* dst) const;

  /// Pointer to [pos, pos + n) when that range lies within one segment,
  /// nullptr when it straddles a boundary (use CopyOut then).
  const uint8_t* ContiguousAt(uint64_t pos, size_t n) const;

 private:
  struct Segment {
    const uint8_t* data;
    uint64_t start;  // logical offset of the segment's first byte
    size_t len;
  };
  /// Index of the segment containing logical offset `pos`.
  size_t Locate(uint64_t pos) const;

  std::vector<Segment> segs_;
  uint64_t size_ = 0;
};

/// Union-find over page ids: pages whose replay chains are entangled
/// (e.g. a loser transaction's CLR undo-next chain spanning pages) are
/// linked into one partition and replayed by a single worker; everything
/// else replays independently.  Partitions() is deterministic regardless
/// of Add/Link call order: the equivalence classes are order-independent
/// and the output is sorted.
class ReplayPartitioner {
 public:
  /// Registers a page (idempotent).
  void AddPage(txn::PageId page);

  /// Records a dependency edge: `a` and `b` must replay in one partition.
  /// Both pages are registered if new.
  void Link(txn::PageId a, txn::PageId b);

  /// The independent partitions, ordered by their smallest page id, each
  /// with its pages in ascending order.
  std::vector<std::vector<txn::PageId>> Partitions() const;

  size_t num_pages() const { return pages_.size(); }

 private:
  size_t Root(size_t i) const;
  size_t Intern(txn::PageId page);

  std::unordered_map<txn::PageId, size_t> index_;
  std::vector<txn::PageId> pages_;        // by internal index
  mutable std::vector<size_t> parent_;    // path-compressed on Find
};

/// Runs fn(0) .. fn(n-1) on up to `jobs` concurrent executors and returns
/// when all are done.
///
///  * jobs <= 1 (or n < 2): a plain sequential loop on the caller — no
///    pool is ever built, so single-job recovery stays allocation- and
///    thread-free.
///  * jobs >= 2: a process-wide pool keyed by `jobs` (lazily created,
///    intentionally leaked so static-teardown order cannot matter).  When
///    another thread holds that pool — e.g. crash-sweep trials recovering
///    concurrently — the caller falls back to the sequential loop instead
///    of blocking; results are identical either way, only the schedule
///    differs.
///
/// fn must not perform VirtualDisk I/O: disks are single-threaded (see
/// virtual_disk.h) and replay workers operate on private memory only.
void RunReplayJobs(int jobs, size_t n, const std::function<void(size_t)>& fn);

/// Thread dispatch only pays for itself once a replay phase moves enough
/// bytes; a pool wakeup costs tens of microseconds while a caller-thread
/// replay moves on the order of a GB/s, so below ~1 MiB the dispatch
/// would cost more than it saves.  Callers gate RunReplayJobs with this:
/// below the threshold the partitioned pipeline still runs, only on the
/// caller thread alone.  The recovered image is identical either way.
inline constexpr size_t kParallelReplayMinBytes = size_t{1} << 20;

/// `jobs` when `work_bytes` crosses the dispatch threshold, else 1.
inline int EffectiveReplayJobs(int jobs, size_t work_bytes) {
  return work_bytes >= kParallelReplayMinBytes ? jobs : 1;
}

}  // namespace dbmr::store

#endif  // DBMR_STORE_RECOVERY_REPLAY_PLAN_H_
