// Little-endian scalar encoding and checksumming for on-"disk" structures.

#ifndef DBMR_STORE_CODEC_H_
#define DBMR_STORE_CODEC_H_

#include <bit>
#include <cstdint>
#include <cstring>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

// On little-endian hosts the wire format matches memory order, so scalar
// access is a single memcpy (log-record decode during recovery runs these
// on every field of every record).  Big-endian hosts take the byte loop.

/// Writes a little-endian u64 at `offset`; the buffer must be large enough.
inline void PutU64(PageData& buf, size_t offset, uint64_t v) {
  DBMR_CHECK(offset + 8 <= buf.size());
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(buf.data() + offset, &v, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      buf[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
    }
  }
}

/// Reads a little-endian u64 at `offset`.
inline uint64_t GetU64(const PageData& buf, size_t offset) {
  DBMR_CHECK(offset + 8 <= buf.size());
  if constexpr (std::endian::native == std::endian::little) {
    uint64_t v;
    std::memcpy(&v, buf.data() + offset, 8);
    return v;
  } else {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | buf[offset + static_cast<size_t>(i)];
    }
    return v;
  }
}

inline void PutU32(PageData& buf, size_t offset, uint32_t v) {
  DBMR_CHECK(offset + 4 <= buf.size());
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(buf.data() + offset, &v, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      buf[offset + static_cast<size_t>(i)] =
          static_cast<uint8_t>(v >> (8 * i));
    }
  }
}

inline uint32_t GetU32(const PageData& buf, size_t offset) {
  DBMR_CHECK(offset + 4 <= buf.size());
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v;
    std::memcpy(&v, buf.data() + offset, 4);
    return v;
  } else {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | buf[offset + static_cast<size_t>(i)];
    }
    return v;
  }
}

// Raw-pointer variants for zero-copy block references (VirtualDisk::
// ReadRef): same wire format, caller guarantees the bytes are in range.

inline uint64_t GetU64(const uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  } else {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
}

inline uint32_t GetU32(const uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  } else {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
}

/// 64-bit content hash used as a page checksum to detect torn writes and
/// bit flips.  FNV-1a-style mix folding eight bytes per step, so
/// checksumming a page costs one multiply per word instead of per byte.
/// Any single flipped bit still changes the result: the induced delta is
/// nonzero and stays nonzero under multiplication by an odd constant
/// mod 2^64.
inline uint64_t HashBytes(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 0x100000001b3ULL;
  }
  for (; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Checksum(const PageData& buf, size_t from, size_t to) {
  DBMR_CHECK(from <= to && to <= buf.size());
  return HashBytes(buf.data() + from, to - from);
}

}  // namespace dbmr::store

#endif  // DBMR_STORE_CODEC_H_
