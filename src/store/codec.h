// Little-endian scalar encoding and checksumming for on-"disk" structures.

#ifndef DBMR_STORE_CODEC_H_
#define DBMR_STORE_CODEC_H_

#include <cstdint>
#include <cstring>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

/// Writes a little-endian u64 at `offset`; the buffer must be large enough.
inline void PutU64(PageData& buf, size_t offset, uint64_t v) {
  DBMR_CHECK(offset + 8 <= buf.size());
  for (int i = 0; i < 8; ++i) {
    buf[offset + static_cast<size_t>(i)] =
        static_cast<uint8_t>(v >> (8 * i));
  }
}

/// Reads a little-endian u64 at `offset`.
inline uint64_t GetU64(const PageData& buf, size_t offset) {
  DBMR_CHECK(offset + 8 <= buf.size());
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buf[offset + static_cast<size_t>(i)];
  }
  return v;
}

inline void PutU32(PageData& buf, size_t offset, uint32_t v) {
  DBMR_CHECK(offset + 4 <= buf.size());
  for (int i = 0; i < 4; ++i) {
    buf[offset + static_cast<size_t>(i)] =
        static_cast<uint8_t>(v >> (8 * i));
  }
}

inline uint32_t GetU32(const PageData& buf, size_t offset) {
  DBMR_CHECK(offset + 4 <= buf.size());
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | buf[offset + static_cast<size_t>(i)];
  }
  return v;
}

/// FNV-1a 64-bit hash, used as a page checksum to detect torn writes.
inline uint64_t Fnv1a(const uint8_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Checksum(const PageData& buf, size_t from, size_t to) {
  DBMR_CHECK(from <= to && to <= buf.size());
  return Fnv1a(buf.data() + from, to - from);
}

}  // namespace dbmr::store

#endif  // DBMR_STORE_CODEC_H_
