#include "store/buffer_pool.h"

#include <utility>

namespace dbmr::store {

BufferPool::BufferPool(size_t capacity, Fetcher fetcher, Flusher flusher)
    : capacity_(capacity),
      fetcher_(std::move(fetcher)),
      flusher_(std::move(flusher)) {
  DBMR_CHECK(capacity_ > 0);
  DBMR_CHECK(fetcher_ != nullptr && flusher_ != nullptr);
}

void BufferPool::Touch(txn::PageId page, Frame& frame) {
  lru_.erase(frame.lru_pos);
  lru_.push_front(page);
  frame.lru_pos = lru_.begin();
}

Status BufferPool::EnsureCapacity() {
  if (frames_.size() < capacity_) return Status::OK();
  // Evict from the LRU end.
  DBMR_CHECK(!lru_.empty());
  txn::PageId victim = lru_.back();
  auto it = frames_.find(victim);
  DBMR_CHECK(it != frames_.end());
  if (it->second.dirty) {
    DBMR_RETURN_IF_ERROR(flusher_(victim, it->second.data));
  }
  lru_.pop_back();
  frames_.erase(it);
  ++evictions_;
  return Status::OK();
}

Status BufferPool::Get(txn::PageId page, PageData* out) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    ++hits_;
    Touch(page, it->second);
    *out = it->second.data;
    return Status::OK();
  }
  ++misses_;
  DBMR_RETURN_IF_ERROR(EnsureCapacity());
  PageData data;
  DBMR_RETURN_IF_ERROR(fetcher_(page, &data));
  lru_.push_front(page);
  Frame frame;
  frame.data = data;
  frame.dirty = false;
  frame.lru_pos = lru_.begin();
  frames_.emplace(page, std::move(frame));
  *out = std::move(data);
  return Status::OK();
}

Status BufferPool::Put(txn::PageId page, PageData data) {
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    it->second.data = std::move(data);
    it->second.dirty = true;
    Touch(page, it->second);
    return Status::OK();
  }
  DBMR_RETURN_IF_ERROR(EnsureCapacity());
  lru_.push_front(page);
  Frame frame;
  frame.data = std::move(data);
  frame.dirty = true;
  frame.lru_pos = lru_.begin();
  frames_.emplace(page, std::move(frame));
  return Status::OK();
}

Status BufferPool::FlushPage(txn::PageId page) {
  auto it = frames_.find(page);
  if (it == frames_.end() || !it->second.dirty) return Status::OK();
  DBMR_RETURN_IF_ERROR(flusher_(page, it->second.data));
  it->second.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [page, frame] : frames_) {
    if (!frame.dirty) continue;
    DBMR_RETURN_IF_ERROR(flusher_(page, frame.data));
    frame.dirty = false;
  }
  return Status::OK();
}

void BufferPool::Discard(txn::PageId page) {
  auto it = frames_.find(page);
  if (it == frames_.end()) return;
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
}

void BufferPool::DiscardAll() {
  frames_.clear();
  lru_.clear();
}

bool BufferPool::Contains(txn::PageId page) const {
  return frames_.count(page) > 0;
}

bool BufferPool::IsDirty(txn::PageId page) const {
  auto it = frames_.find(page);
  return it != frames_.end() && it->second.dirty;
}

}  // namespace dbmr::store
