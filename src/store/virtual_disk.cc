#include "store/virtual_disk.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/str.h"

namespace dbmr::store {

VirtualDisk::VirtualDisk(std::string name, uint64_t num_blocks,
                         size_t block_size)
    : name_(std::move(name)), block_size_(block_size) {
  DBMR_CHECK(block_size >= 64);  // engines need room for headers
  // All slots start out sharing one zero block; a written block gets its
  // own buffer in the overlay.
  auto zero = std::make_shared<PageData>(block_size, 0);
  base_ = std::make_shared<const BlockVec>(num_blocks, zero);
}

VirtualDisk::VirtualDisk(const DiskSnapshot& snapshot)
    : name_(snapshot.name_), block_size_(snapshot.block_size_) {
  DBMR_CHECK(snapshot.blocks_ != nullptr);
  base_ = snapshot.blocks_;
}

DiskSnapshot VirtualDisk::Snapshot() const {
  Flatten();
  DiskSnapshot snap;
  snap.name_ = name_;
  snap.block_size_ = block_size_;
  snap.blocks_ = base_;
  return snap;
}

std::unique_ptr<VirtualDisk> VirtualDisk::ForkFrom(
    const DiskSnapshot& snapshot) {
  return std::unique_ptr<VirtualDisk>(new VirtualDisk(snapshot));
}

void VirtualDisk::Flatten() const {
  if (overlay_.empty()) return;
  auto merged = std::make_shared<BlockVec>(*base_);
  for (auto& [b, data] : overlay_) {
    (*merged)[b] = std::make_shared<PageData>(std::move(data));
  }
  overlay_.clear();
  base_ = std::move(merged);
}

const PageData& VirtualDisk::BlockRef(BlockId b) const {
  if (!overlay_.empty()) {
    auto it = overlay_.find(b);
    if (it != overlay_.end()) return it->second;
  }
  return *(*base_)[b];
}

PageData& VirtualDisk::MutableBlock(BlockId b) {
  auto [it, inserted] = overlay_.try_emplace(b);
  if (inserted) it->second = *(*base_)[b];
  return it->second;
}

void VirtualDisk::CheckThread() const {
#ifndef NDEBUG
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
  } else {
    DBMR_CHECK(owner_ == std::this_thread::get_id() &&
               "VirtualDisk used from a second thread; fork instead of "
               "sharing fixtures across threads");
  }
#endif
}

void VirtualDisk::ResetThreadOwner() {
#ifndef NDEBUG
  owner_ = std::thread::id{};
#endif
}

Status VirtualDisk::Read(BlockId b, PageData* out) const {
  if (out->size() != block_size_) out->resize(block_size_);
  return ReadInto(b, out->data());
}

Status VirtualDisk::ReadInto(BlockId b, uint8_t* out) const {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: read of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (transient_read_in_ == 0) {
    transient_read_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_reads;
    return Status::IoError(
        StrFormat("disk %s: transient read error", name_.c_str()));
  }
  const bool shared_exhausted = shared_read_counter_ != nullptr &&
                                *shared_read_counter_ <= 0;
  if (reads_remaining_ == 0 || shared_exhausted) {
    ++faults_.read_failures;
    return Status::IoError(
        StrFormat("disk %s: injected read failure", name_.c_str()));
  }
  if (reads_remaining_ > 0) --reads_remaining_;
  if (shared_read_counter_ != nullptr) --*shared_read_counter_;
  if (transient_read_in_ > 0) --transient_read_in_;
  ++reads_;
  std::memcpy(out, BlockRef(b).data(), block_size_);
  return Status::OK();
}

Status VirtualDisk::ReadRef(BlockId b, const uint8_t** out) const {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: read of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (transient_read_in_ == 0) {
    transient_read_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_reads;
    return Status::IoError(
        StrFormat("disk %s: transient read error", name_.c_str()));
  }
  const bool shared_exhausted = shared_read_counter_ != nullptr &&
                                *shared_read_counter_ <= 0;
  if (reads_remaining_ == 0 || shared_exhausted) {
    ++faults_.read_failures;
    return Status::IoError(
        StrFormat("disk %s: injected read failure", name_.c_str()));
  }
  if (reads_remaining_ > 0) --reads_remaining_;
  if (shared_read_counter_ != nullptr) --*shared_read_counter_;
  if (transient_read_in_ > 0) --transient_read_in_;
  ++reads_;
  *out = BlockRef(b).data();
  return Status::OK();
}

Status VirtualDisk::Write(BlockId b, const PageData& data) {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: write of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument(
        StrFormat("disk %s: write size %zu != block size %zu", name_.c_str(),
                  data.size(), block_size_));
  }
  if (!crashed_ && transient_write_in_ == 0) {
    transient_write_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_writes;
    return Status::IoError(
        StrFormat("disk %s: transient write error", name_.c_str()));
  }
  const bool shared_exhausted = shared_counter_ != nullptr &&
                                *shared_counter_ <= 0;
  if (crashed_ || writes_remaining_ == 0 || shared_exhausted) {
    if (!crashed_ && torn_mode_) {
      // Tear exactly the first failing write, then fail cleanly.
      size_t n = std::min(torn_prefix_, block_size_);
      PageData& blk = MutableBlock(b);
      std::copy(data.begin(), data.begin() + static_cast<long>(n),
                blk.begin());
      ++faults_.torn_writes;
    }
    crashed_ = true;
    ++faults_.write_failures;
    return Status::IoError(
        StrFormat("disk %s: injected crash", name_.c_str()));
  }
  if (writes_remaining_ > 0) --writes_remaining_;
  if (shared_counter_ != nullptr) --*shared_counter_;
  if (transient_write_in_ > 0) --transient_write_in_;
  MutableBlock(b) = data;
  ++writes_;
  if (observer_) observer_(b, data);
  return Status::OK();
}

void VirtualDisk::RestoreBlock(BlockId b, const uint8_t* data, size_t n) {
  CheckThread();
  DBMR_CHECK(b < base_->size());
  DBMR_CHECK(n <= block_size_);
  PageData& blk = MutableBlock(b);
  std::memcpy(blk.data(), data, n);
}

Status VirtualDisk::FlipBit(BlockId b, size_t byte, uint8_t mask) {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip in block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (byte >= block_size_) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip at byte %zu beyond block size %zu",
                  name_.c_str(), byte, block_size_));
  }
  MutableBlock(b)[byte] ^= mask;
  ++faults_.bit_flips;
  return Status::OK();
}

void VirtualDisk::SetTornWriteMode(bool enabled, size_t torn_prefix_bytes) {
  torn_mode_ = enabled;
  torn_prefix_ = torn_prefix_bytes;
}

void VirtualDisk::ClearCrashState() {
  crashed_ = false;
  writes_remaining_ = -1;
  reads_remaining_ = -1;
  transient_write_in_ = -1;
  transient_read_in_ = -1;
}

}  // namespace dbmr::store
