#include "store/virtual_disk.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

VirtualDisk::VirtualDisk(std::string name, uint64_t num_blocks,
                         size_t block_size)
    : name_(std::move(name)), block_size_(block_size) {
  DBMR_CHECK(block_size >= 64);  // engines need room for headers
  // All slots start out sharing one zero block; a written block gets its
  // own buffer in the overlay.
  auto zero = std::make_shared<PageData>(block_size, 0);
  base_ = std::make_shared<const BlockVec>(num_blocks, zero);
  zero_crc_ = HashBytes(zero->data(), block_size_);
}

VirtualDisk::VirtualDisk(const DiskSnapshot& snapshot)
    : name_(snapshot.name_), block_size_(snapshot.block_size_) {
  DBMR_CHECK(snapshot.blocks_ != nullptr);
  base_ = snapshot.blocks_;
  if (snapshot.crcs_ != nullptr) {
    crc_ = *snapshot.crcs_;
    crc_shared_ = snapshot.crcs_;
  }
  const PageData zero(block_size_, 0);
  zero_crc_ = HashBytes(zero.data(), block_size_);
}

DiskSnapshot VirtualDisk::Snapshot() const {
  Flatten();
  if (crc_shared_ == nullptr || crc_dirty_) {
    crc_shared_ = std::make_shared<const CrcMap>(crc_);
    crc_dirty_ = false;
  }
  DiskSnapshot snap;
  snap.name_ = name_;
  snap.block_size_ = block_size_;
  snap.blocks_ = base_;
  snap.crcs_ = crc_shared_;
  return snap;
}

std::unique_ptr<VirtualDisk> VirtualDisk::ForkFrom(
    const DiskSnapshot& snapshot) {
  return std::unique_ptr<VirtualDisk>(new VirtualDisk(snapshot));
}

void VirtualDisk::Flatten() const {
  if (overlay_.empty()) return;
  auto merged = std::make_shared<BlockVec>(*base_);
  for (auto& [b, data] : overlay_) {
    (*merged)[b] = std::make_shared<PageData>(std::move(data));
  }
  overlay_.clear();
  base_ = std::move(merged);
}

const PageData& VirtualDisk::BlockRef(BlockId b) const {
  if (!overlay_.empty()) {
    auto it = overlay_.find(b);
    if (it != overlay_.end()) return it->second;
  }
  return *(*base_)[b];
}

PageData& VirtualDisk::MutableBlock(BlockId b) {
  auto [it, inserted] = overlay_.try_emplace(b);
  if (inserted) it->second = *(*base_)[b];
  return it->second;
}

void VirtualDisk::CheckThread() const {
#ifndef NDEBUG
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
  } else {
    DBMR_CHECK(owner_ == std::this_thread::get_id() &&
               "VirtualDisk used from a second thread; fork instead of "
               "sharing fixtures across threads");
  }
#endif
}

void VirtualDisk::ResetThreadOwner() {
#ifndef NDEBUG
  owner_ = std::thread::id{};
#endif
}

Status VirtualDisk::MediaCheck() const {
  if (!media_lost_) return Status::OK();
  ++faults_.media_failures;
  return Status::IoError(
      StrFormat("disk %s: medium lost", name_.c_str()));
}

uint64_t VirtualDisk::ExpectedCrc(BlockId b) const {
  auto it = crc_.find(b);
  return it == crc_.end() ? zero_crc_ : it->second;
}

Status VirtualDisk::VerifyOnRead(BlockId b) const {
  if (!verify_checksums_) return Status::OK();
  const PageData& blk = BlockRef(b);
  if (HashBytes(blk.data(), blk.size()) == ExpectedCrc(b)) {
    return Status::OK();
  }
  ++faults_.checksum_errors;
  return Status::Corruption(
      StrFormat("disk %s: checksum mismatch on block %llu", name_.c_str(),
                static_cast<unsigned long long>(b)));
}

Status VirtualDisk::Read(BlockId b, PageData* out) const {
  if (out->size() != block_size_) out->resize(block_size_);
  return ReadInto(b, out->data());
}

Status VirtualDisk::ReadInto(BlockId b, uint8_t* out) const {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: read of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  DBMR_RETURN_IF_ERROR(MediaCheck());
  if (transient_read_in_ == 0) {
    transient_read_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_reads;
    return Status::IoError(
        StrFormat("disk %s: transient read error", name_.c_str()));
  }
  const bool shared_exhausted = shared_read_counter_ != nullptr &&
                                *shared_read_counter_ <= 0;
  if (reads_remaining_ == 0 || shared_exhausted) {
    ++faults_.read_failures;
    return Status::IoError(
        StrFormat("disk %s: injected read failure", name_.c_str()));
  }
  DBMR_RETURN_IF_ERROR(VerifyOnRead(b));
  if (reads_remaining_ > 0) --reads_remaining_;
  if (shared_read_counter_ != nullptr) --*shared_read_counter_;
  if (transient_read_in_ > 0) --transient_read_in_;
  ++reads_;
  std::memcpy(out, BlockRef(b).data(), block_size_);
  return Status::OK();
}

Status VirtualDisk::ReadRef(BlockId b, const uint8_t** out) const {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: read of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  DBMR_RETURN_IF_ERROR(MediaCheck());
  if (transient_read_in_ == 0) {
    transient_read_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_reads;
    return Status::IoError(
        StrFormat("disk %s: transient read error", name_.c_str()));
  }
  const bool shared_exhausted = shared_read_counter_ != nullptr &&
                                *shared_read_counter_ <= 0;
  if (reads_remaining_ == 0 || shared_exhausted) {
    ++faults_.read_failures;
    return Status::IoError(
        StrFormat("disk %s: injected read failure", name_.c_str()));
  }
  DBMR_RETURN_IF_ERROR(VerifyOnRead(b));
  if (reads_remaining_ > 0) --reads_remaining_;
  if (shared_read_counter_ != nullptr) --*shared_read_counter_;
  if (transient_read_in_ > 0) --transient_read_in_;
  ++reads_;
  *out = BlockRef(b).data();
  return Status::OK();
}

Status VirtualDisk::Write(BlockId b, const PageData& data) {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: write of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument(
        StrFormat("disk %s: write size %zu != block size %zu", name_.c_str(),
                  data.size(), block_size_));
  }
  DBMR_RETURN_IF_ERROR(MediaCheck());
  if (!crashed_ && transient_write_in_ == 0) {
    transient_write_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_writes;
    return Status::IoError(
        StrFormat("disk %s: transient write error", name_.c_str()));
  }
  const bool shared_exhausted = shared_counter_ != nullptr &&
                                *shared_counter_ <= 0;
  if (crashed_ || writes_remaining_ == 0 || shared_exhausted) {
    if (!crashed_ && torn_mode_) {
      // Tear exactly the first failing write, then fail cleanly.
      size_t n = std::min(torn_prefix_, block_size_);
      PageData& blk = MutableBlock(b);
      std::copy(data.begin(), data.begin() + static_cast<long>(n),
                blk.begin());
      ++faults_.torn_writes;
    }
    crashed_ = true;
    ++faults_.write_failures;
    return Status::IoError(
        StrFormat("disk %s: injected crash", name_.c_str()));
  }
  if (writes_remaining_ > 0) --writes_remaining_;
  if (shared_counter_ != nullptr) --*shared_counter_;
  if (transient_write_in_ > 0) --transient_write_in_;
  MutableBlock(b) = data;
  crc_[b] = HashBytes(data.data(), data.size());
  crc_dirty_ = true;
  ++writes_;
  if (observer_) observer_(b, data);
  return Status::OK();
}

void VirtualDisk::RestoreBlock(BlockId b, const uint8_t* data, size_t n) {
  CheckThread();
  DBMR_CHECK(b < base_->size());
  DBMR_CHECK(n <= block_size_);
  PageData& blk = MutableBlock(b);
  std::memcpy(blk.data(), data, n);
  if (n == block_size_) {
    // A full restore reproduces a successful write, checksum included; a
    // partial restore reproduces a torn one, whose sidecar stays stale.
    crc_[b] = HashBytes(blk.data(), blk.size());
    crc_dirty_ = true;
  }
}

Status VirtualDisk::FlipBit(BlockId b, size_t byte, uint8_t mask) {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip in block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (byte >= block_size_) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip at byte %zu beyond block size %zu",
                  name_.c_str(), byte, block_size_));
  }
  MutableBlock(b)[byte] ^= mask;
  ++faults_.bit_flips;
  return Status::OK();
}

Status VirtualDisk::CorruptRange(BlockId b, size_t offset, size_t len,
                                 uint64_t seed) {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: corrupt of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  if (offset >= block_size_ || len == 0 || offset + len > block_size_) {
    return Status::OutOfRange(
        StrFormat("disk %s: corrupt range [%zu, %zu) beyond block size %zu",
                  name_.c_str(), offset, offset + len, block_size_));
  }
  PageData& blk = MutableBlock(b);
  // SplitMix-style byte pattern derived from the seed; a zero pattern
  // byte is promoted so every corrupted byte really changes.
  uint64_t x = seed ^ (b * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < len; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    uint8_t p = static_cast<uint8_t>(z ^ (z >> 31));
    if (p == 0) p = 0xA5;
    blk[offset + i] ^= p;
  }
  ++faults_.corruptions;
  return Status::OK();
}

void VirtualDisk::ReplaceMedia() {
  CheckThread();
  auto zero = std::make_shared<PageData>(block_size_, 0);
  base_ = std::make_shared<const BlockVec>(base_->size(), zero);
  overlay_.clear();
  crc_.clear();
  crc_shared_.reset();
  crc_dirty_ = false;
  media_lost_ = false;
}

Status VirtualDisk::VerifyBlockChecksum(BlockId b) const {
  CheckThread();
  if (b >= base_->size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: scrub of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(base_->size())));
  }
  DBMR_RETURN_IF_ERROR(MediaCheck());
  const PageData& blk = BlockRef(b);
  if (HashBytes(blk.data(), blk.size()) == ExpectedCrc(b)) {
    return Status::OK();
  }
  ++faults_.checksum_errors;
  return Status::Corruption(
      StrFormat("disk %s: checksum mismatch on block %llu", name_.c_str(),
                static_cast<unsigned long long>(b)));
}

void VirtualDisk::SetTornWriteMode(bool enabled, size_t torn_prefix_bytes) {
  torn_mode_ = enabled;
  torn_prefix_ = torn_prefix_bytes;
}

void VirtualDisk::ClearCrashState() {
  crashed_ = false;
  writes_remaining_ = -1;
  reads_remaining_ = -1;
  transient_write_in_ = -1;
  transient_read_in_ = -1;
}

}  // namespace dbmr::store
