#include "store/virtual_disk.h"

#include <algorithm>
#include <utility>

#include "util/str.h"

namespace dbmr::store {

VirtualDisk::VirtualDisk(std::string name, uint64_t num_blocks,
                         size_t block_size)
    : name_(std::move(name)), block_size_(block_size) {
  DBMR_CHECK(block_size >= 64);  // engines need room for headers
  blocks_.assign(num_blocks, PageData(block_size, 0));
}

Status VirtualDisk::Read(BlockId b, PageData* out) const {
  if (b >= blocks_.size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: read of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(blocks_.size())));
  }
  if (transient_read_in_ == 0) {
    transient_read_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_reads;
    return Status::IoError(
        StrFormat("disk %s: transient read error", name_.c_str()));
  }
  const bool shared_exhausted = shared_read_counter_ != nullptr &&
                                *shared_read_counter_ <= 0;
  if (reads_remaining_ == 0 || shared_exhausted) {
    ++faults_.read_failures;
    return Status::IoError(
        StrFormat("disk %s: injected read failure", name_.c_str()));
  }
  if (reads_remaining_ > 0) --reads_remaining_;
  if (shared_read_counter_ != nullptr) --*shared_read_counter_;
  if (transient_read_in_ > 0) --transient_read_in_;
  ++reads_;
  *out = blocks_[b];
  return Status::OK();
}

Status VirtualDisk::Write(BlockId b, const PageData& data) {
  if (b >= blocks_.size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: write of block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(blocks_.size())));
  }
  if (data.size() != block_size_) {
    return Status::InvalidArgument(
        StrFormat("disk %s: write size %zu != block size %zu", name_.c_str(),
                  data.size(), block_size_));
  }
  if (!crashed_ && transient_write_in_ == 0) {
    transient_write_in_ = -1;  // heals: the retry succeeds
    ++faults_.transient_writes;
    return Status::IoError(
        StrFormat("disk %s: transient write error", name_.c_str()));
  }
  const bool shared_exhausted = shared_counter_ != nullptr &&
                                *shared_counter_ <= 0;
  if (crashed_ || writes_remaining_ == 0 || shared_exhausted) {
    if (!crashed_ && torn_mode_) {
      // Tear exactly the first failing write, then fail cleanly.
      size_t n = std::min(torn_prefix_, block_size_);
      std::copy(data.begin(), data.begin() + static_cast<long>(n),
                blocks_[b].begin());
      ++faults_.torn_writes;
    }
    crashed_ = true;
    ++faults_.write_failures;
    return Status::IoError(
        StrFormat("disk %s: injected crash", name_.c_str()));
  }
  if (writes_remaining_ > 0) --writes_remaining_;
  if (shared_counter_ != nullptr) --*shared_counter_;
  if (transient_write_in_ > 0) --transient_write_in_;
  blocks_[b] = data;
  ++writes_;
  if (observer_) observer_(b, data);
  return Status::OK();
}

Status VirtualDisk::FlipBit(BlockId b, size_t byte, uint8_t mask) {
  if (b >= blocks_.size()) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip in block %llu beyond %llu", name_.c_str(),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(blocks_.size())));
  }
  if (byte >= block_size_) {
    return Status::OutOfRange(
        StrFormat("disk %s: flip at byte %zu beyond block size %zu",
                  name_.c_str(), byte, block_size_));
  }
  blocks_[b][byte] ^= mask;
  ++faults_.bit_flips;
  return Status::OK();
}

void VirtualDisk::SetTornWriteMode(bool enabled, size_t torn_prefix_bytes) {
  torn_mode_ = enabled;
  torn_prefix_ = torn_prefix_bytes;
}

void VirtualDisk::ClearCrashState() {
  crashed_ = false;
  writes_remaining_ = -1;
  reads_remaining_ = -1;
  transient_write_in_ = -1;
  transient_read_in_ = -1;
}

}  // namespace dbmr::store
