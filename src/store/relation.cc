#include "store/relation.h"

#include <algorithm>

#include "store/codec.h"
#include "util/str.h"

namespace dbmr::store {

Relation::Relation(PageEngine* engine, uint64_t first_page,
                   uint64_t num_pages, size_t record_size)
    : engine_(engine),
      first_page_(first_page),
      num_pages_(num_pages),
      record_size_(record_size) {
  DBMR_CHECK(engine != nullptr);
  DBMR_CHECK(record_size > 0);
  DBMR_CHECK(first_page + num_pages <= engine->num_pages());
  DBMR_CHECK(engine->payload_size() >= 8 + record_size);
  slots_per_page_ =
      std::min<size_t>(64, (engine->payload_size() - 8) / record_size);
}

Status Relation::CheckId(RecordId id) const {
  if (id / 64 >= num_pages_ || SlotOf(id) >= slots_per_page_) {
    return Status::OutOfRange(
        StrFormat("record id %llu outside the relation",
                  static_cast<unsigned long long>(id)));
  }
  return Status::OK();
}

Result<RecordId> Relation::Insert(txn::TxnId t,
                                  const std::vector<uint8_t>& record) {
  if (record.size() != record_size_) {
    return Status::InvalidArgument("record size mismatch");
  }
  for (uint64_t probe = 0; probe < num_pages_; ++probe) {
    const uint64_t page_idx = (insert_cursor_ + probe) % num_pages_;
    PageData page;
    DBMR_RETURN_IF_ERROR(
        engine_->Read(t, first_page_ + page_idx, &page));
    uint64_t bitmap = GetU64(page, 0);
    size_t slot = slots_per_page_;
    for (size_t s = 0; s < slots_per_page_; ++s) {
      if ((bitmap & (uint64_t{1} << s)) == 0) {
        slot = s;
        break;
      }
    }
    if (slot == slots_per_page_) continue;  // page full
    bitmap |= uint64_t{1} << slot;
    PutU64(page, 0, bitmap);
    std::copy(record.begin(), record.end(),
              page.begin() + static_cast<long>(SlotOffset(slot)));
    DBMR_RETURN_IF_ERROR(engine_->Write(t, first_page_ + page_idx, page));
    insert_cursor_ = page_idx;
    return page_idx * 64 + slot;
  }
  return Status::ResourceExhausted("relation full");
}

Result<std::vector<uint8_t>> Relation::Get(txn::TxnId t, RecordId id) {
  DBMR_RETURN_IF_ERROR(CheckId(id));
  PageData page;
  DBMR_RETURN_IF_ERROR(engine_->Read(t, PageOf(id), &page));
  const uint64_t bitmap = GetU64(page, 0);
  if ((bitmap & (uint64_t{1} << SlotOf(id))) == 0) {
    return Status::NotFound("record deleted or never inserted");
  }
  const size_t off = SlotOffset(SlotOf(id));
  return std::vector<uint8_t>(
      page.begin() + static_cast<long>(off),
      page.begin() + static_cast<long>(off + record_size_));
}

Status Relation::Update(txn::TxnId t, RecordId id,
                        const std::vector<uint8_t>& record) {
  if (record.size() != record_size_) {
    return Status::InvalidArgument("record size mismatch");
  }
  DBMR_RETURN_IF_ERROR(CheckId(id));
  PageData page;
  DBMR_RETURN_IF_ERROR(engine_->Read(t, PageOf(id), &page));
  const uint64_t bitmap = GetU64(page, 0);
  if ((bitmap & (uint64_t{1} << SlotOf(id))) == 0) {
    return Status::NotFound("record deleted or never inserted");
  }
  std::copy(record.begin(), record.end(),
            page.begin() + static_cast<long>(SlotOffset(SlotOf(id))));
  return engine_->Write(t, PageOf(id), page);
}

Status Relation::Erase(txn::TxnId t, RecordId id) {
  DBMR_RETURN_IF_ERROR(CheckId(id));
  PageData page;
  DBMR_RETURN_IF_ERROR(engine_->Read(t, PageOf(id), &page));
  uint64_t bitmap = GetU64(page, 0);
  const uint64_t bit = uint64_t{1} << SlotOf(id);
  if ((bitmap & bit) == 0) {
    return Status::NotFound("record deleted or never inserted");
  }
  bitmap &= ~bit;
  PutU64(page, 0, bitmap);
  return engine_->Write(t, PageOf(id), page);
}

Status Relation::Scan(
    txn::TxnId t,
    const std::function<bool(RecordId, const std::vector<uint8_t>&)>&
        visit) {
  for (uint64_t page_idx = 0; page_idx < num_pages_; ++page_idx) {
    PageData page;
    DBMR_RETURN_IF_ERROR(engine_->Read(t, first_page_ + page_idx, &page));
    const uint64_t bitmap = GetU64(page, 0);
    if (bitmap == 0) continue;
    for (size_t s = 0; s < slots_per_page_; ++s) {
      if ((bitmap & (uint64_t{1} << s)) == 0) continue;
      const size_t off = SlotOffset(s);
      std::vector<uint8_t> record(
          page.begin() + static_cast<long>(off),
          page.begin() + static_cast<long>(off + record_size_));
      if (!visit(page_idx * 64 + s, record)) return Status::OK();
    }
  }
  return Status::OK();
}

Result<uint64_t> Relation::Count(txn::TxnId t) {
  uint64_t n = 0;
  DBMR_RETURN_IF_ERROR(Scan(t, [&n](RecordId, const std::vector<uint8_t>&) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace dbmr::store
