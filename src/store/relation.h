// A fixed-size-record heap file over any PageEngine.
//
// The paper's database machine processes relations; this layer gives the
// functional recovery engines a record-oriented face: records are packed
// into pages with a presence bitmap, addressed by stable RecordIds, and
// every operation runs inside a caller-provided transaction — so a
// relation inherits exactly the atomicity and durability of whichever
// recovery mechanism sits underneath it.
//
// Page layout (within the engine's payload): [u64 presence bitmap]
// [slot 0][slot 1]...  Up to 64 records per page.

#ifndef DBMR_STORE_RELATION_H_
#define DBMR_STORE_RELATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "store/page_engine.h"
#include "txn/types.h"

namespace dbmr::store {

/// Stable record address: page * 64 + slot.
using RecordId = uint64_t;

/// Fixed-size-record heap file in a page range of a PageEngine.
class Relation {
 public:
  /// Uses logical pages [first_page, first_page + num_pages) of `engine`;
  /// each record is exactly `record_size` bytes.
  Relation(PageEngine* engine, uint64_t first_page, uint64_t num_pages,
           size_t record_size);

  /// Inserts a record; returns its RecordId.  Fails with
  /// kResourceExhausted when the page range is full.
  Result<RecordId> Insert(txn::TxnId t, const std::vector<uint8_t>& record);

  /// Reads a record.
  Result<std::vector<uint8_t>> Get(txn::TxnId t, RecordId id);

  /// Overwrites an existing record in place.
  Status Update(txn::TxnId t, RecordId id,
                const std::vector<uint8_t>& record);

  /// Deletes a record (its slot becomes reusable).
  Status Erase(txn::TxnId t, RecordId id);

  /// Visits every live record in RecordId order.  The visitor returns
  /// false to stop early.
  Status Scan(txn::TxnId t,
              const std::function<bool(RecordId,
                                       const std::vector<uint8_t>&)>& visit);

  /// Live records (scans the relation).
  Result<uint64_t> Count(txn::TxnId t);

  size_t record_size() const { return record_size_; }
  size_t records_per_page() const { return slots_per_page_; }
  uint64_t capacity() const { return num_pages_ * slots_per_page_; }

 private:
  uint64_t PageOf(RecordId id) const { return first_page_ + id / 64; }
  size_t SlotOf(RecordId id) const { return static_cast<size_t>(id % 64); }
  size_t SlotOffset(size_t slot) const {
    return 8 + slot * record_size_;
  }
  Status CheckId(RecordId id) const;

  PageEngine* engine_;
  uint64_t first_page_;
  uint64_t num_pages_;
  size_t record_size_;
  size_t slots_per_page_;
  uint64_t insert_cursor_ = 0;  // page index hint for the next insert
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_RELATION_H_
