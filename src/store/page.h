// Page-data definitions for the functional storage engines.

#ifndef DBMR_STORE_PAGE_H_
#define DBMR_STORE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbmr::store {

/// Raw bytes of one disk block / page.  Size is fixed per VirtualDisk
/// (default 4096, the paper's page size; tests use smaller pages).
using PageData = std::vector<uint8_t>;

/// The paper's page size.
inline constexpr size_t kDefaultPageSize = 4096;

/// Physical block number on a VirtualDisk.
using BlockId = uint64_t;

}  // namespace dbmr::store

#endif  // DBMR_STORE_PAGE_H_
