// Dual-copy stable storage: a VirtualDisk view over two replica disks.
//
// A MirroredDisk makes two independently failing VirtualDisks look like one
// more-durable device, the way the recovery survey's mirrored-log
// configurations keep a log readable across a single media failure:
//
//  * Write — written to both halves; the write succeeds if at least one
//    replica accepted it.  A transiently failing half is retried once so
//    the replicas never silently diverge (a half whose write failed
//    permanently is left in a failing state, so it can never serve stale
//    data later — reads fall back, see below).
//  * Read — served from the primary half; if that fails (lost medium,
//    checksum reject, injected fault) the mirror is tried, and on success
//    the primary is repaired in place, best effort.
//  * Rebuild — after FailMedia() on one half, copies the surviving
//    replica onto a fresh replacement medium.  When both halves are lost
//    there is nothing to copy and Rebuild reports StatusCode::kDataLoss.
//
// The view subclasses VirtualDisk and overrides only the I/O entry points,
// so engines write against the plain VirtualDisk interface and a fixture
// can swap a mirrored log in behind the `log_mirroring` knob without the
// engine knowing.  The two halves stay owned by the fixture: they keep
// their own snapshots, forks, budgets, observers, and fault counters, and
// the crash sweeper keeps injecting faults into them directly.  The view
// holds no block storage of its own (its inherited base image is a shared
// zero page) and no fault state — crashed()/media_lost() on the view are
// always false; ask the halves.
//
// Threading follows the halves' contract: the view is single-threaded and
// must be used from the thread that owns both replicas.

#ifndef DBMR_STORE_MIRRORED_DISK_H_
#define DBMR_STORE_MIRRORED_DISK_H_

#include <string>

#include "store/virtual_disk.h"
#include "util/status.h"

namespace dbmr::store {

class MirroredDisk final : public VirtualDisk {
 public:
  /// Builds a view over `primary` and `mirror`, which must share geometry
  /// and outlive the view (the fixture owns them).
  MirroredDisk(std::string name, VirtualDisk* primary, VirtualDisk* mirror);

  Status Read(BlockId b, PageData* out) const override;
  Status ReadInto(BlockId b, uint8_t* out) const override;
  Status ReadRef(BlockId b, const uint8_t** out) const override;
  Status Write(BlockId b, const PageData& data) override;

  /// Reboot hook: clears injected-failure state on both halves.
  void ClearCrashState() override;

  /// Restores two-copy redundancy after a media loss: replaces the lost
  /// half's medium and copies every block from the survivor (transient
  /// errors retried with bounded backoff).  No-op when both halves are
  /// healthy; kDataLoss when both are gone — the caller must then fall
  /// back to archive recovery or give up.
  Status Rebuild();

  /// True while either half's medium is lost (redundancy degraded).
  bool degraded() const;

  VirtualDisk* primary() const { return primary_; }
  VirtualDisk* mirror() const { return mirror_; }

 private:
  /// Writes one half, retrying once on a transient (self-healing) error so
  /// a healed device cannot silently diverge from its twin.
  static Status WriteHalf(VirtualDisk* half, BlockId b, const PageData& data);

  /// Best-effort write-back of known-good bytes to a half that failed a
  /// read.  Skipped while the half is failed (it cannot accept the write);
  /// any error is ignored — redundancy is restored by Rebuild, not here.
  void RepairHalf(VirtualDisk* half, BlockId b, const uint8_t* data) const;

  VirtualDisk* primary_;
  VirtualDisk* mirror_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_MIRRORED_DISK_H_
