#include "store/mirrored_disk.h"

#include <cstring>
#include <utility>

#include "store/io_retry.h"
#include "util/str.h"

namespace dbmr::store {

MirroredDisk::MirroredDisk(std::string name, VirtualDisk* primary,
                           VirtualDisk* mirror)
    : VirtualDisk(std::move(name), primary->num_blocks(),
                  primary->block_size()),
      primary_(primary),
      mirror_(mirror) {
  DBMR_CHECK(primary_ != nullptr && mirror_ != nullptr);
  DBMR_CHECK(primary_->num_blocks() == mirror_->num_blocks());
  DBMR_CHECK(primary_->block_size() == mirror_->block_size());
}

Status MirroredDisk::Read(BlockId b, PageData* out) const {
  if (out->size() != block_size()) out->resize(block_size());
  return ReadInto(b, out->data());
}

Status MirroredDisk::ReadInto(BlockId b, uint8_t* out) const {
  Status st = primary_->ReadInto(b, out);
  if (st.ok() || st.code() == StatusCode::kOutOfRange) return st;
  Status ms = mirror_->ReadInto(b, out);
  if (!ms.ok()) return st;  // both replicas failed: report the primary fault
  RepairHalf(primary_, b, out);
  return Status::OK();
}

Status MirroredDisk::ReadRef(BlockId b, const uint8_t** out) const {
  Status st = primary_->ReadRef(b, out);
  if (st.ok() || st.code() == StatusCode::kOutOfRange) return st;
  Status ms = mirror_->ReadRef(b, out);
  if (!ms.ok()) return st;
  // The ref points into the mirror's storage; repairing the primary (a
  // different disk) cannot invalidate it.
  RepairHalf(primary_, b, *out);
  return Status::OK();
}

Status MirroredDisk::Write(BlockId b, const PageData& data) {
  Status p = WriteHalf(primary_, b, data);
  // Argument errors would fail identically on the twin; do not double up.
  if (!p.ok() && p.code() != StatusCode::kIoError) return p;
  Status m = WriteHalf(mirror_, b, data);
  if (p.ok() && m.ok()) return Status::OK();
  // A write is acknowledged with one replica behind ONLY when that
  // replica's medium is gone (degraded mode).  Any other half-failure is
  // the machine fail-stopping mid-pair: acking it would leave the bytes on
  // exactly one replica, and a later rebuild from the stale twin would
  // silently roll back an acknowledged write.
  if (p.ok() && mirror_->media_lost()) return Status::OK();
  if (m.ok() && primary_->media_lost()) return Status::OK();
  return p.ok() ? m : p;
}

Status MirroredDisk::WriteHalf(VirtualDisk* half, BlockId b,
                               const PageData& data) {
  Status st = half->Write(b, data);
  if (st.ok() || st.code() != StatusCode::kIoError) return st;
  if (half->crashed() || half->media_lost()) return st;
  // Transient device error: the half has healed, and leaving it one write
  // behind its twin would let a later read serve stale data with no error
  // to trigger fallback.  Retry immediately.
  return half->Write(b, data);
}

void MirroredDisk::RepairHalf(VirtualDisk* half, BlockId b,
                              const uint8_t* data) const {
  if (half->crashed() || half->media_lost()) return;
  PageData blk(block_size());
  std::memcpy(blk.data(), data, block_size());
  (void)half->Write(b, blk);
}

void MirroredDisk::ClearCrashState() {
  primary_->ClearCrashState();
  mirror_->ClearCrashState();
  VirtualDisk::ClearCrashState();
}

bool MirroredDisk::degraded() const {
  return primary_->media_lost() || mirror_->media_lost();
}

Status MirroredDisk::Rebuild() {
  const bool p_lost = primary_->media_lost();
  const bool m_lost = mirror_->media_lost();
  if (p_lost && m_lost) {
    return Status::DataLoss(StrFormat(
        "mirror %s: both replicas lost", name().c_str()));
  }
  if (!p_lost && !m_lost) return Status::OK();
  VirtualDisk* dead = p_lost ? primary_ : mirror_;
  VirtualDisk* live = p_lost ? mirror_ : primary_;
  dead->ReplaceMedia();
  PageData buf(block_size());
  for (BlockId b = 0; b < num_blocks(); ++b) {
    Status st = RetryDiskIo(
        *live, [&] { return live->ReadInto(b, buf.data()); }, nullptr);
    if (st.ok()) {
      st = RetryDiskIo(*dead, [&] { return dead->Write(b, buf); }, nullptr);
    }
    if (!st.ok()) {
      if (live->media_lost()) {
        // The survivor died mid-copy: fail the half-rebuilt replica again
        // so its partial image can never be served as the pair's state.
        dead->FailMedia();
        return Status::DataLoss(StrFormat(
            "mirror %s: surviving replica lost during rebuild",
            name().c_str()));
      }
      return st;
    }
  }
  return Status::OK();
}

}  // namespace dbmr::store
