// Common interface of the functional page-store engines.
//
// Each recovery mechanism from the paper (§3) is implemented as a working
// engine over crash-able VirtualDisks: transactions read and write whole
// pages under page-level two-phase locking, and after a crash the engine's
// Recover() restores a state in which every committed transaction's writes
// are present and no uncommitted transaction's writes are visible.
//
// Concurrency model: the engines are synchronous and single-threaded; lock
// conflicts use no-wait semantics (the request fails with kAborted and the
// caller aborts or retries).  The event-driven machine simulator models
// waiting; here we only need serializable correctness.

#ifndef DBMR_STORE_PAGE_ENGINE_H_
#define DBMR_STORE_PAGE_ENGINE_H_

#include <cstdint>
#include <string>

#include "store/io_retry.h"
#include "store/page.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::store {

/// What the last Recover() call did, for attribution in sweep reports and
/// benches.  Deterministic: identical at any recovery_jobs setting.
struct RecoveryStats {
  /// Stable records examined during replay: log records scanned (WAL),
  /// outcome records plus valid scratch entries (overwrite), valid page
  /// copies inspected (version-select).
  uint64_t replay_records = 0;
  /// Independent replay partitions the planner produced (0 when the
  /// engine recovered on its pre-planner sequential path).
  uint64_t partitions = 0;
  /// Configured parallel replay jobs (0 = sequential reference path).
  int jobs = 0;
};

/// Abstract transactional page store with crash recovery.
class PageEngine {
 public:
  virtual ~PageEngine() = default;

  /// Initializes on-disk structures on fresh disks.  Destroys any existing
  /// content.
  virtual Status Format() = 0;

  /// Rebuilds volatile state from stable storage and performs the
  /// mechanism's recovery actions.  Must be called after a crash (and may
  /// be called on a freshly formatted store).
  virtual Status Recover() = 0;

  /// Starts a transaction.
  virtual Result<txn::TxnId> Begin() = 0;

  /// Reads `page` under a shared lock into `out` (payload bytes only,
  /// exactly payload_size() long).
  virtual Status Read(txn::TxnId t, txn::PageId page, PageData* out) = 0;

  /// Writes `page` (payload of exactly payload_size() bytes) under an
  /// exclusive lock.
  virtual Status Write(txn::TxnId t, txn::PageId page,
                       const PageData& payload) = 0;

  /// Commits; on OK the transaction's writes are durable.
  virtual Status Commit(txn::TxnId t) = 0;

  /// Rolls back all of the transaction's writes.
  virtual Status Abort(txn::TxnId t) = 0;

  /// Simulates losing all volatile state.  Active transactions vanish;
  /// stable storage keeps whatever reached it.  Call Recover() next.
  virtual void Crash() = 0;

  /// Usable bytes per page (block size minus the engine's page header).
  virtual size_t payload_size() const = 0;

  /// Number of logical pages in the store.
  virtual uint64_t num_pages() const = 0;

  /// Mechanism name for diagnostics ("wal", "shadow", ...).
  virtual std::string name() const = 0;

  /// Statistics of the most recent Recover() call; engines without a
  /// parallel replay path report zeroes.
  virtual RecoveryStats last_recovery_stats() const { return {}; }

  /// Rebuilds stable storage after a MEDIA failure (a data disk lost
  /// outright, not just a crash): replaces the dead medium and
  /// reconstructs its contents from redundant storage — archive
  /// checkpoint plus log replay, a mirror, or re-derivation from
  /// surviving structures.  Call Recover() afterwards to rebuild
  /// volatile state.  The default reports kDataLoss: an engine with no
  /// redundancy cannot survive losing its only copy.
  virtual Status MediaRecover() {
    return Status::DataLoss(name() + ": no media redundancy configured");
  }

  /// Cumulative transient-I/O retry activity (see store/io_retry.h);
  /// engines that have not adopted bounded retry report zeroes.
  virtual IoRetryStats io_retry_stats() const { return {}; }
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_PAGE_ENGINE_H_
