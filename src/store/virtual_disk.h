// Crash-able stable-storage model.
//
// A VirtualDisk is an array of fixed-size blocks with synchronous reads and
// writes.  It is the "disk" under the functional recovery engines: its
// contents survive a simulated crash, while everything the engines keep in
// RAM does not.
//
// Crash injection: tests arm the disk with FailAfterWrites(n); the first n
// subsequent writes succeed, and every later write fails with
// StatusCode::kAborted without modifying the block (an atomic page write
// that never happened).  Optionally, the failing write can instead tear the
// block — writing only a prefix — to exercise checksum-based torn-write
// detection.
//
// A write observer hook lets tests audit write ordering (e.g. the WAL rule:
// no data page reaches disk before its log record).

#ifndef DBMR_STORE_VIRTUAL_DISK_H_
#define DBMR_STORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

/// Stable storage: an array of blocks that survives Crash().
class VirtualDisk {
 public:
  /// Creates a disk of `num_blocks` zero-filled blocks of `block_size`
  /// bytes.
  VirtualDisk(std::string name, uint64_t num_blocks,
              size_t block_size = kDefaultPageSize);

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;

  /// Reads block `b` into `out` (resized to block_size).
  Status Read(BlockId b, PageData* out) const;

  /// Writes block `b`.  `data` must be exactly block_size bytes.
  /// Fails with kAborted once the injected crash point is reached.
  Status Write(BlockId b, const PageData& data);

  uint64_t num_blocks() const { return blocks_.size(); }
  size_t block_size() const { return block_size_; }
  const std::string& name() const { return name_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

  /// --- Crash injection ------------------------------------------------

  /// Allows `n` more successful writes; the (n+1)-th and later writes fail.
  /// Pass a negative value to disable injection (the default).
  void FailAfterWrites(int64_t n) { writes_remaining_ = n; }

  /// Shares a write budget across several disks: each successful write on
  /// any participating disk decrements the counter, and once it would go
  /// negative, writes fail ("crash after N writes anywhere").  Pass nullptr
  /// to detach.
  void SetSharedFailCounter(std::shared_ptr<int64_t> counter) {
    shared_counter_ = std::move(counter);
  }

  /// If set, the first failing write tears the block: the first
  /// `torn_prefix_bytes` bytes are written, the rest keeps its old content.
  void SetTornWriteMode(bool enabled, size_t torn_prefix_bytes);

  /// True once an injected failure has occurred.
  bool crashed() const { return crashed_; }

  /// Clears the injected-failure state so a recovered engine can write
  /// again (disk contents are untouched — that is the point).
  void ClearCrashState();

  /// --- Observation ----------------------------------------------------

  using WriteObserver =
      std::function<void(BlockId block, const PageData& data)>;

  /// Called after every successful write (not for failed/torn ones).
  void SetWriteObserver(WriteObserver obs) { observer_ = std::move(obs); }

 private:
  std::string name_;
  size_t block_size_;
  std::vector<PageData> blocks_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  int64_t writes_remaining_ = -1;  // < 0: no injection
  std::shared_ptr<int64_t> shared_counter_;
  bool crashed_ = false;
  bool torn_mode_ = false;
  size_t torn_prefix_ = 0;
  WriteObserver observer_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_VIRTUAL_DISK_H_
