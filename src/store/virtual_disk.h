// Crash-able stable-storage model with deterministic fault injection.
//
// A VirtualDisk is an array of fixed-size blocks with synchronous reads and
// writes.  It is the "disk" under the functional recovery engines: its
// contents survive a simulated crash, while everything the engines keep in
// RAM does not.
//
// Fault model (all faults surface as StatusCode::kIoError, so callers can
// tell a device failure from a transaction abort):
//
//  * Fail-stop writes — FailAfterWrites(n): the first n subsequent writes
//    succeed, every later write fails without modifying the block (an
//    atomic page write that never happened).  SetSharedFailCounter shares
//    one write budget across several disks ("crash after N writes
//    anywhere").  Once a fail-stop fault fires the disk stays failed until
//    ClearCrashState().
//  * Torn writes — SetTornWriteMode: the first failing write instead
//    writes only a prefix of the block, exercising checksum-based
//    torn-write detection.
//  * Fail-stop reads — FailAfterReads(n) / SetSharedReadFailCounter: the
//    read-path analogue, used to cut recovery down while it scans stable
//    structures.
//  * Transient errors — ArmTransientWriteError / ArmTransientReadError:
//    one single operation fails, then the disk heals itself; an immediate
//    retry succeeds and crashed() stays false.
//  * Bit flips — FlipBit corrupts one stored byte in place, modeling
//    media decay that only checksums can catch.
//
// Every injected fault increments a FaultCounters bucket, so harnesses can
// report exactly what was injected.  A write observer hook lets tests
// audit write ordering (e.g. the WAL rule: no data page reaches disk
// before its log record).

#ifndef DBMR_STORE_VIRTUAL_DISK_H_
#define DBMR_STORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

/// Tally of faults a VirtualDisk has injected, by kind.
struct FaultCounters {
  uint64_t write_failures = 0;    ///< fail-stop write faults
  uint64_t read_failures = 0;     ///< fail-stop read faults
  uint64_t transient_writes = 0;  ///< transient write errors
  uint64_t transient_reads = 0;   ///< transient read errors
  uint64_t torn_writes = 0;       ///< writes torn mid-block
  uint64_t bit_flips = 0;         ///< bytes corrupted in place

  uint64_t total() const {
    return write_failures + read_failures + transient_writes +
           transient_reads + torn_writes + bit_flips;
  }
  FaultCounters& operator+=(const FaultCounters& o) {
    write_failures += o.write_failures;
    read_failures += o.read_failures;
    transient_writes += o.transient_writes;
    transient_reads += o.transient_reads;
    torn_writes += o.torn_writes;
    bit_flips += o.bit_flips;
    return *this;
  }
};

/// Stable storage: an array of blocks that survives Crash().
class VirtualDisk {
 public:
  /// Creates a disk of `num_blocks` zero-filled blocks of `block_size`
  /// bytes.
  VirtualDisk(std::string name, uint64_t num_blocks,
              size_t block_size = kDefaultPageSize);

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;

  /// Reads block `b` into `out` (resized to block_size).
  /// Fails with kIoError once an injected read fault fires.
  Status Read(BlockId b, PageData* out) const;

  /// Writes block `b`.  `data` must be exactly block_size bytes.
  /// Fails with kIoError once the injected crash point is reached.
  Status Write(BlockId b, const PageData& data);

  uint64_t num_blocks() const { return blocks_.size(); }
  size_t block_size() const { return block_size_; }
  const std::string& name() const { return name_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

  /// --- Crash injection ------------------------------------------------

  /// Allows `n` more successful writes; the (n+1)-th and later writes fail.
  /// Pass a negative value to disable injection (the default).
  void FailAfterWrites(int64_t n) { writes_remaining_ = n; }

  /// Read-path analogue of FailAfterWrites: allows `n` more successful
  /// reads, then every read fails (fail-stop).
  void FailAfterReads(int64_t n) { reads_remaining_ = n; }

  /// Shares a write budget across several disks: each successful write on
  /// any participating disk decrements the counter, and once it would go
  /// negative, writes fail ("crash after N writes anywhere").  Pass nullptr
  /// to detach.
  void SetSharedFailCounter(std::shared_ptr<int64_t> counter) {
    shared_counter_ = std::move(counter);
  }

  /// Shares a read budget across several disks, the read-path analogue of
  /// SetSharedFailCounter.  Unlike FailAfterReads, this survives
  /// ClearCrashState(), so it can cut down Recover() itself.
  void SetSharedReadFailCounter(std::shared_ptr<int64_t> counter) {
    shared_read_counter_ = std::move(counter);
  }

  /// If set, the first failing write tears the block: the first
  /// `torn_prefix_bytes` bytes are written, the rest keeps its old content.
  void SetTornWriteMode(bool enabled, size_t torn_prefix_bytes);

  /// After `after` more successful writes, exactly one write attempt fails
  /// with kIoError; the disk then heals itself (crashed() stays false and
  /// a retry of the same write succeeds).  Negative disarms.
  void ArmTransientWriteError(int64_t after) { transient_write_in_ = after; }

  /// Read-path analogue of ArmTransientWriteError.
  void ArmTransientReadError(int64_t after) { transient_read_in_ = after; }

  /// Flips the bits selected by `mask` in byte `byte` of stored block `b`
  /// (silent media corruption; only checksums can detect it).
  Status FlipBit(BlockId b, size_t byte, uint8_t mask);

  /// True once an injected fail-stop failure has occurred.
  bool crashed() const { return crashed_; }

  /// Clears the injected-failure state so a recovered engine can use the
  /// disk again (contents are untouched — that is the point).  Detaches
  /// per-disk budgets and transient arms but not shared counters.
  void ClearCrashState();

  /// Faults injected since construction (never reset by ClearCrashState).
  const FaultCounters& fault_counters() const { return faults_; }
  void ResetFaultCounters() { faults_ = FaultCounters{}; }

  /// --- Observation ----------------------------------------------------

  using WriteObserver =
      std::function<void(BlockId block, const PageData& data)>;

  /// Called after every successful write (not for failed/torn ones).
  void SetWriteObserver(WriteObserver obs) { observer_ = std::move(obs); }

 private:
  std::string name_;
  size_t block_size_;
  std::vector<PageData> blocks_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  int64_t writes_remaining_ = -1;         // < 0: no injection
  mutable int64_t reads_remaining_ = -1;  // < 0: no injection
  std::shared_ptr<int64_t> shared_counter_;
  std::shared_ptr<int64_t> shared_read_counter_;
  int64_t transient_write_in_ = -1;          // < 0: disarmed
  mutable int64_t transient_read_in_ = -1;   // < 0: disarmed
  bool crashed_ = false;
  bool torn_mode_ = false;
  size_t torn_prefix_ = 0;
  mutable FaultCounters faults_;
  WriteObserver observer_;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_VIRTUAL_DISK_H_
