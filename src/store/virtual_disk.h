// Crash-able stable-storage model with deterministic fault injection.
//
// A VirtualDisk is an array of fixed-size blocks with synchronous reads and
// writes.  It is the "disk" under the functional recovery engines: its
// contents survive a simulated crash, while everything the engines keep in
// RAM does not.
//
// Fault model (all faults surface as StatusCode::kIoError, so callers can
// tell a device failure from a transaction abort):
//
//  * Fail-stop writes — FailAfterWrites(n): the first n subsequent writes
//    succeed, every later write fails without modifying the block (an
//    atomic page write that never happened).  SetSharedFailCounter shares
//    one write budget across several disks ("crash after N writes
//    anywhere").  Once a fail-stop fault fires the disk stays failed until
//    ClearCrashState().
//  * Torn writes — SetTornWriteMode: the first failing write instead
//    writes only a prefix of the block, exercising checksum-based
//    torn-write detection.
//  * Fail-stop reads — FailAfterReads(n) / SetSharedReadFailCounter: the
//    read-path analogue, used to cut recovery down while it scans stable
//    structures.
//  * Transient errors — ArmTransientWriteError / ArmTransientReadError:
//    one single operation fails, then the disk heals itself; an immediate
//    retry succeeds and crashed() stays false.
//  * Bit flips — FlipBit corrupts one stored byte in place, modeling
//    media decay that only checksums can catch.
//
// Every injected fault increments a FaultCounters bucket, so harnesses can
// report exactly what was injected.  A write observer hook lets tests
// audit write ordering (e.g. the WAL rule: no data page reaches disk
// before its log record).
//
// Snapshots and forks.  Block storage is an immutable shared base image
// plus a private overlay of written blocks.  Snapshot() freezes the
// current contents by folding the overlay into a fresh base (O(blocks
// written since the last snapshot)) and sharing the base pointer;
// ForkFrom(snapshot) opens an independent disk over that image in O(1).
// A fork starts with clean fault state and zeroed I/O counters — it
// models "the machine rebooted with this durable state", not "the same
// device kept its injection schedule".  Writes land in the fork's own
// overlay, so images are never written through, making a fork cost
// O(blocks it actually writes) to use and destroy — independent of disk
// size.  The crash sweeper leans on this to start each crash trial from a
// mid-workload checkpoint instead of replaying the whole workload.
//
// Threading contract.  A VirtualDisk — and the whole fixture sharing its
// fail/read budgets, which are plain shared_ptr<int64_t> counters mutated
// without synchronization — is single-threaded: every Read/Write/FlipBit
// after the first must come from the same thread.  Concurrency is achieved
// by forking: each trial owns a private fixture forked from immutable
// snapshots, and only the snapshot blocks are shared across threads (they
// are never written through).  Debug builds assert thread ownership on
// every I/O so a parallel sweep cannot silently share a budget across
// trials.

#ifndef DBMR_STORE_VIRTUAL_DISK_H_
#define DBMR_STORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

/// Tally of faults a VirtualDisk has injected, by kind.
struct FaultCounters {
  uint64_t write_failures = 0;    ///< fail-stop write faults
  uint64_t read_failures = 0;     ///< fail-stop read faults
  uint64_t transient_writes = 0;  ///< transient write errors
  uint64_t transient_reads = 0;   ///< transient read errors
  uint64_t torn_writes = 0;       ///< writes torn mid-block
  uint64_t bit_flips = 0;         ///< bytes corrupted in place

  uint64_t total() const {
    return write_failures + read_failures + transient_writes +
           transient_reads + torn_writes + bit_flips;
  }
  FaultCounters& operator+=(const FaultCounters& o) {
    write_failures += o.write_failures;
    read_failures += o.read_failures;
    transient_writes += o.transient_writes;
    transient_reads += o.transient_reads;
    torn_writes += o.torn_writes;
    bit_flips += o.bit_flips;
    return *this;
  }
};

class VirtualDisk;

/// An immutable image of a VirtualDisk's contents, cheap to copy and safe
/// to share across threads.  Taking one copies nothing — not even block
/// pointers; a disk holding the image detaches lazily on its first write.
class DiskSnapshot {
 public:
  DiskSnapshot() = default;

  const std::string& name() const { return name_; }
  uint64_t num_blocks() const { return blocks_ ? blocks_->size() : 0; }
  size_t block_size() const { return block_size_; }

 private:
  friend class VirtualDisk;
  using BlockVec = std::vector<std::shared_ptr<PageData>>;

  std::string name_;
  size_t block_size_ = 0;
  std::shared_ptr<const BlockVec> blocks_;
};

/// Stable storage: an array of blocks that survives Crash().
class VirtualDisk {
 public:
  /// Creates a disk of `num_blocks` zero-filled blocks of `block_size`
  /// bytes.
  VirtualDisk(std::string name, uint64_t num_blocks,
              size_t block_size = kDefaultPageSize);

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;

  /// Freezes the current contents as an immutable, shareable image.
  DiskSnapshot Snapshot() const;

  /// Opens an independent disk over `snapshot`'s image: same name and
  /// geometry, contents identical to the moment the snapshot was taken,
  /// but fresh fault state, no shared budgets, zeroed I/O and fault
  /// counters, and no write observer.  Blocks are shared copy-on-write
  /// with every other holder of the image.
  static std::unique_ptr<VirtualDisk> ForkFrom(const DiskSnapshot& snapshot);

  /// Reads block `b` into `out` (resized only if its size differs from
  /// block_size, so steady-state reads never reallocate).
  /// Fails with kIoError once an injected read fault fires.
  Status Read(BlockId b, PageData* out) const;

  /// Reads block `b` into `out`, which must have room for block_size()
  /// bytes.  Same fault model as Read; skips the container bookkeeping for
  /// hot replay loops.
  Status ReadInto(BlockId b, uint8_t* out) const;

  /// Zero-copy read: points `*out` at the block's current storage instead
  /// of copying it.  Counts as one read and runs the full fault model,
  /// exactly like ReadInto.  The pointer stays valid until the next Write
  /// to this same block, the next Snapshot(), or destruction — writes to
  /// OTHER blocks never move it (the overlay is node-based and the base
  /// image is immutable).  This is the recovery fast path: replay scans
  /// whole log/scratch regions without one memcpy per block.
  Status ReadRef(BlockId b, const uint8_t** out) const;

  /// Writes block `b`.  `data` must be exactly block_size bytes.
  /// Fails with kIoError once the injected crash point is reached.
  Status Write(BlockId b, const PageData& data);

  /// Overwrites the first `n` bytes of block `b` (n <= block_size)
  /// directly: no fault checks, no counters, no observer.  This is a
  /// harness back door for rolling a fork forward to an exact write index
  /// (including reproducing a torn prefix) — engines must never call it.
  void RestoreBlock(BlockId b, const uint8_t* data, size_t n);

  uint64_t num_blocks() const { return base_->size(); }
  size_t block_size() const { return block_size_; }
  const std::string& name() const { return name_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

  /// --- Crash injection ------------------------------------------------

  /// Allows `n` more successful writes; the (n+1)-th and later writes fail.
  /// Pass a negative value to disable injection (the default).
  void FailAfterWrites(int64_t n) { writes_remaining_ = n; }

  /// Read-path analogue of FailAfterWrites: allows `n` more successful
  /// reads, then every read fails (fail-stop).
  void FailAfterReads(int64_t n) { reads_remaining_ = n; }

  /// Shares a write budget across several disks: each successful write on
  /// any participating disk decrements the counter, and once it would go
  /// negative, writes fail ("crash after N writes anywhere").  Pass nullptr
  /// to detach.  The counter is unsynchronized — see the threading
  /// contract above: all sharing disks must live on one thread.
  void SetSharedFailCounter(std::shared_ptr<int64_t> counter) {
    shared_counter_ = std::move(counter);
  }

  /// Shares a read budget across several disks, the read-path analogue of
  /// SetSharedFailCounter.  Unlike FailAfterReads, this survives
  /// ClearCrashState(), so it can cut down Recover() itself.
  void SetSharedReadFailCounter(std::shared_ptr<int64_t> counter) {
    shared_read_counter_ = std::move(counter);
  }

  /// If set, the first failing write tears the block: the first
  /// `torn_prefix_bytes` bytes are written, the rest keeps its old content.
  void SetTornWriteMode(bool enabled, size_t torn_prefix_bytes);

  /// After `after` more successful writes, exactly one write attempt fails
  /// with kIoError; the disk then heals itself (crashed() stays false and
  /// a retry of the same write succeeds).  Negative disarms.
  void ArmTransientWriteError(int64_t after) { transient_write_in_ = after; }

  /// Read-path analogue of ArmTransientWriteError.
  void ArmTransientReadError(int64_t after) { transient_read_in_ = after; }

  /// Flips the bits selected by `mask` in byte `byte` of stored block `b`
  /// (silent media corruption; only checksums can detect it).
  Status FlipBit(BlockId b, size_t byte, uint8_t mask);

  /// True once an injected fail-stop failure has occurred.
  bool crashed() const { return crashed_; }

  /// Clears the injected-failure state so a recovered engine can use the
  /// disk again (contents are untouched — that is the point).  Detaches
  /// per-disk budgets and transient arms but not shared counters.
  void ClearCrashState();

  /// Faults injected since construction (never reset by ClearCrashState).
  const FaultCounters& fault_counters() const { return faults_; }
  void ResetFaultCounters() { faults_ = FaultCounters{}; }

  /// Forgets the recorded owning thread so the next I/O re-binds the disk
  /// (debug builds only; no-op otherwise).  For harnesses that build a
  /// fixture on one thread and hand it wholesale to another.
  void ResetThreadOwner();

  /// --- Observation ----------------------------------------------------

  using WriteObserver =
      std::function<void(BlockId block, const PageData& data)>;

  /// Called after every successful write (not for failed/torn ones).
  void SetWriteObserver(WriteObserver obs) { observer_ = std::move(obs); }

 private:
  explicit VirtualDisk(const DiskSnapshot& snapshot);

  /// Returns block `b` as mutable storage: the overlay entry for `b`,
  /// seeded from the base image on first touch.
  PageData& MutableBlock(BlockId b);

  /// Current contents of block `b` (overlay if written, base otherwise).
  const PageData& BlockRef(BlockId b) const;

  /// Folds the overlay into a fresh base vector so the whole image is
  /// again reachable through `base_` alone.  Logically const: contents do
  /// not change, only their representation.
  void Flatten() const;

  /// Debug-build check that all I/O stays on one thread (see the
  /// threading contract in the file comment).
  void CheckThread() const;

  using BlockVec = DiskSnapshot::BlockVec;

  std::string name_;
  size_t block_size_;
  // Base-plus-overlay block store.  `base_` is an immutable image that
  // may be shared with snapshots and forks; it is never mutated.  Written
  // blocks live in `overlay_`, keyed by block id, and shadow the base.
  // Snapshot() folds the overlay back into a fresh base, so both are
  // mutable to keep it const.  num_blocks() is base_->size(): the overlay
  // only ever shadows existing blocks.
  mutable std::shared_ptr<const BlockVec> base_;
  mutable std::unordered_map<BlockId, PageData> overlay_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  int64_t writes_remaining_ = -1;         // < 0: no injection
  mutable int64_t reads_remaining_ = -1;  // < 0: no injection
  std::shared_ptr<int64_t> shared_counter_;
  std::shared_ptr<int64_t> shared_read_counter_;
  int64_t transient_write_in_ = -1;          // < 0: disarmed
  mutable int64_t transient_read_in_ = -1;   // < 0: disarmed
  bool crashed_ = false;
  bool torn_mode_ = false;
  size_t torn_prefix_ = 0;
  mutable FaultCounters faults_;
  WriteObserver observer_;
#ifndef NDEBUG
  mutable std::thread::id owner_;  // default: not yet bound
#endif
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_VIRTUAL_DISK_H_
