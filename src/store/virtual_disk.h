// Crash-able stable-storage model with deterministic fault injection.
//
// A VirtualDisk is an array of fixed-size blocks with synchronous reads and
// writes.  It is the "disk" under the functional recovery engines: its
// contents survive a simulated crash, while everything the engines keep in
// RAM does not.
//
// Fault model (all faults surface as StatusCode::kIoError, so callers can
// tell a device failure from a transaction abort):
//
//  * Fail-stop writes — FailAfterWrites(n): the first n subsequent writes
//    succeed, every later write fails without modifying the block (an
//    atomic page write that never happened).  SetSharedFailCounter shares
//    one write budget across several disks ("crash after N writes
//    anywhere").  Once a fail-stop fault fires the disk stays failed until
//    ClearCrashState().
//  * Torn writes — SetTornWriteMode: the first failing write instead
//    writes only a prefix of the block, exercising checksum-based
//    torn-write detection.
//  * Fail-stop reads — FailAfterReads(n) / SetSharedReadFailCounter: the
//    read-path analogue, used to cut recovery down while it scans stable
//    structures.
//  * Transient errors — ArmTransientWriteError / ArmTransientReadError:
//    one single operation fails, then the disk heals itself; an immediate
//    retry succeeds and crashed() stays false.
//  * Bit flips — FlipBit corrupts one stored byte in place, modeling
//    media decay that only checksums can catch.
//  * Media loss — FailMedia(): the whole medium is gone, permanently;
//    every read and write fails until ReplaceMedia() installs a blank
//    replacement.  Unlike the budgets above this survives
//    ClearCrashState(): a reboot does not resurrect a dead disk.
//  * Silent corruption — CorruptRange rewrites stored bytes in place
//    with no error.  Every successful full-block write also maintains a
//    per-block checksum sidecar; SetChecksumVerify(true) makes every
//    read verify it (kCorruption on mismatch), and VerifyBlockChecksum
//    lets a scrubber audit blocks without consuming read budgets.
//
// Every injected fault increments a FaultCounters bucket, so harnesses can
// report exactly what was injected.  A write observer hook lets tests
// audit write ordering (e.g. the WAL rule: no data page reaches disk
// before its log record).
//
// Snapshots and forks.  Block storage is an immutable shared base image
// plus a private overlay of written blocks.  Snapshot() freezes the
// current contents by folding the overlay into a fresh base (O(blocks
// written since the last snapshot)) and sharing the base pointer;
// ForkFrom(snapshot) opens an independent disk over that image in O(1).
// A fork starts with clean fault state and zeroed I/O counters — it
// models "the machine rebooted with this durable state", not "the same
// device kept its injection schedule".  Writes land in the fork's own
// overlay, so images are never written through, making a fork cost
// O(blocks it actually writes) to use and destroy — independent of disk
// size.  The crash sweeper leans on this to start each crash trial from a
// mid-workload checkpoint instead of replaying the whole workload.
//
// Threading contract.  A VirtualDisk — and the whole fixture sharing its
// fail/read budgets, which are plain shared_ptr<int64_t> counters mutated
// without synchronization — is single-threaded: every Read/Write/FlipBit
// after the first must come from the same thread.  Concurrency is achieved
// by forking: each trial owns a private fixture forked from immutable
// snapshots, and only the snapshot blocks are shared across threads (they
// are never written through).  Debug builds assert thread ownership on
// every I/O so a parallel sweep cannot silently share a budget across
// trials.

#ifndef DBMR_STORE_VIRTUAL_DISK_H_
#define DBMR_STORE_VIRTUAL_DISK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "store/page.h"
#include "util/status.h"

namespace dbmr::store {

/// Tally of faults a VirtualDisk has injected, by kind.
struct FaultCounters {
  uint64_t write_failures = 0;    ///< fail-stop write faults
  uint64_t read_failures = 0;     ///< fail-stop read faults
  uint64_t transient_writes = 0;  ///< transient write errors
  uint64_t transient_reads = 0;   ///< transient read errors
  uint64_t torn_writes = 0;       ///< writes torn mid-block
  uint64_t bit_flips = 0;         ///< bytes corrupted in place
  uint64_t media_failures = 0;    ///< I/O refused on a lost medium
  uint64_t corruptions = 0;       ///< silent in-place corruption injections
  uint64_t checksum_errors = 0;   ///< reads rejected by CRC verification

  uint64_t total() const {
    return write_failures + read_failures + transient_writes +
           transient_reads + torn_writes + bit_flips + media_failures +
           corruptions + checksum_errors;
  }
  FaultCounters& operator+=(const FaultCounters& o) {
    write_failures += o.write_failures;
    read_failures += o.read_failures;
    transient_writes += o.transient_writes;
    transient_reads += o.transient_reads;
    torn_writes += o.torn_writes;
    bit_flips += o.bit_flips;
    media_failures += o.media_failures;
    corruptions += o.corruptions;
    checksum_errors += o.checksum_errors;
    return *this;
  }
};

class VirtualDisk;

/// An immutable image of a VirtualDisk's contents, cheap to copy and safe
/// to share across threads.  Taking one copies nothing — not even block
/// pointers; a disk holding the image detaches lazily on its first write.
class DiskSnapshot {
 public:
  DiskSnapshot() = default;

  const std::string& name() const { return name_; }
  uint64_t num_blocks() const { return blocks_ ? blocks_->size() : 0; }
  size_t block_size() const { return block_size_; }

 private:
  friend class VirtualDisk;
  using BlockVec = std::vector<std::shared_ptr<PageData>>;
  using CrcMap = std::unordered_map<BlockId, uint64_t>;

  std::string name_;
  size_t block_size_ = 0;
  std::shared_ptr<const BlockVec> blocks_;
  /// Checksum sidecar at snapshot time (written blocks only; an absent
  /// entry means the block still carries the all-zero checksum).
  std::shared_ptr<const CrcMap> crcs_;
};

/// Stable storage: an array of blocks that survives Crash().
class VirtualDisk {
 public:
  /// Creates a disk of `num_blocks` zero-filled blocks of `block_size`
  /// bytes.
  VirtualDisk(std::string name, uint64_t num_blocks,
              size_t block_size = kDefaultPageSize);

  VirtualDisk(const VirtualDisk&) = delete;
  VirtualDisk& operator=(const VirtualDisk&) = delete;
  virtual ~VirtualDisk() = default;

  /// Freezes the current contents as an immutable, shareable image.
  DiskSnapshot Snapshot() const;

  /// Opens an independent disk over `snapshot`'s image: same name and
  /// geometry, contents identical to the moment the snapshot was taken,
  /// but fresh fault state, no shared budgets, zeroed I/O and fault
  /// counters, and no write observer.  Blocks are shared copy-on-write
  /// with every other holder of the image.
  static std::unique_ptr<VirtualDisk> ForkFrom(const DiskSnapshot& snapshot);

  /// Reads block `b` into `out` (resized only if its size differs from
  /// block_size, so steady-state reads never reallocate).
  /// Fails with kIoError once an injected read fault fires.
  /// The four I/O entry points (and ClearCrashState) are virtual so a
  /// MirroredDisk can interpose replication without the engines knowing.
  virtual Status Read(BlockId b, PageData* out) const;

  /// Reads block `b` into `out`, which must have room for block_size()
  /// bytes.  Same fault model as Read; skips the container bookkeeping for
  /// hot replay loops.
  virtual Status ReadInto(BlockId b, uint8_t* out) const;

  /// Zero-copy read: points `*out` at the block's current storage instead
  /// of copying it.  Counts as one read and runs the full fault model,
  /// exactly like ReadInto.  The pointer stays valid until the next Write
  /// to this same block, the next Snapshot(), or destruction — writes to
  /// OTHER blocks never move it (the overlay is node-based and the base
  /// image is immutable).  This is the recovery fast path: replay scans
  /// whole log/scratch regions without one memcpy per block.
  virtual Status ReadRef(BlockId b, const uint8_t** out) const;

  /// Writes block `b`.  `data` must be exactly block_size bytes.
  /// Fails with kIoError once the injected crash point is reached.
  virtual Status Write(BlockId b, const PageData& data);

  /// Overwrites the first `n` bytes of block `b` (n <= block_size)
  /// directly: no fault checks, no counters, no observer.  This is a
  /// harness back door for rolling a fork forward to an exact write index
  /// (including reproducing a torn prefix) — engines must never call it.
  void RestoreBlock(BlockId b, const uint8_t* data, size_t n);

  uint64_t num_blocks() const { return base_->size(); }
  size_t block_size() const { return block_size_; }
  const std::string& name() const { return name_; }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

  /// --- Crash injection ------------------------------------------------

  /// Allows `n` more successful writes; the (n+1)-th and later writes fail.
  /// Pass a negative value to disable injection (the default).
  void FailAfterWrites(int64_t n) { writes_remaining_ = n; }

  /// Read-path analogue of FailAfterWrites: allows `n` more successful
  /// reads, then every read fails (fail-stop).
  void FailAfterReads(int64_t n) { reads_remaining_ = n; }

  /// Shares a write budget across several disks: each successful write on
  /// any participating disk decrements the counter, and once it would go
  /// negative, writes fail ("crash after N writes anywhere").  Pass nullptr
  /// to detach.  The counter is unsynchronized — see the threading
  /// contract above: all sharing disks must live on one thread.
  void SetSharedFailCounter(std::shared_ptr<int64_t> counter) {
    shared_counter_ = std::move(counter);
  }

  /// Shares a read budget across several disks, the read-path analogue of
  /// SetSharedFailCounter.  Unlike FailAfterReads, this survives
  /// ClearCrashState(), so it can cut down Recover() itself.
  void SetSharedReadFailCounter(std::shared_ptr<int64_t> counter) {
    shared_read_counter_ = std::move(counter);
  }

  /// If set, the first failing write tears the block: the first
  /// `torn_prefix_bytes` bytes are written, the rest keeps its old content.
  void SetTornWriteMode(bool enabled, size_t torn_prefix_bytes);

  /// After `after` more successful writes, exactly one write attempt fails
  /// with kIoError; the disk then heals itself (crashed() stays false and
  /// a retry of the same write succeeds).  Negative disarms.
  void ArmTransientWriteError(int64_t after) { transient_write_in_ = after; }

  /// Read-path analogue of ArmTransientWriteError.
  void ArmTransientReadError(int64_t after) { transient_read_in_ = after; }

  /// Flips the bits selected by `mask` in byte `byte` of stored block `b`
  /// (silent media corruption; only checksums can detect it).
  Status FlipBit(BlockId b, size_t byte, uint8_t mask);

  /// --- Media-failure injection ----------------------------------------

  /// Permanent fail-stop loss of the whole medium: every subsequent read
  /// and write fails with kIoError until ReplaceMedia().  Unlike the
  /// fail-stop budgets this survives ClearCrashState() — a reboot does not
  /// bring a dead disk back.
  void FailMedia() { media_lost_ = true; }

  /// True while the medium is lost (see FailMedia).
  bool media_lost() const { return media_lost_; }

  /// Installs a fresh replacement medium: contents become all zero, the
  /// checksum sidecar is cleared, and I/O works again.  Counters and
  /// injected-fault tallies are kept — the device identity survives, the
  /// platters do not.
  void ReplaceMedia();

  /// Silently corrupts `len` bytes of stored block `b` starting at
  /// `offset`, XORing in a pattern derived from `seed` (never a no-op).
  /// The checksum sidecar is left stale, so a verified read or a scrub
  /// pass can detect the damage; an unverified read serves it silently.
  Status CorruptRange(BlockId b, size_t offset, size_t len, uint64_t seed);

  /// When enabled, every Read/ReadInto/ReadRef verifies the block's
  /// stored checksum and fails with kCorruption (counting a
  /// checksum_error) on mismatch.  Off by default: the bit-flip
  /// classification sweeps measure what the ENGINES detect, so ambient
  /// verification must not mask them.
  void SetChecksumVerify(bool enabled) { verify_checksums_ = enabled; }

  /// Scrub check of one block: recomputes the content checksum and
  /// compares it with the sidecar.  Counts no read, consumes no budget,
  /// and works regardless of SetChecksumVerify; kCorruption on mismatch,
  /// kIoError on lost media.
  Status VerifyBlockChecksum(BlockId b) const;

  /// True once an injected fail-stop failure has occurred.
  bool crashed() const { return crashed_; }

  /// Clears the injected-failure state so a recovered engine can use the
  /// disk again (contents are untouched — that is the point).  Detaches
  /// per-disk budgets and transient arms but not shared counters, and
  /// never resurrects a lost medium (see FailMedia).
  virtual void ClearCrashState();

  /// Faults injected since construction (never reset by ClearCrashState).
  const FaultCounters& fault_counters() const { return faults_; }
  void ResetFaultCounters() { faults_ = FaultCounters{}; }

  /// Forgets the recorded owning thread so the next I/O re-binds the disk
  /// (debug builds only; no-op otherwise).  For harnesses that build a
  /// fixture on one thread and hand it wholesale to another.
  void ResetThreadOwner();

  /// --- Observation ----------------------------------------------------

  using WriteObserver =
      std::function<void(BlockId block, const PageData& data)>;

  /// Called after every successful write (not for failed/torn ones).
  void SetWriteObserver(WriteObserver obs) { observer_ = std::move(obs); }

 private:
  explicit VirtualDisk(const DiskSnapshot& snapshot);

  /// Returns block `b` as mutable storage: the overlay entry for `b`,
  /// seeded from the base image on first touch.
  PageData& MutableBlock(BlockId b);

  /// Current contents of block `b` (overlay if written, base otherwise).
  const PageData& BlockRef(BlockId b) const;

  /// Folds the overlay into a fresh base vector so the whole image is
  /// again reachable through `base_` alone.  Logically const: contents do
  /// not change, only their representation.
  void Flatten() const;

  /// Debug-build check that all I/O stays on one thread (see the
  /// threading contract in the file comment).
  void CheckThread() const;

  /// kIoError (counting a media_failure) while the medium is lost.
  Status MediaCheck() const;

  /// The sidecar checksum block `b` should carry (zero-block checksum for
  /// never-written blocks).
  uint64_t ExpectedCrc(BlockId b) const;

  /// SetChecksumVerify read-path hook: kCorruption (counting a
  /// checksum_error) when block `b`'s content no longer matches the
  /// sidecar.
  Status VerifyOnRead(BlockId b) const;

  using BlockVec = DiskSnapshot::BlockVec;

  std::string name_;
  size_t block_size_;
  // Base-plus-overlay block store.  `base_` is an immutable image that
  // may be shared with snapshots and forks; it is never mutated.  Written
  // blocks live in `overlay_`, keyed by block id, and shadow the base.
  // Snapshot() folds the overlay back into a fresh base, so both are
  // mutable to keep it const.  num_blocks() is base_->size(): the overlay
  // only ever shadows existing blocks.
  mutable std::shared_ptr<const BlockVec> base_;
  mutable std::unordered_map<BlockId, PageData> overlay_;
  // Per-block checksum sidecar (written blocks only; absent entry = the
  // all-zero-block checksum).  Updated on every successful full-block
  // write; deliberately left stale by FlipBit/CorruptRange/torn writes —
  // that staleness IS the detectable corruption.  `crc_shared_` caches the
  // last snapshot's frozen copy so back-to-back snapshots of an unwritten
  // disk copy nothing.
  using CrcMap = DiskSnapshot::CrcMap;
  mutable CrcMap crc_;
  mutable std::shared_ptr<const CrcMap> crc_shared_;
  mutable bool crc_dirty_ = false;
  uint64_t zero_crc_ = 0;  ///< checksum of an all-zero block
  bool media_lost_ = false;
  bool verify_checksums_ = false;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  int64_t writes_remaining_ = -1;         // < 0: no injection
  mutable int64_t reads_remaining_ = -1;  // < 0: no injection
  std::shared_ptr<int64_t> shared_counter_;
  std::shared_ptr<int64_t> shared_read_counter_;
  int64_t transient_write_in_ = -1;          // < 0: disarmed
  mutable int64_t transient_read_in_ = -1;   // < 0: disarmed
  bool crashed_ = false;
  bool torn_mode_ = false;
  size_t torn_prefix_ = 0;
  mutable FaultCounters faults_;
  WriteObserver observer_;
#ifndef NDEBUG
  mutable std::thread::id owner_;  // default: not yet bound
#endif
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_VIRTUAL_DISK_H_
