// Fixed-capacity page buffer with LRU replacement.
//
// This models the paper's disk cache on the functional side.  The pool maps
// logical page ids to frames; the owner supplies the fetch and flush
// policies (a recovery engine decides where a page lives on disk and
// whether a dirty page may be written yet — the WAL rule).

#ifndef DBMR_STORE_BUFFER_POOL_H_
#define DBMR_STORE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "store/page.h"
#include "txn/types.h"
#include "util/status.h"

namespace dbmr::store {

/// LRU page cache.  Frames hold copies of page contents; dirty frames are
/// written back through the owner-provided flusher on eviction.
class BufferPool {
 public:
  /// `flusher(page, data)` must persist a dirty page (enforcing any
  /// write-ahead constraint itself) and return OK, or an error to veto the
  /// eviction.
  using Flusher =
      std::function<Status(txn::PageId page, const PageData& data)>;
  /// `fetcher(page, out)` must load the page image from disk.
  using Fetcher = std::function<Status(txn::PageId page, PageData* out)>;

  BufferPool(size_t capacity, Fetcher fetcher, Flusher flusher);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the frame contents of `page`, faulting it in if needed
  /// (possibly evicting the LRU unpinned frame).
  Status Get(txn::PageId page, PageData* out);

  /// Installs new contents for `page` and marks the frame dirty.
  Status Put(txn::PageId page, PageData data);

  /// Writes a dirty page through the flusher and marks it clean.
  /// No-op when the page is absent or clean.
  Status FlushPage(txn::PageId page);

  /// Flushes every dirty frame (checkpoint / commit support).
  Status FlushAll();

  /// Drops the page from the pool without flushing (used when aborting a
  /// transaction whose dirty images must not survive).
  void Discard(txn::PageId page);

  /// Drops every frame without flushing — the volatile part of a crash.
  void DiscardAll();

  bool Contains(txn::PageId page) const;
  bool IsDirty(txn::PageId page) const;
  size_t size() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Frame {
    PageData data;
    bool dirty = false;
    std::list<txn::PageId>::iterator lru_pos;
  };

  /// Makes room for one more frame; evicts the LRU entry if at capacity.
  Status EnsureCapacity();
  void Touch(txn::PageId page, Frame& frame);

  size_t capacity_;
  Fetcher fetcher_;
  Flusher flusher_;
  std::unordered_map<txn::PageId, Frame> frames_;
  std::list<txn::PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace dbmr::store

#endif  // DBMR_STORE_BUFFER_POOL_H_
