// Bandwidth-limited communication channel.
//
// Models the interconnection between query processors and log processors
// (paper §4.1.3).  A message of b bytes occupies the channel for
// b / bandwidth seconds; messages queue FCFS.

#ifndef DBMR_HW_CHANNEL_H_
#define DBMR_HW_CHANNEL_H_

#include <cstdint>
#include <string>

#include "sim/inline_task.h"
#include "sim/server.h"

namespace dbmr::hw {

/// FCFS serial channel with a fixed bandwidth in megabytes per second.
class Channel {
 public:
  Channel(sim::Simulator* sim, std::string name, double megabytes_per_sec);

  /// Enqueues a `bytes`-byte message; `done` fires on delivery.
  void Send(int64_t bytes, sim::InlineTask done);

  double Utilization() const { return server_.Utilization(); }
  double AvgQueueLength() const { return server_.AvgQueueLength(); }
  uint64_t messages_delivered() const { return server_.jobs_completed(); }
  double bandwidth_mb_per_sec() const { return mb_per_sec_; }

  /// Transfer time for a message of the given size.
  sim::TimeMs TransferTime(int64_t bytes) const;

 private:
  double mb_per_sec_;
  sim::Server server_;
};

}  // namespace dbmr::hw

#endif  // DBMR_HW_CHANNEL_H_
