// Disk geometry and service-time parameters.
//
// Defaults model the IBM 3350 drives used in the paper: 555 cylinders of 30
// tracks, about four 4 KB pages per track, 16.7 ms rotation, and a linear
// seek profile.  Every disk access additionally pays a fixed overhead for
// controller/channel work and head settling, which calibrates the bare
// machine to the paper's Table 1 baseline (see machine/params.h).

#ifndef DBMR_HW_DISK_GEOMETRY_H_
#define DBMR_HW_DISK_GEOMETRY_H_

#include <cstdint>

#include "sim/time.h"

namespace dbmr::hw {

/// Physical address of a page slot on one disk.
struct DiskPageAddr {
  int32_t cylinder = 0;
  /// Page slot within the cylinder, in [0, pages_per_cylinder).
  int32_t slot = 0;

  bool operator==(const DiskPageAddr&) const = default;
};

/// Geometry and timing of a disk drive.
struct DiskGeometry {
  int32_t cylinders = 555;
  int32_t tracks_per_cylinder = 30;
  int32_t pages_per_track = 4;

  /// Fixed cost charged on every access (controller, settle).
  sim::TimeMs access_overhead_ms = 10.0;
  /// Additional seek cost per cylinder of arm travel.
  sim::TimeMs seek_ms_per_cylinder = 0.085;
  /// One full platter rotation; expected rotational delay is half of this.
  sim::TimeMs rotation_ms = 16.7;
  /// Transfer time for one 4 KB page.
  sim::TimeMs page_transfer_ms = 3.6;

  int32_t pages_per_cylinder() const {
    return tracks_per_cylinder * pages_per_track;
  }

  int64_t capacity_pages() const {
    return static_cast<int64_t>(cylinders) * pages_per_cylinder();
  }

  /// Arm-travel time between two cylinders (0 when equal).
  sim::TimeMs SeekTime(int32_t from, int32_t to) const {
    int32_t d = from > to ? from - to : to - from;
    return d == 0 ? 0.0 : seek_ms_per_cylinder * static_cast<double>(d);
  }

  /// Maps a linear page index on this disk to its physical address.
  DiskPageAddr AddrOfPage(int64_t page_index) const {
    DiskPageAddr a;
    a.cylinder = static_cast<int32_t>(page_index / pages_per_cylinder());
    a.slot = static_cast<int32_t>(page_index % pages_per_cylinder());
    return a;
  }
};

/// Returns the IBM 3350 geometry used throughout the paper's experiments.
inline DiskGeometry Ibm3350Geometry() { return DiskGeometry{}; }

}  // namespace dbmr::hw

#endif  // DBMR_HW_DISK_GEOMETRY_H_
