// Disk drive model with FCFS queueing and cylinder batching.
//
// Two kinds of drives are modeled, matching the paper:
//
//  * kConventional — each access moves exactly one page:
//      overhead + seek + rotational latency + one page transfer.
//  * kParallelAccess — a SURE/DBC-style drive whose heads operate in
//    parallel: one access services every queued same-operation request on
//    the target cylinder; transfer time covers ceil(m / tracks) page times.
//
// Rotational latency is sampled uniformly in [0, rotation) from the disk's
// own RNG stream, so runs are deterministic given a seed.

#ifndef DBMR_HW_DISK_H_
#define DBMR_HW_DISK_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "hw/disk_geometry.h"
#include "sim/inline_task.h"
#include "sim/simulator.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dbmr::hw {

/// The two drive types evaluated in the paper.
enum class DiskKind {
  kConventional,
  kParallelAccess,
};

const char* DiskKindName(DiskKind kind);

/// A queued page access.
struct DiskRequest {
  DiskPageAddr addr;
  bool is_write = false;
  /// Blocks moved by this request in one access (e.g. the version-selection
  /// architecture reads both adjacent copies of a page: 2).
  int32_t transfer_pages = 1;
  /// Completion callback; invoked when the access carrying this request
  /// finishes.  Move-only, like the request itself.
  sim::InlineTask done;
};

/// One disk drive.
class DiskModel {
 public:
  DiskModel(sim::Simulator* sim, std::string name, DiskGeometry geometry,
            DiskKind kind, Rng rng);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Enqueues a page access.
  void Submit(DiskRequest req);

  bool busy() const { return busy_; }
  size_t QueueLength() const { return pending_count_; }
  const std::string& name() const { return name_; }
  const DiskGeometry& geometry() const { return geometry_; }
  DiskKind kind() const { return kind_; }

  /// Fraction of time the drive was busy since construction.
  double Utilization() const;

  /// Number of physical accesses performed (a parallel-access batch counts
  /// as one).
  uint64_t accesses() const { return accesses_; }

  /// Total pages moved (every request counts as one page).
  uint64_t pages_transferred() const { return pages_; }

  /// Distribution of batch sizes (pages per access).
  const RunningStat& batch_stat() const { return batch_stat_; }

  /// Distribution of per-request queueing delay.
  const RunningStat& wait_stat() const { return wait_stat_; }

  double AvgQueueLength() const;

  /// Longest the request queue ever got (excluding requests in service).
  size_t max_queue_length() const { return max_queue_; }

 private:
  struct Pending {
    DiskRequest req;
    sim::TimeMs enqueued;
    uint64_t seq;  // global arrival number, strictly increasing
  };
  // One FIFO per (cylinder, operation): exactly the set a parallel-access
  // batch drains, so the gather is O(batch) instead of the old
  // O(queue-length) sweep (which went quadratic under saturation).
  struct OrderEntry {
    uint64_t seq;
    uint64_t key;
  };

  static uint64_t BucketKey(const DiskRequest& req) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(req.addr.cylinder))
            << 1) |
           static_cast<uint64_t>(req.is_write);
  }

  void StartNextAccess();

  sim::Simulator* sim_;
  std::string name_;
  DiskGeometry geometry_;
  DiskKind kind_;
  Rng rng_;

  uint16_t track_ = 0;  // trace track, registered when the sim carries one
  bool busy_ = false;
  int32_t arm_cylinder_ = 0;
  int32_t next_slot_ = -1;
  std::unordered_map<uint64_t, std::deque<Pending>> buckets_;
  // Global FCFS order across buckets.  Entries whose request was already
  // swept into an earlier batch are skipped lazily at the front (a served
  // request's seq can no longer match its bucket's front).
  RingBuffer<OrderEntry> order_;
  size_t pending_count_ = 0;
  uint64_t next_seq_ = 0;
  size_t max_queue_ = 0;

  uint64_t accesses_ = 0;
  uint64_t pages_ = 0;
  TimeWeightedStat busy_stat_;
  TimeWeightedStat queue_stat_;
  RunningStat batch_stat_;
  RunningStat wait_stat_;
};

}  // namespace dbmr::hw

#endif  // DBMR_HW_DISK_H_
