#include "hw/channel.h"

#include <utility>

namespace dbmr::hw {

Channel::Channel(sim::Simulator* sim, std::string name,
                 double megabytes_per_sec)
    : mb_per_sec_(megabytes_per_sec), server_(sim, std::move(name)) {
  DBMR_CHECK(megabytes_per_sec > 0.0);
}

sim::TimeMs Channel::TransferTime(int64_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) / (mb_per_sec_ * 1024.0 * 1024.0);
  return sim::SecondsMs(seconds);
}

void Channel::Send(int64_t bytes, sim::InlineTask done) {
  server_.Submit(TransferTime(bytes), std::move(done));
}

}  // namespace dbmr::hw
