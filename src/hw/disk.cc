#include "hw/disk.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "sim/trace.h"

namespace dbmr::hw {

const char* DiskKindName(DiskKind kind) {
  switch (kind) {
    case DiskKind::kConventional:
      return "conventional";
    case DiskKind::kParallelAccess:
      return "parallel-access";
  }
  return "unknown";
}

DiskModel::DiskModel(sim::Simulator* sim, std::string name,
                     DiskGeometry geometry, DiskKind kind, Rng rng)
    : sim_(sim),
      name_(std::move(name)),
      geometry_(geometry),
      kind_(kind),
      rng_(rng) {
  DBMR_CHECK(sim != nullptr);
  busy_stat_.Set(sim_->Now(), 0.0);
  queue_stat_.Set(sim_->Now(), 0.0);
  if (sim::TraceRing* tr = sim_->trace()) track_ = tr->RegisterTrack(name_);
}

void DiskModel::Submit(DiskRequest req) {
  DBMR_CHECK(req.addr.cylinder >= 0 && req.addr.cylinder < geometry_.cylinders);
  DBMR_CHECK(req.addr.slot >= 0 && req.addr.slot < geometry_.pages_per_cylinder());
  const uint64_t key = BucketKey(req);
  const uint64_t seq = next_seq_++;
  buckets_[key].push_back(Pending{std::move(req), sim_->Now(), seq});
  order_.push_back(OrderEntry{seq, key});
  ++pending_count_;
  queue_stat_.Set(sim_->Now(), static_cast<double>(pending_count_));
  max_queue_ = std::max(max_queue_, pending_count_);
  if (!busy_) StartNextAccess();
}

void DiskModel::StartNextAccess() {
  DBMR_CHECK(!busy_ && pending_count_ > 0);

  // Find the oldest pending request: skim the global order ring past
  // entries already served as passengers of an earlier batch (their seq no
  // longer matches the front of their bucket, because buckets drain in
  // FIFO prefixes).
  std::deque<Pending>* bucket = nullptr;
  for (;;) {
    const OrderEntry e = order_.front();
    auto it = buckets_.find(e.key);
    if (it == buckets_.end() || it->second.empty() ||
        it->second.front().seq != e.seq) {
      order_.pop_front();  // stale
      continue;
    }
    bucket = &it->second;
    break;
  }

  // Gather the batch for this access.  A conventional drive always moves
  // exactly the front request.  A parallel-access drive services every
  // queued same-operation request on the front request's cylinder (the
  // heads read/write all tracks of the cylinder in one revolution) — which
  // is precisely the front request's bucket, oldest first, exactly the
  // order the old whole-queue sweep produced.
  std::vector<Pending> batch;
  const size_t max_batch =
      kind_ == DiskKind::kParallelAccess
          ? static_cast<size_t>(geometry_.pages_per_cylinder())
          : 1;
  while (!bucket->empty() && batch.size() < max_batch) {
    batch.push_back(std::move(bucket->front()));
    bucket->pop_front();
  }
  order_.pop_front();  // the leader's own order entry
  pending_count_ -= batch.size();
  queue_stat_.Set(sim_->Now(), static_cast<double>(pending_count_));

  const int32_t target = batch.front().req.addr.cylinder;
  const sim::TimeMs seek = geometry_.SeekTime(arm_cylinder_, target);
  // Sequentially continuing accesses (next slot on the cylinder the head
  // already sits on) catch the platter almost in position and pay only a
  // residual rotational delay; everything else pays a uniform full one.
  const bool continuing =
      target == arm_cylinder_ && batch.front().req.addr.slot == next_slot_;
  arm_cylinder_ = target;
  next_slot_ = batch.back().req.addr.slot + batch.back().req.transfer_pages;
  const sim::TimeMs latency =
      continuing ? rng_.UniformDouble(0.0, geometry_.rotation_ms / 4.0)
                 : rng_.UniformDouble(0.0, geometry_.rotation_ms);
  // With parallel heads, ceil(units / tracks) page positions must pass
  // under the heads; a conventional drive transfers every unit serially.
  double units = 0;
  for (const auto& p : batch) {
    units += static_cast<double>(p.req.transfer_pages);
  }
  const double passes =
      kind_ == DiskKind::kParallelAccess
          ? std::ceil(units /
                      static_cast<double>(geometry_.tracks_per_cylinder))
          : units;
  const sim::TimeMs transfer = geometry_.page_transfer_ms * passes;
  const sim::TimeMs service =
      geometry_.access_overhead_ms + seek + latency + transfer;

  busy_ = true;
  busy_stat_.Set(sim_->Now(), 1.0);
  ++accesses_;
  pages_ += batch.size();
  batch_stat_.Add(static_cast<double>(batch.size()));
  for (const auto& p : batch) wait_stat_.Add(sim_->Now() - p.enqueued);
  if (sim::TraceRing* tr = sim_->trace()) {
    tr->Emit(sim_->Now(), track_, sim::TraceKind::kDiskAccessStart,
             batch.size(), static_cast<uint64_t>(target));
  }

  sim_->Schedule(service, [this, batch = std::move(batch)]() mutable {
    if (sim::TraceRing* tr = sim_->trace()) {
      tr->Emit(sim_->Now(), track_, sim::TraceKind::kDiskAccessEnd,
               accesses_);
    }
    busy_ = false;
    busy_stat_.Set(sim_->Now(), 0.0);
    if (pending_count_ > 0) StartNextAccess();
    for (auto& p : batch) {
      if (p.req.done) p.req.done();
    }
  });
}

double DiskModel::Utilization() const { return busy_stat_.Average(sim_->Now()); }

double DiskModel::AvgQueueLength() const {
  return queue_stat_.Average(sim_->Now());
}

}  // namespace dbmr::hw
