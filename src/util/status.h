// Status / Result error-handling primitives, in the RocksDB/Arrow style.
//
// Library code in this project does not throw exceptions across module
// boundaries; fallible operations return a Status (or a Result<T> carrying a
// value).  Programming errors use DBMR_CHECK, which aborts with a message.

#ifndef DBMR_UTIL_STATUS_H_
#define DBMR_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace dbmr {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kCorruption,
  kAborted,   // e.g. transaction chosen as a deadlock victim
  kInternal,
  kIoError,   // a device-level I/O failure (e.g. an injected disk fault)
  kDataLoss,  // unrecoverable media loss (no surviving replica or archive)
};

/// Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value.  Ok statuses allocate nothing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T.  Accessing the value of an error Result is
/// a checked fatal error.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  T& value() {
    CheckOk();
    return std::get<T>(v_);
  }
  const T& value() const {
    CheckOk();
    return std::get<T>(v_);
  }

  T ValueOr(T fallback) const { return ok() ? std::get<T>(v_) : fallback; }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(v_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> v_;
};

}  // namespace dbmr

/// Aborts with a message when `cond` is false.  For programmer errors only.
#define DBMR_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DBMR_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define DBMR_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::dbmr::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // DBMR_UTIL_STATUS_H_
