#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/str.h"

namespace dbmr {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::Render() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) {
    if (!r.separator) measure(r.cells);
  }

  auto rule = [&](char corner, char fill) {
    std::string line(1, corner);
    for (size_t i = 0; i < cols; ++i) {
      line += std::string(width[i] + 2, fill);
      line += corner;
    }
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t i = 0; i < cols; ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      line += ' ';
      line += c;
      line += std::string(width[i] - c.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule('+', '-');
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule('+', '=');
  }
  for (const auto& r : rows_) {
    out += r.separator ? rule('+', '-') : render_row(r.cells);
  }
  out += rule('+', '-');
  return out;
}

void TextTable::Print() const { std::fputs(Render().c_str(), stdout); }

std::string PaperVsMeasured(double paper, double measured, int digits) {
  return StrFormat("%.*f / %.*f", digits, paper, digits, measured);
}

}  // namespace dbmr
