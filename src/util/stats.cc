#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"
#include "util/str.h"

namespace dbmr {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
    mean_ = x;
    m2_ = 0.0;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  mean_ = (na * mean_ + nb * other.mean_) / static_cast<double>(n);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  return StrFormat("n=%lld mean=%.3f min=%.3f max=%.3f sd=%.3f",
                   static_cast<long long>(count_), mean(), min(), max(),
                   stddev());
}

void TimeWeightedStat::Set(double now, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = last_time_ = now;
    current_ = value;
    return;
  }
  DBMR_CHECK(now >= last_time_);
  weighted_sum_ += current_ * (now - last_time_);
  last_time_ = now;
  current_ = value;
}

double TimeWeightedStat::Average(double as_of) const {
  // A zero-length observation window has no time-weighted mean; returning
  // 0.0 (rather than 0/0 or the instantaneous value) keeps utilizations
  // read before the first event fires — e.g. Server::Utilization() at
  // as_of == 0 — finite and unbiased.
  if (!started_ || as_of <= start_time_) return 0.0;
  double total = weighted_sum_ + current_ * (as_of - last_time_);
  return total / (as_of - start_time_);
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), buckets_(static_cast<size_t>(buckets), 0) {
  DBMR_CHECK(hi > lo && buckets > 0);
  width_ = (hi - lo) / buckets;
}

void Histogram::Add(double x) {
  int idx = static_cast<int>((x - lo_) / width_);
  idx = std::clamp(idx, 0, num_buckets() - 1);
  ++buckets_[static_cast<size_t>(idx)];
  ++count_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    int64_t b = buckets_[static_cast<size_t>(i)];
    if (seen + b >= target) {
      double frac = b > 0 ? (target - static_cast<double>(seen)) /
                                static_cast<double>(b)
                          : 0.0;
      return lo_ + (i + frac) * width_;
    }
    seen += b;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::string out;
  for (int i = 0; i < num_buckets(); ++i) {
    out += StrFormat("[%8.2f, %8.2f): %lld\n", lo_ + i * width_,
                     lo_ + (i + 1) * width_,
                     static_cast<long long>(buckets_[static_cast<size_t>(i)]));
  }
  return out;
}

}  // namespace dbmr
