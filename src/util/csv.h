// RFC 4180-style CSV writing and parsing.
//
// The metrics layer exports one row per grid cell; fields containing a
// comma, quote, or newline are quoted with doubled inner quotes.  The
// parser accepts exactly what the writer emits (plus CRLF line endings),
// so exports round-trip.

#ifndef DBMR_UTIL_CSV_H_
#define DBMR_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dbmr {

/// Accumulates a header plus data rows and renders them as CSV text.
class CsvWriter {
 public:
  /// Sets the column names; defines the expected row width.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row.  Rows shorter than the header are padded with
  /// empty fields; longer rows are a checked fatal error.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders header + rows, one "\n"-terminated line each.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes `field` if it contains a comma, quote, CR, or LF.
std::string CsvEscape(const std::string& field);

/// Parses CSV text into rows of fields (the header, if any, is row 0).
/// Handles quoted fields with embedded commas/newlines/doubled quotes and
/// both "\n" and "\r\n" line endings; a trailing newline does not produce
/// an empty final row.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

}  // namespace dbmr

#endif  // DBMR_UTIL_CSV_H_
