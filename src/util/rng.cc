#include "util/rng.h"

#include <cmath>

namespace dbmr {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DBMR_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % span);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  DBMR_CHECK(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace dbmr
