#include "util/str.h"

#include <cstdio>

namespace dbmr {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

std::string FormatFixed(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace dbmr
