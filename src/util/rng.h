// Deterministic pseudo-random number generation.
//
// All stochastic choices in the simulator and the workload generator draw
// from Rng so that experiments are exactly reproducible from a seed.  The
// generator is a 64-bit SplitMix64-seeded xoshiro256**, implemented here so
// results are stable across standard-library versions (std::mt19937
// distributions are not portable across implementations).

#ifndef DBMR_UTIL_RNG_H_
#define DBMR_UTIL_RNG_H_

#include <cstdint>

#include "util/status.h"

namespace dbmr {

/// Deterministic, seedable random number generator.
class Rng {
 public:
  /// Seeds the generator.  Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi], inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Derives an independent child generator; useful for giving each model
  /// component its own stream so adding a component does not perturb others.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace dbmr

#endif  // DBMR_UTIL_RNG_H_
