// Small string-formatting helpers shared across the library.

#ifndef DBMR_UTIL_STR_H_
#define DBMR_UTIL_STR_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace dbmr {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` digits after the decimal point.
std::string FormatFixed(double value, int digits);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace dbmr

#endif  // DBMR_UTIL_STR_H_
