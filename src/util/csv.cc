#include "util/csv.h"

namespace dbmr {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  DBMR_CHECK(row.size() <= header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_line = [&out](const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(fields[i]);
    }
    out += '\n';
  };
  append_line(header_);
  for (const auto& row : rows_) append_line(row);
  return out;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" (one empty field) from ""
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::InvalidArgument(
              "CSV: quote inside unquoted field");
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  // Final line without a trailing newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace dbmr
