// A small, dependency-free JSON document model: build, serialize, parse.
//
// Used by the metrics layer to export experiment-grid results.  Two
// properties matter there and are guaranteed here:
//
//  * Deterministic output.  Object members keep insertion order, doubles
//    are formatted with the shortest representation that round-trips
//    exactly (strtod(Dump(x)) == x), and 64-bit integers are kept as
//    integers rather than being squeezed through a double.  Equal
//    documents therefore always serialize to identical bytes.
//  * Round-tripping.  Parse(Dump(v)) reproduces v, including the
//    int/uint/double distinction for numbers that look integral.

#ifndef DBMR_UTIL_JSON_H_
#define DBMR_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dbmr {

/// One JSON value: null, bool, number (int64/uint64/double), string,
/// array, or object.  Objects preserve insertion order.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  JsonValue(int v) : type_(Type::kInt), int_(v) {}               // NOLINT
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}           // NOLINT
  JsonValue(uint64_t v) : type_(Type::kUint), uint_(v) {}        // NOLINT
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}      // NOLINT
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}    // NOLINT
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static JsonValue Array() { return JsonValue(Type::kArray); }
  static JsonValue Object() { return JsonValue(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling one on the wrong type is a checked fatal
  /// error.  AsDouble accepts any numeric value.
  bool AsBool() const;
  int64_t AsInt() const;
  uint64_t AsUint() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array/object element count; 0 for scalars.
  size_t size() const;

  /// --- arrays -----------------------------------------------------------
  void Append(JsonValue v);
  const JsonValue& at(size_t i) const;

  /// --- objects (insertion-ordered) --------------------------------------
  /// Returns the member named `key`, inserting a null member if absent.
  JsonValue& operator[](const std::string& key);
  /// Returns the member named `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& items() const {
    return obj_;
  }

  /// Serializes.  indent < 0 renders one compact line; indent >= 0 pretty-
  /// prints with that many spaces per nesting level.  Non-finite doubles
  /// (not representable in JSON) render as null.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  explicit JsonValue(Type t) : type_(t) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Shortest decimal string that strtod parses back to exactly `value`
/// ("0.1", not "0.10000000000000001").  Non-finite values format as
/// "inf"/"-inf"/"nan" (callers that need strict JSON must handle those).
std::string FormatDoubleRoundTrip(double value);

/// Escapes and quotes `s` as a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace dbmr

#endif  // DBMR_UTIL_JSON_H_
