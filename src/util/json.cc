#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/str.h"

namespace dbmr {

std::string FormatDoubleRoundTrip(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Integral doubles within int64 range print without a fraction but keep
  // a ".0" marker so the value parses back as a double.
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  std::string s = buf;
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

bool JsonValue::AsBool() const {
  DBMR_CHECK(type_ == Type::kBool);
  return bool_;
}

int64_t JsonValue::AsInt() const {
  if (type_ == Type::kUint) {
    DBMR_CHECK(uint_ <= static_cast<uint64_t>(INT64_MAX));
    return static_cast<int64_t>(uint_);
  }
  DBMR_CHECK(type_ == Type::kInt);
  return int_;
}

uint64_t JsonValue::AsUint() const {
  if (type_ == Type::kInt) {
    DBMR_CHECK(int_ >= 0);
    return static_cast<uint64_t>(int_);
  }
  DBMR_CHECK(type_ == Type::kUint);
  return uint_;
}

double JsonValue::AsDouble() const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: DBMR_CHECK(false && "AsDouble on non-number"); return 0.0;
  }
}

const std::string& JsonValue::AsString() const {
  DBMR_CHECK(type_ == Type::kString);
  return str_;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

void JsonValue::Append(JsonValue v) {
  DBMR_CHECK(type_ == Type::kArray);
  arr_.push_back(std::move(v));
}

const JsonValue& JsonValue::at(size_t i) const {
  DBMR_CHECK(type_ == Type::kArray && i < arr_.size());
  return arr_[i];
}

JsonValue& JsonValue::operator[](const std::string& key) {
  DBMR_CHECK(type_ == Type::kObject);
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, JsonValue());
  return obj_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(
      static_cast<size_t>(indent) * static_cast<size_t>(depth + 1), ' ')
      : "";
  const std::string close_pad = pretty ? std::string(
      static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ')
      : "";
  const char* nl = pretty ? "\n" : "";
  const char* kv_sep = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kUint:
      *out += std::to_string(uint_);
      break;
    case Type::kDouble:
      if (!std::isfinite(double_)) {
        *out += "null";
      } else {
        *out += FormatDoubleRoundTrip(double_);
      }
      break;
    case Type::kString:
      *out += JsonEscape(str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < arr_.size(); ++i) {
        *out += pad;
        arr_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < arr_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      for (size_t i = 0; i < obj_.size(); ++i) {
        *out += pad;
        *out += JsonEscape(obj_[i].first);
        *out += kv_sep;
        obj_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < obj_.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    // Numbers compare across int/uint representations by value.
    if (is_number() && other.is_number() && type_ != Type::kDouble &&
        other.type_ != Type::kDouble) {
      if (type_ == Type::kInt && int_ < 0) return false;
      if (other.type_ == Type::kInt && other.int_ < 0) return false;
      return AsUint() == other.AsUint();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kUint: return uint_ == other.uint_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser over a string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status st = ParseValue(&v, 0);
    if (!st.ok()) return st;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t n = std::strlen(w);
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      std::string s;
      DBMR_RETURN_IF_ERROR(ParseString(&s));
      *out = JsonValue(std::move(s));
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      DBMR_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue v;
      DBMR_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      (*out)[key] = std::move(v);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue v;
      DBMR_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (surrogate pairs are not recombined; the
          // metrics layer never emits them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    const bool integral =
        tok.find_first_of(".eE") == std::string::npos;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (tok[0] == '-') {
        long long v = std::strtoll(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok.c_str() + tok.size()) {
          *out = JsonValue(static_cast<int64_t>(v));
          return Status::OK();
        }
      } else {
        unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        if (errno == 0 && end == tok.c_str() + tok.size()) {
          *out = JsonValue(static_cast<uint64_t>(v));
          return Status::OK();
        }
      }
      // Out of 64-bit range: fall through to double.
    }
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return Error("malformed number");
    *out = JsonValue(v);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace dbmr
