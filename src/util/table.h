// ASCII table rendering for benchmark / experiment output.
//
// Every bench binary prints its paper table with the same rows and columns
// as the publication, so results can be compared cell-by-cell.

#ifndef DBMR_UTIL_TABLE_H_
#define DBMR_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dbmr {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; defines the column count.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row.  Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table with box-drawing rules.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  const std::string& title() const { return title_; }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Helper for "paper X.X / measured Y.Y" cells used in EXPERIMENTS output.
std::string PaperVsMeasured(double paper, double measured, int digits = 1);

}  // namespace dbmr

#endif  // DBMR_UTIL_TABLE_H_
