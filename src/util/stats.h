// Statistics accumulators used by the simulator for metrics collection.

#ifndef DBMR_UTIL_STATS_H_
#define DBMR_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbmr {

/// Accumulates count/mean/min/max/variance of observations (Welford).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Tracks the time-weighted average of a piecewise-constant quantity, e.g.
/// queue length or the number of busy servers.  Utilization of a device is
/// the time-weighted average of its busy indicator.
class TimeWeightedStat {
 public:
  /// Records that the tracked value becomes `value` at time `now`.
  /// Times must be non-decreasing.
  void Set(double now, double value);

  /// Adds `delta` to the current value at time `now`.
  void Add(double now, double delta) { Set(now, current_ + delta); }

  /// Time-weighted mean over [first Set, as_of].
  double Average(double as_of) const;

  double current() const { return current_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double current_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t count() const { return count_; }
  int64_t bucket_count(int i) const { return buckets_.at(i); }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

  /// Linear-interpolated quantile in [0,1].
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
};

}  // namespace dbmr

#endif  // DBMR_UTIL_STATS_H_
