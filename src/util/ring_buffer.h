// Flat FIFO ring buffer.
//
// A contiguous power-of-two ring with amortized-O(1) push_back/pop_front
// and no per-node allocation — the steady-state replacement for
// std::deque in the machine's hot queues (ready pages, arrival backlog),
// where deque's chunked allocation shows up at millions of transactions.
// Reserve() pre-sizes the ring so a bounded queue never allocates after
// setup.

#ifndef DBMR_UTIL_RING_BUFFER_H_
#define DBMR_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dbmr {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  /// Ensures capacity for at least `n` elements without reallocation.
  void Reserve(size_t n) {
    if (n > capacity()) Grow(RoundUpPow2(n));
  }

  void push_back(T value) {
    if (count_ == capacity()) Grow(capacity() == 0 ? 16 : capacity() * 2);
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  T& front() {
    DBMR_CHECK(count_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    DBMR_CHECK(count_ > 0);
    buf_[head_] = T();  // release whatever the slot owns now
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

 private:
  size_t capacity() const { return buf_.size(); }

  static size_t RoundUpPow2(size_t n) {
    size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  void Grow(size_t new_cap) {
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace dbmr

#endif  // DBMR_UTIL_RING_BUFFER_H_
