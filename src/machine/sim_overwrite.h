// Overwriting recovery architecture for the machine simulator
// (paper §3.2.2.2, §4.2.4).
//
// No-undo variant (the one the paper evaluates in Tables 7/8): updated
// pages are first written to a scratch ring at the end of the data drive;
// at commit they are read back from scratch and overwritten onto their
// home locations, preserving the correspondence between physical and
// logical sequentiality.  On parallel-access drives the scratch reads and
// (for sequential transactions) the home overwrites batch into very few
// accesses; on conventional drives every page pays extra accesses plus
// the arm travel between the scratch area and the data area.
//
// No-redo variant: the original page is saved to scratch before the home
// location is overwritten in place; commit needs no further I/O, but an
// abort must read every saved before image back from scratch and restore
// it over the home location (the transaction's locks are held until the
// restore completes).

#ifndef DBMR_MACHINE_SIM_OVERWRITE_H_
#define DBMR_MACHINE_SIM_OVERWRITE_H_

#include <unordered_map>
#include <vector>

#include "machine/machine.h"
#include "machine/recovery_arch.h"

namespace dbmr::machine {

/// Which overwriting variant to simulate.
enum class SimOverwriteMode {
  kNoUndo,
  kNoRedo,
};

/// The overwriting architecture.
class SimOverwrite : public RecoveryArch {
 public:
  explicit SimOverwrite(SimOverwriteMode mode = SimOverwriteMode::kNoUndo);

  std::string name() const override;
  std::string registry_name() const override { return "overwrite"; }
  void WriteUpdatedPage(txn::TxnId t, uint64_t page,
                        std::function<void()> done) override;
  void OnCommit(txn::TxnId t, std::function<void()> done) override;
  void OnRestart(txn::TxnId t, std::function<void()> done) override;
  void ContributeStats(MachineResult* result) override;

 private:
  /// One in-place overwrite a no-redo abort must roll back.
  struct Undo {
    uint64_t page = 0;
    Placement scratch;  // where the before image was saved
    Placement home;     // the overwritten home location
  };

  Placement AllocScratch(int disk);

  SimOverwriteMode mode_;
  std::vector<uint64_t> scratch_cursor_;  // per data disk
  /// Per transaction: updated pages awaiting the commit-time overwrite
  /// (no-undo), with their scratch slots.
  std::unordered_map<txn::TxnId, std::vector<std::pair<uint64_t, Placement>>>
      pending_;
  /// Per transaction: home locations overwritten in place before commit
  /// (no-redo), in write order.
  std::unordered_map<txn::TxnId, std::vector<Undo>> overwritten_;
  uint64_t scratch_writes_ = 0;
  uint64_t scratch_reads_ = 0;
  uint64_t home_writes_ = 0;
  uint64_t undo_reads_ = 0;
  uint64_t undo_writes_ = 0;
};

}  // namespace dbmr::machine

#endif  // DBMR_MACHINE_SIM_OVERWRITE_H_
