#include "machine/sim_version_select.h"

#include <utility>

namespace dbmr::machine {

void SimVersionSelect::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                        std::function<void()> done) {
  // The new version overwrites the adjacent non-current block: a single
  // one-page write at (essentially) the home location.
  Placement pl = machine_->HomePlacement(page);
  machine_->NoteHomeWrite(t, page);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, true, 1, std::move(done)});
}

void SimVersionSelect::OnCommit(txn::TxnId t, std::function<void()> done) {
  (void)t;
  // Append the transaction id to the stable commit list: one page write
  // in the reserved area of disk 0.
  ++commit_list_writes_;
  Placement pl = machine_->ScratchPlacement(0, commit_list_writes_ % 16);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, true, 1, std::move(done)});
}

void SimVersionSelect::ContributeStats(MachineResult* result) {
  result->extra["commit_list_writes"] =
      static_cast<double>(commit_list_writes_);
}

}  // namespace dbmr::machine
