#include "machine/sim_version_select.h"

#include <memory>
#include <utility>

#include "core/arch_registry.h"

namespace dbmr::machine {

void SimVersionSelect::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                        std::function<void()> done) {
  // The new version overwrites the adjacent non-current block: a single
  // one-page write at (essentially) the home location.
  Placement pl = machine_->HomePlacement(page);
  machine_->NoteHomeWrite(t, page);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, true, 1, std::move(done)});
}

void SimVersionSelect::OnCommit(txn::TxnId t, std::function<void()> done) {
  (void)t;
  // Append the transaction id to the stable commit list: one page write
  // in the reserved area of disk 0.
  ++commit_list_writes_;
  Placement pl = machine_->ScratchPlacement(0, commit_list_writes_ % 16);
  machine_->data_disk(pl.disk)->Submit(
      hw::DiskRequest{pl.addr, true, 1, std::move(done)});
}

void SimVersionSelect::ContributeStats(MachineResult* result) {
  result->extra["commit_list_writes"] =
      static_cast<double>(commit_list_writes_);
}

namespace {

std::unique_ptr<RecoveryArch> MakeVersionSelectFromConfig(
    const core::ArchConfig& cfg) {
  SimVersionSelectOptions o;
  o.smart_heads = cfg.GetBool("smart-heads");
  return std::make_unique<SimVersionSelect>(o);
}

core::ArchEntry MakeVersionSelectEntry() {
  core::ArchEntry e;
  e.name = "version-select";
  e.sim_order = 4;
  e.summary = "two versions per page, selected by a commit list";
  e.description =
      "Each page keeps two adjacent on-disk versions; a write overwrites "
      "the non-current one and commit appends the transaction to a stable "
      "commit list that determines which version is live.  A plain read "
      "transfers both versions; smart heads select the live version on "
      "the fly and transfer one.";
  e.paper_ref = "§3.2.2.1, §4.2.3";
  e.knobs = {
      {"smart-heads", core::KnobType::kBool, "0", {},
       "select the live version on the fly (one-page transfers)"},
  };
  e.sim_variants = {
      {"version-select", {}, "both versions transferred per read"},
  };
  e.make_sim = &MakeVersionSelectFromConfig;
  return e;
}

const core::SimArchRegistrar kVersionSelectRegistrar(
    MakeVersionSelectEntry());

}  // namespace

void* ArchRegistryAnchorVersionSelect() {
  return const_cast<core::SimArchRegistrar*>(&kVersionSelectRegistrar);
}

}  // namespace dbmr::machine
