#include "machine/machine.h"

#include <algorithm>
#include <utility>

#include "util/str.h"

namespace dbmr::machine {

Placement RecoveryArch::ReadPlacement(uint64_t page) {
  return machine_->HomePlacement(page);
}

void RecoveryArch::WriteUpdatedPage(txn::TxnId t, uint64_t page,
                                    std::function<void()> done) {
  Placement pl = machine_->HomePlacement(page);
  machine_->data_disk(pl.disk)->Submit(hw::DiskRequest{
      pl.addr, /*is_write=*/true, 1,
      [this, t, done = std::move(done)] {
        machine_->NoteHomeWrite(t);
        done();
      }});
}

Machine::Machine(const MachineConfig& config,
                 std::vector<workload::TransactionSpec> workload,
                 std::unique_ptr<RecoveryArch> arch)
    : config_(config),
      workload_(std::move(workload)),
      arch_(std::move(arch)),
      rng_(config.seed) {
  DBMR_CHECK(arch_ != nullptr);
  DBMR_CHECK(config_.num_query_processors > 0);
  DBMR_CHECK(config_.cache_frames > 0);
  DBMR_CHECK(config_.num_data_disks > 0);
  DBMR_CHECK(static_cast<int64_t>(config_.db_pages) <=
             config_.data_pages_per_disk() * config_.num_data_disks);
  for (int i = 0; i < config_.num_data_disks; ++i) {
    data_disks_.push_back(std::make_unique<hw::DiskModel>(
        &sim_, StrFormat("data%d", i), config_.geometry, config_.disk_kind,
        rng_.Fork()));
  }
  free_frames_ = config_.cache_frames;
  qp_busy_stat_.Set(0.0, 0.0);
  blocked_pages_stat_.Set(0.0, 0.0);
  arch_->Attach(this);
}

Machine::~Machine() = default;

Placement Machine::HomePlacement(uint64_t page) const {
  const auto ppc = static_cast<uint64_t>(config_.geometry.pages_per_cylinder());
  const auto ndisks = static_cast<uint64_t>(config_.num_data_disks);
  const uint64_t cyl_group = page / ppc;
  Placement pl;
  pl.disk = static_cast<int>(cyl_group % ndisks);
  pl.addr.cylinder = static_cast<int32_t>(cyl_group / ndisks);
  pl.addr.slot = static_cast<int32_t>(page % ppc);
  DBMR_CHECK(pl.addr.cylinder <
             config_.geometry.cylinders - config_.reserved_cylinders);
  return pl;
}

Placement Machine::ScratchPlacement(int disk, uint64_t index) const {
  const auto ppc = static_cast<uint64_t>(config_.geometry.pages_per_cylinder());
  const auto reserved =
      static_cast<uint64_t>(config_.reserved_cylinders) * ppc;
  Placement pl;
  pl.disk = disk;
  const uint64_t slot_index = index % reserved;
  pl.addr.cylinder =
      static_cast<int32_t>(config_.geometry.cylinders -
                           config_.reserved_cylinders +
                           static_cast<int32_t>(slot_index / ppc));
  pl.addr.slot = static_cast<int32_t>(slot_index % ppc);
  return pl;
}

bool Machine::TryTakeFrame() {
  if (free_frames_ <= 0) return false;
  --free_frames_;
  return true;
}

void Machine::ReturnFrame() {
  ++free_frames_;
  Pump();
}

void Machine::NoteHomeWrite(txn::TxnId t) {
  (void)t;
  ++pages_written_;
}

MachineResult Machine::Run() {
  runs_.reserve(workload_.size());
  for (const auto& spec : workload_) {
    auto run = std::make_unique<TxnRun>();
    run->spec = &spec;
    runs_.push_back(std::move(run));
  }
  if (config_.mean_interarrival_ms > 0.0) {
    // Open system: exponential arrivals; admit up to the MPL on arrival,
    // queue otherwise.  Completion then measures response time.
    sim::TimeMs when = 0.0;
    for (auto& run : runs_) {
      when += rng_.Exponential(config_.mean_interarrival_ms);
      TxnRun* txn = run.get();
      sim_.ScheduleAt(when, [this, txn] {
        txn->admit_time = sim_.Now();
        pending_.push_back(txn);
        if (static_cast<int>(active_.size()) < config_.mpl) AdmitNext();
        Pump();
      });
    }
  } else {
    for (auto& run : runs_) pending_.push_back(run.get());
    for (int i = 0; i < config_.mpl; ++i) AdmitNext();
  }
  Pump();
  sim_.Run();
  DBMR_CHECK(completed_txns_ == static_cast<int>(workload_.size()));

  MachineResult r;
  r.arch_name = arch_->name();
  r.total_time_ms = completion_end_;
  r.total_pages = workload::TotalPages(workload_);
  r.exec_time_per_page_ms =
      r.total_time_ms / static_cast<double>(r.total_pages);
  r.completion_ms = completion_ms_;
  r.pages_read = pages_read_;
  r.pages_written = pages_written_;
  for (auto& d : data_disks_) {
    r.data_disk_util.push_back(d->Utilization());
    r.data_disk_accesses.push_back(d->accesses());
  }
  r.qp_util = qp_busy_stat_.Average(sim_.Now()) /
              static_cast<double>(config_.num_query_processors);
  r.avg_blocked_pages = blocked_pages_stat_.Average(sim_.Now());
  r.deadlock_restarts = deadlock_restarts_;
  const sim::SimCounters& sc = sim_.counters();
  r.extra["sim_events_executed"] = static_cast<double>(sc.events_executed);
  r.extra["sim_events_scheduled"] = static_cast<double>(sc.events_scheduled);
  r.extra["sim_max_heap_depth"] = static_cast<double>(sc.max_heap_depth);
  r.extra["sim_slot_pool_highwater"] =
      static_cast<double>(sc.slot_pool_highwater);
  for (size_t i = 0; i < data_disks_.size(); ++i) {
    r.extra[StrFormat("data_disk_queue_highwater_%zu", i)] =
        static_cast<double>(data_disks_[i]->max_queue_length());
  }
  arch_->ContributeStats(&r);
  return r;
}

void Machine::AdmitNext() {
  if (pending_.empty()) return;
  TxnRun* txn = pending_.front();
  pending_.pop_front();
  // In the open system admit_time was stamped at arrival (so queueing for
  // admission counts toward the response time); in the closed batch it is
  // stamped here, at first cache-frame eligibility, per the paper.
  if (config_.mean_interarrival_ms <= 0.0) txn->admit_time = sim_.Now();
  active_.push_back(txn);
}

void Machine::Pump() {
  if (pumping_) {
    repump_ = true;
    return;
  }
  pumping_ = true;
  do {
    repump_ = false;
    // Assign ready pages to free query processors.
    while (busy_qps_ < config_.num_query_processors && !ready_.empty()) {
      PageWork w = ready_.front();
      ready_.pop_front();
      StartProcessing(w);
    }
    // Issue anticipatory reads round-robin across active transactions
    // while cache frames remain.
    bool progress = true;
    while (progress && free_frames_ > 0) {
      progress = false;
      for (TxnRun* txn : active_) {
        if (free_frames_ <= 0) break;
        if (txn->doomed || txn->paused || txn->committing) continue;
        for (int k = 0; k < config_.read_ahead_chunk; ++k) {
          if (free_frames_ <= 0 || txn->doomed) break;
          if (txn->next_read >= txn->spec->reads.size()) break;
          IssueRead(txn);
          progress = true;
        }
      }
    }
  } while (repump_);
  pumping_ = false;
}

void Machine::IssueRead(TxnRun* txn) {
  const uint64_t page = txn->spec->reads[txn->next_read++];
  const bool is_write = txn->spec->write_set.count(page) > 0;
  ++txn->outstanding;
  --free_frames_;

  // Write-set pages take their exclusive lock up front, avoiding upgrade
  // deadlocks (the write set is known to the compiled transaction).
  const txn::LockMode mode =
      is_write ? txn::LockMode::kExclusive : txn::LockMode::kShared;
  const txn::TxnId id = txn->spec->id;
  auto res = locks_.Acquire(id, page, mode, [this, txn, page, is_write] {
    --txn->waiting_locks;
    if (txn->doomed) {
      ++free_frames_;
      --txn->outstanding;
      if (txn->outstanding == 0) RestartTxn(txn);
      Pump();
      return;
    }
    StartRead(txn, page, is_write);
  });
  switch (res) {
    case txn::AcquireResult::kGranted:
      StartRead(txn, page, is_write);
      break;
    case txn::AcquireResult::kWaiting:
      ++txn->waiting_locks;
      break;
    case txn::AcquireResult::kDeadlock: {
      // Victim: drain in-flight pages, then restart from scratch.
      ++free_frames_;
      --txn->outstanding;
      txn->doomed = true;
      locks_.ReleaseAll(id);
      // Reclaim reads stuck waiting for locks (their queued requests were
      // just dropped by ReleaseAll).
      free_frames_ += txn->waiting_locks;
      txn->outstanding -= txn->waiting_locks;
      txn->waiting_locks = 0;
      if (txn->outstanding == 0) RestartTxn(txn);
      break;
    }
  }
}

void Machine::StartRead(TxnRun* txn, uint64_t page, bool is_write) {
  const txn::TxnId id = txn->spec->id;
  arch_->BeforeRead(id, page, [this, txn, page, is_write] {
    Placement pl = arch_->ReadPlacement(page);
    data_disks_[static_cast<size_t>(pl.disk)]->Submit(hw::DiskRequest{
        pl.addr, /*is_write=*/false, arch_->ReadTransferPages(),
        [this, txn, page, is_write] {
          ++pages_read_;
          OnReadDone(PageWork{txn, page, is_write});
        }});
  });
}

void Machine::OnReadDone(PageWork work) {
  ready_.push_back(work);
  Pump();
}

void Machine::StartProcessing(PageWork work) {
  ++busy_qps_;
  qp_busy_stat_.Set(sim_.Now(), static_cast<double>(busy_qps_));
  const sim::TimeMs service =
      config_.cpu_ms_per_page +
      arch_->ExtraCpu(work.txn->spec->id, work.page, work.is_write);
  sim_.Schedule(service, [this, work] {
    --busy_qps_;
    qp_busy_stat_.Set(sim_.Now(), static_cast<double>(busy_qps_));
    OnProcessed(work);
  });
}

void Machine::OnProcessed(PageWork work) {
  if (!work.is_write || work.txn->doomed) {
    RetirePage(work);
    return;
  }
  // The query processor produced an updated page; recovery data must be
  // collected, after which the page may be written back.
  ++blocked_pages_;
  blocked_pages_stat_.Set(sim_.Now(), static_cast<double>(blocked_pages_));
  const txn::TxnId id = work.txn->spec->id;
  arch_->CollectRecoveryData(id, work.page, [this, work, id] {
    --blocked_pages_;
    blocked_pages_stat_.Set(sim_.Now(),
                            static_cast<double>(blocked_pages_));
    arch_->WriteUpdatedPage(id, work.page, [this, work] {
      RetirePage(work);
    });
  });
}

void Machine::RetirePage(PageWork work) {
  ++free_frames_;
  --work.txn->outstanding;
  MaybeComplete(work.txn);
  Pump();
}

void Machine::MaybeComplete(TxnRun* txn) {
  if (txn->outstanding != 0) return;
  if (txn->doomed) {
    RestartTxn(txn);
    return;
  }
  if (txn->committing) return;
  if (txn->next_read < txn->spec->reads.size()) return;
  txn->committing = true;
  arch_->OnCommit(txn->spec->id, [this, txn] { CompleteTxn(txn); });
}

void Machine::CompleteTxn(TxnRun* txn) {
  completion_ms_.Add(sim_.Now() - txn->admit_time);
  completion_end_ = std::max(completion_end_, sim_.Now());
  locks_.ReleaseAll(txn->spec->id);
  active_.erase(std::find(active_.begin(), active_.end(), txn));
  ++completed_txns_;
  AdmitNext();
  Pump();
}

void Machine::RestartTxn(TxnRun* txn) {
  ++deadlock_restarts_;
  ++txn->restarts;
  arch_->OnRestart(txn->spec->id);
  locks_.ReleaseAll(txn->spec->id);
  txn->doomed = false;
  txn->next_read = 0;
  txn->committing = false;
  // Randomized backoff before the rerun: immediate restarts of mutually
  // conflicting transactions re-collide indefinitely under heavy skew.
  txn->paused = true;
  const sim::TimeMs backoff =
      rng_.Exponential(100.0 * std::min(txn->restarts, 10));
  sim_.Schedule(backoff, [this, txn] {
    txn->paused = false;
    Pump();
  });
  Pump();
}

}  // namespace dbmr::machine
